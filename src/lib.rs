//! Workspace root package for the UniServer reproduction.
//!
//! This package exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests under `tests/`. The actual library lives
//! in the `uniserver-*` crates; start from [`uniserver_core`].

pub use uniserver_core as core;
