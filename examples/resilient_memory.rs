//! The §6.B DRAM story end to end: relax refresh far beyond the 64 ms
//! guard-band, keep the kernel in a reliable domain, and let ECC plus
//! the hypervisor's containment absorb what the relaxed domain produces.
//!
//! ```text
//! cargo run --release --example resilient_memory
//! ```

use uniserver_hypervisor::hypervisor::Hypervisor;
use uniserver_hypervisor::vm::VmConfig;
use uniserver_platform::dram::MemorySystem;
use uniserver_platform::msr::DomainId;
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_silicon::power::DramPowerModel;
use uniserver_stress::campaign::RefreshSweep;
use uniserver_units::Seconds;

fn main() {
    // --- Characterize: the paper's refresh sweep with ECC disabled.
    println!("refresh-relaxation sweep (8 GB DDR3 DIMM, random patterns, ECC off):");
    let mut memory = MemorySystem::commodity_server(false);
    let sweep = RefreshSweep::paper_sweep();
    let points = sweep.run(&mut memory, 3, 2018);
    for p in &points {
        println!(
            "  {:>9}: {:>4} raw bit errors, BER {:>8}, refresh power {}",
            format!("{}", p.interval),
            p.raw_bit_errors,
            format!("{}", p.ber),
            p.refresh_power
        );
    }
    let safe = RefreshSweep::max_safe_interval(&points).expect("a safe interval exists");
    println!("  -> longest error-free interval: {safe} (paper: 1.5 s)");

    let power = DramPowerModel::ddr3_8gb();
    println!(
        "  -> module power saving at {safe}: {:.1} % (refresh share today: {:.0} %, at 32 Gb: {:.0} %)",
        power.refresh_saving(safe) * 100.0,
        power.refresh_share_nominal() * 100.0,
        DramPowerModel::future_32gbit().refresh_share_nominal() * 100.0
    );

    // --- Deploy at an *aggressive* relaxed interval with ECC disabled,
    //     exactly the paper's configuration: the reliable domain keeps
    //     the kernel safe, and the hypervisor contains what leaks.
    println!("\nproduction run: reliable domain 64 ms, relaxed domain 8 s (deliberately aggressive), ECC off:");
    let node = ServerNode::with_memory(
        PartSpec::arm_microserver(),
        MemorySystem::commodity_server(false),
        9,
    );
    let mut hv = Hypervisor::new(node);
    hv.node_mut()
        .msr
        .set_refresh_interval(DomainId(1), Seconds::new(8.0))
        .expect("within controller range");
    for _ in 0..2 {
        hv.launch_vm(VmConfig::ldbc_benchmark()).expect("guests fit");
    }

    let mut masked = 0;
    let mut contained = 0;
    let mut retired = 0;
    for _ in 0..120 {
        let out = hv.tick(Seconds::new(2.0));
        masked += out.masked_corrected;
        contained += out.contained_uncorrected;
        retired += out.pages_retired;
        assert!(!out.node_crashed, "DRAM errors must never take the node down");
    }
    println!("  corrected errors masked from guests : {masked}");
    assert!(contained > 0, "the aggressive interval must exercise containment");
    println!("  uncorrectable errors contained      : {contained}");
    println!("  pages retired                       : {retired}");
    println!("  node availability                   : {:.4}", hv.availability());
    println!(
        "\nok: the kernel never saw an error (reliable domain), guests saw only\n\
         VM-granularity restarts, and the machine stayed up throughout."
    );
}
