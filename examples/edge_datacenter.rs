//! An Edge micro-datacenter end to end: reliability-aware scheduling,
//! a degrading node, proactive migration — plus the §6.D latency/energy
//! argument and the TCO view.
//!
//! ```text
//! cargo run --release --example edge_datacenter
//! ```

use uniserver_cloudmgr::cluster::{Cluster, ClusterConfig};
use uniserver_cloudmgr::SlaClass;
use uniserver_edge::latency::{LatencyBudget, PlacementAnalysis};
use uniserver_hypervisor::vm::VmConfig;
use uniserver_platform::msr::DomainId;
use uniserver_tco::factors::EeFactors;
use uniserver_tco::model::{tco_improvement_energy_only, TcoParams};
use uniserver_units::Seconds;

fn main() {
    // --- Why the Edge: the 200 ms IoT latency budget (§6.D).
    let analysis = PlacementAnalysis::analyze(
        Seconds::from_millis(95.0),
        LatencyBudget::paper_iot_service(),
    );
    println!("latency budget analysis (200 ms end-to-end, 95 ms peak compute):");
    if let (Some(cloud), Some(edge)) = (analysis.cloud_point, analysis.edge_point) {
        println!("  cloud: must run at f x{:.2}", cloud.freq_scale);
        println!(
            "  edge : can run at f x{:.2} => {:.0} % less energy, {:.0} % less power",
            edge.freq_scale,
            analysis.edge_energy_saving().unwrap_or(0.0) * 100.0,
            analysis.edge_power_saving().unwrap_or(0.0) * 100.0,
        );
    }

    // --- A 4-node Edge site serving gold and bronze tenants.
    let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(4), 7);
    let mut gold_home = None;
    for i in 0..6 {
        let class = if i % 2 == 0 { SlaClass::Gold } else { SlaClass::Bronze };
        let placed = cluster.submit(VmConfig::ldbc_benchmark(), class);
        if let Some(p) = placed {
            println!("placed {class} tenant on {}", p.node);
            if class == SlaClass::Gold {
                gold_home.get_or_insert(p.node);
            }
        }
    }

    // The node hosting a gold tenant develops a DRAM problem: its
    // relaxed domain starts spraying errors.
    let victim = gold_home.expect("a gold tenant was placed");
    println!("\n{victim}'s relaxed DRAM domain degrades (refresh mis-set to 10 s)...");
    cluster
        .nodes_mut()
        .iter_mut()
        .find(|n| n.id == victim)
        .expect("victim exists")
        .hypervisor
        .node_mut()
        .msr
        .set_refresh_interval(DomainId(1), Seconds::new(10.0))
        .expect("within controller range");

    for minute in 0..3 {
        for _ in 0..30 {
            cluster.tick(Seconds::new(2.0));
        }
        let m = cluster.fleet_metrics();
        println!(
            "after {} min: availability {:.4}, migrations {}, blackout {:.1} ms",
            minute + 1,
            m.mean_availability,
            m.migrations,
            m.migration_downtime.as_millis()
        );
    }
    for node in cluster.nodes() {
        let m = node.metrics();
        println!("  {}: reliability {:.3}, utilization {:.2}", node.id, m.reliability, m.utilization);
    }

    // --- The TCO argument (Table 3).
    let tco = tco_improvement_energy_only(&TcoParams::edge_site(), EeFactors::table3().overall());
    println!(
        "\nTCO: a 36x energy-efficiency stack buys {tco:.2}x TCO improvement at this edge site\n\
         (energy-only; yield gains come on top — see `repro table3`)."
    );
}
