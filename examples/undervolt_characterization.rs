//! Reproduce the paper's §6.A CPU characterization: shmoo both modeled
//! Intel parts down to their crash points, then show what a GA-evolved
//! stress virus adds over the SPEC suite.
//!
//! ```text
//! cargo run --release --example undervolt_characterization
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::droop::DroopModel;
use uniserver_stress::campaign::{ShmooCampaign, Table2Summary};
use uniserver_stress::genetic::{evolve, GaConfig};
use uniserver_stress::kernels;
use uniserver_units::Seconds;

fn describe(summary: &Table2Summary) {
    println!("  {}", summary.part_name);
    println!(
        "    crash points below nominal: -{:.1} % .. -{:.1} %",
        summary.crash_min_pct, summary.crash_max_pct
    );
    println!(
        "    core-to-core variation    : {:.1} % .. {:.1} %",
        summary.core_var_min_pct, summary.core_var_max_pct
    );
    match (summary.cache_ce_min, summary.cache_ce_max) {
        (Some(lo), Some(hi)) => {
            println!(
                "    cache ECC errors per run  : {lo} .. {hi} (onset ~{:.0} mV above crash)",
                summary.mean_ce_window_mv.unwrap_or(0.0)
            );
        }
        _ => println!("    cache ECC errors per run  : none observable (crash-limited part)"),
    }
}

fn main() {
    let campaign = ShmooCampaign {
        dwell: Seconds::from_millis(300.0),
        ..ShmooCampaign::paper_methodology()
    };
    let suite = WorkloadProfile::spec2006_subset();

    println!("undervolting shmoo, SPEC CPU2006 subset, 3 consecutive runs per core:");
    for spec in [PartSpec::i5_4200u(), PartSpec::i7_3970x()] {
        let shmoo = campaign.run(&spec, 2018, &suite);
        describe(&Table2Summary::from_shmoo(&shmoo));
    }

    // §3.B: evolve a diagnostic virus and compare its droop to the suite.
    let pdn = DroopModel::typical_server_pdn();
    let mut rng = StdRng::seed_from_u64(42);
    let report = evolve(&GaConfig::standard(), &pdn, &mut rng);
    let virus_droop = report.best_fitness();
    let worst_spec = suite
        .iter()
        .map(|w| w.droop_fraction(&pdn))
        .fold(f64::MIN, f64::max);
    println!("\ngenetic stress-virus generation ({} generations):", GaConfig::standard().generations);
    println!("  evolved virus droop : {:.1} % of nominal", virus_droop * 100.0);
    println!("  worst SPEC droop    : {:.1} % of nominal", worst_spec * 100.0);
    println!(
        "  hand-coded resonator: {:.1} % of nominal",
        kernels::droop_resonator().droop_fraction(&pdn) * 100.0
    );
    println!(
        "\nok: viruses bound real workloads from above — margins against the virus\n\
         are already less pessimistic than worst-case guard-bands, and real\n\
         workloads leave even more room (paper §3.B)."
    );
}
