//! Characterize a fleet of 16 micro-servers and see the paper's core
//! premise in numbers: "each manufactured processor and each memory
//! module is inherently different and lies on a distinct performance
//! bin" (Figure 1) — so a *per-node* EOP beats any fleet-wide setting.
//!
//! ```text
//! cargo run --release --example fleet_characterization
//! ```

use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_stresslog::{StressLog, StressTargetParams};

fn main() {
    let spec = PartSpec::arm_microserver();
    let mut params = StressTargetParams::quick();
    params.shmoo.dwell = uniserver_units::Seconds::from_millis(200.0);

    println!("characterizing a fleet of 16 '{}' nodes:\n", spec.name);
    println!("node | safe undervolt (node-wide, mV) | safe refresh");
    println!("-----+-------------------------------+-------------");

    let mut offsets = Vec::new();
    for i in 0..16u64 {
        let mut node = ServerNode::new(spec.clone(), 1000 + i);
        let mut daemon = StressLog::new(params.clone());
        let margins = daemon.characterize(&mut node, None);
        let off = margins.node_safe_offset_mv();
        println!(
            "  {i:>2} | {off:>29.0} | {}",
            margins.safe_refresh
        );
        offsets.push(off);
    }

    let min = offsets.iter().cloned().fold(f64::MAX, f64::min);
    let max = offsets.iter().cloned().fold(f64::MIN, f64::max);
    let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;

    println!("\nfleet spread: {min:.0}..{max:.0} mV (mean {mean:.0} mV)");
    println!("a fleet-wide setting must use the weakest node's {min:.0} mV;");
    let nominal_mv = spec.nominal_voltage.as_millivolts();
    println!(
        "per-node EOPs reclaim {:.0} mV more on average — {:.1} % of nominal voltage —",
        mean - min,
        (mean - min) / nominal_mv * 100.0
    );
    println!("which is exactly the headroom binning throws away in Figure 1.");

    assert!(max - min > 20.0, "manufactured spread should exceed 20 mV");
}
