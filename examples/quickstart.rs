//! Quickstart: deploy the full UniServer ecosystem on one modeled ARM
//! micro-server and watch it reclaim the conservative guard-bands.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use uniserver_core::ecosystem::{DeploymentConfig, Ecosystem};
use uniserver_units::Seconds;

fn main() {
    // Deploy: pre-deployment stress characterization, predictor
    // training, guest launch, EOP selection — all in one call.
    let mut eco = Ecosystem::deploy(&DeploymentConfig::quick(), 2018);
    println!("deployed at EOP: {}", eco.operating_point().provenance);
    println!(
        "  weakest-core undervolt: {:.0} mV, relaxed refresh: {}",
        eco.operating_point().min_offset_mv(),
        eco.operating_point().relaxed_refresh
    );

    // Serve five simulated minutes.
    for _ in 0..300 {
        eco.run(Seconds::new(1.0));
    }

    let report = eco.savings_report();
    println!("\nafter 5 minutes of service:");
    println!("  node power at EOP : {}", report.eop_power);
    println!("  conservative twin : {}", report.nominal_power);
    println!("  energy saved      : {:.1} %", report.energy_saving_fraction * 100.0);
    println!("  availability      : {:.4}", report.availability);
    println!("  crashes           : {}", report.crashes);
    println!("  recharacterizations: {}", report.recharacterizations);

    assert!(report.crashes == 0, "a sound EOP does not crash");
    assert!(report.energy_saving_fraction > 0.0);
    println!("\nok: the node runs beyond its conservative limits, safely.");
}
