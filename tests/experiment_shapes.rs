//! The paper's headline results, asserted as *shapes*: who wins, by
//! roughly what factor, where the crossovers fall. Absolute numbers are
//! model-calibrated; these tests pin the qualitative claims the paper
//! makes in §6 so regressions in any layer surface here.

use uniserver_units::{Celsius, Seconds};

#[test]
fn table2_shape_i5_vs_i7() {
    let (i5, i7) =
        uniserver_bench::experiments::table2_summaries(2018, Seconds::from_millis(200.0));

    // Both parts hide ≥8 % of exploitable voltage margin.
    assert!(i5.crash_min_pct >= 8.0, "i5 crash min {}", i5.crash_min_pct);
    assert!(i7.crash_min_pct >= 6.0, "i7 crash min {}", i7.crash_min_pct);

    // The high-end part spans a wider crash band and varies more
    // core-to-core (Table 2's key contrast).
    assert!(
        i7.crash_max_pct - i7.crash_min_pct > i5.crash_max_pct - i5.crash_min_pct,
        "i7 band {}..{} vs i5 band {}..{}",
        i7.crash_min_pct,
        i7.crash_max_pct,
        i5.crash_min_pct,
        i5.crash_max_pct
    );
    assert!(i7.core_var_max_pct > i5.core_var_max_pct);

    // Only the low-end part exposes cache ECC corrections, ~15 mV above
    // its crash point.
    assert!(i5.cache_ce_max.is_some() && i7.cache_ce_max.is_none());
    let window = i5.mean_ce_window_mv.expect("i5 CE window");
    assert!((5.0..30.0).contains(&window), "CE window {window} mV");
}

#[test]
fn dram_shape_error_free_then_1e9() {
    use uniserver_platform::dram::MemorySystem;
    use uniserver_stress::campaign::RefreshSweep;

    let mut memory = MemorySystem::commodity_server(false);
    let points = RefreshSweep::paper_sweep().run(&mut memory, 2, 2018);

    // 64 ms through ~1.5 s: error-free (possibly a stray bit at 1.5 s).
    for p in points.iter().filter(|p| p.interval <= Seconds::new(1.0)) {
        assert_eq!(p.raw_bit_errors, 0, "errors at {}", p.interval);
    }
    // 5 s: BER of order 1e-9 — inside DRAM targets, far below SECDED's
    // 1e-6 capability.
    let p5 = points.last().expect("sweep has points");
    assert!(p5.ber.value() > 1e-10 && p5.ber.value() < 1e-8, "BER {}", p5.ber);
    assert!(p5.ber.is_correctable_by_secded());

    // Monotone error growth, monotone refresh-power decay.
    for w in points.windows(2) {
        assert!(w[1].raw_bit_errors >= w[0].raw_bit_errors || w[0].raw_bit_errors == 0);
        assert!(w[1].refresh_power <= w[0].refresh_power);
    }
}

#[test]
fn fig4_shape_load_gap_and_ranking() {
    use uniserver_faultinject::SdcCampaign;
    use uniserver_hypervisor::objects::ObjectCategory;
    use uniserver_hypervisor::protect::ProtectionPolicy;

    // Reduced executions keep the test quick; the shape is unaffected.
    let campaign = SdcCampaign { executions_per_object: 2, ..SdcCampaign::paper_campaign() };
    let fig4 = campaign.run(&ProtectionPolicy::none());

    let ratio = fig4.total_with_load() as f64 / fig4.total_without_load().max(1) as f64;
    assert!((6.0..30.0).contains(&ratio), "load gap {ratio} (paper: order of magnitude)");

    let ranking = fig4.sensitivity_ranking();
    let top3: Vec<&str> = ranking[..3].iter().map(|c| c.label()).collect();
    for cluster in ["fs", "kernel", "net"] {
        assert!(top3.contains(&cluster), "{cluster} missing from {top3:?}");
    }
    assert!(
        fig4.row(ObjectCategory::Vdso).fatal_with_load
            < fig4.row(ObjectCategory::Fs).fatal_with_load / 20,
        "vdso must be far less critical than fs"
    );
}

#[test]
fn fig3_shape_footprint_under_7_percent() {
    let series = uniserver_bench::experiments::fig3_series(2018, 36, Seconds::new(10.0));
    assert!(series.len() == 36);
    let mut shares = Vec::new();
    for (at, hv, vms, app) in series {
        let share = hv / (hv + vms + app);
        assert!(share < 0.07, "hypervisor share {share} at t={at}");
        shares.push(share);
    }
    // The share breathes with the application heap (heap growth lowers
    // it; execution restarts raise it) — i.e. the line is not constant.
    let min = shares.iter().cloned().fold(f64::MAX, f64::min);
    let max = shares.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max - min > 0.01, "share should oscillate: {min}..{max}");
}

#[test]
fn table1_shape_droop_dominates() {
    use rand::SeedableRng;
    use uniserver_silicon::droop::DroopModel;
    use uniserver_silicon::guardband;
    use uniserver_silicon::variation::VariationParams;
    use uniserver_silicon::vmin::VminModel;

    let mut rng = rand::rngs::StdRng::seed_from_u64(2018);
    let g = guardband::measure(
        &DroopModel::typical_server_pdn(),
        &VminModel { base_crash_offset: 0.15, ..VminModel::default() },
        &VariationParams::server_28nm(),
        300,
        8,
        &mut rng,
    );
    assert!(g.voltage_droops >= g.vmin || g.voltage_droops.as_percent() > 15.0);
    assert!(g.core_to_core < g.vmin, "core-to-core is the smallest source");
    assert!((25.0..50.0).contains(&g.total().as_percent()), "total {}", g.total());
}

#[test]
fn table3_shape_36x_ee_and_1_15x_tco() {
    use uniserver_tco::factors::EeFactors;
    use uniserver_tco::model::{tco_improvement_energy_only, TcoParams};

    let f = EeFactors::table3();
    assert_eq!(f.overall(), 36.0);
    let tco = tco_improvement_energy_only(&TcoParams::cloud_microserver_rack(), f.overall());
    assert!((1.10..1.20).contains(&tco), "TCO improvement {tco} (paper: 1.15)");
}

#[test]
fn edge_shape_half_budget_in_network() {
    use uniserver_edge::latency::{LatencyBudget, NetworkPath};
    use uniserver_edge::DvfsPoint;

    let budget = LatencyBudget::paper_iot_service();
    assert!((budget.network_share(NetworkPath::cloud_wan()) - 0.5).abs() < 0.05);

    let p = DvfsPoint::paper_edge_point();
    assert!((1.0 - p.energy_scale_fixed_work() - 0.5).abs() < 0.05, "≈50 % less energy");
    assert!((1.0 - p.power_scale() - 0.75).abs() < 0.05, "≈75 % less power");
}

#[test]
fn virus_beats_workloads_but_stays_under_the_guardband() {
    use rand::SeedableRng;
    use uniserver_platform::workload::WorkloadProfile;
    use uniserver_silicon::droop::DroopModel;
    use uniserver_silicon::guardband::GuardbandBreakdown;
    use uniserver_stress::genetic::{evolve, GaConfig};

    let pdn = DroopModel::typical_server_pdn();
    let mut rng = rand::rngs::StdRng::seed_from_u64(2018);
    let virus = evolve(&GaConfig::standard(), &pdn, &mut rng).best_fitness();
    let worst_real = WorkloadProfile::spec2006_subset()
        .iter()
        .map(|w| w.droop_fraction(&pdn))
        .fold(f64::MIN, f64::max);
    let guardband = GuardbandBreakdown::industry_practice().voltage_droops.value();

    // §3.B's ordering: real workloads < virus < adopted guard-band.
    assert!(worst_real < virus, "virus must out-droop real workloads");
    assert!(virus <= guardband, "guard-bands are more pessimistic than the virus");
}

#[test]
fn predictor_quality_holds_on_heldout_chips() {
    use uniserver_predictor::harness::TrainingHarness;
    use uniserver_predictor::{FeatureVector, LogisticModel};

    let train = TrainingHarness::quick().generate(2);
    let heldout = TrainingHarness { seed: 0xFEED, ..TrainingHarness::quick() }.generate(1);
    let model = LogisticModel::fit(&train, 200, 0.7);
    assert!(model.auc(&heldout) > 0.85, "held-out AUC {}", model.auc(&heldout));
    // Risk is monotone in undervolt depth at fixed conditions.
    let p = |off: f64| {
        model.predict_proba(&FeatureVector::from_observables(off, 0.4, Celsius::new(26.0), 0.0))
    };
    assert!(p(0.02) < p(0.08) && p(0.08) < p(0.14));
}
