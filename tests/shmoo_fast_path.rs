//! Equivalence and regression coverage for the coarse→fine shmoo fast
//! path: the two-pass descent must certify the same crash offsets (to
//! within one fine step, statistically) as the paper's single-pass
//! methodology, and the Table 2 summaries it produces are pinned so an
//! accidental change to the deploy-critical sweep shows up immediately.

use proptest::prelude::*;

use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_stress::campaign::{ShmooCampaign, Table2Summary};
use uniserver_units::Seconds;

fn quick(coarse_factor: usize) -> ShmooCampaign {
    ShmooCampaign {
        dwell: Seconds::from_millis(200.0),
        coarse_factor,
        ..ShmooCampaign::paper_methodology()
    }
}

/// Mean crash offset (mV) over every ladder of a campaign run.
fn mean_crash_mv(campaign: &ShmooCampaign, spec: &PartSpec, seed: u64) -> f64 {
    let shmoo = campaign.run(spec, seed, &[WorkloadProfile::spec_bzip2()]);
    let n = shmoo.runs.len() as f64;
    shmoo.runs.iter().map(|r| r.crash_offset_mv).sum::<f64>() / n
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The two-pass (coarse→fine) crash offset agrees with the
    /// single-pass methodology to within one fine step. Individual
    /// ladders carry run-to-run jitter, so the property compares the
    /// node mean over 8 cores × 3 runs — the statistic the margin
    /// pipeline actually consumes.
    #[test]
    fn two_pass_lands_within_one_fine_step_of_single_pass(
        seed in 0u64..4096,
        factor in 2usize..7,
    ) {
        let spec = PartSpec::arm_microserver();
        let single = mean_crash_mv(&quick(1), &spec, seed);
        let two_pass = mean_crash_mv(&quick(factor), &spec, seed);
        let step = quick(1).step_mv;
        prop_assert!(
            (two_pass - single).abs() <= step,
            "seed {seed} factor {factor}: two-pass mean {two_pass:.2} mV vs single {single:.2} mV \
             differs by more than one fine step ({step} mV)"
        );
    }

    /// Every two-pass crash offset sits on the same fine lattice the
    /// single-pass sweep walks (start + k·step), never on an
    /// intermediate coarse-only point.
    #[test]
    fn two_pass_offsets_stay_on_the_fine_lattice(seed in 0u64..4096) {
        let campaign = quick(4);
        let spec = PartSpec::i5_4200u();
        let shmoo = campaign.run(&spec, seed, &[WorkloadProfile::spec_bzip2()]);
        let start = spec.nominal_voltage.as_millivolts() * campaign.start_offset_fraction;
        for r in &shmoo.runs {
            let steps = (r.crash_offset_mv - start) / campaign.step_mv;
            prop_assert!(
                (steps - steps.round()).abs() < 1e-9,
                "core {} run {}: offset {:.3} mV is {steps} steps from the lattice",
                r.core,
                r.run,
                r.crash_offset_mv
            );
        }
    }
}

/// The warm-start fallback: when a later workload crashes far shallower
/// than the ladder's warm entry (the i7's stress spread makes
/// namd→zeusmp exactly that case), the sweep must rescan from the top
/// instead of certifying the bogus warm-entry depth.
#[test]
fn warm_start_falls_back_for_shallow_crashers() {
    let spec = PartSpec::i7_3970x();
    let shmoo = quick(4).run(
        &spec,
        99,
        &[WorkloadProfile::spec_namd(), WorkloadProfile::spec_zeusmp()],
    );
    let mean = |name: &str| {
        let runs: Vec<f64> = shmoo
            .runs
            .iter()
            .filter(|r| &*r.workload == name)
            .map(|r| r.crash_offset_mv)
            .collect();
        runs.iter().sum::<f64>() / runs.len() as f64
    };
    let namd = mean("namd");
    let zeusmp = mean("zeusmp");
    // zeusmp crashes >100 mV shallower than namd on this part; a sweep
    // stuck at its warm entry (namd − 2 coarse steps) would report
    // zeusmp within 40 mV of namd.
    assert!(
        zeusmp < namd - 60.0,
        "zeusmp ({zeusmp:.0} mV) must rescan well above namd's warm entry ({namd:.0} mV)"
    );
}

/// Regression pins for the Table 2 summaries under the coarse→fine
/// default (quick dwell, the in-repo calibration seeds). These are the
/// deploy pipeline's condensed outputs; any drift here means the sweep
/// semantics changed and the bands must be re-justified.
#[test]
fn table2_summaries_are_pinned_under_the_two_pass_default() {
    let campaign =
        ShmooCampaign { dwell: Seconds::from_millis(200.0), ..ShmooCampaign::paper_methodology() };
    let suite = WorkloadProfile::spec2006_subset();

    let i5 = Table2Summary::from_shmoo(&campaign.run(&PartSpec::i5_4200u(), 2018, &suite));
    assert!((i5.crash_min_pct - 11.064770932070).abs() < 1e-9, "i5 crash min {}", i5.crash_min_pct);
    assert!((i5.crash_max_pct - 11.854660347551).abs() < 1e-9, "i5 crash max {}", i5.crash_max_pct);
    assert!((i5.core_var_max_pct - 0.394944707741).abs() < 1e-9, "i5 var max {}", i5.core_var_max_pct);
    assert_eq!(i5.cache_ce_min, Some(14));
    assert_eq!(i5.cache_ce_max, Some(40));
    let window = i5.mean_ce_window_mv.expect("i5 exposes a CE window");
    assert!((window - 18.541666666666668).abs() < 1e-9, "i5 window {window}");

    let i7 = Table2Summary::from_shmoo(&campaign.run(&PartSpec::i7_3970x(), 2012, &suite));
    assert!((i7.crash_min_pct - 6.950956450956).abs() < 1e-9, "i7 crash min {}", i7.crash_min_pct);
    assert!((i7.crash_max_pct - 15.111314611315).abs() < 1e-9, "i7 crash max {}", i7.crash_max_pct);
    assert!((i7.core_var_min_pct - 3.418803418803).abs() < 1e-9, "i7 var min {}", i7.core_var_min_pct);
    assert!((i7.core_var_max_pct - 4.884004884005).abs() < 1e-9, "i7 var max {}", i7.core_var_max_pct);
    assert_eq!(i7.cache_ce_min, None, "the high-end part never exposes CEs");
    assert_eq!(i7.cache_ce_max, None);
    assert_eq!(i7.mean_ce_window_mv, None);
}

/// `single_pass()` really is the legacy methodology: factor 1, same
/// ladder parameters otherwise.
#[test]
fn single_pass_construction_matches_paper_methodology() {
    let single = ShmooCampaign::single_pass();
    let paper = ShmooCampaign::paper_methodology();
    assert_eq!(single.coarse_factor, 1);
    assert_eq!(paper.coarse_factor, 4, "two-pass is the default");
    assert_eq!(single.step_mv, paper.step_mv);
    assert_eq!(single.runs, paper.runs);
    assert_eq!(single.start_offset_fraction, paper.start_offset_fraction);
    assert_eq!(single.max_offset_fraction, paper.max_offset_fraction);
}
