//! Purity contract of the traffic engine: every arrival batch is a pure
//! function of `(stream, seed, tick, node count)`, so the order ticks
//! are drawn in — and the number of worker threads drawing them — can
//! never change a stream. This extends the unit-level
//! `tick_arrivals_are_pure_and_order_independent` to the property
//! level: random seeds, rack sizes, horizons, flat *and* flash-crowd
//! shapes, arbitrary tick permutations, and real thread fan-out all
//! reproduce the sequential reference byte for byte.

use proptest::prelude::*;

use uniserver_cloudmgr::stream::{Arrival, VmStream};
use uniserver_units::Seconds;

/// Renders batches to the byte string the determinism contract compares
/// (Debug covers every field of every arrival, lifetimes included).
fn render(batches: &[Vec<Arrival>]) -> String {
    format!("{batches:?}")
}

/// Draws all `ticks` batches sequentially, in tick order.
fn sequential(stream: &VmStream, seed: u64, ticks: u64, dt: Seconds, nodes: usize) -> Vec<Vec<Arrival>> {
    (0..ticks).map(|t| stream.tick_arrivals_scaled(seed, t, dt, nodes)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generator_is_pure_for_any_tick_order_and_worker_count(
        seed in 0u64..10_000,
        nodes in 1usize..96,
        ticks in 4u64..16,
        flash in 0u64..2,
        rotation in 0u64..16,
        workers in 1usize..6,
    ) {
        let stream = if flash == 1 { VmStream::flash_crowd() } else { VmStream::datacenter() };
        let dt = Seconds::new(5.0);
        let reference = render(&sequential(&stream, seed, ticks, dt, nodes));

        // Purity: drawing the same ticks again reproduces the stream.
        let again = render(&sequential(&stream, seed, ticks, dt, nodes));
        prop_assert_eq!(&reference, &again, "a second pass must reproduce the stream");

        // Order independence: draw the ticks in a permuted order (a
        // seeded rotation, reversed on odd rotations), then sort the
        // batches back by tick index.
        let mut order: Vec<u64> = (0..ticks).collect();
        order.rotate_left((rotation % ticks) as usize);
        if rotation % 2 == 1 {
            order.reverse();
        }
        let mut permuted: Vec<(u64, Vec<Arrival>)> = order
            .iter()
            .map(|&t| (t, stream.tick_arrivals_scaled(seed, t, dt, nodes)))
            .collect();
        permuted.sort_by_key(|&(t, _)| t);
        let batches: Vec<Vec<Arrival>> = permuted.into_iter().map(|(_, b)| b).collect();
        prop_assert_eq!(&reference, &render(&batches), "tick order must not matter");

        // Thread independence: fan the ticks out across `workers` real
        // threads (tick t on worker t % workers), merge by tick index.
        let threaded = std::thread::scope(|scope| {
            let stream = &stream;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        (0..ticks)
                            .filter(|t| (*t as usize) % workers == w)
                            .map(|t| (t, stream.tick_arrivals_scaled(seed, t, dt, nodes)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut merged: Vec<(u64, Vec<Arrival>)> =
                handles.into_iter().flat_map(|h| h.join().expect("worker")).collect();
            merged.sort_by_key(|&(t, _)| t);
            merged.into_iter().map(|(_, b)| b).collect::<Vec<_>>()
        });
        prop_assert_eq!(&reference, &render(&threaded), "worker count must not matter");
    }

    #[test]
    fn capacity_scaling_is_monotone_in_expectation(
        seed in 0u64..1_000,
        nodes in 1usize..64,
    ) {
        // A capacity-scaled stream offered a strictly larger rack must
        // never *lower* its effective rate — the knob the flash-crowd
        // scenario leans on.
        let stream = VmStream::flash_crowd();
        prop_assert!(stream.effective_rate(nodes * 2) >= stream.effective_rate(nodes));
        // And the flat legacy stream must ignore capacity entirely.
        let flat = VmStream::datacenter();
        let a = flat.tick_arrivals_scaled(seed, 3, Seconds::new(5.0), nodes);
        let b = flat.tick_arrivals(seed, 3, Seconds::new(5.0));
        prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
