//! Cross-crate property-based tests: invariants that must hold for
//! *any* input, not just the calibrated operating points.

use proptest::prelude::*;

use uniserver_edge::DvfsPoint;
use uniserver_hypervisor::memdomain::{MemoryMap, Placement};
use uniserver_silicon::retention::RetentionModel;
use uniserver_silicon::vmin::VminModel;
use uniserver_stress::genetic::{BlockKind, VirusGenome};
use uniserver_units::{Bytes, Celsius, Seconds, Volts};

proptest! {
    /// Retention failure probability is monotone in the refresh
    /// interval and in temperature, and always a probability.
    #[test]
    fn retention_monotonicity(
        t1 in 0.01f64..30.0,
        dt in 0.01f64..30.0,
        temp in 0.0f64..90.0,
        dtemp in 0.0f64..30.0,
    ) {
        let m = RetentionModel::ddr3_server();
        let p1 = m.fail_probability(Seconds::new(t1), Celsius::new(temp));
        let p2 = m.fail_probability(Seconds::new(t1 + dt), Celsius::new(temp));
        let p3 = m.fail_probability(Seconds::new(t1), Celsius::new(temp + dtemp));
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!(p2 >= p1, "longer interval can't be safer: {p1} -> {p2}");
        prop_assert!(p3 >= p1, "heat can't improve retention: {p1} -> {p3}");
    }

    /// Crash probability is monotone as supply voltage drops.
    #[test]
    fn crash_probability_monotone_in_voltage(
        crash_mv in 500.0f64..1200.0,
        v_mv in 500.0f64..1400.0,
        dv in 1.0f64..200.0,
    ) {
        let m = VminModel::default();
        let crash = Volts::from_millivolts(crash_mv);
        let hi = m.crash_probability(Volts::from_millivolts(v_mv + dv), crash);
        let lo = m.crash_probability(Volts::from_millivolts(v_mv), crash);
        prop_assert!(lo >= hi, "lower voltage must be riskier: {hi} vs {lo}");
        prop_assert!((0.0..=1.0).contains(&lo));
    }

    /// Mean crash offsets shrink (crash points move towards nominal) as
    /// workload stress rises — §3.B's monotonicity, for any weakness.
    #[test]
    fn stress_monotonicity_for_any_core(
        weakness in -0.08f64..0.08,
        s1 in 0.0f64..1.0,
        ds in 0.0f64..0.5,
    ) {
        use rand::SeedableRng;
        let s2 = (s1 + ds).min(1.0);
        let m = VminModel { run_jitter_sigma: 0.0, ..VminModel::default() };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let quiet = m.crash_offset(weakness, s1, &mut rng);
        let loud = m.crash_offset(weakness, s2, &mut rng);
        prop_assert!(loud <= quiet + 1e-12, "stress must not widen margins: {quiet} -> {loud}");
    }

    /// Any genome's derived excitations stay in [0, 1] and a profile can
    /// always be built from them.
    #[test]
    fn genome_metrics_are_bounded(blocks in proptest::collection::vec(0usize..5, 2..96)) {
        let genome = VirusGenome::new(
            blocks.into_iter().map(|i| BlockKind::ALL[i]).collect(),
        );
        for (name, v) in [
            ("activity", genome.activity()),
            ("didt", genome.didt()),
            ("resonance", genome.resonance()),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{name} = {v}");
        }
        let profile = genome.to_profile("prop");
        prop_assert!(profile.ipc > 0.0);
    }

    /// The memory map never over-commits a domain and frees restore the
    /// exact balance, for any interleaving that respects ownership.
    #[test]
    fn memory_map_balance(sizes in proptest::collection::vec(1u64..4096, 1..40)) {
        let mut map = MemoryMap::new(Bytes::mib(64), Bytes::mib(64));
        let mut live: Vec<Bytes> = Vec::new();
        for s in sizes {
            let size = Bytes::kib(s);
            if map.allocate(Placement::Relaxed, size).is_ok() {
                live.push(size);
            }
            prop_assert!(map.used(Placement::Relaxed) <= Bytes::mib(64));
        }
        for size in live.drain(..) {
            map.free(Placement::Relaxed, size);
        }
        prop_assert_eq!(map.used(Placement::Relaxed), Bytes::ZERO);
    }

    /// When a DVFS point is returned it always meets the deadline, and
    /// it is never returned for impossible budgets.
    #[test]
    fn dvfs_points_meet_their_budget(work_ms in 1.0f64..500.0, budget_ms in 1.0f64..500.0) {
        let work = Seconds::from_millis(work_ms);
        let budget = Seconds::from_millis(budget_ms);
        match DvfsPoint::deepest_within(work, budget) {
            Some(p) => {
                prop_assert!(work <= budget);
                prop_assert!(p.runtime(work).as_millis() <= budget.as_millis() * (1.0 + 1e-9));
                prop_assert!(p.power_scale() <= 1.0 + 1e-9);
            }
            None => prop_assert!(work > budget),
        }
    }

    /// Migration cost invariants: blackout never exceeds total duration
    /// and traffic at least covers the working set.
    #[test]
    fn migration_cost_invariants(dirty in 0.001f64..0.9, bw_gbps in 0.5f64..40.0) {
        use uniserver_cloudmgr::migrate::MigrationModel;
        use uniserver_hypervisor::vm::{Vm, VmConfig, VmId};
        let model = MigrationModel {
            dirty_fraction_per_sec: dirty,
            bandwidth_bytes_per_sec: bw_gbps * 1e9 / 8.0,
            ..MigrationModel::ten_gbe()
        };
        let mut vm = Vm::launch(VmId(0), VmConfig::ldbc_benchmark());
        vm.advance(Seconds::new(45.0));
        let cost = model.cost(&vm);
        prop_assert!(cost.downtime <= cost.duration);
        prop_assert!(cost.traffic >= vm.utilized_footprint());
        prop_assert!(cost.rounds <= model.max_rounds);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// RAIDR binning conserves rows and never beats physics: the binned
    /// refresh rate is positive and below the all-nominal rate.
    #[test]
    fn raidr_conserves_rows(seed in 0u64..1000) {
        use rand::SeedableRng;
        use uniserver_platform::raidr::BinnedModule;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = BinnedModule::profile(
            &RetentionModel::ddr3_server(),
            Bytes::gib(8),
            &[Seconds::from_millis(64.0), Seconds::new(1.0), Seconds::new(4.0)],
            Celsius::new(55.0),
            &mut rng,
        );
        prop_assert_eq!(m.total_rows(), Bytes::gib(8).as_u64() / (64 * 1024));
        let r = m.refresh_rate_vs(Seconds::from_millis(64.0));
        prop_assert!(r > 0.0 && r <= 1.0, "rate ratio {r}");
    }
}
