//! Full-stack integration: the whole UniServer lifecycle across every
//! crate, driven only through public APIs.

use uniserver_core::ecosystem::{DeploymentConfig, Ecosystem};
use uniserver_core::eop::EopPhase;
use uniserver_units::Seconds;

#[test]
fn deploy_serve_recharacterize_loop() {
    let mut eco = Ecosystem::deploy(&DeploymentConfig::quick(), 4242);
    assert_eq!(eco.phase(), EopPhase::Deployed);
    let initial_point = eco.operating_point().clone();
    assert!(initial_point.min_offset_mv() > 0.0, "deployment must reach an EOP");

    for _ in 0..180 {
        eco.run(Seconds::new(1.0));
    }
    let report = eco.savings_report();
    assert_eq!(report.crashes, 0, "EOP operation must be crash-free");
    assert_eq!(report.availability, 1.0);
    assert!(
        report.energy_saving_fraction > 0.03,
        "EOP must save energy, got {:.4}",
        report.energy_saving_fraction
    );

    // The closing of the loop: an explicit re-characterization keeps the
    // system serving and produces a fresh, still-nonzero EOP.
    eco.recharacterize();
    assert_eq!(eco.phase(), EopPhase::Deployed);
    assert!(eco.operating_point().min_offset_mv() > 0.0);
    for _ in 0..30 {
        eco.run(Seconds::new(1.0));
    }
    assert_eq!(eco.savings_report().crashes, 0);
}

#[test]
fn ecosystem_state_is_reproducible() {
    let run = |seed: u64| {
        let mut eco = Ecosystem::deploy(&DeploymentConfig::quick(), seed);
        for _ in 0..60 {
            eco.run(Seconds::new(1.0));
        }
        let r = eco.savings_report();
        (eco.operating_point().clone(), r.eop_energy, r.crashes)
    };
    assert_eq!(run(7), run(7), "same seed, same trajectory");
    let (point_a, ..) = run(7);
    let (point_b, ..) = run(8);
    assert_ne!(point_a, point_b, "different chips get different EOPs");
}

#[test]
fn margins_flow_from_stresslog_through_hypervisor() {
    use uniserver_hypervisor::hypervisor::Hypervisor;
    use uniserver_hypervisor::vm::VmConfig;
    use uniserver_platform::node::ServerNode;
    use uniserver_platform::part::PartSpec;
    use uniserver_platform::msr::DomainId;
    use uniserver_stresslog::{StressLog, StressTargetParams};

    let mut node = ServerNode::new(PartSpec::arm_microserver(), 99);
    let margins = StressLog::new(StressTargetParams::quick()).characterize(&mut node, None);
    let mut hv = Hypervisor::new(node);
    hv.launch_vm(VmConfig::ldbc_benchmark()).expect("guest fits");
    hv.apply_margins(&margins);

    // The MSRs now reflect the margins (clamped to hardware limits).
    for core in 0..hv.node().core_count() {
        let applied = hv.node().msr.voltage_offset_mv(core);
        let advertised = margins.per_core_safe_offset_mv[core].min(250.0);
        assert!((applied - advertised).abs() < 1e-9, "core {core}: {applied} vs {advertised}");
    }
    assert_eq!(hv.node().msr.refresh_interval(DomainId(1)), margins.safe_refresh);
    assert_eq!(
        hv.node().msr.refresh_interval(DomainId(0)),
        Seconds::from_millis(64.0),
        "the reliable domain is pinned at nominal"
    );

    // And the node survives a sustained run there.
    for _ in 0..120 {
        assert!(!hv.tick(Seconds::new(1.0)).node_crashed);
    }
}

#[test]
fn healthlog_feeds_cloud_failure_prediction() {
    use uniserver_cloudmgr::FailurePredictor;
    use uniserver_healthlog::{HealthLog, ThresholdPolicy};
    use uniserver_platform::node::ServerNode;
    use uniserver_platform::part::PartSpec;
    use uniserver_platform::workload::WorkloadProfile;

    // A node driven over its crash point produces a health log whose
    // pattern score collapses the predicted reliability.
    let mut node = ServerNode::new(PartSpec::arm_microserver(), 17);
    let mut health = HealthLog::new(256, ThresholdPolicy::default());
    node.msr.set_voltage_offset_all(node.part().offset_mv(0.22)).unwrap();
    let w = WorkloadProfile::spec_zeusmp();
    loop {
        let report = node.run_interval(&w, Seconds::from_millis(200.0));
        let crashed = report.crash.is_some();
        health.ingest(&report);
        if crashed {
            break;
        }
    }
    let predictor = FailurePredictor::new();
    let r = predictor.reliability(&health);
    assert!(predictor.predicts_failure(r), "crash log must predict failure, got {r}");
}
