//! Determinism contract of the sharded serving tick: on a degraded rack
//! — crash events present — `Cluster::tick_sharded` with any worker
//! count must match the sequential `Cluster::tick`, report for report,
//! metric for metric. Shard boundaries may never leak into energy sums
//! (index-ordered float reduction), crash-event ordering
//! (`(node index, event order)`) or predictor scores.

use proptest::prelude::*;

use uniserver_cloudmgr::cluster::{Cluster, ClusterConfig};
use uniserver_cloudmgr::SlaClass;
use uniserver_hypervisor::vm::VmConfig;
use uniserver_platform::msr::DomainId;
use uniserver_units::Seconds;

fn degraded_cluster(nodes: usize, seed: u64, vms: u64) -> Cluster {
    let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(nodes), seed);
    for i in 0..vms {
        let class = match i % 3 {
            0 => SlaClass::Gold,
            1 => SlaClass::Silver,
            _ => SlaClass::Bronze,
        };
        cluster.submit(VmConfig::idle_guest(), class);
    }
    // Node 0 deep in its crash region (service crash events), node 1's
    // relaxed DRAM noisy with corrected errors (predictor re-scores and
    // proactive migrations) — the degraded rack the reduce must keep
    // deterministic.
    let deep = cluster.nodes()[0].hypervisor.node().part().offset_mv(0.22);
    cluster.nodes_mut()[0].hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();
    if nodes > 1 {
        cluster.nodes_mut()[1]
            .hypervisor
            .node_mut()
            .msr
            .set_refresh_interval(DomainId(1), Seconds::new(10.0))
            .unwrap();
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_tick_equals_sequential_for_any_worker_count(
        seed in 0u64..300,
        nodes in 2usize..7,
        vms in 1u64..8,
        workers in 2usize..6,
    ) {
        let mut seq = degraded_cluster(nodes, seed, vms);
        let mut par = degraded_cluster(nodes, seed, vms);
        let mut crash_events = 0usize;
        for tick in 0..60 {
            let a = seq.tick(Seconds::new(1.0));
            let b = par.tick_sharded(Seconds::new(1.0), workers);
            prop_assert_eq!(&a, &b, "tick {} diverged at {} workers", tick, workers);
            crash_events += a.crashes.len();
            // Stop a few ticks after the first crash: the interesting
            // recovery + backoff behaviour has been compared by then.
            if crash_events > 0 && tick >= 40 {
                break;
            }
        }
        prop_assert!(crash_events > 0,
            "a 22 % undervolt must surface crash events within 60 ticks");
        prop_assert_eq!(seq.fleet_metrics(), par.fleet_metrics());
        prop_assert_eq!(seq.placements(), par.placements());
        for (a, b) in seq.nodes().iter().zip(par.nodes()) {
            prop_assert_eq!(a.reliability, b.reliability, "predictor write-back diverged");
            prop_assert_eq!(a.metrics(), b.metrics());
        }
    }
}
