//! Reproducibility: every experiment is a pure function of its seed.
//! This is what makes the reproduction's numbers auditable — rerunning
//! `repro` on another machine prints byte-identical tables.

use uniserver_units::Seconds;

#[test]
fn repro_reports_are_bit_stable() {
    // The cheap artefacts, rendered twice.
    assert_eq!(uniserver_bench::experiments::table1(9), uniserver_bench::experiments::table1(9));
    assert_eq!(uniserver_bench::experiments::table3(), uniserver_bench::experiments::table3());
    assert_eq!(uniserver_bench::experiments::fig1(9), uniserver_bench::experiments::fig1(9));
    assert_eq!(uniserver_bench::experiments::edge(), uniserver_bench::experiments::edge());
    assert_eq!(
        uniserver_bench::experiments::margins(9),
        uniserver_bench::experiments::margins(9)
    );
}

#[test]
fn seeds_actually_matter() {
    assert_ne!(uniserver_bench::experiments::fig1(1), uniserver_bench::experiments::fig1(2));
    assert_ne!(
        uniserver_bench::experiments::margins(1),
        uniserver_bench::experiments::margins(2)
    );
}

#[test]
fn shmoo_and_injection_campaigns_are_stable() {
    use uniserver_faultinject::SdcCampaign;
    use uniserver_hypervisor::protect::ProtectionPolicy;
    use uniserver_platform::part::PartSpec;
    use uniserver_platform::workload::WorkloadProfile;
    use uniserver_stress::campaign::ShmooCampaign;

    let campaign = ShmooCampaign {
        dwell: Seconds::from_millis(200.0),
        runs: 1,
        ..ShmooCampaign::paper_methodology()
    };
    let w = vec![WorkloadProfile::spec_bzip2()];
    assert_eq!(
        campaign.run(&PartSpec::i5_4200u(), 3, &w),
        campaign.run(&PartSpec::i5_4200u(), 3, &w)
    );

    let sdc = SdcCampaign { executions_per_object: 1, ..SdcCampaign::paper_campaign() };
    assert_eq!(sdc.run(&ProtectionPolicy::none()), sdc.run(&ProtectionPolicy::none()));
}

#[test]
fn cross_crate_seed_isolation() {
    // Consuming randomness in one subsystem must not perturb another:
    // nodes own their RNG streams.
    use uniserver_platform::node::ServerNode;
    use uniserver_platform::part::PartSpec;
    use uniserver_platform::workload::WorkloadProfile;

    let mut a1 = ServerNode::new(PartSpec::arm_microserver(), 4);
    let mut a2 = ServerNode::new(PartSpec::arm_microserver(), 4);
    // Interleave a *different* node's activity between a2's intervals.
    let mut noise = ServerNode::new(PartSpec::i7_3970x(), 5);
    let w = WorkloadProfile::spec_milc();
    for _ in 0..10 {
        let r1 = a1.run_interval(&w, Seconds::from_millis(250.0));
        let _ = noise.run_interval(&w, Seconds::from_millis(250.0));
        let r2 = a2.run_interval(&w, Seconds::from_millis(250.0));
        assert_eq!(r1, r2, "interleaved activity must not change a node's trajectory");
    }
}

#[test]
fn fleet_summary_json_is_bit_stable() {
    // The fleet driver's contract: same seed → byte-identical aggregated
    // JSON, for any worker count (parallelism must not leak into results).
    use uniserver_bench::fleet::{simulate, FleetConfig};

    let config = FleetConfig {
        horizon: Seconds::new(20.0),
        ..FleetConfig::quick(6, 2018)
    };
    let first = simulate(&config).to_json();
    let second = simulate(&config).to_json();
    assert_eq!(first, second, "same config must render identical JSON");

    let serial = simulate(&FleetConfig { threads: 1, ..config.clone() }).to_json();
    let wide = simulate(&FleetConfig { threads: 5, ..config }).to_json();
    assert_eq!(first, serial, "thread count must not change the summary");
    assert_eq!(first, wide, "uneven shards must not change the summary");

    // And the seed genuinely matters.
    let other = simulate(&FleetConfig {
        horizon: Seconds::new(20.0),
        ..FleetConfig::quick(6, 2019)
    })
    .to_json();
    assert_ne!(first, other, "different fleet seeds must differ");
}

#[test]
fn heterogeneous_fleet_json_is_bit_stable_across_threads() {
    // Heterogeneity (part mix, guest mixes, ambient spread) and the
    // shared training cache must not open any schedule dependence: every
    // per-node draw is a pure function of the node seed, and training is
    // a pure function of the part.
    use uniserver_bench::fleet::{simulate, FleetConfig};

    let config = FleetConfig {
        horizon: Seconds::new(15.0),
        threads: 1,
        ..FleetConfig::mixed(10, 2018)
    };
    let serial = simulate(&config).to_json();
    let wide = simulate(&FleetConfig { threads: 7, ..config.clone() }).to_json();
    assert_eq!(serial, wide, "thread count must not change the mixed-fleet summary");
    assert!(serial.contains("\"per_part\":["), "summary carries per-part aggregates");

    let other_seed = simulate(&FleetConfig {
        horizon: Seconds::new(15.0),
        threads: 1,
        ..FleetConfig::mixed(10, 2019)
    })
    .to_json();
    assert_ne!(serial, other_seed, "different fleet seeds must differ");
}
