//! Failure-driven eviction and migration invariants of the cluster
//! layer, plus a pinned crash/migrate regression: whatever a crash does,
//! no placement survives on the crashed node, migrated VMs keep their
//! SLA class and stable placement id, and the books balance.

use proptest::prelude::*;

use uniserver_bench::cluster::summary_to_json;
use uniserver_cloudmgr::cluster::{Cluster, ClusterConfig};
use uniserver_cloudmgr::{NodeId, SlaClass};
use uniserver_hypervisor::vm::VmConfig;
use uniserver_orchestrator::{
    run, AdmissionPolicy, Campaign, ChaosPlan, FailureLifecycle, OrchestratorConfig,
};
use uniserver_units::Seconds;

fn class_of(i: u64) -> SlaClass {
    match i % 3 {
        0 => SlaClass::Gold,
        1 => SlaClass::Silver,
        _ => SlaClass::Bronze,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash recovery is total: every tracked placement leaves the
    /// crashed node, classes and ids are preserved on migration, and
    /// migrated + evicted exactly covers what was there.
    #[test]
    fn no_placement_survives_a_crashed_node(
        seed in 0u64..500,
        nodes in 2usize..6,
        vms in 1u64..12,
        crash_node in 0u32..6,
    ) {
        let mut cluster = Cluster::build(&ClusterConfig::uniserver_rack(nodes), seed);
        let mut placed = Vec::new();
        for i in 0..vms {
            if let Some(p) = cluster.submit(VmConfig::idle_guest(), class_of(seed + i)) {
                placed.push(p);
            }
        }
        let crashed = NodeId(crash_node % nodes as u32);
        let before: Vec<_> =
            cluster.placements_on(crashed).into_iter().cloned().collect();
        let recovery = cluster.recover_from_crash(crashed);

        prop_assert!(cluster.placements_on(crashed).is_empty(),
            "placements survived on {crashed}: {:?}", cluster.placements_on(crashed));
        prop_assert_eq!(recovery.migrated.len() + recovery.evicted.len(), before.len());

        for (moved, cost) in &recovery.migrated {
            prop_assert_ne!(moved.node, crashed);
            prop_assert!(cost.downtime <= cost.duration);
            let original = before.iter().find(|p| p.id == moved.id)
                .expect("migrated placement existed before the crash");
            prop_assert_eq!(original.class, moved.class, "SLA class must survive migration");
            let tracked = cluster.placements().iter().find(|p| p.id == moved.id)
                .expect("migrated placement stays tracked");
            prop_assert_eq!(tracked.node, moved.node);
            // The migrated VM is actually running on its new host.
            let host = cluster.nodes().iter().find(|n| n.id == moved.node).unwrap();
            prop_assert!(host.hypervisor.vm(moved.vm).is_some_and(|vm| vm.is_running()));
        }
        for lost in &recovery.evicted {
            prop_assert!(cluster.placements().iter().all(|p| p.id != lost.id),
                "evicted placement must be untracked");
        }
        let metrics = cluster.fleet_metrics();
        prop_assert_eq!(metrics.crash_migrations, recovery.migrated.len() as u64);
        prop_assert_eq!(metrics.evictions, recovery.evicted.len() as u64);

        // Recovery is idempotent: a second pass finds nothing to do.
        let again = cluster.recover_from_crash(crashed);
        prop_assert!(again.migrated.is_empty() && again.evicted.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under ANY chaos plan — arbitrary background crash rate, rack
    /// failure, cooling window — and any worker count, the serving
    /// loop's books balance (`offered = placed + abandoned`,
    /// `placed = completed + evicted + live_at_end`) and the rendered
    /// summary is byte-identical across thread counts.
    #[test]
    fn chaos_accounting_ties_out_for_any_plan_and_worker_count(
        seed in 0u64..200,
        rate in 0.0f64..40.0,
        rack_tick in 0u64..24,
        blast_eighths in 1u32..5,
        cool_tick in 0u64..24,
    ) {
        let mut config = OrchestratorConfig::smoke(4, seed);
        config.horizon = Seconds::new(120.0);
        config.lifecycle = FailureLifecycle::standard();
        config.admission = AdmissionPolicy::gold_priority();
        config.chaos = Some(ChaosPlan {
            campaigns: vec![
                Campaign::NodeCrashes {
                    rate_per_node_hour: rate,
                    from_tick: 0,
                    until_tick: u64::MAX,
                },
                Campaign::RackFailure {
                    at_tick: rack_tick,
                    blast_fraction: f64::from(blast_eighths) / 8.0,
                },
                Campaign::CoolingFailure {
                    at_tick: cool_tick,
                    duration_ticks: 6,
                    ambient_delta_c: 10.0,
                },
            ],
        });

        config.threads = 1;
        let a = run(&config);
        config.threads = 3;
        let b = run(&config);

        prop_assert_eq!(&a, &b, "worker count leaked into a chaos summary");
        prop_assert_eq!(
            summary_to_json(&a, true),
            summary_to_json(&b, true),
            "rendered chaos summaries must be byte-identical"
        );
        prop_assert_eq!(a.offered, a.placed + a.abandoned);
        prop_assert_eq!(a.placed, a.completed + a.evicted + a.live_at_end);

        let chaos = a.chaos.expect("an active plan must report an outcome");
        // The rack failure always hits at least one online node unless
        // an earlier background crash already took the block offline.
        prop_assert!(chaos.nodes_offlined >= 1 || a.crashes == 0);
        prop_assert!(chaos.downtime_secs >= 0.0);
        prop_assert!(chaos.availability <= 1.0);
        // Per-class books tie out too, sheds included.
        for c in &a.per_class {
            prop_assert!(c.expired_at_horizon <= c.abandoned);
        }
    }
}

/// Pinned regression: a seeded 3-node rack runs a crash/migrate
/// sequence whose outcome is locked. If placement, migration ordering
/// or the part draw ever changes, this fails loudly rather than
/// silently shifting every downstream summary.
#[test]
fn pinned_three_node_crash_migrate_sequence() {
    let mut cluster = Cluster::build(&ClusterConfig::uniserver_rack(3), 2018);

    // Six idle guests round-robin over gold/silver/bronze.
    let placed: Vec<_> = (0..6)
        .filter_map(|i| cluster.submit(VmConfig::idle_guest(), class_of(i)))
        .collect();
    assert_eq!(placed.len(), 6, "all six idle guests fit a 3-node rack");
    let loads: Vec<usize> =
        (0..3).map(|n| cluster.placements_on(NodeId(n)).len()).collect();
    assert_eq!(loads.iter().sum::<usize>(), 6);
    // Pinned: the mixed rack's weigher (free capacity + energy score of
    // the drawn parts) shapes this exact spread for seed 2018.
    assert_eq!(loads, vec![2, 3, 1], "placement spread drifted from the pinned sequence");

    // Serve a few ticks, then crash node 0.
    for _ in 0..5 {
        cluster.tick(Seconds::new(1.0));
    }
    let recovery = cluster.recover_from_crash(NodeId(0));
    assert_eq!(recovery.migrated.len(), 2, "both guests of node 0 migrate");
    assert!(recovery.evicted.is_empty(), "two healthy nodes absorb two idle guests");
    // Gold-first ordering: the migrated list is sorted by class.
    let classes: Vec<SlaClass> = recovery.migrated.iter().map(|(p, _)| p.class).collect();
    let mut sorted = classes.clone();
    sorted.sort();
    assert_eq!(classes, sorted, "higher classes migrate first: {classes:?}");
    assert!(cluster.placements_on(NodeId(0)).is_empty());

    // A second crash on node 1 with fuller neighbours still clears it.
    let recovery = cluster.recover_from_crash(NodeId(1));
    assert!(cluster.placements_on(NodeId(1)).is_empty());
    let m = cluster.fleet_metrics();
    assert_eq!(
        m.crash_migrations + m.evictions,
        2 + (recovery.migrated.len() + recovery.evicted.len()) as u64
    );
    assert_eq!(cluster.placements().len(), 6 - m.evictions as usize);

    // The books and the downtime accounting stay consistent.
    assert!(m.migration_downtime.as_secs() >= 0.0);
    assert_eq!(m.rejected, 0);
}
