//! Failure-injection integration: the error-resilience promises of §4,
//! exercised across platform, hypervisor and cloud layers.

use uniserver_hypervisor::hypervisor::Hypervisor;
use uniserver_hypervisor::vm::{VmConfig, VmId};
use uniserver_platform::dram::MemorySystem;
use uniserver_platform::msr::DomainId;
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_units::Seconds;

fn hv_with_guests(seed: u64, ecc: bool, guests: usize) -> Hypervisor {
    let node = ServerNode::with_memory(
        PartSpec::arm_microserver(),
        MemorySystem::commodity_server(ecc),
        seed,
    );
    let mut hv = Hypervisor::new(node);
    for _ in 0..guests {
        hv.launch_vm(VmConfig::ldbc_benchmark()).expect("guest fits");
    }
    hv
}

#[test]
fn ecc_turns_retention_failures_into_masked_events() {
    // Same degraded refresh; ECC on vs off decides whether guests see
    // corrected noise or VM-killing corruption.
    let mut with_ecc = hv_with_guests(5, true, 2);
    let mut without_ecc = hv_with_guests(5, false, 2);
    for hv in [&mut with_ecc, &mut without_ecc] {
        hv.node_mut().msr.set_refresh_interval(DomainId(1), Seconds::new(8.0)).unwrap();
    }
    let (mut masked_on, mut contained_on) = (0u64, 0u64);
    let (mut masked_off, mut contained_off) = (0u64, 0u64);
    for _ in 0..80 {
        let a = with_ecc.tick(Seconds::new(2.0));
        let b = without_ecc.tick(Seconds::new(2.0));
        masked_on += a.masked_corrected;
        contained_on += a.contained_uncorrected;
        masked_off += b.masked_corrected;
        contained_off += b.contained_uncorrected;
    }
    assert!(masked_on > 0, "ECC masks retention failures");
    assert_eq!(contained_on, 0, "nothing uncorrectable with single-bit failures + ECC");
    assert_eq!(masked_off, 0, "no ECC, no corrections");
    assert!(contained_off > 0, "without ECC the hypervisor must contain UEs");
    // Either way, the machine never goes down.
    assert_eq!(with_ecc.availability(), 1.0);
    assert_eq!(without_ecc.availability(), 1.0);
}

#[test]
fn page_retirement_is_monotone_and_persistent() {
    let mut hv = hv_with_guests(11, false, 1);
    hv.node_mut().msr.set_refresh_interval(DomainId(1), Seconds::new(9.0)).unwrap();
    let mut last = 0;
    for _ in 0..60 {
        hv.tick(Seconds::new(2.0));
        let now = hv.memory_retired_pages();
        assert!(now >= last, "retired pages must never un-retire");
        last = now;
    }
    assert!(last > 0, "the degraded domain must retire pages");
}

#[test]
fn repeated_crashes_accumulate_downtime_but_recover() {
    let mut hv = hv_with_guests(13, true, 1);
    let deep = hv.node().part().offset_mv(0.22);
    let mut crashes = 0;
    for round in 0..4 {
        hv.node_mut().msr.set_voltage_offset_all(deep).unwrap();
        let mut crashed = false;
        for _ in 0..40 {
            if hv.tick(Seconds::from_millis(500.0)).node_crashed {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "round {round}: deep undervolt must crash");
        crashes += 1;
        // After the reboot the node must be serving again at nominal.
        assert!(!hv.tick(Seconds::new(1.0)).node_crashed);
        assert!(hv.vm(VmId(0)).expect("vm exists").is_running());
    }
    assert_eq!(hv.crashes(), crashes);
    assert!(hv.availability() < 1.0);
    assert!(hv.availability() > 0.0, "the node did serve between crashes");
}

#[test]
fn ce_storm_leads_to_bank_isolation_not_downtime() {
    // Undervolt into the cache CE window (but above the crash point):
    // the health pipeline should isolate the noisy bank(s) while the
    // node keeps serving.
    let mut hv = hv_with_guests(21, true, 1);
    // Find a depth that produces CEs without crashing: walk down slowly
    // and stop at the first CE burst.
    let nominal_mv = hv.node().part().nominal_voltage.as_millivolts();
    let mut offset = 0.04 * nominal_mv;
    let mut saw_ce = false;
    'outer: while offset < 0.09 * nominal_mv {
        hv.node_mut().msr.set_voltage_offset_all(offset).unwrap();
        for _ in 0..10 {
            let out = hv.tick(Seconds::from_millis(500.0));
            if out.node_crashed {
                break 'outer;
            }
            if out.masked_corrected > 0 {
                saw_ce = true;
                break 'outer;
            }
        }
        offset += 0.005 * nominal_mv;
    }
    if saw_ce {
        // Keep running at that depth; isolation should kick in and the
        // node must stay up.
        let before = hv.node().cache().active_banks();
        for _ in 0..120 {
            let out = hv.tick(Seconds::from_millis(500.0));
            if out.node_crashed {
                break;
            }
        }
        let after = hv.node().cache().active_banks();
        assert!(
            after <= before,
            "bank isolation can only reduce active banks ({before} -> {after})"
        );
        assert!(hv.masked_corrected_total() > 0);
    }
    // Whether or not this chip exposed a CE window above its crash
    // point, the run must not have destroyed the hypervisor.
    assert!(hv.vm(VmId(0)).expect("vm exists").is_running() || hv.crashes() > 0);
}

#[test]
fn cluster_survives_a_node_death_and_keeps_gold_available() {
    use uniserver_cloudmgr::cluster::{Cluster, ClusterConfig};
    use uniserver_cloudmgr::SlaClass;

    let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 31);
    let gold = cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Gold).expect("placed");

    // Degrade the gold node's DRAM badly.
    let victim = gold.node;
    cluster
        .nodes_mut()
        .iter_mut()
        .find(|n| n.id == victim)
        .unwrap()
        .hypervisor
        .node_mut()
        .msr
        .set_refresh_interval(DomainId(1), Seconds::new(10.0))
        .unwrap();

    for _ in 0..90 {
        cluster.tick(Seconds::new(2.0));
    }
    let m = cluster.fleet_metrics();
    assert!(m.migrations >= 1, "gold must be proactively migrated");
    let gold_now =
        cluster.placements().iter().find(|p| p.class == SlaClass::Gold).expect("tracked");
    assert_ne!(gold_now.node, victim, "gold left the degraded node");
    assert_eq!(m.mean_availability, 1.0, "migration happened before any failure");
}
