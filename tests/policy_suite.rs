//! Determinism and equivalence contract of the placement-policy suite:
//! for **every** shipped policy — the energy/SLA reference, packing
//! consolidation with sleep states, and the reliability-blind ablation —
//! a run's JSON summary must be byte-identical for any worker count,
//! and a cluster placing through the incremental `PlacementIndex` must
//! behave identically to one placing through the linear reference scan
//! under churn (launches, departures, ticks, crashes, recovery and the
//! consolidation manage pass).

use proptest::prelude::*;

use uniserver_bench::cluster::summary_to_json;
use uniserver_cloudmgr::cluster::{Cluster, ClusterConfig};
use uniserver_cloudmgr::{PolicyKind, SlaClass};
use uniserver_hypervisor::vm::VmConfig;
use uniserver_orchestrator::{run_timed, OrchestratorConfig};
use uniserver_platform::msr::DomainId;
use uniserver_units::Seconds;

fn class_of(i: u64) -> SlaClass {
    match i % 3 {
        0 => SlaClass::Gold,
        1 => SlaClass::Silver,
        _ => SlaClass::Bronze,
    }
}

/// A mixed-part rack with one node deep in its crash region and one
/// raining corrected errors, placing through the given policy — the
/// equivalence must hold under crash events, predictor re-scores and
/// recovery, not just on clean racks.
fn policy_rack(nodes: usize, seed: u64, linear: bool, kind: PolicyKind) -> Cluster {
    let config = ClusterConfig::uniserver_rack(nodes);
    let mut cluster = Cluster::build(&config, seed);
    cluster.set_linear_placement(linear);
    cluster.set_policy(kind.build(config.scheduler));
    let deep = cluster.nodes()[0].hypervisor.node().part().offset_mv(0.22).min(250.0);
    cluster.nodes_mut()[0].hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();
    if nodes > 1 {
        cluster.nodes_mut()[1]
            .hypervisor
            .node_mut()
            .msr
            .set_refresh_interval(DomainId(1), Seconds::new(10.0))
            .unwrap();
    }
    cluster
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Whole-run byte stability: every policy's JSON summary is a pure
    /// function of the configuration, whatever the worker count.
    #[test]
    fn every_policy_summary_is_byte_identical_for_any_worker_count(
        seed in 0u64..200,
        nodes in 4usize..10,
        workers in 2usize..6,
    ) {
        for kind in PolicyKind::ALL {
            let mut config = OrchestratorConfig::smoke(nodes, seed);
            config.policy = kind;
            config.threads = 1;
            let (sequential, _) = run_timed(&config);
            config.threads = workers;
            let (sharded, _) = run_timed(&config);
            prop_assert_eq!(
                summary_to_json(&sequential, true),
                summary_to_json(&sharded, true),
                "{} diverged between 1 and {} workers", kind.label(), workers
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Index-vs-linear equivalence per policy: the incremental index is
    /// a pure optimization for every decide path — including the
    /// consolidation policy's worst-feasible packing, sleep/wake
    /// transitions and the periodic manage pass.
    #[test]
    fn indexed_placement_equals_linear_scan_for_every_policy(
        seed in 0u64..500,
        nodes in 2usize..8,
        arrivals_per_round in 1u64..4,
        workers in 1usize..5,
    ) {
        for kind in PolicyKind::ALL {
            let mut indexed = policy_rack(nodes, seed, false, kind);
            let mut linear = policy_rack(nodes, seed, true, kind);

            let mut submitted = 0u64;
            for round in 0..40u64 {
                for _ in 0..arrivals_per_round {
                    let class = class_of(submitted);
                    let a = indexed.submit(VmConfig::idle_guest(), class);
                    let b = linear.submit(VmConfig::idle_guest(), class);
                    prop_assert_eq!(
                        &a, &b,
                        "{} submit diverged at round {}", kind.label(), round
                    );
                    submitted += 1;
                }
                if round % 3 == 2 {
                    if let Some(p) = linear.placements().first().cloned() {
                        prop_assert_eq!(
                            indexed.terminate_by_id(p.id),
                            linear.terminate_by_id(p.id),
                            "{} terminate diverged at round {}", kind.label(), round
                        );
                    }
                }
                // The manage pass: parks, wakes and consolidation
                // drains must route identically through both paths (a
                // free no-op for the non-managing policies).
                indexed.manage(round, seed);
                linear.manage(round, seed);
                prop_assert_eq!(
                    indexed.power_stats(),
                    linear.power_stats(),
                    "{} power accounting diverged at round {}", kind.label(), round
                );

                let ra = indexed.tick_sharded(Seconds::new(2.0), workers);
                let rb = linear.tick(Seconds::new(2.0));
                prop_assert_eq!(&ra, &rb, "{} tick diverged at round {}", kind.label(), round);
                let mut recovered = Vec::new();
                for (node, _) in &ra.crashes {
                    if !recovered.contains(node) {
                        recovered.push(*node);
                        let xa = indexed.recover_from_crash(*node);
                        let xb = linear.recover_from_crash(*node);
                        prop_assert_eq!(
                            &xa.migrated, &xb.migrated,
                            "{} recovery diverged at round {}", kind.label(), round
                        );
                        prop_assert_eq!(
                            &xa.evicted, &xb.evicted,
                            "{} evictions diverged at round {}", kind.label(), round
                        );
                    }
                }
                prop_assert_eq!(
                    indexed.placements(),
                    linear.placements(),
                    "{} placements diverged at round {}", kind.label(), round
                );
                prop_assert_eq!(
                    indexed.asleep_count(),
                    linear.asleep_count(),
                    "{} sleep states diverged at round {}", kind.label(), round
                );
                prop_assert_eq!(
                    indexed.fleet_metrics(),
                    linear.fleet_metrics(),
                    "{} fleet metrics diverged at round {}", kind.label(), round
                );
            }
            prop_assert!(submitted > 0);
        }
    }
}

/// Pinned regression for the ablation (the quarantine-worthy-node case
/// at whole-run scale): the blind policy must place *more* and crash
/// *no less* than the reference on the same degraded scenario — it
/// cannot see the predictor signal the reference filters on.
#[test]
fn blind_runs_differ_from_the_reference_on_the_same_seed() {
    let mut config = OrchestratorConfig::smoke(6, 2018);
    let (reference, _) = run_timed(&config);
    config.policy = PolicyKind::ReliabilityBlind;
    let (blind, _) = run_timed(&config);
    assert_eq!(reference.offered, blind.offered, "the policy must not change the stream");
    assert!(
        summary_to_json(&reference, false) != summary_to_json(&blind, false),
        "ignoring reliability must change the run"
    );
    assert_eq!(blind.policy.as_deref(), Some("reliability-blind"));
    assert!(blind.power.is_none(), "the ablation manages no power");
}
