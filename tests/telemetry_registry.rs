//! Determinism contract of the telemetry metrics registry: sharded
//! accumulation merged in shard order must be byte-identical to
//! sequential accumulation, for any worker count and any chunking of
//! the event stream — and because every fold (counter add, gauge
//! min/max, histogram bucket counts) is commutative and associative,
//! merging the shard registries in *any* order must render the same
//! JSON. This is the property the orchestrator leans on when
//! `Cluster::tick_pooled` accumulates per-shard registries and the
//! reduce merges them in node-index order.

use proptest::prelude::*;

use uniserver_telemetry::MetricsRegistry;

/// Counter/gauge/histogram names the generated ops draw from.
const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];

/// One generated telemetry operation, decoded from two u64 draws (the
/// compat proptest has no `prop_oneof`, so the variant rides in the
/// first draw).
fn apply(registry: &mut MetricsRegistry, op: u64, value: u64) {
    let name = NAMES[(op / 4) as usize % NAMES.len()];
    match op % 4 {
        0 => registry.inc(name),
        1 => registry.add(name, value),
        2 => registry.observe(name, value),
        _ => registry.record(name, value),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sharded_merge_is_byte_identical_to_sequential(
        ops in proptest::collection::vec(0u64..1024, 1..200),
        values in proptest::collection::vec(0u64..u64::MAX, 1..200),
        workers in 1usize..7,
    ) {
        let events: Vec<(u64, u64)> = ops
            .iter()
            .zip(values.iter().cycle())
            .map(|(&op, &v)| (op, v))
            .collect();

        // Sequential reference: one registry, event order.
        let mut sequential = MetricsRegistry::new();
        for &(op, v) in &events {
            apply(&mut sequential, op, v);
        }

        // Sharded: contiguous chunks, one registry per worker, merged
        // in shard (index) order — the tick_pooled reduce shape.
        let chunk = events.len().div_ceil(workers);
        let shards: Vec<MetricsRegistry> = events
            .chunks(chunk)
            .map(|evs| {
                let mut m = MetricsRegistry::new();
                for &(op, v) in evs {
                    apply(&mut m, op, v);
                }
                m
            })
            .collect();
        let mut merged = MetricsRegistry::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(
            sequential.to_json(),
            merged.to_json(),
            "shard merge diverged at {} workers over {} events",
            workers,
            events.len()
        );

        // Merge order must not matter either: reversing the shards is
        // the adversarial permutation (every pair swapped).
        let mut reversed = MetricsRegistry::new();
        for shard in shards.iter().rev() {
            reversed.merge(shard);
        }
        prop_assert_eq!(
            merged.to_json(),
            reversed.to_json(),
            "merge must be commutative"
        );
    }

    #[test]
    fn histogram_stats_survive_any_event_permutation(
        values in proptest::collection::vec(0u64..u64::MAX, 2..64),
        rotation in 1usize..63,
    ) {
        let mut in_order = MetricsRegistry::new();
        for &v in &values {
            in_order.record("h", v);
        }
        // A rotation composed with a reversal reaches enough of the
        // permutation group to catch order-dependent folds (sum, min,
        // max, bucket counts are all order-free).
        let k = rotation % values.len();
        let mut permuted = MetricsRegistry::new();
        for &v in values[k..].iter().chain(values[..k].iter()).rev() {
            permuted.record("h", v);
        }
        prop_assert_eq!(in_order.to_json(), permuted.to_json());
        let h = in_order.histogram("h").expect("histogram recorded");
        prop_assert_eq!(h.count, values.len() as u64);
        prop_assert_eq!(h.min, *values.iter().min().unwrap());
        prop_assert_eq!(h.max, *values.iter().max().unwrap());
    }
}
