//! Contracts of the gray-failure subsystem: a gray-profile run's JSON
//! summary is a pure function of its configuration whatever the worker
//! count, and the health watchdog's hysteresis never readmits a node
//! that has not produced a full probation streak of clean probes —
//! whatever probe sequence the node throws at it.

use proptest::prelude::*;

use uniserver_bench::cluster::summary_to_json;
use uniserver_faultinject::chaos::ChaosPlan;
use uniserver_orchestrator::watchdog::Verdict;
use uniserver_orchestrator::{run_timed, OrchestratorConfig, Watchdog, WatchdogConfig};
use uniserver_units::Seconds;

/// A CI-sized gray scenario: the full gray headline (gray onsets,
/// watchdog, power cap) shrunk to a 10-minute horizon. The chaos plan
/// is re-derived for the shortened horizon so the brownout window
/// still lands inside the run.
fn gray_smoke(nodes: usize, seed: u64) -> OrchestratorConfig {
    let mut config = OrchestratorConfig::gray_profile(nodes, seed);
    config.horizon = Seconds::new(600.0);
    #[allow(clippy::cast_possible_truncation)]
    let width = nodes as u32;
    config.chaos = Some(ChaosPlan::gray_brownout(config.ticks(), width));
    config
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Whole-run byte stability under gray failure: quarantines,
    /// budgeted drains, readmissions and power-cap sheds must all land
    /// identically whatever the worker count.
    #[test]
    fn gray_summary_is_byte_identical_for_any_worker_count(
        seed in 0u64..200,
        nodes in 6usize..12,
        workers in 2usize..6,
    ) {
        let mut config = gray_smoke(nodes, seed);
        config.threads = 1;
        let (sequential, _) = run_timed(&config);
        config.threads = workers;
        let (sharded, _) = run_timed(&config);
        prop_assert!(sequential.gray.is_some(), "gray profile must report a gray outcome");
        prop_assert_eq!(
            summary_to_json(&sequential, true),
            summary_to_json(&sharded, true),
            "gray run diverged between 1 and {} workers", workers
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hysteresis safety: whatever the probe sequence, `Readmit` is only
    /// ever issued after `probation_passes` **consecutive** clean probes
    /// while quarantined — a still-failing (or flapping) node can never
    /// sneak back into the placement pool.
    #[test]
    fn watchdog_never_readmits_without_a_full_clean_streak(
        probes in proptest::collection::vec(0u8..2, 1..200),
    ) {
        let config = WatchdogConfig::standard();
        let mut dog = Watchdog::new(config);
        dog.begin_watch(7);

        let mut clean_streak = 0u32;
        let mut quarantined = false;
        for (i, &draw) in probes.iter().enumerate() {
            let failed = draw == 1;
            let verdict = dog.observe(7, failed);
            if quarantined {
                clean_streak = if failed { 0 } else { clean_streak + 1 };
            }
            match verdict {
                Verdict::Readmit => {
                    prop_assert!(quarantined, "readmit without quarantine at probe {}", i);
                    prop_assert!(!failed, "readmitted on a failing probe at probe {}", i);
                    prop_assert!(
                        clean_streak >= config.probation_passes,
                        "readmitted after only {} clean probes (need {}) at probe {}",
                        clean_streak, config.probation_passes, i
                    );
                    quarantined = false;
                    clean_streak = 0;
                }
                Verdict::Quarantine => {
                    prop_assert!(!quarantined, "double quarantine at probe {}", i);
                    quarantined = true;
                    clean_streak = 0;
                }
                Verdict::None => {}
            }
            prop_assert_eq!(
                dog.in_quarantine(7),
                quarantined,
                "quarantine state diverged from the model at probe {}", i
            );
        }
    }
}
