//! Equivalence contract of the incremental placement index: for any
//! rack, SLA-class mix, worker count and churn sequence (launches,
//! departures, ticks, crashes and failure-driven recovery), a cluster
//! placing through `PlacementIndex` must behave **identically** to one
//! placing through the reference `Scheduler::place_linear` scan —
//! placement for placement, metric for metric, reliability for
//! reliability. The index is a pure optimization; any divergence is a
//! missed invalidation.

use proptest::prelude::*;

use uniserver_cloudmgr::cluster::{Cluster, ClusterConfig};
use uniserver_cloudmgr::SlaClass;
use uniserver_hypervisor::vm::VmConfig;
use uniserver_platform::msr::DomainId;
use uniserver_units::Seconds;

fn class_of(i: u64) -> SlaClass {
    match i % 3 {
        0 => SlaClass::Gold,
        1 => SlaClass::Silver,
        _ => SlaClass::Bronze,
    }
}

/// A mixed-part rack with one node deep in its crash region and one
/// raining corrected errors — placement under crash events, predictor
/// re-scores, proactive migrations and recovery, not just clean racks.
fn degraded_rack(nodes: usize, seed: u64, linear: bool) -> Cluster {
    let mut cluster = Cluster::build(&ClusterConfig::uniserver_rack(nodes), seed);
    cluster.set_linear_placement(linear);
    // Clamped to the MSR's 250 mV limit: the mixed rack can draw an i7
    // whose nominal voltage puts a 22 % offset past it.
    let deep = cluster.nodes()[0].hypervisor.node().part().offset_mv(0.22).min(250.0);
    cluster.nodes_mut()[0].hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();
    if nodes > 1 {
        cluster.nodes_mut()[1]
            .hypervisor
            .node_mut()
            .msr
            .set_refresh_interval(DomainId(1), Seconds::new(10.0))
            .unwrap();
    }
    cluster
}

fn assert_clusters_match(indexed: &Cluster, linear: &Cluster, round: usize) {
    assert_eq!(indexed.placements(), linear.placements(), "placements diverged at round {round}");
    assert_eq!(
        indexed.fleet_metrics(),
        linear.fleet_metrics(),
        "fleet metrics diverged at round {round}"
    );
    for (a, b) in indexed.nodes().iter().zip(linear.nodes()) {
        assert_eq!(a.reliability, b.reliability, "reliability diverged at round {round}");
        assert_eq!(a.metrics(), b.metrics(), "node metrics diverged at round {round}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn indexed_placement_equals_linear_scan_under_churn(
        seed in 0u64..500,
        nodes in 2usize..8,
        arrivals_per_round in 1u64..4,
        workers in 1usize..5,
    ) {
        let mut indexed = degraded_rack(nodes, seed, false);
        let mut linear = degraded_rack(nodes, seed, true);

        let mut submitted = 0u64;
        for round in 0..50 {
            // Churn: a small arrival batch, mixed classes.
            for _ in 0..arrivals_per_round {
                let class = class_of(submitted);
                let a = indexed.submit(VmConfig::idle_guest(), class);
                let b = linear.submit(VmConfig::idle_guest(), class);
                prop_assert_eq!(&a, &b, "submit diverged at round {}", round);
                submitted += 1;
            }
            // Departures: every third round, terminate the oldest
            // tracked placement (same id in both by induction).
            if round % 3 == 2 {
                if let Some(p) = linear.placements().first().cloned() {
                    prop_assert_eq!(
                        indexed.terminate_by_id(p.id),
                        linear.terminate_by_id(p.id),
                        "terminate diverged at round {}", round
                    );
                }
            }
            // Advance: the indexed cluster shards across workers, the
            // linear one ticks sequentially — placement routing and
            // worker count must both be invisible.
            let ra = indexed.tick_sharded(Seconds::new(2.0), workers);
            let rb = linear.tick(Seconds::new(2.0));
            prop_assert_eq!(&ra, &rb, "tick report diverged at round {}", round);
            // Failure-driven recovery, once per crashed node.
            let mut recovered = Vec::new();
            for (node, _) in &ra.crashes {
                if !recovered.contains(node) {
                    recovered.push(*node);
                    let xa = indexed.recover_from_crash(*node);
                    let xb = linear.recover_from_crash(*node);
                    prop_assert_eq!(&xa.migrated, &xb.migrated, "recovery diverged at round {}", round);
                    prop_assert_eq!(&xa.evicted, &xb.evicted, "evictions diverged at round {}", round);
                }
            }
            assert_clusters_match(&indexed, &linear, round);
        }
        prop_assert!(submitted > 0);
    }
}

/// Pinned non-property regression: a rack of *identical-score* fresh
/// nodes must fill in the same order through both paths (the tie-break
/// case the latent `max_by` bug got wrong for re-ordered scans).
#[test]
fn tied_racks_fill_in_the_same_order() {
    let config = ClusterConfig::small_edge_site(4);
    let mut indexed = Cluster::build(&config, 7);
    let mut linear = Cluster::build(&config, 7);
    linear.set_linear_placement(true);
    for i in 0..12 {
        let a = indexed.submit(VmConfig::idle_guest(), class_of(i));
        let b = linear.submit(VmConfig::idle_guest(), class_of(i));
        assert_eq!(a, b, "submission {i} diverged");
        assert!(a.is_some(), "submission {i} must place");
    }
    // First pick on an all-tied rack: the highest NodeId, explicitly.
    assert_eq!(indexed.placements()[0].node.0, 3);
    assert_eq!(indexed.placements(), linear.placements());
}
