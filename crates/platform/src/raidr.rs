//! RAIDR-style retention-aware refresh binning (paper ref [26],
//! Liu et al., ISCA'12) — the DESIGN.md §7 extension.
//!
//! UniServer's §6.B experiment relaxes the refresh of a whole domain to
//! one interval bounded by its *weakest* cell. RAIDR instead profiles
//! rows into retention bins and refreshes each bin at its own rate, so
//! one weak row no longer taxes the other million. This module
//! implements the binning policy over the same calibrated retention
//! model, giving the reproduction an ablation: flat relaxation (the
//! paper's §6.B) vs retention-aware binning (its ref [26]).

use rand::Rng;
use serde::{Deserialize, Serialize};
use uniserver_units::{Bytes, Celsius, Seconds};

use uniserver_silicon::retention::RetentionModel;
use uniserver_silicon::rng::poisson;

/// Rows per 8 GB module (64 KiB rows, the usual DDR3 geometry).
const ROW_BYTES: u64 = 64 * 1024;

/// One refresh bin: rows whose weakest cell retains at least
/// `interval`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefreshBin {
    /// Refresh interval applied to the bin.
    pub interval: Seconds,
    /// Number of rows assigned to the bin.
    pub rows: u64,
}

/// A profiled, binned module.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinnedModule {
    /// Bins, ascending by interval; the last bin holds the strong bulk.
    pub bins: Vec<RefreshBin>,
    /// Module capacity.
    pub capacity: Bytes,
    /// Profiling temperature (bins are only valid up to this + guard).
    pub profiled_at: Celsius,
}

impl BinnedModule {
    /// Profiles a module into retention bins at the given temperature.
    ///
    /// For each candidate interval (shortest first), rows whose weakest
    /// cell would leak within the *next* candidate are pinned to it.
    /// Row weakest-cell sampling uses the calibrated per-bit retention
    /// tail: a row of `b` bits has a weak cell for interval `t` with
    /// probability `1 - (1 - p(t))^b ≈ b·p(t)`.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty or not strictly ascending.
    pub fn profile<R: Rng + ?Sized>(
        retention: &RetentionModel,
        capacity: Bytes,
        candidates: &[Seconds],
        temp: Celsius,
        rng: &mut R,
    ) -> Self {
        assert!(!candidates.is_empty(), "need candidate intervals");
        assert!(
            candidates.windows(2).all(|w| w[0] < w[1]),
            "candidate intervals must be strictly ascending"
        );
        let total_rows = capacity.as_u64() / ROW_BYTES;
        let row_bits = ROW_BYTES * 8;
        let mut remaining = total_rows;
        let mut bins = Vec::with_capacity(candidates.len());

        // Rows failing *within* candidate k+1 but not within candidate k
        // land in bin k.
        for (i, &interval) in candidates.iter().enumerate() {
            if i + 1 == candidates.len() {
                bins.push(RefreshBin { interval, rows: remaining });
                break;
            }
            let p_next = retention.fail_probability(candidates[i + 1], temp);
            let p_this = retention.fail_probability(interval, temp);
            // Expected rows whose weakest cell fails in (this, next].
            let p_row = ((p_next - p_this).max(0.0) * row_bits as f64).min(1.0);
            let expected = p_row * remaining as f64;
            let weak_rows = poisson(rng, expected).min(remaining);
            bins.push(RefreshBin { interval, rows: weak_rows });
            remaining -= weak_rows;
        }
        BinnedModule { bins, capacity, profiled_at: temp }
    }

    /// Total rows across bins.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.bins.iter().map(|b| b.rows).sum()
    }

    /// Refresh *operations per second* of the binned schedule, relative
    /// to refreshing everything at `baseline` (1.0 = no change; 0.05 =
    /// 20× fewer refresh operations).
    ///
    /// # Panics
    ///
    /// Panics if the module has no rows.
    #[must_use]
    pub fn refresh_rate_vs(&self, baseline: Seconds) -> f64 {
        let total = self.total_rows();
        assert!(total > 0, "empty module");
        let binned: f64 =
            self.bins.iter().map(|b| b.rows as f64 / b.interval.as_secs()).sum();
        let flat = total as f64 / baseline.as_secs();
        binned / flat
    }

    /// The interval protecting the weakest *populated* bin — what a flat
    /// (paper §6.B) policy would have to use for the whole module.
    #[must_use]
    pub fn flat_equivalent_interval(&self) -> Seconds {
        self.bins
            .iter()
            .find(|b| b.rows > 0)
            .map(|b| b.interval)
            .unwrap_or_else(|| Seconds::from_millis(64.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn candidates() -> Vec<Seconds> {
        vec![
            Seconds::from_millis(64.0),
            Seconds::new(1.0),
            Seconds::new(2.0),
            Seconds::new(4.0),
            Seconds::new(8.0),
        ]
    }

    fn profiled(seed: u64) -> BinnedModule {
        let mut rng = StdRng::seed_from_u64(seed);
        BinnedModule::profile(
            &RetentionModel::ddr3_server(),
            Bytes::gib(8),
            &candidates(),
            Celsius::new(45.0),
            &mut rng,
        )
    }

    #[test]
    fn bins_conserve_rows() {
        let m = profiled(1);
        assert_eq!(m.total_rows(), Bytes::gib(8).as_u64() / ROW_BYTES);
        assert_eq!(m.bins.len(), 5);
    }

    #[test]
    fn bulk_lands_in_the_longest_bin() {
        let m = profiled(1);
        let last = m.bins.last().unwrap();
        assert!(
            last.rows as f64 / m.total_rows() as f64 > 0.98,
            "almost all rows retain past 8 s at 45 °C; got {}",
            last.rows
        );
        // And the 64 ms bin is empty — no cell in a single module is
        // that weak under the calibrated tail.
        assert_eq!(m.bins[0].rows, 0);
    }

    #[test]
    fn binning_beats_flat_relaxation() {
        let m = profiled(2);
        // Flat policy must protect the weakest populated bin; RAIDR
        // refreshes only that bin fast.
        let flat = m.flat_equivalent_interval();
        let ratio = m.refresh_rate_vs(flat);
        assert!(
            ratio < 0.6,
            "binned schedule should cut refresh operations well below the flat policy (got {ratio})"
        );
        // And against the *nominal* 64 ms baseline the cut is enormous.
        assert!(m.refresh_rate_vs(Seconds::from_millis(64.0)) < 0.02);
    }

    #[test]
    fn hotter_profiling_moves_rows_into_faster_bins() {
        let mut rng = StdRng::seed_from_u64(3);
        let cool = BinnedModule::profile(
            &RetentionModel::ddr3_server(),
            Bytes::gib(8),
            &candidates(),
            Celsius::new(45.0),
            &mut rng,
        );
        let hot = BinnedModule::profile(
            &RetentionModel::ddr3_server(),
            Bytes::gib(8),
            &candidates(),
            Celsius::new(75.0),
            &mut rng,
        );
        let weak_rows = |m: &BinnedModule| -> u64 {
            m.bins.iter().take(m.bins.len() - 1).map(|b| b.rows).sum()
        };
        assert!(weak_rows(&hot) > weak_rows(&cool), "heat must populate the fast bins");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_candidates_panic() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = BinnedModule::profile(
            &RetentionModel::ddr3_server(),
            Bytes::gib(8),
            &[Seconds::new(2.0), Seconds::new(1.0)],
            Celsius::new(45.0),
            &mut rng,
        );
    }
}
