//! The simulated server platform for the UniServer reproduction.
//!
//! This crate substitutes the paper's physical testbeds (two Intel x86-64
//! parts, a commodity server with 8 GB DDR3 DIMMs, and the target 64-bit
//! ARM Server-on-Chip) with a behavioural node model. Everything the
//! software stack observes on real hardware is produced here through the
//! same interfaces hardware would offer:
//!
//! * [`msr`] — model-specific registers for voltage offsets and refresh
//!   intervals (the paper's undervolting and refresh-relaxation knobs);
//! * [`mca`] — machine-check records for corrected/uncorrected errors;
//! * [`sensors`] — temperature/voltage/power sensors with realistic noise;
//! * [`pmu`] — performance counters;
//! * [`workload`] — SPEC CPU2006-like workload profiles plus stress
//!   excitations;
//! * [`part`] — part specifications calibrated to the paper's two Intel
//!   processors and the ARM micro-server target;
//! * [`cache`] — ECC-protected cache banks with undervolting behaviour;
//! * [`dram`] — DIMMs, refresh domains and retention-error generation;
//! * [`node`] — the assembled server node with a `run_interval` loop.
//!
//! # Examples
//!
//! ```
//! use uniserver_platform::node::ServerNode;
//! use uniserver_platform::part::PartSpec;
//! use uniserver_platform::workload::WorkloadProfile;
//! use uniserver_units::Seconds;
//!
//! let mut node = ServerNode::new(PartSpec::arm_microserver(), 42);
//! let report = node.run_interval(&WorkloadProfile::spec_bzip2(), Seconds::new(1.0));
//! assert!(report.crash.is_none(), "nominal operation must be stable");
//! assert!(report.energy.as_joules() > 0.0);
//! ```

pub mod cache;
pub mod dram;
pub mod mca;
pub mod msr;
pub mod node;
pub mod part;
pub mod pmu;
pub mod raidr;
pub mod sensors;
pub mod workload;

pub use node::{IntervalReport, ServerNode};
pub use part::PartSpec;
pub use workload::WorkloadProfile;
