//! Part specifications.
//!
//! A [`PartSpec`] bundles everything manufactured into a processor model:
//! nominal operating point, topology, power model and the calibrated
//! variability/Vmin models. Three parts are provided:
//!
//! * [`PartSpec::i5_4200u`] — the paper's low-end part (2 cores,
//!   0.844 V @ 2.6 GHz) whose caches *do* expose ECC corrections under
//!   undervolting;
//! * [`PartSpec::i7_3970x`] — the high-end part (6 cores, 1.365 V @
//!   4.0 GHz) that crashes before cache errors become visible;
//! * [`PartSpec::arm_microserver`] — the UniServer target, a 64-bit ARM
//!   Server-on-Chip used by the ecosystem experiments.
//!
//! Calibration targets are Table 2 of the paper; the numbers regenerate
//! through `uniserver-stress`'s shmoo campaign, not by transcription.

use serde::{Deserialize, Serialize};
use uniserver_units::{Bytes, Megahertz, Volts};

use uniserver_silicon::droop::DroopModel;
use uniserver_silicon::power::CorePowerModel;
use uniserver_silicon::variation::VariationParams;
use uniserver_silicon::vmin::VminModel;

/// Static description of a processor part.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartSpec {
    /// Marketing name of the part.
    pub name: String,
    /// Number of physical cores.
    pub cores: usize,
    /// Number of last-level-cache banks.
    pub cache_banks: usize,
    /// Nominal supply voltage (VID at the nominal P-state).
    pub nominal_voltage: Volts,
    /// Nominal (maximum non-turbo) frequency.
    pub nominal_frequency: Megahertz,
    /// Last-level cache capacity.
    pub llc_capacity: Bytes,
    /// Per-core power model.
    pub power: CorePowerModel,
    /// Power-delivery-network droop model.
    pub pdn: DroopModel,
    /// Crash-point / cache-onset model.
    pub vmin: VminModel,
    /// Manufacturing variation of the part's process node.
    pub variation: VariationParams,
}

impl PartSpec {
    /// The paper's low-end part: Intel Core i5-4200U-like. Nominal
    /// 0.844 V @ 2.6 GHz, two cores. Crash offsets land in the
    /// −10 %…−11.2 % band, core-to-core variation stays within 2.7 %, and
    /// cache SECDED corrections appear ≈15 mV above the crash point
    /// (1–17 CEs per run).
    #[must_use]
    pub fn i5_4200u() -> Self {
        PartSpec {
            name: "Intel Core i5-4200U (modeled)".into(),
            cores: 2,
            cache_banks: 4,
            nominal_voltage: Volts::new(0.844),
            nominal_frequency: Megahertz::from_ghz(2.6),
            llc_capacity: Bytes::mib(3),
            power: CorePowerModel::mobile_core(),
            pdn: DroopModel::typical_server_pdn(),
            vmin: VminModel {
                base_crash_offset: 0.112,
                stress_gain: 0.016,
                core_gain: 0.55,
                stress_core_interaction: 0.5,
                run_jitter_sigma: 0.0012,
                cache_onset_above_crash_mv: 15.0,
                cache_onset_sigma_mv: 2.5,
                cache_ce_rate_per_mv: 0.07,
                crash_softness_mv: 1.5,
            },
            variation: VariationParams {
                chip_speed_sigma: 0.04,
                core_speed_sigma: 0.012,
                chip_vmin_sigma: 0.02,
                core_vmin_sigma: 0.009,
                bank_vmin_sigma: 0.008,
                leakage_sigma_ln: 0.22,
                speed_leakage_correlation: 0.6,
            },
        }
    }

    /// The paper's high-end part: Intel Core i7-3970X-like. Nominal
    /// 1.365 V @ 4.0 GHz, six cores. Crash offsets span −8.4 %…−15.4 %
    /// across benchmarks, core-to-core variation 3.7 %…8 %, and the
    /// caches never surface ECC corrections before the core crashes.
    #[must_use]
    pub fn i7_3970x() -> Self {
        PartSpec {
            name: "Intel Core i7-3970X (modeled)".into(),
            cores: 6,
            cache_banks: 12,
            nominal_voltage: Volts::new(1.365),
            nominal_frequency: Megahertz::from_ghz(4.0),
            llc_capacity: Bytes::mib(15),
            power: CorePowerModel::desktop_core(),
            pdn: DroopModel::typical_server_pdn(),
            vmin: VminModel {
                base_crash_offset: 0.205,
                stress_gain: 0.20,
                core_gain: 1.15,
                stress_core_interaction: 0.8,
                run_jitter_sigma: 0.002,
                // Far negative: cache banks keep working well below the
                // core's crash voltage, so CEs are never observable on
                // this part even with sweep overshoot.
                cache_onset_above_crash_mv: -60.0,
                cache_onset_sigma_mv: 4.0,
                cache_ce_rate_per_mv: 0.35,
                crash_softness_mv: 2.0,
            },
            variation: VariationParams {
                chip_speed_sigma: 0.05,
                core_speed_sigma: 0.015,
                chip_vmin_sigma: 0.025,
                core_vmin_sigma: 0.016,
                bank_vmin_sigma: 0.010,
                leakage_sigma_ln: 0.25,
                speed_leakage_correlation: 0.6,
            },
        }
    }

    /// The UniServer chassis: a 64-bit ARM Server-on-Chip micro-server
    /// (X-Gene-class: 8 cores @ 2.4 GHz, 0.98 V).
    #[must_use]
    pub fn arm_microserver() -> Self {
        PartSpec {
            name: "ARM 64-bit Server-on-Chip (modeled)".into(),
            cores: 8,
            cache_banks: 8,
            nominal_voltage: Volts::new(0.980),
            nominal_frequency: Megahertz::from_ghz(2.4),
            llc_capacity: Bytes::mib(8),
            power: CorePowerModel {
                ceff_nf: 1.1,
                leak_nominal_w: 1.2,
                leak_temp_coeff: 0.013,
                leak_voltage_exp: 3.0,
            },
            pdn: DroopModel::typical_server_pdn(),
            vmin: VminModel {
                base_crash_offset: 0.13,
                stress_gain: 0.045,
                core_gain: 1.0,
                stress_core_interaction: 0.6,
                run_jitter_sigma: 0.0018,
                cache_onset_above_crash_mv: 10.0,
                cache_onset_sigma_mv: 3.0,
                cache_ce_rate_per_mv: 0.4,
                crash_softness_mv: 2.0,
            },
            variation: VariationParams::server_28nm(),
        }
    }

    /// Millivolts corresponding to a fractional offset of this part's
    /// nominal voltage.
    #[must_use]
    pub fn offset_mv(&self, fraction: f64) -> f64 {
        self.nominal_voltage.as_millivolts() * fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i5_matches_paper_nominals() {
        let p = PartSpec::i5_4200u();
        assert_eq!(p.cores, 2);
        assert_eq!(p.nominal_voltage, Volts::new(0.844));
        assert_eq!(p.nominal_frequency, Megahertz::from_ghz(2.6));
        assert!(p.vmin.cache_onset_above_crash_mv > 0.0, "i5 exposes cache CEs");
    }

    #[test]
    fn i7_matches_paper_nominals() {
        let p = PartSpec::i7_3970x();
        assert_eq!(p.cores, 6);
        assert_eq!(p.nominal_voltage, Volts::new(1.365));
        assert_eq!(p.nominal_frequency, Megahertz::from_ghz(4.0));
        assert!(p.vmin.cache_onset_above_crash_mv < 0.0, "i7 hides cache CEs");
    }

    #[test]
    fn i7_varies_more_core_to_core_than_i5() {
        // Table 2: i7 core-to-core variation 3.7–8 % vs i5's 0–2.7 %.
        let i5 = PartSpec::i5_4200u();
        let i7 = PartSpec::i7_3970x();
        assert!(
            i7.vmin.core_gain * i7.variation.core_vmin_sigma
                > 2.0 * i5.vmin.core_gain * i5.variation.core_vmin_sigma
        );
    }

    #[test]
    fn offset_mv_scales_with_nominal() {
        let i7 = PartSpec::i7_3970x();
        assert!((i7.offset_mv(0.10) - 136.5).abs() < 1e-9);
    }

    #[test]
    fn arm_part_is_eight_cores() {
        let p = PartSpec::arm_microserver();
        assert_eq!(p.cores, 8);
        assert!(p.nominal_voltage < Volts::new(1.0));
    }
}
