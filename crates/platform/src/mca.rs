//! Machine-check architecture: how the hardware reports errors upward.
//!
//! Corrected and uncorrected errors land in machine-check banks; the
//! HealthLog daemon drains them into its information vectors. Records
//! carry the physical origin (which core / cache bank / DIMM), the
//! severity and a simulation timestamp.

use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_silicon::{ErrorSeverity, FaultKind};

/// Physical origin of an error record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorOrigin {
    /// A CPU core (logic/pipeline).
    Core(usize),
    /// A last-level-cache bank.
    CacheBank(usize),
    /// A DIMM, addressed by its index and the failing word address.
    Dimm {
        /// DIMM index within the node.
        dimm: usize,
        /// Failing 64-bit-word index within the DIMM.
        word: u64,
    },
}

impl std::fmt::Display for ErrorOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrorOrigin::Core(c) => write!(f, "core{c}"),
            ErrorOrigin::CacheBank(b) => write!(f, "l3bank{b}"),
            ErrorOrigin::Dimm { dimm, word } => write!(f, "dimm{dimm}@word{word:#x}"),
        }
    }
}

/// One machine-check record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MceRecord {
    /// Simulation time at which the error was signalled.
    pub at: Seconds,
    /// What kind of fault produced it.
    pub kind: FaultKind,
    /// Hardware-assessed severity.
    pub severity: ErrorSeverity,
    /// Where it happened.
    pub origin: ErrorOrigin,
}

/// The machine-check banks of one node: a bounded error queue that
/// software drains. Overflow drops the *oldest* records and counts them,
/// like real MCA banks losing history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct McaBanks {
    records: std::collections::VecDeque<MceRecord>,
    capacity: usize,
    /// Records lost to overflow since boot.
    pub overflowed: u64,
    /// Totals by severity since boot (survive draining).
    corrected_total: u64,
    uncorrected_total: u64,
    fatal_total: u64,
}

impl McaBanks {
    /// Creates banks holding up to `capacity` undrained records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MCA banks need capacity");
        McaBanks {
            records: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            overflowed: 0,
            corrected_total: 0,
            uncorrected_total: 0,
            fatal_total: 0,
        }
    }

    /// Hardware-side: posts a record.
    pub fn post(&mut self, record: MceRecord) {
        match record.severity {
            ErrorSeverity::Corrected => self.corrected_total += 1,
            ErrorSeverity::Uncorrected => self.uncorrected_total += 1,
            ErrorSeverity::Fatal => self.fatal_total += 1,
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.overflowed += 1;
        }
        self.records.push_back(record);
    }

    /// Software-side: drains all pending records (oldest first).
    pub fn drain(&mut self) -> Vec<MceRecord> {
        self.records.drain(..).collect()
    }

    /// Number of records waiting to be drained.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.records.len()
    }

    /// Lifetime corrected-error count.
    #[must_use]
    pub fn corrected_total(&self) -> u64 {
        self.corrected_total
    }

    /// Lifetime uncorrected-error count.
    #[must_use]
    pub fn uncorrected_total(&self) -> u64 {
        self.uncorrected_total
    }

    /// Lifetime fatal-error count.
    #[must_use]
    pub fn fatal_total(&self) -> u64 {
        self.fatal_total
    }
}

impl Default for McaBanks {
    fn default() -> Self {
        McaBanks::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at: f64, severity: ErrorSeverity) -> MceRecord {
        MceRecord {
            at: Seconds::new(at),
            kind: FaultKind::CacheBit,
            severity,
            origin: ErrorOrigin::CacheBank(0),
        }
    }

    #[test]
    fn post_and_drain_preserve_order() {
        let mut banks = McaBanks::new(8);
        banks.post(record(1.0, ErrorSeverity::Corrected));
        banks.post(record(2.0, ErrorSeverity::Corrected));
        let drained = banks.drain();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].at < drained[1].at);
        assert_eq!(banks.pending(), 0);
    }

    #[test]
    fn totals_survive_draining() {
        let mut banks = McaBanks::new(8);
        banks.post(record(1.0, ErrorSeverity::Corrected));
        banks.post(record(2.0, ErrorSeverity::Uncorrected));
        banks.drain();
        banks.post(record(3.0, ErrorSeverity::Corrected));
        assert_eq!(banks.corrected_total(), 2);
        assert_eq!(banks.uncorrected_total(), 1);
        assert_eq!(banks.fatal_total(), 0);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut banks = McaBanks::new(2);
        banks.post(record(1.0, ErrorSeverity::Corrected));
        banks.post(record(2.0, ErrorSeverity::Corrected));
        banks.post(record(3.0, ErrorSeverity::Corrected));
        assert_eq!(banks.overflowed, 1);
        let drained = banks.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].at, Seconds::new(2.0), "oldest record was sacrificed");
        assert_eq!(banks.corrected_total(), 3, "totals count even dropped records");
    }

    #[test]
    fn origin_renders_usefully() {
        assert_eq!(ErrorOrigin::Core(3).to_string(), "core3");
        assert_eq!(ErrorOrigin::Dimm { dimm: 1, word: 0x40 }.to_string(), "dimm1@word0x40");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = McaBanks::new(0);
    }
}
