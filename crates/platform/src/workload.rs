//! Workload profiles.
//!
//! The paper's CPU characterization uses eight SPEC CPU2006 benchmarks
//! "with diverse behaviors" (§6.A); its DRAM experiments use random test
//! patterns; its hypervisor experiments use an LDBC graph-database
//! workload. A workload matters to the models only through what it
//! *excites*: switching activity, current transients (di/dt), resonance
//! alignment, IPC, cache pressure and memory bandwidth. A profile
//! captures exactly those knobs.
//!
//! Profile values are stylized from published characterizations of the
//! SPEC suite (memory-bound `mcf`/`milc` vs compute-bound `namd`/`hmmer`,
//! droop-prone `zeusmp`, …); the experiments only rely on the *diversity*
//! of the set, not on any single value.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use uniserver_silicon::droop::DroopModel;

/// A workload's excitation profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Workload name (as it appears in tables). Shared (`Arc<str>`) so
    /// the serving tick and crash records can carry the name without
    /// allocating.
    pub name: Arc<str>,
    /// Mean switching activity in `[0, 1]`.
    pub activity: f64,
    /// Current-transient intensity in `[0, 1]`.
    pub didt: f64,
    /// PDN-resonance alignment in `[0, 1]`.
    pub resonance: f64,
    /// Instructions per cycle on the reference core.
    pub ipc: f64,
    /// Last-level-cache misses per kilo-instruction.
    pub cache_mpki: f64,
    /// Memory bandwidth utilization in `[0, 1]`.
    pub mem_bw_util: f64,
    /// Resident memory footprint in MiB per instance.
    pub footprint_mib: u64,
}

impl WorkloadProfile {
    /// Builds a custom profile.
    ///
    /// # Panics
    ///
    /// Panics if any of the `[0, 1]` excitation fields is out of range or
    /// `ipc` is non-positive.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<Arc<str>>,
        activity: f64,
        didt: f64,
        resonance: f64,
        ipc: f64,
        cache_mpki: f64,
        mem_bw_util: f64,
        footprint_mib: u64,
    ) -> Self {
        for (label, v) in
            [("activity", activity), ("didt", didt), ("resonance", resonance), ("mem_bw_util", mem_bw_util)]
        {
            assert!((0.0..=1.0).contains(&v), "{label} must be in [0, 1], got {v}");
        }
        assert!(ipc > 0.0, "ipc must be positive, got {ipc}");
        assert!(cache_mpki >= 0.0, "cache_mpki must be non-negative");
        WorkloadProfile {
            name: name.into(),
            activity,
            didt,
            resonance,
            ipc,
            cache_mpki,
            mem_bw_util,
            footprint_mib,
        }
    }

    /// An idle machine: background OS noise only.
    #[must_use]
    pub fn idle() -> Self {
        WorkloadProfile::new("idle", 0.03, 0.02, 0.0, 0.3, 0.1, 0.01, 64)
    }

    /// `401.bzip2` — integer compression, moderate everything.
    #[must_use]
    pub fn spec_bzip2() -> Self {
        WorkloadProfile::new("bzip2", 0.55, 0.35, 0.15, 1.4, 3.2, 0.25, 856)
    }

    /// `429.mcf` — combinatorial optimization, heavily memory-bound.
    #[must_use]
    pub fn spec_mcf() -> Self {
        WorkloadProfile::new("mcf", 0.35, 0.25, 0.10, 0.45, 38.0, 0.75, 1_716)
    }

    /// `444.namd` — molecular dynamics, dense FP compute.
    #[must_use]
    pub fn spec_namd() -> Self {
        WorkloadProfile::new("namd", 0.80, 0.30, 0.10, 2.1, 0.4, 0.08, 191)
    }

    /// `433.milc` — lattice QCD, streaming memory with FP bursts.
    #[must_use]
    pub fn spec_milc() -> Self {
        WorkloadProfile::new("milc", 0.50, 0.55, 0.35, 0.75, 22.0, 0.65, 679)
    }

    /// `456.hmmer` — profile HMM search, tight integer loops.
    #[must_use]
    pub fn spec_hmmer() -> Self {
        WorkloadProfile::new("hmmer", 0.75, 0.25, 0.05, 2.3, 0.8, 0.10, 62)
    }

    /// `464.h264ref` — video encoding, bursty SIMD-ish activity.
    #[must_use]
    pub fn spec_h264ref() -> Self {
        WorkloadProfile::new("h264ref", 0.70, 0.50, 0.30, 1.8, 1.9, 0.20, 113)
    }

    /// `445.gobmk` — game tree search, branchy with phase changes.
    #[must_use]
    pub fn spec_gobmk() -> Self {
        WorkloadProfile::new("gobmk", 0.60, 0.45, 0.25, 1.1, 2.7, 0.18, 128)
    }

    /// `434.zeusmp` — CFD with strong current swings (droop-prone).
    #[must_use]
    pub fn spec_zeusmp() -> Self {
        WorkloadProfile::new("zeusmp", 0.65, 0.70, 0.55, 1.0, 9.5, 0.50, 501)
    }

    /// The paper's eight-benchmark SPEC CPU2006 subset (§6.A), in the
    /// order listed there.
    #[must_use]
    pub fn spec2006_subset() -> Vec<WorkloadProfile> {
        vec![
            Self::spec_bzip2(),
            Self::spec_mcf(),
            Self::spec_namd(),
            Self::spec_milc(),
            Self::spec_hmmer(),
            Self::spec_h264ref(),
            Self::spec_gobmk(),
            Self::spec_zeusmp(),
        ]
    }

    /// An LDBC-SNB-on-graph-database VM workload (Figure 3's driver):
    /// stresses CPU, disk I/O and network with a large, growing heap.
    #[must_use]
    pub fn ldbc_graph_vm() -> Self {
        WorkloadProfile::new("ldbc-snb", 0.58, 0.40, 0.20, 0.9, 14.0, 0.55, 2_048)
    }

    /// Worst-case droop this workload can provoke, per the PDN model.
    #[must_use]
    pub fn droop_fraction(&self, pdn: &DroopModel) -> f64 {
        pdn.droop_fraction(self.activity, self.didt, self.resonance)
    }

    /// Normalized stress scalar in `[0, 1]` relative to the PDN's virus
    /// ceiling; the Vmin model consumes this.
    #[must_use]
    pub fn stress_scalar(&self, pdn: &DroopModel) -> f64 {
        pdn.stress_scalar(self.droop_fraction(pdn))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subset_matches_paper_list() {
        let names: Vec<Arc<str>> =
            WorkloadProfile::spec2006_subset().into_iter().map(|w| w.name).collect();
        let expected = ["bzip2", "mcf", "namd", "milc", "hmmer", "h264ref", "gobmk", "zeusmp"];
        assert!(names.iter().map(|n| &**n).eq(expected), "subset names {names:?}");
    }

    #[test]
    fn profiles_are_diverse_in_stress() {
        let pdn = DroopModel::typical_server_pdn();
        let stresses: Vec<f64> =
            WorkloadProfile::spec2006_subset().iter().map(|w| w.stress_scalar(&pdn)).collect();
        let min = stresses.iter().cloned().fold(f64::MAX, f64::min);
        let max = stresses.iter().cloned().fold(f64::MIN, f64::max);
        // Diversity is the property the paper's Table 2 depends on: the
        // quiet/loud gap drives the min/max crash-point spread.
        assert!(max - min > 0.25, "stress spread {min}..{max} too narrow");
        assert!(max <= 1.0 && min >= 0.0);
    }

    #[test]
    fn zeusmp_is_the_droopiest_spec_member() {
        let pdn = DroopModel::typical_server_pdn();
        let zeusmp = WorkloadProfile::spec_zeusmp().droop_fraction(&pdn);
        for w in WorkloadProfile::spec2006_subset() {
            assert!(w.droop_fraction(&pdn) <= zeusmp, "{} out-droops zeusmp", w.name);
        }
    }

    #[test]
    fn idle_is_quieter_than_everything() {
        let pdn = DroopModel::typical_server_pdn();
        let idle = WorkloadProfile::idle().droop_fraction(&pdn);
        for w in WorkloadProfile::spec2006_subset() {
            assert!(idle < w.droop_fraction(&pdn));
        }
    }

    #[test]
    fn mcf_is_memory_bound_namd_is_not() {
        let mcf = WorkloadProfile::spec_mcf();
        let namd = WorkloadProfile::spec_namd();
        assert!(mcf.cache_mpki > 10.0 * namd.cache_mpki);
        assert!(mcf.ipc < namd.ipc);
    }

    #[test]
    #[should_panic(expected = "activity must be in [0, 1]")]
    fn invalid_activity_panics() {
        let _ = WorkloadProfile::new("bad", 1.2, 0.0, 0.0, 1.0, 0.0, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "ipc must be positive")]
    fn invalid_ipc_panics() {
        let _ = WorkloadProfile::new("bad", 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0);
    }
}
