//! On-board sensors: temperature, voltage and power telemetry.
//!
//! The HealthLog daemon's information vectors include "sensor readings"
//! (§3.C); this module produces them. Real sensors quantize and jitter,
//! so readings carry configurable noise around the modeled truth — which
//! is exactly what makes the Predictor's job non-trivial.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uniserver_units::{Celsius, Volts, Watts};

use uniserver_silicon::rng::normal;

/// A single point-in-time sensor sweep of the node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorSnapshot {
    /// Per-core junction temperatures.
    pub core_temps: Vec<Celsius>,
    /// Package power draw.
    pub package_power: Watts,
    /// Measured (post-droop) supply voltage per core.
    pub core_voltages: Vec<Volts>,
    /// DIMM temperature.
    pub dimm_temp: Celsius,
}

impl SensorSnapshot {
    /// The hottest core temperature in the sweep.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot has no cores.
    #[must_use]
    pub fn max_core_temp(&self) -> Celsius {
        assert!(!self.core_temps.is_empty(), "snapshot must contain cores");
        self.core_temps
            .iter()
            .copied()
            .fold(Celsius::MIN, |a, b| if b > a { b } else { a })
    }
}

/// The sensor block: thermal model plus measurement noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensorBlock {
    /// Ambient (inlet) temperature.
    pub ambient: Celsius,
    /// Junction heat-up per watt of core power (°C/W).
    pub thermal_resistance: f64,
    /// DIMM heat-up per watt of package power (°C/W).
    pub dimm_coupling: f64,
    /// Temperature sensor noise sigma in °C.
    pub temp_noise: f64,
    /// Voltage sensor noise sigma in millivolts.
    pub volt_noise_mv: f64,
    /// Power meter relative noise (fraction).
    pub power_noise_rel: f64,
}

impl SensorBlock {
    /// Sensors for a machine in an air-conditioned server room (the
    /// paper's DRAM testbed environment).
    #[must_use]
    pub fn server_room() -> Self {
        SensorBlock {
            ambient: Celsius::new(22.0),
            thermal_resistance: 0.9,
            dimm_coupling: 0.35,
            temp_noise: 0.5,
            volt_noise_mv: 2.0,
            power_noise_rel: 0.02,
        }
    }

    /// Sensors for an edge deployment without dedicated cooling.
    #[must_use]
    pub fn edge_closet() -> Self {
        SensorBlock { ambient: Celsius::new(32.0), ..SensorBlock::server_room() }
    }

    /// True (noise-free) junction temperature for a core dissipating
    /// `core_power`.
    #[must_use]
    pub fn true_core_temp(&self, core_power: Watts) -> Celsius {
        self.ambient + Celsius::new(self.thermal_resistance * core_power.as_watts())
    }

    /// True DIMM temperature given the package power.
    #[must_use]
    pub fn true_dimm_temp(&self, package_power: Watts) -> Celsius {
        self.ambient + Celsius::new(self.dimm_coupling * package_power.as_watts())
    }

    /// Takes a noisy sensor sweep.
    ///
    /// `core_powers` and `core_voltages` are the modeled truths; the
    /// returned snapshot contains what the sensors *report*.
    ///
    /// # Panics
    ///
    /// Panics if `core_powers` and `core_voltages` differ in length or
    /// are empty.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        core_powers: &[Watts],
        core_voltages: &[Volts],
        rng: &mut R,
    ) -> SensorSnapshot {
        assert_eq!(core_powers.len(), core_voltages.len(), "power/voltage lists must align");
        assert!(!core_powers.is_empty(), "need at least one core");

        let package_true: f64 = core_powers.iter().map(|p| p.as_watts()).sum();
        let core_temps = core_powers
            .iter()
            .map(|p| {
                let t = self.true_core_temp(*p);
                Celsius::new(normal(rng, t.as_celsius(), self.temp_noise))
            })
            .collect();
        let core_voltages = core_voltages
            .iter()
            .map(|v| {
                let mv = normal(rng, v.as_millivolts(), self.volt_noise_mv);
                Volts::from_millivolts(mv.max(0.0))
            })
            .collect();
        let package_power =
            Watts::new(normal(rng, package_true, package_true * self.power_noise_rel).max(0.0));
        let dimm_temp = {
            let t = self.true_dimm_temp(Watts::new(package_true));
            Celsius::new(normal(rng, t.as_celsius(), self.temp_noise))
        };
        SensorSnapshot { core_temps, package_power, core_voltages, dimm_temp }
    }
}

impl Default for SensorBlock {
    fn default() -> Self {
        SensorBlock::server_room()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(8)
    }

    #[test]
    fn hotter_cores_read_hotter() {
        let s = SensorBlock::server_room();
        let cold = s.true_core_temp(Watts::new(2.0));
        let hot = s.true_core_temp(Watts::new(25.0));
        assert!(hot.as_celsius() > cold.as_celsius() + 15.0);
    }

    #[test]
    fn snapshot_structure_matches_inputs() {
        let s = SensorBlock::server_room();
        let snap = s.sample(
            &[Watts::new(10.0), Watts::new(12.0)],
            &[Volts::new(0.84), Volts::new(0.84)],
            &mut rng(),
        );
        assert_eq!(snap.core_temps.len(), 2);
        assert_eq!(snap.core_voltages.len(), 2);
        assert!(snap.package_power.as_watts() > 15.0);
    }

    #[test]
    fn noise_averages_out() {
        let s = SensorBlock::server_room();
        let mut r = rng();
        let n = 3_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let snap = s.sample(&[Watts::new(10.0)], &[Volts::new(0.80)], &mut r);
            sum += snap.core_voltages[0].as_millivolts();
        }
        let mean = sum / n as f64;
        assert!((mean - 800.0).abs() < 0.5, "mean voltage reading {mean}");
    }

    #[test]
    fn max_core_temp_finds_hottest() {
        let snap = SensorSnapshot {
            core_temps: vec![Celsius::new(50.0), Celsius::new(72.0), Celsius::new(61.0)],
            package_power: Watts::new(40.0),
            core_voltages: vec![Volts::new(1.0); 3],
            dimm_temp: Celsius::new(40.0),
        };
        assert_eq!(snap.max_core_temp(), Celsius::new(72.0));
    }

    #[test]
    fn edge_deployment_is_hotter() {
        let dc = SensorBlock::server_room();
        let edge = SensorBlock::edge_closet();
        assert!(edge.ambient > dc.ambient);
        assert!(edge.true_dimm_temp(Watts::new(30.0)) > dc.true_dimm_temp(Watts::new(30.0)));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_inputs_panic() {
        let s = SensorBlock::server_room();
        let _ = s.sample(&[Watts::new(1.0)], &[], &mut rng());
    }
}
