//! Last-level-cache banks under undervolting.
//!
//! Each bank has its own manufactured Vmin offset (paper §3.A: "for each
//! cache memory bank UniServer will reveal the minimum voltage that
//! allows correct operation"). As supply voltage approaches a bank's
//! onset point, SECDED begins correcting read failures — the CE stream
//! the paper counts in Table 2. Banks that misbehave persistently can be
//! isolated (taken out of the allocation map) by the hypervisor.

use rand::Rng;
use serde::{Deserialize, Serialize};
use uniserver_units::Volts;

use uniserver_silicon::variation::ChipProfile;
use uniserver_silicon::vmin::VminModel;

/// State of one cache bank.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheBankState {
    /// Bank index on the die.
    pub index: usize,
    /// Manufactured fractional Vmin offset (chip + bank components).
    pub weakness: f64,
    /// Whether the bank has been isolated by software.
    pub isolated: bool,
}

/// Corrected-error sample for one bank over one interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankCeSample {
    /// Bank index.
    pub bank: usize,
    /// Corrected errors observed in the interval.
    pub corrected: u64,
}

/// The cache subsystem of a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSubsystem {
    banks: Vec<CacheBankState>,
}

impl CacheSubsystem {
    /// Builds the subsystem from a manufactured chip profile. Bank
    /// weakness carries only the bank-*local* variation component: the
    /// chip-level Vmin shift is already reflected in the core crash
    /// reference that onset voltages are anchored to.
    #[must_use]
    pub fn from_chip(chip: &ChipProfile) -> Self {
        let banks = chip
            .banks
            .iter()
            .map(|b| CacheBankState { index: b.index, weakness: b.vmin_offset, isolated: false })
            .collect();
        CacheSubsystem { banks }
    }

    /// Number of banks (isolated or not).
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Number of banks still in service.
    #[must_use]
    pub fn active_banks(&self) -> usize {
        self.banks.iter().filter(|b| !b.isolated).count()
    }

    /// Iterates over bank states.
    pub fn iter(&self) -> impl Iterator<Item = &CacheBankState> {
        self.banks.iter()
    }

    /// Isolates a bank (removes it from service).
    ///
    /// # Panics
    ///
    /// Panics if the bank does not exist.
    pub fn isolate(&mut self, bank: usize) {
        self.banks[bank].isolated = true;
    }

    /// Returns a previously isolated bank to service.
    ///
    /// # Panics
    ///
    /// Panics if the bank does not exist.
    pub fn restore(&mut self, bank: usize) {
        self.banks[bank].isolated = false;
    }

    /// Samples corrected errors for every in-service bank over one
    /// interval at supply voltage `v`, given a reference core crash
    /// voltage for the same interval (bank onsets are anchored to it; see
    /// [`VminModel::cache_onset_voltage`]). Banks with zero CEs are
    /// omitted, mirroring how MCA only reports actual events.
    pub fn sample_interval<R: Rng + ?Sized>(
        &self,
        v: Volts,
        nominal: Volts,
        crash_reference: Volts,
        vmin: &VminModel,
        rng: &mut R,
    ) -> Vec<BankCeSample> {
        let mut out = Vec::new();
        // Outgoing manufacturing test rejects parts that log corrected
        // errors at stock settings, so a shipped bank's onset is always
        // strictly below nominal no matter how weak the die: screen the
        // sampled onset to just under the stock voltage.
        let screened = Volts::from_millivolts(nominal.as_millivolts() - 1.0);
        for bank in self.banks.iter().filter(|b| !b.isolated) {
            let onset = vmin.cache_onset_voltage(crash_reference, bank.weakness, rng).min(screened);
            let corrected = vmin.cache_ce_count(v, onset, rng);
            if corrected > 0 {
                out.push(BankCeSample { bank: bank.index, corrected });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uniserver_silicon::variation::VariationParams;

    fn subsystem() -> CacheSubsystem {
        let mut rng = StdRng::seed_from_u64(21);
        let chip = VariationParams::server_28nm().sample_chip(0, 2, 4, &mut rng);
        CacheSubsystem::from_chip(&chip)
    }

    #[test]
    fn banks_inherit_chip_variation() {
        let s = subsystem();
        assert_eq!(s.bank_count(), 4);
        let weaknesses: Vec<f64> = s.iter().map(|b| b.weakness).collect();
        assert!(weaknesses.windows(2).any(|w| w[0] != w[1]), "banks must differ");
    }

    #[test]
    fn isolation_removes_banks_from_sampling() {
        let mut s = subsystem();
        s.isolate(0);
        s.isolate(1);
        assert_eq!(s.active_banks(), 2);
        let mut rng = StdRng::seed_from_u64(3);
        // Deep undervolt: every active bank produces CEs.
        let crash = Volts::from_millivolts(760.0);
        let samples =
            s.sample_interval(Volts::from_millivolts(700.0), Volts::from_millivolts(844.0), crash, &VminModel::default(), &mut rng);
        assert!(samples.iter().all(|c| c.bank >= 2), "isolated banks must stay silent");
        assert!(!samples.is_empty());
    }

    #[test]
    fn restore_returns_bank_to_service() {
        let mut s = subsystem();
        s.isolate(3);
        assert_eq!(s.active_banks(), 3);
        s.restore(3);
        assert_eq!(s.active_banks(), 4);
    }

    #[test]
    fn no_ces_at_nominal_voltage() {
        let s = subsystem();
        let mut rng = StdRng::seed_from_u64(5);
        let crash = Volts::from_millivolts(760.0);
        let samples =
            s.sample_interval(Volts::from_millivolts(844.0), Volts::from_millivolts(844.0), crash, &VminModel::default(), &mut rng);
        assert!(samples.is_empty(), "nominal voltage must be CE-free, got {samples:?}");
    }

    #[test]
    fn ces_grow_as_voltage_drops() {
        use uniserver_silicon::variation::{BankProfile, ChipProfile, CoreProfile};
        // A chip with zero manufactured offsets so the onset window sits
        // exactly cache_onset_above_crash_mv above the crash reference.
        let chip = ChipProfile {
            chip_id: 0,
            speed_factor: 0.0,
            leakage_factor: 1.0,
            vmin_shift: 0.0,
            cores: vec![CoreProfile { index: 0, speed_offset: 0.0, vmin_offset: 0.0 }],
            banks: (0..4).map(|index| BankProfile { index, vmin_offset: 0.0 }).collect(),
        };
        let s = CacheSubsystem::from_chip(&chip);
        let mut rng = StdRng::seed_from_u64(7);
        let vmin = VminModel::default();
        let crash = Volts::from_millivolts(760.0);
        let total = |v_mv: f64, rng: &mut StdRng| -> u64 {
            (0..50)
                .map(|_| {
                    s.sample_interval(Volts::from_millivolts(v_mv), Volts::from_millivolts(844.0), crash, &vmin, rng)
                        .iter()
                        .map(|c| c.corrected)
                        .sum::<u64>()
                })
                .sum()
        };
        let shallow = total(772.0, &mut rng);
        let deep = total(762.0, &mut rng);
        assert!(deep > shallow, "deep {deep} vs shallow {shallow}");
    }
}
