//! The assembled server node.
//!
//! A [`ServerNode`] binds a manufactured chip instance (sampled from the
//! part's variation model) to the MSR control plane, cache and memory
//! subsystems, sensors, PMU and machine-check banks, and advances them in
//! discrete intervals. The stress campaigns, daemons and hypervisor all
//! drive nodes exclusively through this interface — the same observables
//! the paper's stack gets from real hardware.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use uniserver_units::{Celsius, Joules, Seconds, Volts, Watts};

use uniserver_silicon::aging::AgingModel;
use uniserver_silicon::rng::bernoulli;
use uniserver_silicon::variation::ChipProfile;
use uniserver_silicon::{ErrorSeverity, FaultKind};

use crate::cache::CacheSubsystem;
use crate::dram::MemorySystem;
use crate::mca::{ErrorOrigin, McaBanks, MceRecord};
use crate::msr::MsrFile;
use crate::part::PartSpec;
use crate::pmu::PmuCounters;
use crate::sensors::{SensorBlock, SensorSnapshot};
use crate::workload::WorkloadProfile;

/// A node crash: which core went down, when, and at what voltage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashEvent {
    /// Core whose logic failed first.
    pub core: usize,
    /// Simulation time of the crash.
    pub at: Seconds,
    /// Effective supply voltage at the moment of the crash.
    pub voltage: Volts,
    /// Name of the workload running (shared with the profile — building
    /// a crash record never allocates).
    pub workload: Arc<str>,
}

/// Everything observed during one simulated interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalReport {
    /// Simulation time at the *end* of the interval.
    pub at: Seconds,
    /// Interval length.
    pub duration: Seconds,
    /// A crash, if one occurred (the interval still reports telemetry up
    /// to the crash).
    pub crash: Option<CrashEvent>,
    /// Machine-check records raised during the interval.
    pub errors: Vec<MceRecord>,
    /// Noisy sensor sweep taken at the end of the interval.
    pub sensors: SensorSnapshot,
    /// Per-core PMU increments for the interval.
    pub pmu_deltas: Vec<PmuCounters>,
    /// Mean node power over the interval (cores + DRAM).
    pub power: Watts,
    /// Energy consumed over the interval.
    pub energy: Joules,
}

/// State of one core within a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CoreState {
    /// Manufactured fractional Vmin weakness (chip + core).
    weakness: f64,
    /// Isolated cores neither run work nor crash the node.
    isolated: bool,
}

/// The simulated server node.
#[derive(Debug, Clone)]
pub struct ServerNode {
    spec: PartSpec,
    chip: ChipProfile,
    /// Software-visible control registers.
    pub msr: MsrFile,
    cores: Vec<CoreState>,
    cache: CacheSubsystem,
    /// The memory subsystem (public: the hypervisor manages domains).
    pub memory: MemorySystem,
    sensors: SensorBlock,
    mca: McaBanks,
    pmu: Vec<PmuCounters>,
    clock: Seconds,
    crashed: bool,
    reboots: u64,
    /// Crash events since the last drain — the cluster orchestrator's
    /// failure feed. Bounded: a crash halts the node until reboot, the
    /// hypervisor drains the feed when it recovers the crash, and the
    /// StressLog drains its own intentional characterization crashes.
    pending_crashes: Vec<CrashEvent>,
    aging: AgingModel,
    age_months: f64,
    rng: StdRng,
    /// The seed the node was manufactured from (daemons derive their own
    /// per-node sub-streams from it).
    seed: u64,
    /// Scratch buffers reused across intervals so the serving tick does
    /// not re-allocate per-core power/voltage vectors every call.
    scratch_powers: Vec<Watts>,
    scratch_voltages: Vec<Volts>,
}

impl ServerNode {
    /// Manufactures a node: samples a chip from the part's variation
    /// model (deterministically from `seed`) and assembles the
    /// subsystems. DRAM ECC is enabled — the production configuration;
    /// characterization experiments that need ECC off build their memory
    /// system explicitly via [`ServerNode::with_memory`].
    #[must_use]
    pub fn new(spec: PartSpec, seed: u64) -> Self {
        Self::with_memory(spec, MemorySystem::commodity_server(true), seed)
    }

    /// Quiet-workload crash margin (fraction of nominal voltage) a chip
    /// must hold on its weakest core to ship. Dice below this would
    /// crash at stock settings once workload stress and service aging
    /// eat into the margin — manufacturers discard them with the
    /// binning rejects (Figure 1's lost yield), so server fleets never
    /// see them.
    const SHIP_QUIET_MARGIN: f64 = 0.05;

    /// Manufactures a node with an explicit memory system.
    #[must_use]
    pub fn with_memory(spec: PartSpec, memory: MemorySystem, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Manufacturing screening: resample rejects (rare tail dice)
        // from the same stream, so shippable first draws consume exactly
        // the RNG they always did.
        let mut chip = spec.variation.sample_chip(seed, spec.cores, spec.cache_banks, &mut rng);
        for _ in 0..32 {
            let margin = spec.vmin.base_crash_offset
                - spec.vmin.core_gain * chip.worst_core_vmin_offset();
            if margin >= Self::SHIP_QUIET_MARGIN {
                break;
            }
            chip = spec.variation.sample_chip(seed, spec.cores, spec.cache_banks, &mut rng);
        }
        let cores = (0..spec.cores)
            .map(|c| CoreState { weakness: chip.core_vmin_offset(c), isolated: false })
            .collect();
        let cache = CacheSubsystem::from_chip(&chip);
        let msr = MsrFile::new(spec.nominal_voltage, spec.cores, memory.domains().len().max(1));
        let pmu = vec![PmuCounters::new(); spec.cores];
        ServerNode {
            spec,
            chip,
            msr,
            cores,
            cache,
            memory,
            sensors: SensorBlock::server_room(),
            mca: McaBanks::default(),
            pmu,
            clock: Seconds::ZERO,
            crashed: false,
            reboots: 0,
            pending_crashes: Vec::new(),
            aging: AgingModel::typical_nbti(),
            age_months: 0.0,
            rng,
            seed,
            scratch_powers: Vec::new(),
            scratch_voltages: Vec::new(),
        }
    }

    /// The seed this node's silicon was manufactured from. Daemons that
    /// need per-node randomness (e.g. the StressLog's DRAM sweep) derive
    /// their streams from this, so distinct nodes of the same part get
    /// distinct draws.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the ambient (inlet) temperature the node's sensors reference
    /// — the fleet driver's per-node ambient spread knob.
    pub fn set_ambient(&mut self, ambient: Celsius) {
        self.sensors.ambient = ambient;
    }

    /// The current ambient (inlet) temperature.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.sensors.ambient
    }

    /// The part specification of this node.
    #[must_use]
    pub fn part(&self) -> &PartSpec {
        &self.spec
    }

    /// The manufactured chip identity (what characterization discovers).
    #[must_use]
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// Number of cores on the node.
    #[must_use]
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Whether the node is currently down.
    #[must_use]
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Times the node has been rebooted.
    #[must_use]
    pub fn reboots(&self) -> u64 {
        self.reboots
    }

    /// Crash events recorded since the last drain (read-only view).
    #[must_use]
    pub fn pending_crashes(&self) -> &[CrashEvent] {
        &self.pending_crashes
    }

    /// Drains the crash events recorded since the last drain — how the
    /// cluster orchestrator learns *which* core failed, at what voltage
    /// and under which workload, rather than just "the node went down".
    pub fn take_crash_events(&mut self) -> Vec<CrashEvent> {
        std::mem::take(&mut self.pending_crashes)
    }

    /// Ages the silicon by `months` of deployment: NBTI-style drift
    /// raises every core's Vmin, eroding characterized margins — the
    /// reason StressLog re-runs "several times over the lifetime of a
    /// server" (§3.D).
    ///
    /// # Panics
    ///
    /// Panics if `months` is negative.
    pub fn age_by_months(&mut self, months: f64) {
        assert!(months >= 0.0, "cannot rejuvenate silicon");
        self.age_months += months;
    }

    /// Accumulated deployment age in months.
    #[must_use]
    pub fn age_months(&self) -> f64 {
        self.age_months
    }

    /// The aging-induced Vmin drift at the current age, as a fraction of
    /// nominal voltage (added to every core's manufactured weakness).
    #[must_use]
    pub fn aging_weakness(&self) -> f64 {
        self.aging.drift_mv(self.age_months) / self.spec.nominal_voltage.as_millivolts()
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> Seconds {
        self.clock
    }

    /// The machine-check banks (for daemons to drain).
    pub fn mca_mut(&mut self) -> &mut McaBanks {
        &mut self.mca
    }

    /// Read-only machine-check banks.
    #[must_use]
    pub fn mca(&self) -> &McaBanks {
        &self.mca
    }

    /// Marks a core as isolated: it stops running work and stops being
    /// able to crash the node (the hypervisor's containment action).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn isolate_core(&mut self, core: usize) {
        self.cores[core].isolated = true;
    }

    /// Returns an isolated core to service.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn restore_core(&mut self, core: usize) {
        self.cores[core].isolated = false;
    }

    /// Whether a core is isolated.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn is_isolated(&self, core: usize) -> bool {
        self.cores[core].isolated
    }

    /// Cache subsystem view.
    #[must_use]
    pub fn cache(&self) -> &CacheSubsystem {
        &self.cache
    }

    /// Mutable cache subsystem (for isolation decisions).
    pub fn cache_mut(&mut self) -> &mut CacheSubsystem {
        &mut self.cache
    }

    /// Reboots a crashed node at *nominal* settings (undervolt offsets
    /// are cleared by firmware on the way up, exactly like a real
    /// machine coming back from a crash).
    pub fn reboot(&mut self) {
        if self.crashed {
            self.reboots += 1;
        }
        self.crashed = false;
        self.msr
            .set_voltage_offset_all(0.0)
            .expect("zero offset is always within limits");
    }

    /// Runs the node for one interval of `workload` on all active cores.
    ///
    /// # Panics
    ///
    /// Panics if the node is crashed (call [`ServerNode::reboot`] first)
    /// or `duration` is zero.
    pub fn run_interval(&mut self, workload: &WorkloadProfile, duration: Seconds) -> IntervalReport {
        assert!(!self.crashed, "node is crashed; call reboot() before running");
        assert!(duration.as_secs() > 0.0, "interval must be positive");

        let stress = workload.stress_scalar(&self.spec.pdn);
        let nominal = self.spec.nominal_voltage;
        let mut errors: Vec<MceRecord> = Vec::new();
        let mut crash: Option<CrashEvent> = None;

        // --- Core logic: sample per-run crash voltages, check for crash.
        let mut min_active_voltage = nominal;
        let mut crash_reference = Volts::ZERO;
        let mut active = 0usize;
        for (idx, core) in self.cores.iter().enumerate() {
            if core.isolated {
                continue;
            }
            active += 1;
            let v = self.msr.effective_voltage(idx);
            min_active_voltage = min_active_voltage.min(v);
            let weakness = core.weakness + self.aging_weakness();
            let crash_v =
                self.spec.vmin.crash_voltage(nominal, weakness, stress, &mut self.rng);
            crash_reference = crash_reference.max(crash_v);
            let p = self.spec.vmin.crash_probability(v, crash_v);
            if crash.is_none() && bernoulli(&mut self.rng, p) {
                crash = Some(CrashEvent {
                    core: idx,
                    at: self.clock + duration,
                    voltage: v,
                    workload: workload.name.clone(),
                });
            }
        }
        if active == 0 {
            // A fully isolated node idles; nothing can crash it.
            crash_reference = nominal.scaled(1.0 - self.spec.vmin.base_crash_offset);
        }

        // --- Cache banks: corrected errors in the onset window.
        for sample in
            self.cache.sample_interval(min_active_voltage, nominal, crash_reference, &self.spec.vmin, &mut self.rng)
        {
            for _ in 0..sample.corrected {
                errors.push(MceRecord {
                    at: self.clock + duration,
                    kind: FaultKind::CacheBit,
                    severity: ErrorSeverity::Corrected,
                    origin: ErrorOrigin::CacheBank(sample.bank),
                });
            }
        }

        // --- Power & thermals. The per-core truth vectors are scratch
        // buffers owned by the node: the serving tick reuses them every
        // interval instead of re-allocating.
        let mut core_powers = std::mem::take(&mut self.scratch_powers);
        let mut core_voltages = std::mem::take(&mut self.scratch_voltages);
        core_powers.clear();
        core_voltages.clear();
        for (idx, core) in self.cores.iter().enumerate() {
            let v = self.msr.effective_voltage(idx);
            let activity = if core.isolated { 0.02 } else { workload.activity };
            let p = self.spec.power.total(
                v,
                self.spec.nominal_frequency,
                activity,
                self.sensors.true_core_temp(Watts::new(5.0)), // first-order estimate
                nominal,
                self.chip.leakage_factor,
            );
            core_powers.push(p);
            core_voltages.push(v);
        }
        let dram_util = workload.mem_bw_util;
        let dram_power = self.memory.power(&self.msr, dram_util);
        let package: Watts =
            core_powers.iter().fold(Watts::ZERO, |a, b| a + *b) + dram_power;
        let energy = package * duration;

        // --- DRAM retention errors at the current refresh settings.
        let dimm_temp = self.sensors.true_dimm_temp(package);
        let touch = (workload.mem_bw_util * 0.8 + 0.02).min(1.0);
        self.memory.step_errors_into(
            &self.msr,
            dimm_temp,
            duration,
            self.clock + duration,
            touch,
            &mut self.rng,
            &mut errors,
        );

        // --- PMU and sensors.
        let mut pmu_deltas = Vec::with_capacity(self.cores.len());
        for (idx, core) in self.cores.iter().enumerate() {
            let delta = if core.isolated {
                PmuCounters::new()
            } else {
                self.pmu[idx].advance(workload, self.spec.nominal_frequency, duration)
            };
            pmu_deltas.push(delta);
        }
        let snapshot = self.sensors.sample(&core_powers, &core_voltages, &mut self.rng);
        self.scratch_powers = core_powers;
        self.scratch_voltages = core_voltages;

        // --- Post MCEs to the banks; a crash posts a fatal record.
        if let Some(ev) = &crash {
            errors.push(MceRecord {
                at: ev.at,
                kind: FaultKind::CoreLogic,
                severity: ErrorSeverity::Fatal,
                origin: ErrorOrigin::Core(ev.core),
            });
            self.crashed = true;
            self.pending_crashes.push(ev.clone());
        }
        for rec in &errors {
            self.mca.post(*rec);
        }

        self.clock = self.clock + duration;
        IntervalReport {
            at: self.clock,
            duration,
            crash,
            errors,
            sensors: snapshot,
            pmu_deltas,
            power: package,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> ServerNode {
        ServerNode::new(PartSpec::arm_microserver(), 7)
    }

    #[test]
    fn nominal_operation_is_stable_and_clean() {
        let mut n = node();
        let w = WorkloadProfile::spec_bzip2();
        for _ in 0..50 {
            let r = n.run_interval(&w, Seconds::from_millis(200.0));
            assert!(r.crash.is_none(), "crash at nominal settings");
            assert!(r.errors.is_empty(), "errors at nominal settings: {:?}", r.errors);
        }
        assert!((n.now().as_secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn deep_undervolt_crashes_quickly() {
        let mut n = node();
        // 20 % below nominal is well past the ~13 % crash point.
        let off = n.part().offset_mv(0.20);
        n.msr.set_voltage_offset_all(off).unwrap();
        let w = WorkloadProfile::spec_zeusmp();
        let mut crashed = false;
        for _ in 0..20 {
            if n.run_interval(&w, Seconds::from_millis(100.0)).crash.is_some() {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "a 20 % undervolt must crash");
        assert!(n.is_crashed());
        assert_eq!(n.mca().fatal_total(), 1);
    }

    #[test]
    #[should_panic(expected = "call reboot()")]
    fn running_a_crashed_node_panics() {
        let mut n = node();
        n.msr.set_voltage_offset_all(n.part().offset_mv(0.25)).unwrap();
        let w = WorkloadProfile::spec_zeusmp();
        for _ in 0..200 {
            n.run_interval(&w, Seconds::from_millis(100.0));
        }
    }

    #[test]
    fn reboot_restores_nominal_settings() {
        let mut n = node();
        n.msr.set_voltage_offset_all(n.part().offset_mv(0.25)).unwrap();
        let w = WorkloadProfile::spec_zeusmp();
        while n.run_interval(&w, Seconds::from_millis(100.0)).crash.is_none() {}
        n.reboot();
        assert!(!n.is_crashed());
        assert_eq!(n.reboots(), 1);
        assert_eq!(n.msr.voltage_offset_mv(0), 0.0, "firmware clears offsets");
        // And it runs again.
        let r = n.run_interval(&w, Seconds::from_millis(100.0));
        assert!(r.crash.is_none());
    }

    #[test]
    fn crash_events_are_surfaced_and_drained() {
        let mut n = node();
        assert!(n.pending_crashes().is_empty());
        n.msr.set_voltage_offset_all(n.part().offset_mv(0.22)).unwrap();
        let w = WorkloadProfile::spec_zeusmp();
        while n.run_interval(&w, Seconds::from_millis(100.0)).crash.is_none() {}
        assert_eq!(n.pending_crashes().len(), 1, "one crash, one surfaced event");
        let events = n.take_crash_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].workload.as_ref(), w.name.as_ref());
        assert!(n.pending_crashes().is_empty(), "drain empties the feed");
        // Reboot + clean running adds nothing.
        n.reboot();
        let r = n.run_interval(&w, Seconds::from_millis(100.0));
        if r.crash.is_none() {
            assert!(n.pending_crashes().is_empty());
        }
    }

    #[test]
    fn moderate_undervolt_saves_power() {
        let mut a = ServerNode::new(PartSpec::arm_microserver(), 7);
        let mut b = ServerNode::new(PartSpec::arm_microserver(), 7);
        b.msr.set_voltage_offset_all(b.part().offset_mv(0.08)).unwrap();
        let w = WorkloadProfile::spec_hmmer();
        let pa = a.run_interval(&w, Seconds::new(1.0)).power;
        let pb = b.run_interval(&w, Seconds::new(1.0)).power;
        assert!(
            pb.as_watts() < pa.as_watts() * 0.95,
            "8 % undervolt should save ≥5 % power ({pb} vs {pa})"
        );
    }

    #[test]
    fn isolated_cores_do_not_crash_the_node() {
        let mut n = node();
        // Undervolt only core 0 deep into its crash region, then isolate it.
        n.msr.set_voltage_offset(0, n.part().offset_mv(0.22)).unwrap();
        n.isolate_core(0);
        let w = WorkloadProfile::spec_zeusmp();
        for _ in 0..50 {
            let r = n.run_interval(&w, Seconds::from_millis(100.0));
            assert!(r.crash.is_none(), "isolated core crashed the node");
        }
        assert!(n.is_isolated(0));
        // Its PMU stays frozen.
        assert_eq!(n.run_interval(&w, Seconds::from_millis(100.0)).pmu_deltas[0], PmuCounters::new());
    }

    #[test]
    fn interval_report_is_internally_consistent() {
        let mut n = node();
        let w = WorkloadProfile::spec_mcf();
        let r = n.run_interval(&w, Seconds::new(2.0));
        assert_eq!(r.at, Seconds::new(2.0));
        assert_eq!(r.pmu_deltas.len(), n.core_count());
        assert!((r.energy.as_joules() - r.power.as_watts() * 2.0).abs() < 1e-9);
        assert_eq!(r.sensors.core_temps.len(), n.core_count());
    }

    #[test]
    fn same_seed_same_behaviour() {
        let mut a = ServerNode::new(PartSpec::i7_3970x(), 123);
        let mut b = ServerNode::new(PartSpec::i7_3970x(), 123);
        let w = WorkloadProfile::spec_milc();
        for _ in 0..10 {
            let ra = a.run_interval(&w, Seconds::from_millis(250.0));
            let rb = b.run_interval(&w, Seconds::from_millis(250.0));
            assert_eq!(ra, rb);
        }
    }

    #[test]
    fn aging_erodes_margins() {
        // A fresh node survives a mid-depth undervolt; after years of
        // drift the same operating point crashes.
        let offset_fraction = 0.105;
        let w = WorkloadProfile::spec_bzip2();

        // Chip seed 4 draws a strong die under the workspace RNG: the
        // fresh part holds a >10.5 % margin, so any crash delta is pure
        // aging drift (a weak draw saturates both counters at the cap).
        let mut fresh = ServerNode::new(PartSpec::arm_microserver(), 4);
        fresh.msr.set_voltage_offset_all(fresh.part().offset_mv(offset_fraction)).unwrap();
        let mut fresh_crashes = 0;
        for _ in 0..60 {
            if fresh.run_interval(&w, Seconds::from_millis(250.0)).crash.is_some() {
                fresh_crashes += 1;
                fresh.reboot();
                fresh.msr.set_voltage_offset_all(fresh.part().offset_mv(offset_fraction)).unwrap();
            }
        }

        let mut aged = ServerNode::new(PartSpec::arm_microserver(), 4);
        aged.age_by_months(48.0);
        assert!(aged.aging_weakness() > 0.02, "4-year drift {:.4}", aged.aging_weakness());
        aged.msr.set_voltage_offset_all(aged.part().offset_mv(offset_fraction)).unwrap();
        let mut aged_crashes = 0;
        for _ in 0..60 {
            if aged.run_interval(&w, Seconds::from_millis(250.0)).crash.is_some() {
                aged_crashes += 1;
                aged.reboot();
                aged.msr.set_voltage_offset_all(aged.part().offset_mv(offset_fraction)).unwrap();
            }
        }
        assert!(
            aged_crashes > fresh_crashes,
            "aged part must crash more at the same point ({aged_crashes} vs {fresh_crashes})"
        );
    }

    #[test]
    #[should_panic(expected = "rejuvenate")]
    fn negative_aging_panics() {
        ServerNode::new(PartSpec::arm_microserver(), 1).age_by_months(-1.0);
    }

    #[test]
    fn manufacturing_screens_out_doa_dice() {
        // Over many manufactured nodes, no shipped chip's weakest core
        // may sit inside the screened margin: such dice crash at stock
        // settings and are binning rejects, not servers.
        for seed in 0..512 {
            let n = ServerNode::new(PartSpec::arm_microserver(), seed);
            let margin = n.part().vmin.base_crash_offset
                - n.part().vmin.core_gain * n.chip().worst_core_vmin_offset();
            assert!(
                margin >= ServerNode::SHIP_QUIET_MARGIN - 1e-12,
                "seed {seed} shipped a reject (quiet margin {margin:.4})"
            );
        }
    }

    #[test]
    fn different_chips_differ() {
        let a = ServerNode::new(PartSpec::i7_3970x(), 1);
        let b = ServerNode::new(PartSpec::i7_3970x(), 2);
        assert_ne!(a.chip().speed_factor, b.chip().speed_factor);
    }
}
