//! DIMMs, refresh domains and retention-error generation (paper §6.B).
//!
//! The paper's framework "separated the main memory into domains (based
//! on the available channels) whose refresh-rate can be set
//! independently", placing critical kernel state in a *reliable* domain
//! at nominal refresh while relaxing the rest. This module reproduces
//! that topology: DIMMs belong to refresh domains controlled through the
//! MSR file; retention failures are sampled from the calibrated
//! lognormal model; failing words are pushed through the real
//! SECDED(72,64) codec when ECC is enabled (the paper's DRAM experiment
//! ran with ECC *disabled*, which [`MemoryScan`] reports as raw bit
//! errors).

use rand::Rng;
use serde::{Deserialize, Serialize};
use uniserver_units::{BitErrorRate, Bytes, Celsius, Seconds, Watts};

use uniserver_silicon::ecc::{DecodeOutcome, Secded72};
use uniserver_silicon::power::DramPowerModel;
use uniserver_silicon::retention::RetentionModel;
use uniserver_silicon::rng::poisson;
use uniserver_silicon::{ErrorSeverity, FaultKind};

use crate::mca::{ErrorOrigin, MceRecord};
use crate::msr::{DomainId, MsrFile};

/// Static configuration of one DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DimmConfig {
    /// Usable capacity.
    pub capacity: Bytes,
    /// Whether SECDED ECC is enabled for this DIMM.
    pub ecc_enabled: bool,
    /// Refresh domain the DIMM belongs to.
    pub domain: DomainId,
}

/// One DIMM with its lifetime error counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dimm {
    /// Static configuration.
    pub config: DimmConfig,
    /// Lifetime corrected errors.
    pub corrected: u64,
    /// Lifetime uncorrected errors.
    pub uncorrected: u64,
    /// Lifetime raw (ECC-off) bit corruptions.
    pub raw_corruptions: u64,
}

impl Dimm {
    /// Creates a DIMM from its configuration.
    #[must_use]
    pub fn new(config: DimmConfig) -> Self {
        Dimm { config, corrected: 0, uncorrected: 0, raw_corruptions: 0 }
    }

    /// Number of 64-bit words on the DIMM.
    #[must_use]
    pub fn words(&self) -> u64 {
        self.config.capacity.bits() / 64
    }
}

/// Result of a full-memory test pass at one refresh setting — what the
/// paper's random-pattern experiments measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryScan {
    /// Refresh interval under test.
    pub refresh: Seconds,
    /// DIMM temperature during the scan.
    pub temp: Celsius,
    /// Bits scanned.
    pub bits: u64,
    /// Raw failing bits found (before any ECC).
    pub raw_bit_errors: u64,
    /// Errors ECC corrected (0 when ECC is off).
    pub corrected: u64,
    /// Errors ECC detected but could not correct.
    pub uncorrected: u64,
}

impl MemoryScan {
    /// Cumulative bit-error rate of the scan.
    #[must_use]
    pub fn ber(&self) -> BitErrorRate {
        BitErrorRate::from_counts(self.raw_bit_errors, self.bits)
    }
}

/// The memory system of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    dimms: Vec<Dimm>,
    retention: RetentionModel,
    power: DramPowerModel,
}

impl MemorySystem {
    /// Builds a memory system from DIMM configurations.
    ///
    /// # Panics
    ///
    /// Panics if `dimms` is empty.
    #[must_use]
    pub fn new(dimms: Vec<DimmConfig>, retention: RetentionModel, power: DramPowerModel) -> Self {
        assert!(!dimms.is_empty(), "a node needs memory");
        MemorySystem { dimms: dimms.into_iter().map(Dimm::new).collect(), retention, power }
    }

    /// The paper's commodity-server setup: four 8 GB DDR3 DIMMs across
    /// two channels/domains. Domain 0 is the *reliable* domain (kernel
    /// code and stack data, nominal refresh); domain 1 is the relaxed
    /// domain. ECC is configurable per experiment; the characterization
    /// ran with ECC disabled, so that is the default here.
    #[must_use]
    pub fn commodity_server(ecc_enabled: bool) -> Self {
        let mk = |domain| DimmConfig { capacity: Bytes::gib(8), ecc_enabled, domain };
        MemorySystem::new(
            vec![mk(DomainId(0)), mk(DomainId(0)), mk(DomainId(1)), mk(DomainId(1))],
            RetentionModel::ddr3_server(),
            DramPowerModel::ddr3_8gb(),
        )
    }

    /// Total capacity across DIMMs.
    #[must_use]
    pub fn total_capacity(&self) -> Bytes {
        self.dimms.iter().map(|d| d.config.capacity).sum()
    }

    /// Capacity belonging to one refresh domain.
    #[must_use]
    pub fn domain_capacity(&self, domain: DomainId) -> Bytes {
        self.dimms
            .iter()
            .filter(|d| d.config.domain == domain)
            .map(|d| d.config.capacity)
            .sum()
    }

    /// All distinct refresh domains present.
    #[must_use]
    pub fn domains(&self) -> Vec<DomainId> {
        let mut ds: Vec<DomainId> = self.dimms.iter().map(|d| d.config.domain).collect();
        ds.sort();
        ds.dedup();
        ds
    }

    /// Immutable view of the DIMMs.
    #[must_use]
    pub fn dimms(&self) -> &[Dimm] {
        &self.dimms
    }

    /// The retention model in force.
    #[must_use]
    pub fn retention(&self) -> &RetentionModel {
        &self.retention
    }

    /// Module power summed over DIMMs at the domain refresh settings in
    /// `msr` and the given utilization.
    #[must_use]
    pub fn power(&self, msr: &MsrFile, utilization: f64) -> Watts {
        self.dimms
            .iter()
            .map(|d| self.power.module_power(msr.refresh_interval(d.config.domain), utilization))
            .fold(Watts::ZERO, |a, b| a + b)
    }

    /// Performs a full test pass over one DIMM at an explicit refresh
    /// interval (the characterization primitive: write pattern, wait,
    /// read back, count flips). Exercises the SECDED codec for real when
    /// ECC is on.
    ///
    /// # Panics
    ///
    /// Panics if `dimm` is out of range.
    pub fn scan_dimm<R: Rng + ?Sized>(
        &mut self,
        dimm: usize,
        refresh: Seconds,
        temp: Celsius,
        rng: &mut R,
    ) -> MemoryScan {
        let words = self.dimms[dimm].words();
        let bits = words * 64;
        let expected = self.retention.expected_failures(refresh, temp, bits);
        let raw = poisson(rng, expected);

        // Distribute failing bits over words; collisions within a word
        // matter to ECC (two flips in one word defeat SECDED).
        let mut per_word: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
        for _ in 0..raw {
            let word = rng.gen_range(0..words);
            let bit = rng.gen_range(0..64u8);
            per_word.entry(word).or_default().push(bit);
        }

        let (mut corrected, mut uncorrected) = (0u64, 0u64);
        if self.dimms[dimm].config.ecc_enabled {
            // The scan exercises the real SECDED codec, but its inputs
            // repeat: the base pattern is constant and almost every
            // failing word carries exactly one flip. Run the codec once
            // per process for those cases and reuse the outcomes — a
            // characterization sweep decodes tens of failing words per
            // DIMM, which dominated its cost.
            static BASE_AND_SINGLES: std::sync::OnceLock<(u128, [bool; 64])> =
                std::sync::OnceLock::new();
            let (base_code, single_corrects) = BASE_AND_SINGLES.get_or_init(|| {
                let code = Secded72::encode(0x5555_5555_5555_5555);
                let mut corrects = [false; 64];
                for (b, entry) in corrects.iter_mut().enumerate() {
                    *entry = matches!(
                        Secded72::decode(Secded72::flip_bit(code, b as u8)),
                        DecodeOutcome::Corrected { .. }
                    );
                }
                (code, corrects)
            });
            for bits_in_word in per_word.values() {
                match bits_in_word[..] {
                    // Single flip: the precomputed codec outcome.
                    [b] if single_corrects[b as usize] => corrected += 1,
                    [_] => uncorrected += 1,
                    // Multi-flip words (rare collisions): run the codec.
                    _ => {
                        let mut code = *base_code;
                        for &b in bits_in_word {
                            // Map the data-bit index onto a codeword
                            // position by flipping through the encoder's
                            // data layout: flipping any distinct codeword
                            // bits is equivalent for SECDED behaviour.
                            code = Secded72::flip_bit(code, b);
                        }
                        match Secded72::decode(code) {
                            DecodeOutcome::Clean { .. } => {}
                            DecodeOutcome::Corrected { .. } => corrected += 1,
                            DecodeOutcome::Uncorrectable => uncorrected += 1,
                        }
                    }
                }
            }
        }

        let d = &mut self.dimms[dimm];
        d.corrected += corrected;
        d.uncorrected += uncorrected;
        if !d.config.ecc_enabled {
            d.raw_corruptions += raw;
        }
        MemoryScan { refresh, temp, bits, raw_bit_errors: raw, corrected, uncorrected }
    }

    /// Samples runtime retention errors over a deployment interval and
    /// returns machine-check records. Each refresh window re-exposes the
    /// weak cells; `touch_fraction` models how much of memory the
    /// workload actually reads (undiscovered corruption stays silent,
    /// exactly the hazard the hypervisor's reliable domain avoids).
    ///
    /// # Panics
    ///
    /// Panics if `touch_fraction` is outside `[0, 1]`.
    pub fn step_errors<R: Rng + ?Sized>(
        &mut self,
        msr: &MsrFile,
        temp: Celsius,
        duration: Seconds,
        now: Seconds,
        touch_fraction: f64,
        rng: &mut R,
    ) -> Vec<MceRecord> {
        let mut records = Vec::new();
        self.step_errors_into(msr, temp, duration, now, touch_fraction, rng, &mut records);
        records
    }

    /// Like [`MemorySystem::step_errors`], but appends into a
    /// caller-provided buffer — the serving tick's allocation-free path
    /// (nominal intervals produce no records, so no buffer ever grows).
    ///
    /// # Panics
    ///
    /// Panics if `touch_fraction` is outside `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn step_errors_into<R: Rng + ?Sized>(
        &mut self,
        msr: &MsrFile,
        temp: Celsius,
        duration: Seconds,
        now: Seconds,
        touch_fraction: f64,
        rng: &mut R,
        records: &mut Vec<MceRecord>,
    ) {
        assert!((0.0..=1.0).contains(&touch_fraction), "touch fraction must be in [0, 1]");
        for i in 0..self.dimms.len() {
            let (interval, words, ecc) = {
                let d = &self.dimms[i];
                (msr.refresh_interval(d.config.domain), d.words(), d.config.ecc_enabled)
            };
            let windows = (duration.as_secs() / interval.as_secs()).max(0.0);
            let expected = self.retention.expected_failures(interval, temp, words * 64)
                * windows
                * touch_fraction;
            let hits = poisson(rng, expected);
            for _ in 0..hits {
                let word = rng.gen_range(0..words);
                let severity = if ecc {
                    // Single retention failure per word per window:
                    // SECDED corrects it.
                    ErrorSeverity::Corrected
                } else {
                    ErrorSeverity::Uncorrected
                };
                let d = &mut self.dimms[i];
                match severity {
                    ErrorSeverity::Corrected => d.corrected += 1,
                    _ => d.raw_corruptions += 1,
                }
                records.push(MceRecord {
                    at: now,
                    kind: FaultKind::DramBit,
                    severity,
                    origin: ErrorOrigin::Dimm { dimm: i, word },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(31)
    }

    fn msr_with(relaxed: Seconds) -> MsrFile {
        let mut m = MsrFile::new(uniserver_units::Volts::new(0.98), 2, 2);
        m.set_refresh_interval(DomainId(1), relaxed).unwrap();
        m
    }

    #[test]
    fn commodity_topology_matches_paper() {
        let mem = MemorySystem::commodity_server(false);
        assert_eq!(mem.total_capacity(), Bytes::gib(32));
        assert_eq!(mem.domains(), vec![DomainId(0), DomainId(1)]);
        assert_eq!(mem.domain_capacity(DomainId(0)), Bytes::gib(16));
    }

    #[test]
    fn scan_at_nominal_refresh_is_clean() {
        let mut mem = MemorySystem::commodity_server(false);
        let scan = mem.scan_dimm(0, Seconds::from_millis(64.0), Celsius::new(45.0), &mut rng());
        assert_eq!(scan.raw_bit_errors, 0);
        assert_eq!(scan.ber(), BitErrorRate::ZERO);
    }

    #[test]
    fn scan_at_1_5s_is_usually_clean_and_5s_is_order_1e9() {
        let mut mem = MemorySystem::commodity_server(false);
        let mut r = rng();
        let temp = Celsius::new(45.0);
        let mut errors_1_5 = 0u64;
        let mut errors_5 = 0u64;
        for _ in 0..20 {
            errors_1_5 += mem.scan_dimm(2, Seconds::new(1.5), temp, &mut r).raw_bit_errors;
            errors_5 += mem.scan_dimm(2, Seconds::new(5.0), temp, &mut r).raw_bit_errors;
        }
        assert!(errors_1_5 <= 5, "1.5 s should be (nearly) error-free, got {errors_1_5}");
        // 20 scans × ~68.7 expected failures ≈ 1374.
        assert!(errors_5 > 500 && errors_5 < 3_000, "5 s errors {errors_5}");
    }

    #[test]
    fn ecc_corrects_isolated_retention_failures() {
        let mut mem = MemorySystem::commodity_server(true);
        let mut r = rng();
        let scan = mem.scan_dimm(3, Seconds::new(8.0), Celsius::new(55.0), &mut r);
        assert!(scan.raw_bit_errors > 0, "this aggressive point must produce raw errors");
        assert!(scan.corrected > 0);
        // At these densities nearly every failing word has exactly one
        // failing bit, so corrections dominate.
        assert!(scan.corrected >= scan.uncorrected * 10);
    }

    #[test]
    fn step_errors_only_in_relaxed_domain() {
        let mut mem = MemorySystem::commodity_server(false);
        let msr = msr_with(Seconds::new(5.0));
        let mut r = rng();
        let recs = mem.step_errors(
            &msr,
            Celsius::new(45.0),
            Seconds::new(60.0),
            Seconds::ZERO,
            1.0,
            &mut r,
        );
        assert!(!recs.is_empty(), "a minute at 5 s refresh must surface errors");
        for rec in &recs {
            let ErrorOrigin::Dimm { dimm, .. } = rec.origin else {
                panic!("unexpected origin {:?}", rec.origin)
            };
            assert!(dimm >= 2, "reliable-domain DIMM {dimm} produced an error");
            assert_eq!(rec.severity, ErrorSeverity::Uncorrected, "ECC off means raw corruption");
        }
    }

    #[test]
    fn touch_fraction_scales_discovery() {
        let mut mem_full = MemorySystem::commodity_server(false);
        let mut mem_idle = MemorySystem::commodity_server(false);
        let msr = msr_with(Seconds::new(5.0));
        let mut r = rng();
        let full: usize = (0..20)
            .map(|_| {
                mem_full
                    .step_errors(&msr, Celsius::new(45.0), Seconds::new(30.0), Seconds::ZERO, 1.0, &mut r)
                    .len()
            })
            .sum();
        let idle: usize = (0..20)
            .map(|_| {
                mem_idle
                    .step_errors(&msr, Celsius::new(45.0), Seconds::new(30.0), Seconds::ZERO, 0.05, &mut r)
                    .len()
            })
            .sum();
        assert!(idle * 5 < full, "idle {idle} should be far below full {full}");
    }

    #[test]
    fn dram_power_drops_with_relaxed_refresh() {
        let mem = MemorySystem::commodity_server(false);
        let nominal = mem.power(&msr_with(Seconds::from_millis(64.0)), 0.5);
        let relaxed = mem.power(&msr_with(Seconds::new(1.5)), 0.5);
        assert!(relaxed < nominal);
    }

    #[test]
    #[should_panic(expected = "needs memory")]
    fn empty_memory_panics() {
        let _ = MemorySystem::new(vec![], RetentionModel::ddr3_server(), DramPowerModel::ddr3_8gb());
    }
}
