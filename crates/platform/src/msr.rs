//! Model-specific registers: the software-visible control plane.
//!
//! The paper's undervolting experiments drive Intel's voltage-offset MSRs;
//! its DRAM experiments drive a per-channel refresh-interval control. This
//! module models that register file: bounded, validated writes with the
//! same semantics (offsets are *subtracted* from the nominal VID; refresh
//! intervals are set per memory domain).

use serde::{Deserialize, Serialize};
use uniserver_units::{Seconds, Volts};

/// Identifier of a DRAM refresh domain (one per channel in the paper's
/// setup, §6.B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DomainId(pub usize);

impl std::fmt::Display for DomainId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "domain{}", self.0)
    }
}

/// Error returned for invalid register writes.
#[derive(Debug, Clone, PartialEq)]
pub enum MsrWriteError {
    /// The requested voltage offset exceeds the hardware limit.
    OffsetOutOfRange {
        /// Requested offset in millivolts.
        requested_mv: f64,
        /// Hardware maximum in millivolts.
        limit_mv: f64,
    },
    /// The requested refresh interval lies outside the controller's range.
    RefreshOutOfRange {
        /// Requested interval.
        requested: Seconds,
        /// Controller minimum.
        min: Seconds,
        /// Controller maximum.
        max: Seconds,
    },
    /// The addressed core does not exist.
    NoSuchCore(usize),
    /// The addressed refresh domain does not exist.
    NoSuchDomain(DomainId),
}

impl std::fmt::Display for MsrWriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsrWriteError::OffsetOutOfRange { requested_mv, limit_mv } => {
                write!(f, "voltage offset {requested_mv} mV exceeds the {limit_mv} mV hardware limit")
            }
            MsrWriteError::RefreshOutOfRange { requested, min, max } => {
                write!(f, "refresh interval {requested} outside controller range [{min}, {max}]")
            }
            MsrWriteError::NoSuchCore(c) => write!(f, "no such core: {c}"),
            MsrWriteError::NoSuchDomain(d) => write!(f, "no such refresh domain: {d}"),
        }
    }
}

impl std::error::Error for MsrWriteError {}

/// The modeled register file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MsrFile {
    nominal_voltage: Volts,
    /// Per-core undervolt offsets in millivolts (subtracted from nominal).
    core_offsets_mv: Vec<f64>,
    /// Hardware limit on the offset magnitude.
    offset_limit_mv: f64,
    /// Per-domain refresh intervals.
    refresh: Vec<Seconds>,
    refresh_min: Seconds,
    refresh_max: Seconds,
}

impl MsrFile {
    /// Creates a register file for `cores` cores and `domains` refresh
    /// domains, all at nominal settings.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `domains` is zero.
    #[must_use]
    pub fn new(nominal_voltage: Volts, cores: usize, domains: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(domains > 0, "need at least one refresh domain");
        MsrFile {
            nominal_voltage,
            core_offsets_mv: vec![0.0; cores],
            // Intel's FIVR offset field covers roughly ±250 mV.
            offset_limit_mv: 250.0,
            refresh: vec![Seconds::from_millis(64.0); domains],
            refresh_min: Seconds::from_millis(1.0),
            refresh_max: Seconds::new(10.0),
        }
    }

    /// Number of cores addressed by this register file.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.core_offsets_mv.len()
    }

    /// Number of refresh domains.
    #[must_use]
    pub fn domains(&self) -> usize {
        self.refresh.len()
    }

    /// Hardware limit on the undervolt offset magnitude, in millivolts.
    /// Campaigns must clamp their sweeps to this; writes beyond it fail.
    #[must_use]
    pub fn offset_limit_mv(&self) -> f64 {
        self.offset_limit_mv
    }

    /// Writes an undervolt offset (millivolts below nominal) for a core.
    ///
    /// # Errors
    ///
    /// Returns [`MsrWriteError::NoSuchCore`] or
    /// [`MsrWriteError::OffsetOutOfRange`] on invalid input; negative
    /// offsets (overvolting) are rejected the same way.
    pub fn set_voltage_offset(&mut self, core: usize, offset_mv: f64) -> Result<(), MsrWriteError> {
        if core >= self.core_offsets_mv.len() {
            return Err(MsrWriteError::NoSuchCore(core));
        }
        if !(0.0..=self.offset_limit_mv).contains(&offset_mv) {
            return Err(MsrWriteError::OffsetOutOfRange {
                requested_mv: offset_mv,
                limit_mv: self.offset_limit_mv,
            });
        }
        self.core_offsets_mv[core] = offset_mv;
        Ok(())
    }

    /// Writes the same undervolt offset to every core.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MsrFile::set_voltage_offset`].
    pub fn set_voltage_offset_all(&mut self, offset_mv: f64) -> Result<(), MsrWriteError> {
        for core in 0..self.cores() {
            self.set_voltage_offset(core, offset_mv)?;
        }
        Ok(())
    }

    /// The undervolt offset currently applied to a core, in millivolts.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range (reads of unmapped MSRs fault).
    #[must_use]
    pub fn voltage_offset_mv(&self, core: usize) -> f64 {
        self.core_offsets_mv[core]
    }

    /// The effective supply voltage of a core (nominal minus offset).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    #[must_use]
    pub fn effective_voltage(&self, core: usize) -> Volts {
        self.nominal_voltage
            .saturating_sub(Volts::from_millivolts(self.core_offsets_mv[core]))
    }

    /// The nominal voltage the offsets are relative to.
    #[must_use]
    pub fn nominal_voltage(&self) -> Volts {
        self.nominal_voltage
    }

    /// Sets the refresh interval of one memory domain.
    ///
    /// # Errors
    ///
    /// Returns [`MsrWriteError::NoSuchDomain`] or
    /// [`MsrWriteError::RefreshOutOfRange`] on invalid input.
    pub fn set_refresh_interval(
        &mut self,
        domain: DomainId,
        interval: Seconds,
    ) -> Result<(), MsrWriteError> {
        let Some(slot) = self.refresh.get_mut(domain.0) else {
            return Err(MsrWriteError::NoSuchDomain(domain));
        };
        if interval < self.refresh_min || interval > self.refresh_max {
            return Err(MsrWriteError::RefreshOutOfRange {
                requested: interval,
                min: self.refresh_min,
                max: self.refresh_max,
            });
        }
        *slot = interval;
        Ok(())
    }

    /// The refresh interval of one memory domain.
    ///
    /// # Panics
    ///
    /// Panics if the domain does not exist.
    #[must_use]
    pub fn refresh_interval(&self, domain: DomainId) -> Seconds {
        self.refresh[domain.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msr() -> MsrFile {
        MsrFile::new(Volts::new(0.844), 2, 2)
    }

    #[test]
    fn defaults_are_nominal() {
        let m = msr();
        assert_eq!(m.effective_voltage(0), Volts::new(0.844));
        assert_eq!(m.refresh_interval(DomainId(0)), Seconds::from_millis(64.0));
        assert_eq!(m.cores(), 2);
        assert_eq!(m.domains(), 2);
    }

    #[test]
    fn offset_lowers_effective_voltage() {
        let mut m = msr();
        m.set_voltage_offset(1, 84.4).unwrap();
        assert!((m.effective_voltage(1).as_millivolts() - 759.6).abs() < 1e-9);
        // Core 0 is unaffected: per-core domains.
        assert_eq!(m.effective_voltage(0), Volts::new(0.844));
    }

    #[test]
    fn offset_all_hits_every_core() {
        let mut m = msr();
        m.set_voltage_offset_all(50.0).unwrap();
        assert_eq!(m.voltage_offset_mv(0), 50.0);
        assert_eq!(m.voltage_offset_mv(1), 50.0);
    }

    #[test]
    fn excessive_offset_is_rejected() {
        let mut m = msr();
        let err = m.set_voltage_offset(0, 400.0).unwrap_err();
        assert!(matches!(err, MsrWriteError::OffsetOutOfRange { .. }));
        assert_eq!(m.voltage_offset_mv(0), 0.0, "failed writes must not change state");
    }

    #[test]
    fn overvolting_is_rejected() {
        let mut m = msr();
        assert!(m.set_voltage_offset(0, -10.0).is_err());
    }

    #[test]
    fn unknown_core_is_rejected() {
        let mut m = msr();
        assert_eq!(m.set_voltage_offset(7, 10.0), Err(MsrWriteError::NoSuchCore(7)));
    }

    #[test]
    fn refresh_domains_are_independent() {
        let mut m = msr();
        m.set_refresh_interval(DomainId(1), Seconds::new(1.5)).unwrap();
        assert_eq!(m.refresh_interval(DomainId(0)), Seconds::from_millis(64.0));
        assert_eq!(m.refresh_interval(DomainId(1)), Seconds::new(1.5));
    }

    #[test]
    fn refresh_bounds_are_enforced() {
        let mut m = msr();
        assert!(m.set_refresh_interval(DomainId(0), Seconds::new(60.0)).is_err());
        assert!(m.set_refresh_interval(DomainId(0), Seconds::from_micros(10.0)).is_err());
        assert!(m.set_refresh_interval(DomainId(9), Seconds::new(1.0)).is_err());
    }

    #[test]
    fn errors_render_useful_messages() {
        let mut m = msr();
        let e = m.set_voltage_offset(0, 400.0).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
        let e = m.set_refresh_interval(DomainId(0), Seconds::new(60.0)).unwrap_err();
        assert!(e.to_string().contains("outside controller range"));
    }
}
