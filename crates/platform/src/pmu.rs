//! Performance-monitoring unit: the counters HealthLog vectors carry.
//!
//! Counters accumulate monotonically, as in hardware; consumers snapshot
//! and difference them. The node derives counter increments from the
//! active workload profile (IPC, MPKI, bandwidth) and the elapsed cycles.

use serde::{Deserialize, Serialize};
use uniserver_units::{Megahertz, Seconds};

use crate::workload::WorkloadProfile;

/// Monotonic counter state of one core's PMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PmuCounters {
    /// Core clock cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Last-level-cache misses.
    pub llc_misses: u64,
    /// Bytes moved to/from DRAM.
    pub dram_bytes: u64,
}

impl PmuCounters {
    /// Fresh, zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        PmuCounters::default()
    }

    /// Advances the counters for `interval` of the given workload at the
    /// given frequency. Returns the increment that was applied.
    pub fn advance(
        &mut self,
        workload: &WorkloadProfile,
        frequency: Megahertz,
        interval: Seconds,
    ) -> PmuCounters {
        let cycles = frequency.cycles_in(interval);
        let instructions = cycles * workload.ipc;
        let llc_misses = instructions / 1_000.0 * workload.cache_mpki;
        // A stylized 12.8 GB/s channel, scaled by the profile's bandwidth
        // utilization.
        let dram_bytes = 12.8e9 * workload.mem_bw_util * interval.as_secs();

        let delta = PmuCounters {
            cycles: cycles as u64,
            instructions: instructions as u64,
            llc_misses: llc_misses as u64,
            dram_bytes: dram_bytes as u64,
        };
        self.cycles += delta.cycles;
        self.instructions += delta.instructions;
        self.llc_misses += delta.llc_misses;
        self.dram_bytes += delta.dram_bytes;
        delta
    }

    /// Difference `self - earlier`, for snapshot-based monitoring.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is not actually earlier (counters are
    /// monotonic; a regression indicates state corruption).
    #[must_use]
    pub fn since(&self, earlier: &PmuCounters) -> PmuCounters {
        assert!(
            self.cycles >= earlier.cycles
                && self.instructions >= earlier.instructions
                && self.llc_misses >= earlier.llc_misses
                && self.dram_bytes >= earlier.dram_bytes,
            "counter regression: snapshot is not earlier"
        );
        PmuCounters {
            cycles: self.cycles - earlier.cycles,
            instructions: self.instructions - earlier.instructions,
            llc_misses: self.llc_misses - earlier.llc_misses,
            dram_bytes: self.dram_bytes - earlier.dram_bytes,
        }
    }

    /// Instructions per cycle over this counter window.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// LLC misses per kilo-instruction over this counter window.
    #[must_use]
    pub fn mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1_000.0 / self.instructions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_reflects_workload() {
        let mut pmu = PmuCounters::new();
        let delta =
            pmu.advance(&WorkloadProfile::spec_namd(), Megahertz::from_ghz(2.0), Seconds::new(1.0));
        assert_eq!(delta.cycles, 2_000_000_000);
        assert!((delta.instructions as f64 / delta.cycles as f64 - 2.1).abs() < 0.01);
        assert_eq!(pmu.cycles, delta.cycles, "accumulator matches first delta");
    }

    #[test]
    fn counters_are_monotonic() {
        let mut pmu = PmuCounters::new();
        let w = WorkloadProfile::spec_mcf();
        let f = Megahertz::from_ghz(2.6);
        let mut last = PmuCounters::new();
        for _ in 0..5 {
            pmu.advance(&w, f, Seconds::from_millis(100.0));
            assert!(pmu.cycles >= last.cycles && pmu.dram_bytes >= last.dram_bytes);
            last = pmu;
        }
    }

    #[test]
    fn since_computes_window() {
        let mut pmu = PmuCounters::new();
        let w = WorkloadProfile::spec_bzip2();
        let f = Megahertz::from_ghz(1.0);
        pmu.advance(&w, f, Seconds::new(1.0));
        let snap = pmu;
        pmu.advance(&w, f, Seconds::new(1.0));
        let window = pmu.since(&snap);
        assert_eq!(window.cycles, 1_000_000_000);
    }

    #[test]
    fn derived_rates_match_profile() {
        let mut pmu = PmuCounters::new();
        let w = WorkloadProfile::spec_mcf();
        pmu.advance(&w, Megahertz::from_ghz(2.6), Seconds::new(2.0));
        assert!((pmu.ipc() - w.ipc).abs() < 0.01);
        assert!((pmu.mpki() - w.cache_mpki).abs() < 0.5);
    }

    #[test]
    fn empty_window_rates_are_zero() {
        let pmu = PmuCounters::new();
        assert_eq!(pmu.ipc(), 0.0);
        assert_eq!(pmu.mpki(), 0.0);
    }

    #[test]
    #[should_panic(expected = "counter regression")]
    fn since_rejects_regression() {
        let mut pmu = PmuCounters::new();
        pmu.advance(&WorkloadProfile::idle(), Megahertz::from_ghz(1.0), Seconds::new(1.0));
        let later = pmu;
        let _ = PmuCounters::new().since(&later);
    }
}
