//! Reduce-side bookkeeping of the serving loop.
//!
//! The per-node phase of a tick is sharded across workers (see
//! [`uniserver_cloudmgr::cluster::Cluster::tick_sharded`]); everything
//! in this module runs **after** the parallel phase, sequentially, on
//! the orchestrator's thread — event drains, SLA charging and
//! failure-driven recovery are placement-mutating and stay serial so a
//! run is a pure function of its configuration.
//!
//! Two accounting rules live here and are locked by tests:
//!
//! * **crash events vs. crashed nodes** — `crashes` / `part_crashes`
//!   count *events* (one per platform-surfaced [`CrashEvent`]), but a
//!   node surfacing several events in one tick recovers — and backs off
//!   its operating point — exactly **once**; compounding the 25 % EOP
//!   backoff per event would overdrive healthy margins back to nominal.
//! * **end-of-horizon drain** — the in-loop drain fires events due at
//!   each tick *start*, so departures and settlements due in the final
//!   `(last tick start, horizon]` window are drained once more after
//!   the loop; without it `completed` / `migrations_settled`
//!   undercount and the `placed = completed + evicted + live_at_end`
//!   tie-out only balances through `live_at_end`.

use std::collections::VecDeque;

use uniserver_cloudmgr::cluster::{Cluster, Placement};
use uniserver_cloudmgr::lifecycle::FailureLifecycle;
use uniserver_cloudmgr::node::NodeId;
use uniserver_cloudmgr::sla::SlaClass;
use uniserver_cloudmgr::stream::Arrival;
use uniserver_core::eop::OperatingPoint;
use uniserver_platform::node::CrashEvent;
use uniserver_telemetry::{Telemetry, TraceEvent};
use uniserver_units::Seconds;

use crate::config::{AdmissionPolicy, MarginPolicy};
use crate::events::{Event, EventQueue};
use crate::summary::ClassStats;

/// Index of a class in the gold/silver/bronze accounting arrays.
pub(crate) fn class_idx(class: SlaClass) -> usize {
    match class {
        SlaClass::Gold => 0,
        SlaClass::Silver => 1,
        SlaClass::Bronze => 2,
    }
}

/// Class labels in accounting-array order, for telemetry payloads.
pub(crate) const CLASS_NAMES: [&str; 3] = ["gold", "silver", "bronze"];

/// Per-class time-to-abandon histogram names (telemetry keys are
/// `&'static str`, so the class rides in the name).
const ABANDON_WAIT: [&str; 3] =
    ["abandon_wait_ticks_gold", "abandon_wait_ticks_silver", "abandon_wait_ticks_bronze"];

/// One rejected arrival waiting in the re-admission queue.
#[derive(Debug)]
pub(crate) struct PendingArrival {
    pub arrival: Arrival,
    /// Re-offer attempts remaining before it is abandoned.
    pub retries_left: u32,
    /// Tick the original offer was rejected on — queue-wait and
    /// time-to-abandon telemetry measure from here.
    pub offered_tick: u64,
}

/// The bounded per-class re-admission queue behind an
/// [`AdmissionPolicy`]. Rejections whose class has a non-zero retry
/// budget wait here and are re-offered at the start of each subsequent
/// tick, gold first; the legacy `drop_all` policy keeps every queue
/// permanently empty.
#[derive(Debug)]
pub(crate) struct RetryQueue {
    policy: AdmissionPolicy,
    pending: [VecDeque<PendingArrival>; 3],
}

impl RetryQueue {
    pub fn new(policy: AdmissionPolicy) -> Self {
        RetryQueue { policy, pending: [VecDeque::new(), VecDeque::new(), VecDeque::new()] }
    }

    /// Rejections currently waiting, across all classes.
    pub fn pending_len(&self) -> usize {
        self.pending.iter().map(VecDeque::len).sum()
    }
}

/// The serving loop's running totals — everything the summary reports
/// that is not an end-of-run fleet metric.
#[derive(Debug)]
pub(crate) struct ServeCounters {
    pub offered: u64,
    pub placed: u64,
    pub rejected: u64,
    pub retried: u64,
    pub abandoned: u64,
    pub completed: u64,
    pub evicted: u64,
    /// Platform-surfaced crash *events* (a node can surface several in
    /// one tick; recovery still runs once per node).
    pub crashes: u64,
    pub crash_migrations: u64,
    pub settled: u64,
    pub sla_violations: u64,
    pub per_class: [ClassStats; 3],
    /// Crash events attributed per part-mix entry.
    pub part_crashes: Vec<u64>,
    pub energy_j: f64,
    /// Of `abandoned`: still queued when the horizon flushed them.
    pub expired_at_horizon: u64,
    /// Placements shed (bronze first) to free capacity for premium
    /// re-offers while nodes were offline.
    pub shed: u64,
    /// Synthetic crash events injected by the chaos plan.
    pub injected_crashes: u64,
    /// Times a crashed node was taken offline for repair (lifecycle).
    pub nodes_offlined: u64,
    /// Repairs that finished and rejoined within the horizon.
    pub rejoins: u64,
    /// Summed offline node-seconds.
    pub downtime_secs: f64,
    /// Peak simultaneously-offline node count.
    pub peak_offline: u64,
    /// Summed asleep node-seconds (power-managing policies only).
    pub asleep_node_secs: f64,
    /// Peak simultaneously-asleep node count.
    pub peak_asleep: u64,
    /// Gray-failure onsets injected by the chaos plan.
    pub gray_onsets: u64,
    /// Watchdog probes that failed.
    pub probe_failures: u64,
    /// Nodes the watchdog quarantined (K-of-N trip).
    pub quarantines: u64,
    /// Quarantined nodes that survived probation and rejoined.
    pub readmissions: u64,
    /// Summed degraded node-seconds (gray onset until clear/readmit).
    pub degraded_node_secs: f64,
    /// Peak simultaneously-degraded node count.
    pub peak_degraded: u64,
    /// Accumulated fleet-draw excess over the brownout cap, in W·s.
    pub powercap_deficit_watt_secs: f64,
    /// Placements shed (bronze first) to get back under a power cap.
    pub powercap_sheds: u64,
}

impl ServeCounters {
    /// Zeroed counters for a rack drawn from `parts` part-mix entries.
    pub fn new(parts: usize) -> Self {
        ServeCounters {
            offered: 0,
            placed: 0,
            rejected: 0,
            retried: 0,
            abandoned: 0,
            completed: 0,
            evicted: 0,
            crashes: 0,
            crash_migrations: 0,
            settled: 0,
            sla_violations: 0,
            per_class: [ClassStats::default(); 3],
            part_crashes: vec![0; parts],
            energy_j: 0.0,
            expired_at_horizon: 0,
            shed: 0,
            injected_crashes: 0,
            nodes_offlined: 0,
            rejoins: 0,
            downtime_secs: 0.0,
            peak_offline: 0,
            asleep_node_secs: 0.0,
            peak_asleep: 0,
            gray_onsets: 0,
            probe_failures: 0,
            quarantines: 0,
            readmissions: 0,
            degraded_node_secs: 0.0,
            peak_degraded: 0,
            powercap_deficit_watt_secs: 0.0,
            powercap_sheds: 0,
        }
    }

    /// Fires every event due at or before `until`, earliest first:
    /// departures terminate their placement (completions), settlements
    /// close their migration's books. Returns the completions fired by
    /// this drain (the per-tick series' `completed` column). Called
    /// once per tick with the tick-start time and once after the loop
    /// with the horizon, so events due in the final partial window
    /// still fire.
    pub fn drain_due(&mut self, queue: &mut EventQueue, cluster: &mut Cluster, until: Seconds) -> u64 {
        let mut completed_now = 0;
        while let Some((_, event)) = queue.pop_due(until) {
            match event {
                Event::Departure(id) => {
                    // False = the placement was evicted earlier; the
                    // eviction already accounted for it.
                    if cluster.terminate_by_id(id) {
                        self.completed += 1;
                        completed_now += 1;
                    }
                }
                Event::MigrationSettled(_) => self.settled += 1,
            }
        }
        completed_now
    }

    /// Offers one first-time arrival to the scheduler. A placement
    /// schedules its departure and returns `true`; a rejection is
    /// counted and then either queued for re-admission (class budget
    /// and queue depth permitting) or abandoned on the spot — the
    /// legacy drop-on-rejection path is exactly the zero-budget case.
    #[allow(clippy::too_many_arguments)]
    pub fn admit(
        &mut self,
        retry: &mut RetryQueue,
        cluster: &mut Cluster,
        queue: &mut EventQueue,
        arrival: Arrival,
        now: Seconds,
        tick: u64,
        tel: &mut Telemetry,
    ) -> bool {
        self.offered += 1;
        let class = class_idx(arrival.class);
        let label = CLASS_NAMES[class];
        self.per_class[class].offered += 1;
        tel.inc("arrivals");
        tel.emit(&TraceEvent::Arrival { class: label });
        let budget = retry.policy.retry_budget[class];
        // Only a retryable class pays for the config clone the re-offer
        // needs; the legacy path submits the original untouched.
        let backup = (budget > 0).then(|| arrival.config.clone());
        match cluster.submit(arrival.config, arrival.class) {
            Some(placement) => {
                self.placed += 1;
                self.per_class[class].placed += 1;
                queue.schedule(now + arrival.lifetime, Event::Departure(placement.id));
                tel.inc("placed");
                tel.record("queue_wait_ticks", 0);
                tel.record("vm_lifetime_ticks", tel.lifetime_ticks(arrival.lifetime.as_secs()));
                tel.emit(&TraceEvent::Place {
                    class: label,
                    node: u64::from(placement.node.0),
                    placement: placement.id.0,
                    wait_ticks: 0,
                });
                true
            }
            None => {
                self.rejected += 1;
                self.per_class[class].rejected += 1;
                tel.inc("rejected");
                tel.emit(&TraceEvent::Reject { class: label });
                match backup {
                    Some(config) if retry.pending[class].len() < retry.policy.queue_depth => {
                        retry.pending[class].push_back(PendingArrival {
                            arrival: Arrival { config, class: arrival.class, lifetime: arrival.lifetime },
                            retries_left: budget,
                            offered_tick: tick,
                        });
                    }
                    // Budget zero or queue full: dropped for good.
                    _ => self.abandon(class, 0, tel),
                }
                false
            }
        }
    }

    /// Re-offers queued rejections at the start of a tick, gold first,
    /// into whatever capacity departures and crash recovery just freed.
    /// Only the entries queued before this call are drained; a re-offer
    /// that fails again burns one unit of budget and requeues behind
    /// them for the next tick (or abandons at zero). Returns the
    /// placements made, for the per-tick series.
    ///
    /// With `shed` set (graceful degradation), a premium re-offer that
    /// fails *while nodes are offline* sheds one lower-class placement
    /// — bronze first — so the next tick's re-offer lands in the freed
    /// slot; a shed counts as an eviction, so the SLA books still tie
    /// out.
    #[allow(clippy::too_many_arguments)]
    pub fn reoffer_pending(
        &mut self,
        retry: &mut RetryQueue,
        cluster: &mut Cluster,
        queue: &mut EventQueue,
        now: Seconds,
        tick: u64,
        shed: bool,
        tel: &mut Telemetry,
    ) -> u64 {
        let mut placed_now = 0;
        #[allow(clippy::needless_range_loop)] // class indexes four parallel arrays
        for class in 0..3 {
            let label = CLASS_NAMES[class];
            let budget = retry.policy.retry_budget[class];
            let waiting = retry.pending[class].len();
            for _ in 0..waiting {
                let Some(mut p) = retry.pending[class].pop_front() else { break };
                self.retried += 1;
                self.per_class[class].retried += 1;
                tel.inc("reoffered");
                tel.emit(&TraceEvent::Reoffer {
                    class: label,
                    retries_left: u64::from(p.retries_left - 1),
                });
                let backup = (p.retries_left > 1).then(|| p.arrival.config.clone());
                let lifetime = p.arrival.lifetime;
                match cluster.submit(p.arrival.config, p.arrival.class) {
                    Some(placement) => {
                        self.placed += 1;
                        placed_now += 1;
                        self.per_class[class].placed += 1;
                        queue.schedule(now + lifetime, Event::Departure(placement.id));
                        let wait = tick - p.offered_tick;
                        tel.inc("placed");
                        tel.record("queue_wait_ticks", wait);
                        tel.record("vm_lifetime_ticks", tel.lifetime_ticks(lifetime.as_secs()));
                        tel.record("retry_depth", u64::from(budget - p.retries_left + 1));
                        tel.emit(&TraceEvent::Place {
                            class: label,
                            node: u64::from(placement.node.0),
                            placement: placement.id.0,
                            wait_ticks: wait,
                        });
                    }
                    None => {
                        self.rejected += 1;
                        self.per_class[class].rejected += 1;
                        tel.inc("rejected");
                        tel.emit(&TraceEvent::Reject { class: label });
                        p.retries_left -= 1;
                        match backup {
                            Some(config) => {
                                p.arrival.config = config;
                                retry.pending[class].push_back(p);
                                // Degraded capacity plus a premium
                                // arrival still waiting: make room.
                                if shed && class < 2 && cluster.offline_count() > 0 {
                                    self.shed_lowest(cluster, class, tel);
                                }
                            }
                            None => self.abandon(class, tick - p.offered_tick, tel),
                        }
                    }
                }
            }
        }
        placed_now
    }

    /// Sheds one placement of the lowest class below `above_class` —
    /// bronze before silver, and within a class the youngest placement
    /// (highest [`Placement`] id) — stopping its VM early. The shed is
    /// charged as an eviction (it *is* an SLA violation) and its later
    /// departure event no-ops. Returns whether a victim existed.
    fn shed_lowest(&mut self, cluster: &mut Cluster, above_class: usize, tel: &mut Telemetry) -> bool {
        for class in ((above_class + 1)..3).rev() {
            let victim = cluster
                .placements()
                .iter()
                .filter(|p| class_idx(p.class) == class)
                .max_by_key(|p| p.id)
                .cloned();
            if let Some(victim) = victim {
                let terminated = cluster.terminate_by_id(victim.id);
                debug_assert!(terminated, "a tracked placement terminates exactly once");
                self.shed += 1;
                self.per_class[class].shed += 1;
                tel.inc("shed");
                tel.emit(&TraceEvent::Shed {
                    class: CLASS_NAMES[class],
                    node: u64::from(victim.node.0),
                    placement: victim.id.0,
                });
                self.charge_eviction(&victim, tel);
                return true;
            }
        }
        false
    }

    /// Sheds up to `count` placements bronze-first to pull the fleet
    /// back under a brownout power cap. Each shed goes through the same
    /// books as a capacity shed — charged as an eviction (the cap *is*
    /// an SLA event) — plus the power-cap counter. Returns how many
    /// victims actually existed.
    pub fn shed_for_powercap(
        &mut self,
        cluster: &mut Cluster,
        count: usize,
        tel: &mut Telemetry,
    ) -> u64 {
        let mut done = 0u64;
        for _ in 0..count {
            // above_class 0: bronze then silver are fair game, gold is
            // never shed for power.
            if !self.shed_lowest(cluster, 0, tel) {
                break;
            }
            self.powercap_sheds += 1;
            done += 1;
        }
        done
    }

    /// Abandons everything still queued — called once when the horizon
    /// ends, so `offered = placed + abandoned` ties out. These drops are
    /// counted separately from budget-exhausted abandons: the horizon
    /// expired them while they were still waiting for a verdict.
    pub fn flush_pending(&mut self, retry: &mut RetryQueue, final_tick: u64, tel: &mut Telemetry) {
        for class in 0..3 {
            while let Some(p) = retry.pending[class].pop_front() {
                self.abandon(class, final_tick.saturating_sub(p.offered_tick), tel);
                self.expired_at_horizon += 1;
                self.per_class[class].expired_at_horizon += 1;
                tel.inc("expired_at_horizon");
            }
        }
    }

    fn abandon(&mut self, class: usize, wait_ticks: u64, tel: &mut Telemetry) {
        self.abandoned += 1;
        self.per_class[class].abandoned += 1;
        tel.inc("abandoned");
        tel.record(ABANDON_WAIT[class], wait_ticks);
    }

    /// Charges one lost placement: an eviction is an SLA violation
    /// whatever the class promised.
    pub fn charge_eviction(&mut self, lost: &Placement, tel: &mut Telemetry) {
        self.evicted += 1;
        self.sla_violations += 1;
        self.per_class[class_idx(lost.class)].violations += 1;
        tel.inc("evictions");
    }

    /// Failure-driven recovery for one tick's surfaced crash events.
    ///
    /// `crashes` / `part_crashes` count per *event*; recovery — and the
    /// EOP backoff or the offline transition — runs once per crashed
    /// *node* (deduplicated in first-observation order), so a node
    /// surfacing several events in one tick is not backed off towards
    /// nominal multiple times, nor offlined twice.
    ///
    /// With the failure lifecycle disabled (legacy), an Extended node
    /// recovers in place and re-deploys at a backed-off point. Enabled,
    /// the crash has a *cost in capacity*: the node is evacuated and
    /// taken offline for a seeded MTTR window, and its operating point
    /// is left alone — the rejoin re-characterization pass, not a
    /// geometric backoff, decides where it comes back.
    ///
    /// Returns the migrations performed (the per-tick series' column).
    #[allow(clippy::too_many_arguments)]
    pub fn recover_crashes(
        &mut self,
        cluster: &mut Cluster,
        queue: &mut EventQueue,
        points: &mut [OperatingPoint],
        node_parts: &[Option<usize>],
        crashes: &[(NodeId, CrashEvent)],
        tick_end: Seconds,
        tick: u64,
        policy: &CrashPolicy,
        tel: &mut Telemetry,
    ) -> u64 {
        let mut crashed: Vec<NodeId> = Vec::new();
        for (node_id, event) in crashes {
            self.crashes += 1;
            tel.inc("crash_events");
            tel.emit_at(
                event.at.as_secs(),
                &TraceEvent::Crash { node: u64::from(node_id.0), workload: &event.workload },
            );
            if let Some(p) = node_parts[node_id.0 as usize] {
                self.part_crashes[p] += 1;
            }
            if !crashed.contains(node_id) {
                crashed.push(*node_id);
            }
        }
        let mut migrations = 0;
        for node_id in crashed {
            if policy.lifecycle.enabled {
                cluster.mark_crashed(node_id);
            }
            let recovery = cluster.recover_from_crash(node_id);
            for (moved, cost) in &recovery.migrated {
                self.crash_migrations += 1;
                migrations += 1;
                queue.schedule(cost.completes_at(tick_end), Event::MigrationSettled(moved.id));
                tel.inc("crash_migrations");
                tel.emit(&TraceEvent::Migration {
                    class: CLASS_NAMES[class_idx(moved.class)],
                    placement: moved.id.0,
                    from: u64::from(node_id.0),
                    to: u64::from(moved.node.0),
                });
                // Gold/Silver promise continuity; a crash-forced move
                // interrupted them.
                if moved.class != SlaClass::Bronze {
                    self.sla_violations += 1;
                    self.per_class[class_idx(moved.class)].violations += 1;
                }
            }
            for lost in &recovery.evicted {
                self.charge_eviction(lost, tel);
            }
            if policy.lifecycle.enabled {
                // The crash costs capacity, not margin: the node leaves
                // the fleet for its repair window and the rejoin
                // re-shmoo re-derives its operating point honestly.
                let mttr = policy.lifecycle.draw_mttr(policy.seed, node_id, tick);
                cluster.begin_repair(node_id, mttr);
                self.nodes_offlined += 1;
                tel.inc("nodes_offlined");
                tel.record("mttr_ticks", u64::from(mttr));
                tel.emit(&TraceEvent::Offline {
                    node: u64::from(node_id.0),
                    mttr_ticks: u64::from(mttr),
                });
            } else if policy.margins == MarginPolicy::Extended {
                // Reboot firmware cleared the undervolts: re-deploy the
                // node at a backed-off point instead of silently running
                // nominal (or leave nominal racks alone).
                let idx = node_id.0 as usize;
                points[idx] = points[idx].backed_off(policy.backoff);
                points[idx].apply_to(cluster.nodes_mut()[idx].hypervisor.node_mut());
            }
        }
        migrations
    }
}

/// How the serving loop treats a crashed node — the legacy in-place
/// recovery knobs plus the failure lifecycle that supersedes them.
pub(crate) struct CrashPolicy {
    /// Fleet margin policy (nominal racks never back off).
    pub margins: MarginPolicy,
    /// Legacy geometric EOP backoff fraction, used only with the
    /// lifecycle disabled.
    pub backoff: f64,
    /// The failure lifecycle; enabled, crashes cost capacity (offline
    /// MTTR window + rejoin re-characterization) instead of margin.
    pub lifecycle: FailureLifecycle,
    /// Scenario seed, for the pure per-`(node, tick)` MTTR draw.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use uniserver_hypervisor::vm::VmConfig;
    use uniserver_units::Volts;

    use crate::config::OrchestratorConfig;
    use crate::deploy::deploy_cluster;

    fn crash_event(at: f64) -> CrashEvent {
        CrashEvent { core: 0, at: Seconds::new(at), voltage: Volts::new(0.9), workload: Arc::from("ldbc") }
    }

    fn gold_arrival() -> Arrival {
        Arrival {
            config: VmConfig::idle_guest(),
            class: SlaClass::Gold,
            lifetime: Seconds::new(60.0),
        }
    }

    /// Deploys a 2-node rack and packs it until the scheduler rejects.
    fn overloaded_rack(seed: u64) -> Cluster {
        let config = OrchestratorConfig::smoke(2, seed);
        let (mut cluster, _, _, _) = deploy_cluster(&config);
        while cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze).is_some() {}
        cluster
    }

    /// The pre-lifecycle crash policy: recover in place with the
    /// config's geometric backoff.
    fn legacy_policy(config: &OrchestratorConfig) -> CrashPolicy {
        CrashPolicy {
            margins: config.margins,
            backoff: config.crash_backoff,
            lifecycle: FailureLifecycle::disabled(),
            seed: config.seed,
        }
    }

    #[test]
    fn gold_rejection_abandons_only_after_retries_exhaust() {
        let mut cluster = overloaded_rack(7);
        let mut queue = EventQueue::new();
        let mut retry = RetryQueue::new(AdmissionPolicy::gold_priority());
        let mut c = ServeCounters::new(1);
        let mut tel = Telemetry::disabled();

        assert!(!c.admit(&mut retry, &mut cluster, &mut queue, gold_arrival(), Seconds::new(0.0), 0, &mut tel));
        assert_eq!(c.per_class[0].rejected, 1);
        assert_eq!(c.per_class[0].abandoned, 0, "a gold rejection must queue, not drop");
        assert_eq!(retry.pending_len(), 1);

        // Re-offer against a still-full rack: each tick burns one unit
        // of the gold budget (4), and only exhaustion abandons.
        for attempt in 1..=4u64 {
            let placed = c.reoffer_pending(
                &mut retry,
                &mut cluster,
                &mut queue,
                Seconds::new(attempt as f64 * 5.0),
                attempt,
                false,
                &mut tel,
            );
            assert_eq!(placed, 0);
            assert_eq!(c.per_class[0].retried, attempt);
            if attempt < 4 {
                assert_eq!(c.per_class[0].abandoned, 0, "gold must not abandon before its budget is spent");
            }
        }
        assert_eq!(c.per_class[0].abandoned, 1, "budget exhausted: now it abandons");
        assert_eq!(c.per_class[0].rejected, 5, "the initial rejection plus four failed re-offers");
        assert_eq!(retry.pending_len(), 0);
        assert_eq!(c.offered, c.placed + c.abandoned, "the lifecycle invariant must tie out");
    }

    #[test]
    fn queued_gold_places_into_freed_capacity() {
        let mut cluster = overloaded_rack(13);
        let mut queue = EventQueue::new();
        let mut retry = RetryQueue::new(AdmissionPolicy::gold_priority());
        let mut c = ServeCounters::new(1);
        let mut tel = Telemetry::disabled();

        assert!(!c.admit(&mut retry, &mut cluster, &mut queue, gold_arrival(), Seconds::new(0.0), 0, &mut tel));
        assert_eq!(retry.pending_len(), 1);

        // A departure frees capacity before the budget runs out …
        let victim = cluster.placements()[0].id;
        assert!(cluster.terminate_by_id(victim));
        // … and the next re-offer claims it.
        let placed =
            c.reoffer_pending(&mut retry, &mut cluster, &mut queue, Seconds::new(5.0), 1, false, &mut tel);
        assert_eq!(placed, 1);
        assert_eq!(c.per_class[0].placed, 1);
        assert_eq!(c.per_class[0].retried, 1);
        assert_eq!(c.per_class[0].abandoned, 0);
        assert_eq!(retry.pending_len(), 0);
        assert_eq!(c.offered, c.placed + c.abandoned);
    }

    #[test]
    fn drop_all_policy_abandons_rejections_immediately() {
        let mut cluster = overloaded_rack(21);
        let mut queue = EventQueue::new();
        let mut retry = RetryQueue::new(AdmissionPolicy::drop_all());
        let mut c = ServeCounters::new(1);
        let mut tel = Telemetry::disabled();

        assert!(!c.admit(&mut retry, &mut cluster, &mut queue, gold_arrival(), Seconds::new(0.0), 0, &mut tel));
        assert_eq!(c.per_class[0].rejected, 1);
        assert_eq!(c.per_class[0].abandoned, 1, "zero budget is the legacy drop path");
        assert_eq!(c.retried, 0);
        assert_eq!(retry.pending_len(), 0);
    }

    #[test]
    fn horizon_flush_abandons_whatever_is_still_queued() {
        let mut cluster = overloaded_rack(33);
        let mut queue = EventQueue::new();
        let mut retry = RetryQueue::new(AdmissionPolicy::gold_priority());
        let mut c = ServeCounters::new(1);
        let mut tel = Telemetry::disabled();

        for _ in 0..3 {
            c.admit(&mut retry, &mut cluster, &mut queue, gold_arrival(), Seconds::new(0.0), 0, &mut tel);
        }
        assert_eq!(retry.pending_len(), 3);
        c.flush_pending(&mut retry, 60, &mut tel);
        assert_eq!(retry.pending_len(), 0);
        assert_eq!(c.abandoned, 3);
        assert_eq!(c.expired_at_horizon, 3, "horizon drops are annotated as expirations");
        assert_eq!(c.per_class[0].expired_at_horizon, 3);
        assert_eq!(c.offered, c.placed + c.abandoned);
    }

    #[test]
    fn duplicate_same_tick_crash_events_recover_and_back_off_once() {
        let config = OrchestratorConfig::smoke(3, 11);
        let (mut cluster, records, _, _) = deploy_cluster(&config);
        let mut points: Vec<OperatingPoint> = records.iter().map(|r| r.point.clone()).collect();
        let node_parts: Vec<Option<usize>> = records
            .iter()
            .map(|r| config.cluster.part_mix.iter().position(|p| p.spec.name == r.part))
            .collect();
        for _ in 0..3 {
            cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze);
        }
        let victim = cluster.placements()[0].node;
        let on_victim = cluster.placements_on(victim).len() as u64;
        assert!(on_victim > 0);

        let before = points[victim.0 as usize].clone();
        let mut queue = EventQueue::new();
        let mut counters = ServeCounters::new(config.cluster.part_mix.len());
        let mut tel = Telemetry::disabled();
        // The node surfaced TWO crash events in the same tick.
        let crashes = vec![(victim, crash_event(5.0)), (victim, crash_event(5.1))];
        let migrations = counters.recover_crashes(
            &mut cluster,
            &mut queue,
            &mut points,
            &node_parts,
            &crashes,
            Seconds::new(5.0),
            1,
            &legacy_policy(&config),
            &mut tel,
        );

        assert_eq!(counters.crashes, 2, "crashes counts events, not nodes");
        assert_eq!(counters.part_crashes.iter().sum::<u64>(), 2);
        let once = before.backed_off(config.crash_backoff);
        let twice = once.backed_off(config.crash_backoff);
        assert_eq!(
            points[victim.0 as usize].min_offset_mv(),
            once.min_offset_mv(),
            "the EOP backoff must apply once per crashed node, not once per event"
        );
        assert!(
            points[victim.0 as usize].min_offset_mv() > twice.min_offset_mv(),
            "compounded backoff would overdrive the margin towards nominal"
        );
        assert!(cluster.placements_on(victim).is_empty(), "recovery still clears the node");
        assert_eq!(counters.crash_migrations + counters.evicted, on_victim);
        assert_eq!(migrations, counters.crash_migrations);
    }

    #[test]
    fn consecutive_tick_double_crash_backs_off_twice_but_never_past_nominal() {
        let config = OrchestratorConfig::smoke(3, 11);
        let (mut cluster, records, _, _) = deploy_cluster(&config);
        let mut points: Vec<OperatingPoint> = records.iter().map(|r| r.point.clone()).collect();
        let node_parts = vec![None; records.len()];
        let victim = NodeId(0);
        let before = points[0].clone();
        let mut queue = EventQueue::new();
        let mut counters = ServeCounters::new(config.cluster.part_mix.len());
        let mut tel = Telemetry::disabled();
        let policy = legacy_policy(&config);
        // The same node crashes on two CONSECUTIVE ticks — each tick's
        // dedup set is fresh, so the backoff legitimately compounds …
        for tick in 1..=2u64 {
            counters.recover_crashes(
                &mut cluster,
                &mut queue,
                &mut points,
                &node_parts,
                &[(victim, crash_event(tick as f64 * 5.0))],
                Seconds::new(tick as f64 * 5.0),
                tick,
                &policy,
                &mut tel,
            );
        }
        let twice = before.backed_off(config.crash_backoff).backed_off(config.crash_backoff);
        assert_eq!(
            points[0].min_offset_mv(),
            twice.min_offset_mv(),
            "consecutive-tick crashes compound the backoff once per tick"
        );
        // … but however many times it crashes, the clamped backoff can
        // never overdrive any core's offset past nominal (> 0 mV).
        for _ in 0..50 {
            points[0] = points[0].backed_off(config.crash_backoff);
        }
        assert!(
            points[0].core_offsets_mv.iter().all(|&mv| mv >= 0.0),
            "repeated crashes must converge to nominal, never overshoot it"
        );
    }

    #[test]
    fn lifecycle_crash_takes_the_node_offline_and_skips_the_backoff() {
        let config = OrchestratorConfig::smoke(3, 17);
        let (mut cluster, records, _, _) = deploy_cluster(&config);
        let mut points: Vec<OperatingPoint> = records.iter().map(|r| r.point.clone()).collect();
        let node_parts = vec![None; records.len()];
        for _ in 0..3 {
            cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze);
        }
        let victim = cluster.placements()[0].node;
        let on_victim = cluster.placements_on(victim).len() as u64;
        assert!(on_victim > 0);
        let before = points[victim.0 as usize].clone();

        let mut queue = EventQueue::new();
        let mut counters = ServeCounters::new(config.cluster.part_mix.len());
        let mut tel = Telemetry::disabled();
        let policy = CrashPolicy {
            margins: config.margins,
            backoff: config.crash_backoff,
            lifecycle: FailureLifecycle::standard(),
            seed: config.seed,
        };
        counters.recover_crashes(
            &mut cluster,
            &mut queue,
            &mut points,
            &node_parts,
            &[(victim, crash_event(5.0))],
            Seconds::new(5.0),
            1,
            &policy,
            &mut tel,
        );

        assert!(!cluster.nodes()[victim.0 as usize].is_online(), "the crashed node must be offline");
        assert!(cluster.placements_on(victim).is_empty(), "the offline node must be evacuated");
        assert_eq!(counters.nodes_offlined, 1);
        assert_eq!(
            points[victim.0 as usize].min_offset_mv(),
            before.min_offset_mv(),
            "the lifecycle replaces the geometric backoff with the rejoin re-shmoo"
        );
        assert_eq!(counters.crash_migrations + counters.evicted, on_victim);
        // The scheduler must refuse the offline node while it repairs.
        for _ in 0..8 {
            if let Some(p) = cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze) {
                assert_ne!(p.node, victim, "no placement may land on an offline node");
            }
        }
    }

    #[test]
    fn degraded_reoffer_sheds_bronze_to_free_capacity_for_gold() {
        let config = OrchestratorConfig::smoke(3, 29);
        let (mut cluster, _, _, _) = deploy_cluster(&config);
        while cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze).is_some() {}
        let mut queue = EventQueue::new();
        let mut retry = RetryQueue::new(AdmissionPolicy::gold_priority());
        let mut c = ServeCounters::new(1);
        let mut tel = Telemetry::disabled();

        // Gold rejected against the packed rack: it queues.
        assert!(!c.admit(&mut retry, &mut cluster, &mut queue, gold_arrival(), Seconds::new(0.0), 0, &mut tel));

        // With every node healthy, a failed re-offer sheds nothing even
        // with the shed gate open — degradation only under degradation.
        c.reoffer_pending(&mut retry, &mut cluster, &mut queue, Seconds::new(5.0), 1, true, &mut tel);
        assert_eq!(c.shed, 0, "no shedding while the fleet is at full capacity");

        // A node goes offline; the still-queued gold re-offer now sheds
        // one bronze victim (youngest first) to make room …
        cluster.mark_crashed(NodeId(0));
        let _ = cluster.recover_from_crash(NodeId(0));
        cluster.begin_repair(NodeId(0), 12);
        let bronze_before = cluster.placements().len();
        c.reoffer_pending(&mut retry, &mut cluster, &mut queue, Seconds::new(10.0), 2, true, &mut tel);
        assert_eq!(c.shed, 1, "degraded capacity plus a waiting gold must shed");
        assert_eq!(c.per_class[2].shed, 1, "bronze is shed first");
        assert_eq!(c.evicted, 1, "a shed is charged as an eviction");
        assert_eq!(cluster.placements().len(), bronze_before - 1);

        // … and the next tick's re-offer places into the freed slot.
        let placed =
            c.reoffer_pending(&mut retry, &mut cluster, &mut queue, Seconds::new(15.0), 3, true, &mut tel);
        assert_eq!(placed, 1, "the freed capacity admits the queued gold next tick");
        assert_eq!(c.per_class[0].placed, 1);
        assert_eq!(c.offered, c.placed + c.abandoned);
    }

    #[test]
    fn nominal_racks_never_back_off_points() {
        let config = OrchestratorConfig { margins: MarginPolicy::Nominal, ..OrchestratorConfig::smoke(2, 5) };
        let (mut cluster, records, _, _) = deploy_cluster(&config);
        let mut points: Vec<OperatingPoint> = records.iter().map(|r| r.point.clone()).collect();
        let node_parts = vec![None; records.len()];
        let mut queue = EventQueue::new();
        let mut counters = ServeCounters::new(config.cluster.part_mix.len());
        let mut tel = Telemetry::disabled();
        counters.recover_crashes(
            &mut cluster,
            &mut queue,
            &mut points,
            &node_parts,
            &[(NodeId(0), crash_event(1.0))],
            Seconds::new(5.0),
            1,
            &legacy_policy(&config),
            &mut tel,
        );
        assert_eq!(counters.crashes, 1);
        assert_eq!(points[0].min_offset_mv(), 0.0, "nominal points stay nominal");
    }

    #[test]
    fn drain_fires_departures_due_in_the_final_window() {
        let config = OrchestratorConfig::smoke(2, 3);
        let (mut cluster, _, _, _) = deploy_cluster(&config);
        let placed = cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze).expect("placed");
        let mut queue = EventQueue::new();
        // Due strictly after the last tick start (295 s) but within the
        // 300 s horizon — exactly the window the loop used to drop.
        queue.schedule(Seconds::new(297.5), Event::Departure(placed.id));
        let mut counters = ServeCounters::new(1);
        assert_eq!(counters.drain_due(&mut queue, &mut cluster, Seconds::new(295.0)), 0);
        assert_eq!(counters.drain_due(&mut queue, &mut cluster, Seconds::new(300.0)), 1);
        assert_eq!(counters.completed, 1);
        assert!(cluster.placements().is_empty());
        // A departure for an already-evicted placement completes nothing.
        queue.schedule(Seconds::new(299.0), Event::Departure(placed.id));
        assert_eq!(counters.drain_due(&mut queue, &mut cluster, Seconds::new(300.0)), 0);
        assert_eq!(counters.completed, 1);
    }
}
