//! The orchestrator-side health watchdog: seeded probes with K-of-N
//! hysteresis driving gray nodes through quarantine → drain →
//! probation → readmit.
//!
//! Gray failures (paper §5: elevated correctable-error rates, thermal
//! throttling) do not crash a node, so the failure lifecycle never
//! sees them and the failure predictor — which scores the node's *log
//! pattern*, not its served throughput — keeps trusting it. The
//! watchdog is the layer that catches them: every tick it probes each
//! watched node with a seeded health check, and a node that fails K of
//! the last N probes is quarantined. Quarantine is sticky: the node is
//! drained on a migration budget and only readmitted after a full run
//! of consecutive probe passes (probation), so a flapping node —
//! passing just often enough to look healthy — can never oscillate
//! back into the serving pool.
//!
//! The probe outcome is injected into [`Watchdog::observe`] rather
//! than drawn inside it, which keeps the hysteresis a pure state
//! machine: property tests can drive it with arbitrary pass/fail
//! sequences, and the orchestrator supplies the seeded draw from
//! [`probe_fails`] — pure in `(seed, node, tick)`, so runs are
//! byte-identical across worker counts.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use uniserver_silicon::rng::{salt, splitmix64, unit_fraction};

/// Health-watchdog tuning. `disabled()` keeps every legacy profile
/// byte-identical; `standard()` is the gray-profile default.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Master switch. Disabled watchdogs never probe, never quarantine.
    pub enabled: bool,
    /// Probe-history window N: quarantine looks at the last N probes.
    pub window: u32,
    /// Quarantine threshold K: ≥ K failures inside the window trip it.
    pub quarantine_fails: u32,
    /// Consecutive probe passes required to end probation. Any single
    /// failure resets the streak — the flap-proofing.
    pub probation_passes: u32,
    /// Max placements migrated off a quarantined node per tick.
    pub drain_budget: usize,
    /// Probe failure probability while the node's gray fault is live.
    pub probe_fail_degraded: f64,
    /// Residual probe failure probability once the fault has cleared
    /// (probes are not oracles; a healthy node can still flake).
    pub probe_fail_healthy: f64,
}

impl WatchdogConfig {
    /// No watchdog at all — the legacy default.
    #[must_use]
    pub fn disabled() -> Self {
        WatchdogConfig {
            enabled: false,
            window: 8,
            quarantine_fails: 3,
            probation_passes: 5,
            drain_budget: 4,
            probe_fail_degraded: 0.9,
            probe_fail_healthy: 0.02,
        }
    }

    /// The gray-profile watchdog: 3-of-8 quarantine entry, 5 clean
    /// probes to readmit, 4 migrations per tick of drain budget.
    #[must_use]
    pub fn standard() -> Self {
        WatchdogConfig { enabled: true, ..WatchdogConfig::disabled() }
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::disabled()
    }
}

/// What [`Watchdog::observe`] decided about one probe outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Keep watching; no state change.
    None,
    /// The node just crossed the K-of-N threshold: quarantine it.
    Quarantine,
    /// The node just finished probation: readmit it.
    Readmit,
}

/// Per-node probe history: a bit-ring of the last `window` outcomes
/// plus the probation pass streak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct NodeWatch {
    /// Most recent probe outcomes, LSB = newest; 1 = failed.
    history: u64,
    /// Probes recorded so far, saturating at the window size.
    len: u32,
    /// Consecutive passes while quarantined (probation progress).
    streak: u32,
    /// Whether the node is currently quarantined.
    quarantined: bool,
}

/// The watchdog: one [`NodeWatch`] per node currently under watch.
/// Iteration order is node-id order (`BTreeMap`), so probe sequencing
/// is deterministic whatever order nodes went gray in.
#[derive(Debug, Clone)]
pub struct Watchdog {
    config: WatchdogConfig,
    watches: BTreeMap<u32, NodeWatch>,
}

impl Watchdog {
    /// A watchdog with the given tuning and no nodes under watch.
    #[must_use]
    pub fn new(config: WatchdogConfig) -> Self {
        assert!(
            config.window >= 1 && config.window <= 64,
            "probe window must be 1..=64, got {}",
            config.window
        );
        assert!(
            config.quarantine_fails >= 1 && config.quarantine_fails <= config.window,
            "quarantine_fails must be 1..=window, got {} of {}",
            config.quarantine_fails,
            config.window
        );
        assert!(config.probation_passes >= 1, "probation needs at least one pass");
        Watchdog { config, watches: BTreeMap::new() }
    }

    /// The tuning this watchdog runs.
    #[must_use]
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// Starts watching `node` (idempotent — an existing watch, and its
    /// accumulated history, is kept).
    pub fn begin_watch(&mut self, node: u32) {
        self.watches
            .entry(node)
            .or_insert(NodeWatch { history: 0, len: 0, streak: 0, quarantined: false });
    }

    /// Stops watching `node` (e.g. it crashed outright and the failure
    /// lifecycle took over).
    pub fn forget(&mut self, node: u32) {
        self.watches.remove(&node);
    }

    /// The nodes currently under watch, in ascending id order.
    #[must_use]
    pub fn watched(&self) -> Vec<u32> {
        self.watches.keys().copied().collect()
    }

    /// Whether `node` is under watch.
    #[must_use]
    pub fn is_watching(&self, node: u32) -> bool {
        self.watches.contains_key(&node)
    }

    /// Whether this watchdog currently holds `node` in quarantine.
    #[must_use]
    pub fn in_quarantine(&self, node: u32) -> bool {
        self.watches.get(&node).is_some_and(|w| w.quarantined)
    }

    /// Records one probe outcome for a watched node and returns the
    /// transition it caused, if any.
    ///
    /// Entry: a node with ≥ `quarantine_fails` failures among its last
    /// `window` probes is quarantined (K-of-N; a single flaky probe
    /// cannot trip it). Exit: a quarantined node must pass
    /// `probation_passes` probes *in a row*; any failure zeroes the
    /// streak, so the verdicts can never alternate
    /// Quarantine/Readmit/Quarantine on a flapping node faster than a
    /// full probation run.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not under watch — callers own the watch
    /// lifecycle explicitly.
    pub fn observe(&mut self, node: u32, failed: bool) -> Verdict {
        let w = self.watches.get_mut(&node).expect("observe() requires an active watch");
        w.history = (w.history << 1) | u64::from(failed);
        w.len = (w.len + 1).min(self.config.window);
        if w.quarantined {
            if failed {
                w.streak = 0;
            } else {
                w.streak += 1;
                if w.streak >= self.config.probation_passes {
                    // Readmission resets the history: the node starts
                    // its next watch (if any) with a clean record.
                    *w = NodeWatch { history: 0, len: 0, streak: 0, quarantined: false };
                    return Verdict::Readmit;
                }
            }
            return Verdict::None;
        }
        let mask = if self.config.window == 64 { u64::MAX } else { (1 << self.config.window) - 1 };
        let fails = (w.history & mask).count_ones();
        if w.len >= self.config.quarantine_fails && fails >= self.config.quarantine_fails {
            w.quarantined = true;
            w.streak = 0;
            return Verdict::Quarantine;
        }
        Verdict::None
    }
}

/// The seeded probe draw: whether the health probe against `node` at
/// `tick` fails, given the failure probability `p` for the node's
/// current condition. Pure in `(seed, node, tick)` — same salt-mix
/// shape as the chaos engine's per-node draws, on its own salt, so
/// probes never correlate with crash or gray-onset draws.
#[must_use]
pub fn probe_fails(seed: u64, node: u32, tick: u64, p: f64) -> bool {
    let word = splitmix64(
        seed ^ salt::PROBE
            ^ u64::from(node).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ tick.wrapping_mul(0xBF58_476D_1CE4_E5B9),
    );
    unit_fraction(word) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_of_n_tolerates_sparse_failures() {
        let mut wd = Watchdog::new(WatchdogConfig::standard());
        wd.begin_watch(7);
        // Fail every 4th probe: never 3 fails inside any 8-window.
        for i in 0..64 {
            let v = wd.observe(7, i % 4 == 0);
            assert_eq!(v, Verdict::None, "sparse failures must not quarantine (probe {i})");
        }
        assert!(!wd.in_quarantine(7));
    }

    #[test]
    fn dense_failures_quarantine_exactly_once() {
        let mut wd = Watchdog::new(WatchdogConfig::standard());
        wd.begin_watch(3);
        assert_eq!(wd.observe(3, true), Verdict::None);
        assert_eq!(wd.observe(3, true), Verdict::None);
        // Third failure inside the window trips 3-of-8.
        assert_eq!(wd.observe(3, true), Verdict::Quarantine);
        assert!(wd.in_quarantine(3));
        // Further failures while quarantined change nothing.
        assert_eq!(wd.observe(3, true), Verdict::None);
    }

    #[test]
    fn probation_requires_consecutive_passes() {
        let config = WatchdogConfig::standard();
        let mut wd = Watchdog::new(config);
        wd.begin_watch(0);
        for _ in 0..3 {
            wd.observe(0, true);
        }
        assert!(wd.in_quarantine(0));
        // Four passes, then a fail: streak resets, still quarantined.
        for _ in 0..4 {
            assert_eq!(wd.observe(0, false), Verdict::None);
        }
        assert_eq!(wd.observe(0, true), Verdict::None);
        assert!(wd.in_quarantine(0), "one probation failure must reset the streak");
        // Now five clean passes readmit.
        for i in 0..4 {
            assert_eq!(wd.observe(0, false), Verdict::None, "pass {i}");
        }
        assert_eq!(wd.observe(0, false), Verdict::Readmit);
        assert!(!wd.in_quarantine(0));
    }

    #[test]
    fn flapping_node_stays_quarantined() {
        // Pinned regression: a node alternating pass/fail looks 50 %
        // healthy, but must neither dodge quarantine forever nor ever
        // earn readmission (streak never reaches 5).
        let mut wd = Watchdog::new(WatchdogConfig::standard());
        wd.begin_watch(11);
        let mut quarantined_at = None;
        for i in 0u32..200 {
            let failed = i % 2 == 0;
            match wd.observe(11, failed) {
                Verdict::Quarantine => {
                    assert!(quarantined_at.is_none(), "must quarantine exactly once");
                    quarantined_at = Some(i);
                }
                Verdict::Readmit => panic!("a flapping node must never be readmitted (probe {i})"),
                Verdict::None => {}
            }
        }
        // Alternating fails accumulate 4 fails per 8-window ≥ 3: the
        // K-of-N gate trips as soon as the third failure lands.
        assert_eq!(quarantined_at, Some(4));
        assert!(wd.in_quarantine(11));
    }

    #[test]
    fn readmitted_node_restarts_with_clean_history() {
        let mut wd = Watchdog::new(WatchdogConfig::standard());
        wd.begin_watch(5);
        for _ in 0..3 {
            wd.observe(5, true);
        }
        for _ in 0..4 {
            wd.observe(5, false);
        }
        assert_eq!(wd.observe(5, false), Verdict::Readmit);
        // Two fresh failures must not re-quarantine off stale history.
        assert_eq!(wd.observe(5, true), Verdict::None);
        assert_eq!(wd.observe(5, true), Verdict::None);
        assert_eq!(wd.observe(5, true), Verdict::Quarantine);
    }

    #[test]
    fn forget_drops_the_watch() {
        let mut wd = Watchdog::new(WatchdogConfig::standard());
        wd.begin_watch(1);
        wd.begin_watch(9);
        assert_eq!(wd.watched(), vec![1, 9]);
        wd.forget(1);
        assert_eq!(wd.watched(), vec![9]);
        assert!(!wd.is_watching(1));
    }

    #[test]
    fn probe_draw_is_pure_and_seed_sensitive() {
        let a = probe_fails(42, 3, 100, 0.9);
        assert_eq!(a, probe_fails(42, 3, 100, 0.9), "same inputs, same outcome");
        assert!(!probe_fails(42, 3, 100, 0.0), "p = 0 never fails");
        assert!(probe_fails(42, 3, 100, 1.0), "p = 1 always fails");
        // Degraded probes fail most ticks; healthy probes rarely do.
        let fails_degraded =
            (0..1000u64).filter(|&t| probe_fails(7, 0, t, 0.9)).count();
        let fails_healthy =
            (0..1000u64).filter(|&t| probe_fails(7, 0, t, 0.02)).count();
        assert!(fails_degraded > 800, "degraded: {fails_degraded}/1000");
        assert!(fails_healthy < 80, "healthy: {fails_healthy}/1000");
    }

    #[test]
    #[should_panic(expected = "active watch")]
    fn observing_an_unwatched_node_panics() {
        let mut wd = Watchdog::new(WatchdogConfig::standard());
        let _ = wd.observe(0, false);
    }
}
