//! Deterministic run summaries: everything the JSON artefact reports.

use serde::{Deserialize, Serialize};

/// Per-SLA-class accounting (indexed gold/silver/bronze).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClassStats {
    /// Arrivals offered at this class.
    pub offered: u64,
    /// Arrivals placed.
    pub placed: u64,
    /// Arrivals rejected (no feasible node). Counts every failed submit
    /// attempt, so re-offers that fail again are counted again.
    pub rejected: u64,
    /// Re-offer attempts made for this class's queued rejections.
    pub retried: u64,
    /// Arrivals dropped for good: retry budget exhausted, retry queue
    /// overflowed, or the horizon ended with them still queued. With the
    /// legacy drop-all policy every rejection abandons immediately.
    pub abandoned: u64,
    /// SLA violations charged to this class (evictions, and crash
    /// interruptions for gold/silver).
    pub violations: u64,
    /// Of `abandoned`: arrivals still queued when the horizon ended
    /// (never got a final verdict), as opposed to budget-exhausted or
    /// queue-overflow drops.
    pub expired_at_horizon: u64,
    /// Placements of this class shed (stopped early, bronze first) to
    /// free capacity for premium re-offers while nodes were offline.
    pub shed: u64,
}

/// One tick's fleet metrics — the summary's time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TickMetrics {
    /// Tick index.
    pub tick: u64,
    /// Arrivals offered this tick.
    pub offered: u64,
    /// Arrivals placed this tick.
    pub placed: u64,
    /// Departures completed this tick.
    pub completed: u64,
    /// Live placements at end of tick.
    pub live: u64,
    /// Node crashes observed this tick.
    pub crashes: u64,
    /// Migrations (proactive + failure-driven) this tick.
    pub migrations: u64,
    /// Fleet energy consumed this tick, in joules.
    pub energy_j: f64,
}

/// What the failure lifecycle and the chaos engine did to one run —
/// present only when either is active, so legacy summaries stay
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosOutcome {
    /// Synthetic crash events injected by the chaos plan (natural
    /// crashes are counted in the summary's `crashes` alongside them).
    pub injected_crashes: u64,
    /// Times a crashed node was taken offline for repair.
    pub nodes_offlined: u64,
    /// Repairs that finished and rejoined (re-characterized) within the
    /// horizon.
    pub rejoins: u64,
    /// Peak simultaneously-offline node count.
    pub peak_offline: u64,
    /// Summed offline node-seconds — real downtime, not reboot
    /// penalties.
    pub downtime_secs: f64,
    /// The same lost capacity in node-hours.
    pub lost_capacity_node_hours: f64,
    /// Capacity availability: `1 − downtime / (nodes × horizon)`.
    pub availability: f64,
    /// Placements shed (bronze first) to free capacity for premium
    /// re-offers while nodes were offline.
    pub shed: u64,
}

/// What a power-managing placement policy did to one run — `Some` only
/// when the active policy manages node power (consolidation), so
/// reference summaries stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerOutcome {
    /// Times a drained node was parked into the sleep state.
    pub parks: u64,
    /// Times an asleep node was woken (demand pressure).
    pub wakes: u64,
    /// Live migrations performed by consolidation drains (distinct from
    /// crash- and prediction-driven migrations).
    pub consolidation_migrations: u64,
    /// Summed asleep node-seconds over the run.
    pub asleep_node_secs: f64,
    /// Peak simultaneously-asleep node count.
    pub peak_asleep: u64,
}

/// What the gray-failure campaign and the health watchdog did to one
/// run — `Some` only when the chaos plan carries a gray or power-cap
/// campaign, so every other summary stays byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrayOutcome {
    /// Gray-failure onsets injected (nodes that silently degraded).
    pub gray_onsets: u64,
    /// Watchdog probes that failed.
    pub probe_failures: u64,
    /// Nodes the watchdog quarantined (K-of-N hysteresis tripped).
    pub quarantines: u64,
    /// Quarantined nodes that survived probation and were readmitted.
    pub readmissions: u64,
    /// Summed degraded node-seconds (onset until clear or readmit).
    pub degraded_node_secs: f64,
    /// The same degraded dwell in node-hours.
    pub degraded_node_hours: f64,
    /// Peak simultaneously-degraded node count.
    pub peak_degraded: u64,
    /// Accumulated fleet-draw excess over the brownout cap, in W·s —
    /// the energy the cap demanded but the fleet had not yet shed.
    pub powercap_deficit_watt_secs: f64,
    /// Placements shed (bronze first) to get back under the cap.
    pub powercap_sheds: u64,
}

/// Per-part aggregation of the rack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartUsage {
    /// Part name.
    pub part: String,
    /// Nodes of this part in the rack.
    pub nodes: usize,
    /// Crashes attributed to the part's nodes.
    pub crashes: u64,
    /// Mean deployed EOP depth (weakest-core offset) across its nodes.
    pub min_offset_mv_mean: f64,
}

/// The deterministic summary of one orchestrated run. `PartialEq` is the
/// determinism contract: two runs of the same config must compare equal
/// whatever the deploy worker count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSummary {
    /// Node count.
    pub nodes: usize,
    /// Scenario seed.
    pub seed: u64,
    /// Margin policy label (`"extended"` / `"nominal"`).
    pub margins: String,
    /// Simulated horizon in seconds.
    pub horizon_secs: f64,
    /// Tick length in seconds.
    pub tick_secs: f64,
    /// Ticks simulated.
    pub ticks: u64,
    /// Arrivals offered to the scheduler.
    pub offered: u64,
    /// Arrivals placed.
    pub placed: u64,
    /// Arrivals rejected (every failed submit attempt, re-offers
    /// included).
    pub rejected: u64,
    /// Re-offer attempts made for queued rejections (admission policy).
    pub retried: u64,
    /// Arrivals dropped for good — `offered = placed + abandoned` after
    /// the horizon flushes the retry queue.
    pub abandoned: u64,
    /// Of `abandoned`: arrivals the horizon flush expired while still
    /// queued, as opposed to budget-exhausted or overflow drops.
    pub expired_at_horizon: u64,
    /// Placements whose lifetime completed normally.
    pub completed: u64,
    /// Placements evicted after crashes (no healthy node fit them).
    pub evicted: u64,
    /// Placements still live when the horizon ended.
    pub live_at_end: u64,
    /// Node crashes observed.
    pub crashes: u64,
    /// Failure-driven migrations performed after crashes.
    pub crash_migrations: u64,
    /// Crash migrations whose pre-copy settled within the horizon (the
    /// event queue's `MigrationSettled` events that fired).
    pub migrations_settled: u64,
    /// Proactive (prediction-driven) migrations performed.
    pub proactive_migrations: u64,
    /// Total SLA violations (all classes).
    pub sla_violations: u64,
    /// Cumulative migration blackout, in seconds.
    pub migration_downtime_secs: f64,
    /// Fleet energy over the run, in joules.
    pub energy_j: f64,
    /// Mean and minimum node availability at the end of the run.
    pub mean_availability: f64,
    pub min_availability: f64,
    /// Mean node utilization at the end of the run.
    pub mean_utilization: f64,
    /// Mean deployed EOP depth across the rack, in millivolts.
    pub min_offset_mv_mean: f64,
    /// Per-class accounting, in gold/silver/bronze order.
    pub per_class: [ClassStats; 3],
    /// Per-part aggregation, in part-mix order.
    pub per_part: Vec<PartUsage>,
    /// The per-tick time series.
    pub per_tick: Vec<TickMetrics>,
    /// Failure-lifecycle and chaos accounting — `Some` only when the
    /// lifecycle or a chaos plan was active for the run.
    pub chaos: Option<ChaosOutcome>,
    /// The placement-policy label — `Some` only when the run deviates
    /// from the default energy/SLA reference policy.
    pub policy: Option<String>,
    /// Power-management accounting — `Some` only when the active policy
    /// manages node power.
    pub power: Option<PowerOutcome>,
    /// Gray-failure and watchdog accounting — `Some` only when the
    /// chaos plan carries a gray or power-cap campaign.
    pub gray: Option<GrayOutcome>,
}

/// Per-phase wall-clock attribution of the serving loop, from the
/// run's [`uniserver_telemetry::StageProfiler`]. Machine-local like the
/// rest of [`OrchestratorTiming`]; all values in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageBreakdown {
    /// Arrival-batch admission (scheduler submits) at tick starts.
    pub placement_ms: f64,
    /// Failure-predictor score updates inside the node-tick shards.
    pub predictor_ms: f64,
    /// Per-node hypervisor advancement inside the node-tick shards.
    pub hypervisor_tick_ms: f64,
    /// Retry-queue re-offers (admission-policy path).
    pub retry_ms: f64,
    /// Failure-driven crash recovery (migrate / evict / offline).
    pub recovery_ms: f64,
    /// Event-queue drains (departures, migration settlements).
    pub events_ms: f64,
    /// Repair countdowns and rejoin re-characterization passes.
    pub rejoin_ms: f64,
    /// The whole sharded fleet-tick phase, scatter and reduce included
    /// (a superset of the hypervisor-tick and predictor shard time).
    pub tick_wall_ms: f64,
}

/// Wall-clock accounting of one run — machine-local, deliberately kept
/// out of [`ClusterSummary`] so the deterministic artefact stays
/// byte-stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrchestratorTiming {
    /// End-to-end wall-clock, in milliseconds.
    pub wall_ms: f64,
    /// Summed per-node deploy time, in milliseconds.
    pub deploy_ms: f64,
    /// Event-loop (serve) wall-clock, in milliseconds.
    pub serve_ms: f64,
    /// Nodes deployed.
    pub nodes: usize,
    /// VM arrivals driven.
    pub arrivals: u64,
    /// Worker threads used for deploy and the sharded serving loop (the
    /// resolved count: `threads: 0` means one per core, and explicit
    /// requests clamp to the core count).
    pub workers: usize,
    /// CPU cores available on the benching machine — recorded so a
    /// wall-clock from a single-core container is never mistaken for a
    /// multi-worker regression.
    pub cores: usize,
    /// Per-phase attribution of the serving loop.
    pub stages: StageBreakdown,
}

/// Nominal-vs-extended comparison off one seed: the first end-to-end
/// number where per-node savings meet cluster-level placement.
#[derive(Debug, Clone, PartialEq)]
pub struct MarginComparison {
    /// The extended-margin run.
    pub extended: ClusterSummary,
    /// The conservative twin run.
    pub nominal: ClusterSummary,
}

impl MarginComparison {
    /// Fractional fleet energy saving of extended over nominal.
    #[must_use]
    pub fn energy_saving_fraction(&self) -> f64 {
        if self.nominal.energy_j > 0.0 {
            1.0 - self.extended.energy_j / self.nominal.energy_j
        } else {
            0.0
        }
    }

    /// SLA violations the extended margins added over the baseline.
    #[must_use]
    pub fn added_sla_violations(&self) -> i64 {
        self.extended.sla_violations as i64 - self.nominal.sla_violations as i64
    }
}
