//! Orchestrator scenario configuration.

use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_cloudmgr::cluster::ClusterConfig;
use uniserver_cloudmgr::lifecycle::FailureLifecycle;
use uniserver_cloudmgr::policy::PolicyKind;
use uniserver_cloudmgr::stream::VmStream;
use uniserver_core::ecosystem::DeploymentConfig;
use uniserver_core::optimizer::EopOptimizer;
use uniserver_faultinject::chaos::ChaosPlan;
use uniserver_hypervisor::vm::VmConfig;

use crate::watchdog::WatchdogConfig;

/// Which margins the fleet's nodes deploy at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MarginPolicy {
    /// Characterize every node and run it at its Extended Operating
    /// Point — the paper's savings story, with its elevated crash risk.
    Extended,
    /// Conservative guard-bands: no characterization, stock settings.
    /// The ablation baseline the extended fleet is compared against.
    Nominal,
}

impl MarginPolicy {
    /// Stable label used in summaries.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MarginPolicy::Extended => "extended",
            MarginPolicy::Nominal => "nominal",
        }
    }
}

/// Admission control: what happens to an arrival the scheduler rejects.
///
/// Rejections used to vanish — gold included. With a non-zero budget a
/// rejected arrival enters a bounded per-class FIFO and is re-offered at
/// the start of each subsequent tick (gold first, into capacity that
/// departures and crash recovery just freed); it is counted `abandoned`
/// only once its budget is exhausted, the queue overflows, or the
/// horizon ends with it still waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Re-offer attempts granted per class (gold, silver, bronze order)
    /// before a rejection is abandoned. 0 = legacy drop-on-rejection.
    pub retry_budget: [u32; 3],
    /// Bound of each class's retry queue; overflow abandons immediately.
    pub queue_depth: usize,
}

impl AdmissionPolicy {
    /// The legacy policy: every rejection is dropped (abandoned)
    /// immediately. The default, so prior flat-stream runs reproduce.
    #[must_use]
    pub fn drop_all() -> Self {
        AdmissionPolicy { retry_budget: [0, 0, 0], queue_depth: 0 }
    }

    /// Premium-class re-admission: gold rejections retry up to 4 ticks,
    /// silver 2, bronze stays best-effort drop.
    #[must_use]
    pub fn gold_priority() -> Self {
        AdmissionPolicy { retry_budget: [4, 2, 0], queue_depth: 4096 }
    }
}

/// Everything one orchestrated cluster run needs.
#[derive(Debug, Clone)]
pub struct OrchestratorConfig {
    /// Cluster shape: node count, part mix, scheduler, migration net.
    pub cluster: ClusterConfig,
    /// Scenario seed; node silicon, ambient spread and the arrival
    /// stream all derive their sub-streams from it.
    pub seed: u64,
    /// Simulated serving span.
    pub horizon: Seconds,
    /// Simulation tick (arrival batches are drawn per tick).
    pub tick: Seconds,
    /// Worker threads for deploy **and** the serving loop's sharded
    /// per-node phase; 0 = one per available core, and explicit counts
    /// are clamped to the available cores (oversubscribing a CPU-bound
    /// phase only adds scheduling overhead). One persistent pool serves
    /// deploy and every tick. Placement decisions and all reduces stay
    /// sequential in node-index order, so thread count can never change
    /// a summary.
    pub threads: usize,
    /// Route placement through [`uniserver_cloudmgr::Scheduler::place_linear`]
    /// instead of the incremental index — the reference path CI
    /// byte-diffs the index against. Defaults to `false` (indexed).
    pub linear_placement: bool,
    /// The VM arrival process. Arrival batches are drawn at the rack's
    /// capacity-scaled rate (`tick_arrivals_scaled` with the cluster's
    /// node count).
    pub stream: VmStream,
    /// What happens to rejected arrivals.
    pub admission: AdmissionPolicy,
    /// Per-node deployment template (stress params, optimizer, base
    /// ambient). The part is overridden per node from the cluster mix.
    pub deployment: DeploymentConfig,
    /// Half-width (°C) of the uniform per-node ambient spread.
    pub ambient_spread: f64,
    /// Margin policy for the whole fleet.
    pub margins: MarginPolicy,
    /// How far a node's operating point is scaled back towards nominal
    /// after it crashes (0.0 = reapply unchanged, 1.0 = fall back to
    /// nominal for good).
    pub crash_backoff: f64,
    /// Months of silicon aging applied after characterization — the
    /// scenario models a rack partway into its re-characterization
    /// window, where NBTI drift has eroded the margins the StressLog
    /// measured at deploy time (§3.D). Zero = freshly characterized.
    pub age_months: f64,
    /// The node failure lifecycle. Disabled (the default), crashed
    /// nodes recover in place with the geometric EOP backoff — the
    /// legacy behavior, preserved draw-for-draw. Enabled, a crash takes
    /// the node offline for a seeded MTTR window and it rejoins through
    /// a re-characterization pass.
    pub lifecycle: FailureLifecycle,
    /// Seeded fault campaigns injected on top of the fleet's natural
    /// crashes. `None` (the default) = no chaos.
    pub chaos: Option<ChaosPlan>,
    /// The placement policy the cluster routes every decision through.
    /// [`PolicyKind::EnergySla`] (the default) reproduces pre-trait
    /// behavior byte-for-byte.
    pub policy: PolicyKind,
    /// The gray-failure health watchdog. Disabled (the default), no
    /// probes run and degraded nodes are only ever cleared by their
    /// fault expiring — the legacy profiles never see any of it.
    pub watchdog: WatchdogConfig,
}

impl OrchestratorConfig {
    /// The headline datacenter scenario: `nodes` mixed ARM+i5+i7
    /// machines (6:1:1), a 3-arrivals-per-second LDBC stream (≥10⁴
    /// arrivals over the hour-long horizon), 5 s ticks, ±6 °C ambient
    /// spread, extended margins.
    ///
    /// The rack runs the **assertive** optimizer (full measured margin,
    /// predictor-vetoed) and is modeled 18 months into its
    /// re-characterization window, so aging drift has eaten into the
    /// deploy-time margins — the point of cluster-in-the-loop is that
    /// placement, eviction and migration absorb the residual crash risk
    /// that per-node caution would otherwise buy back with energy.
    #[must_use]
    pub fn datacenter(nodes: usize, seed: u64) -> Self {
        OrchestratorConfig {
            cluster: ClusterConfig::uniserver_rack(nodes),
            seed,
            horizon: Seconds::new(3_600.0),
            tick: Seconds::new(5.0),
            threads: 0,
            linear_placement: false,
            stream: VmStream::datacenter(),
            admission: AdmissionPolicy::drop_all(),
            deployment: DeploymentConfig {
                guests: vec![VmConfig::ldbc_benchmark()],
                optimizer: EopOptimizer::assertive(),
                risk_tolerance: 0.05,
                ..DeploymentConfig::quick()
            },
            ambient_spread: 6.0,
            margins: MarginPolicy::Extended,
            crash_backoff: 0.25,
            age_months: 18.0,
            lifecycle: FailureLifecycle::disabled(),
            chaos: None,
            policy: PolicyKind::EnergySla,
            watchdog: WatchdogConfig::disabled(),
        }
    }

    /// A CI-sized smoke scenario: the same structure at `nodes` nodes
    /// over a 5-minute horizon with a proportionally lighter stream.
    #[must_use]
    pub fn smoke(nodes: usize, seed: u64) -> Self {
        OrchestratorConfig {
            horizon: Seconds::new(300.0),
            stream: VmStream { arrival_rate: 0.75, ..VmStream::datacenter() },
            ..OrchestratorConfig::datacenter(nodes, seed)
        }
    }

    /// The traffic-engine headline: the datacenter rack under the
    /// [`VmStream::flash_crowd`] stream — capacity-scaled arrivals,
    /// diurnal swell, seeded flash-crowd bursts, bounded-Pareto
    /// lifetimes — with gold-priority re-admission so burst-time
    /// rejections retry into freed capacity instead of vanishing.
    #[must_use]
    pub fn flash_crowd(nodes: usize, seed: u64) -> Self {
        OrchestratorConfig {
            stream: VmStream::flash_crowd(),
            admission: AdmissionPolicy::gold_priority(),
            ..OrchestratorConfig::datacenter(nodes, seed)
        }
    }

    /// The chaos headline: the flash-crowd rack under the failure
    /// lifecycle and the [`ChaosPlan::rack_and_flash`] fault profile —
    /// a steady background of independent node crashes, a rack/PSU
    /// failure taking out 12.5 % of the fleet a third of the way in,
    /// and a cooling failure overlapping the traffic peak. Crashed
    /// nodes go offline for a seeded 12–96-tick repair and rejoin
    /// through re-characterization; load sheds bronze-first while
    /// capacity is short.
    #[must_use]
    pub fn chaos_profile(nodes: usize, seed: u64) -> Self {
        let mut config = OrchestratorConfig::flash_crowd(nodes, seed);
        config.lifecycle = FailureLifecycle::standard();
        config.chaos = Some(ChaosPlan::rack_and_flash(config.ticks()));
        config
    }

    /// The gray-failure headline: the flash-crowd rack under the
    /// failure lifecycle, the [`ChaosPlan::gray_brownout`] campaign —
    /// a steady trickle of silent degradations (capacity capped at
    /// 50 %, CE rate 8×, no crash) plus a fleet-wide power cap over
    /// the back half of the run — and the standard health watchdog:
    /// 3-of-8 probe failures quarantine a node, a budgeted drain
    /// empties it, and 5 consecutive clean probes readmit it.
    #[must_use]
    pub fn gray_profile(nodes: usize, seed: u64) -> Self {
        let mut config = OrchestratorConfig::flash_crowd(nodes, seed);
        config.lifecycle = FailureLifecycle::standard();
        config.chaos = Some(ChaosPlan::gray_brownout(config.ticks(), nodes as u32));
        config.watchdog = WatchdogConfig::standard();
        config
    }

    /// Ticks the horizon divides into (the last, possibly partial, tick
    /// is rounded up).
    ///
    /// # Panics
    ///
    /// Panics if tick or horizon are non-positive.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        assert!(self.tick.as_secs() > 0.0, "tick must be positive");
        assert!(self.horizon.as_secs() > 0.0, "horizon must be positive");
        (self.horizon.as_secs() / self.tick.as_secs()).ceil() as u64
    }
}
