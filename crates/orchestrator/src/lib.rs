//! Cluster-in-the-loop orchestration: event-driven VM scheduling over a
//! heterogeneous fleet of UniServer-deployed nodes.
//!
//! The paper's savings story is ultimately a datacenter story: nodes
//! running past conservative guard-bands only pay off if a cluster
//! manager can place, migrate and evict VMs around their elevated crash
//! risk. This crate closes that loop:
//!
//! * [`config`] — scenario parameters ([`OrchestratorConfig`]), the
//!   extended-vs-nominal [`MarginPolicy`], and the [`AdmissionPolicy`]
//!   governing what happens to rejected arrivals;
//! * [`deploy`] — parallel deploy-into-cluster: per-node silicon
//!   characterized to its Extended Operating Point, sharing one trained
//!   advisor per part (`uniserver_core::training::AdvisorCache`);
//! * [`events`] — the deterministic time-ordered [`EventQueue`];
//! * [`orchestrator`] — the serving loop: seeded arrival batches,
//!   energy/SLA-aware placement, crash-driven eviction/migration via
//!   `uniserver_cloudmgr`, with the per-node phase sharded across
//!   worker threads (`Cluster::tick_sharded`) under a deterministic
//!   sequential reduce;
//! * [`summary`] — the deterministic [`ClusterSummary`] artefact plus
//!   wall-clock [`OrchestratorTiming`];
//! * [`watchdog`] — the gray-failure health watchdog: seeded probes
//!   with K-of-N hysteresis driving degraded nodes through quarantine
//!   → budgeted drain → probation → readmit.
//!
//! # Examples
//!
//! ```no_run
//! use uniserver_orchestrator::{run, OrchestratorConfig};
//!
//! let summary = run(&OrchestratorConfig::smoke(8, 42));
//! assert!(summary.placed > 0);
//! assert!(summary.energy_j > 0.0);
//! ```

pub mod config;
pub mod deploy;
pub mod events;
pub mod orchestrator;
mod serve;
pub mod summary;
pub mod watchdog;

pub use config::{AdmissionPolicy, MarginPolicy, OrchestratorConfig};
pub use deploy::{deploy_cluster, rejoin_node, DeployedNode};
pub use events::{Event, EventQueue};
pub use orchestrator::{compare, run, run_timed, run_with_telemetry};
pub use summary::{
    ChaosOutcome, ClusterSummary, GrayOutcome, MarginComparison, OrchestratorTiming, PartUsage,
    PowerOutcome, StageBreakdown, TickMetrics,
};
pub use watchdog::{Watchdog, WatchdogConfig};
pub use uniserver_telemetry::{MetricsRegistry, Telemetry, TraceSink};
pub use uniserver_cloudmgr::lifecycle::{FailureLifecycle, NodePhase};
pub use uniserver_cloudmgr::policy::PolicyKind;
pub use uniserver_faultinject::chaos::{Campaign, ChaosPlan};
