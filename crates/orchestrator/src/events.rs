//! The deterministic event queue driving the cluster loop.
//!
//! A discrete-event simulation needs one thing above all else here:
//! **reproducible ordering**. Events are ordered by simulated time with
//! a monotone sequence number as the tiebreaker, so two events due at
//! the same instant always fire in scheduling order — the queue never
//! depends on heap internals, hash order or thread schedules.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use uniserver_cloudmgr::PlacementId;
use uniserver_units::Seconds;

/// What can happen at a point in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// A placed VM's requested lifetime ends.
    Departure(PlacementId),
    /// A live migration started earlier finishes its final copy round.
    MigrationSettled(PlacementId),
}

#[derive(Debug, Clone)]
struct Scheduled {
    at: Seconds,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest (and, at
        // equal times, the first-scheduled) event is popped first.
        other
            .at
            .as_secs()
            .total_cmp(&self.at.as_secs())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The time-ordered event queue.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules `event` at absolute simulated time `at`.
    pub fn schedule(&mut self, at: Seconds, event: Event) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the next event due at or before `until`, earliest first.
    pub fn pop_due(&mut self, until: Seconds) -> Option<(Seconds, Event)> {
        if self.heap.peek().is_some_and(|s| s.at <= until) {
            self.heap.pop().map(|s| (s.at, s.event))
        } else {
            None
        }
    }

    /// Events still pending.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(5.0), Event::Departure(PlacementId(1)));
        q.schedule(Seconds::new(2.0), Event::Departure(PlacementId(2)));
        q.schedule(Seconds::new(9.0), Event::Departure(PlacementId(3)));
        let (at, ev) = q.pop_due(Seconds::new(10.0)).unwrap();
        assert_eq!((at, ev), (Seconds::new(2.0), Event::Departure(PlacementId(2))));
        let (at, _) = q.pop_due(Seconds::new(10.0)).unwrap();
        assert_eq!(at, Seconds::new(5.0));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn pop_due_respects_the_horizon() {
        let mut q = EventQueue::new();
        q.schedule(Seconds::new(7.0), Event::Departure(PlacementId(1)));
        assert!(q.pop_due(Seconds::new(6.999)).is_none());
        assert!(q.pop_due(Seconds::new(7.0)).is_some());
        assert!(q.is_empty());
    }

    #[test]
    fn simultaneous_events_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..16 {
            q.schedule(Seconds::new(3.0), Event::Departure(PlacementId(i)));
        }
        let mut popped = Vec::new();
        while let Some((_, Event::Departure(id))) = q.pop_due(Seconds::new(3.0)) {
            popped.push(id.0);
        }
        assert_eq!(popped, (0..16).collect::<Vec<_>>(), "ties must keep scheduling order");
    }
}
