//! Parallel deploy-into-cluster: every node of the rack is manufactured
//! from its own seed, characterized, moved to its Extended Operating
//! Point (under [`MarginPolicy::Extended`]) and wrapped into a
//! [`ManagedNode`] — reusing the once-per-part [`AdvisorCache`] so a
//! 256+-node mixed rack deploys at the fleet driver's fast-path speed.
//!
//! Determinism is by construction: a node's silicon, part, ambient and
//! operating point are pure functions of `(scenario seed, node index)`,
//! results are re-sorted by node index after the join, and the advisor
//! cache is pre-trained per part before workers spawn. Any worker count
//! produces the identical cluster.

use std::sync::Arc;
use std::time::Instant;

use uniserver_cloudmgr::cluster::Cluster;
use uniserver_cloudmgr::node::{ManagedNode, NodeId};
use uniserver_cloudmgr::pool::{resolve_workers, ShardPool};
use uniserver_core::ecosystem::{provision_node, recharacterize_node, DeploymentConfig};
use uniserver_core::eop::OperatingPoint;
use uniserver_core::training::AdvisorCache;
use uniserver_platform::node::ServerNode;
use uniserver_silicon::rng::{ambient_offset, indexed_seed};
use uniserver_units::Celsius;

use crate::config::{MarginPolicy, OrchestratorConfig};

/// What one node deployed as (the summary's per-node provenance).
#[derive(Debug, Clone, PartialEq)]
pub struct DeployedNode {
    /// Node index within the rack.
    pub node: usize,
    /// Seed its silicon was manufactured from.
    pub seed: u64,
    /// Part name.
    pub part: String,
    /// Site ambient the node runs at.
    pub ambient: Celsius,
    /// The operating point programmed at deploy time.
    pub point: OperatingPoint,
}

/// The per-node deployment configuration: the scenario template with
/// part and ambient resolved from the node's seed.
#[must_use]
pub fn node_deployment(config: &OrchestratorConfig, node: usize) -> DeploymentConfig {
    let seed = indexed_seed(config.seed, node);
    let mut dep = config.deployment.clone();
    dep.spec = config.cluster.node_spec(seed).clone();
    if config.ambient_spread > 0.0 {
        // The fleet driver's draw: a rack and a fleet built from one
        // seed agree on every node's ambient.
        dep.ambient = dep.ambient + Celsius::new(ambient_offset(seed, config.ambient_spread));
    }
    dep
}

fn deploy_one(config: &OrchestratorConfig, cache: &AdvisorCache, node: usize) -> (ManagedNode, DeployedNode) {
    let seed = indexed_seed(config.seed, node);
    let dep = node_deployment(config, node);
    let (server, point) = match config.margins {
        MarginPolicy::Extended => {
            let advisor = cache.get_or_train(&dep).advisor;
            provision_node(&dep, seed, &advisor)
        }
        MarginPolicy::Nominal => {
            let mut server = ServerNode::new(dep.spec.clone(), seed);
            server.set_ambient(dep.ambient);
            (server, OperatingPoint::nominal(dep.spec.cores))
        }
    };
    let mut server = server;
    if config.age_months > 0.0 {
        // The scenario models a rack partway into its
        // re-characterization window: margins were measured on fresh
        // silicon, then NBTI drift eroded them in service.
        server.age_by_months(config.age_months);
    }
    let record = DeployedNode {
        node,
        seed,
        part: dep.spec.name.clone(),
        ambient: dep.ambient,
        point,
    };
    #[allow(clippy::cast_possible_truncation)]
    let managed = ManagedNode::adopt(NodeId(node as u32), server);
    (managed, record)
}

/// Deploys the whole rack in parallel on a transient pool sized by
/// [`resolve_workers`]. Returns the assembled cluster, the per-node
/// deploy records (ordered by node index), the summed per-node deploy
/// wall-clock in seconds, and the worker count used.
///
/// Per-run callers (the serving loop) should create one [`ShardPool`]
/// and use [`deploy_cluster_on`] so the same workers serve every tick.
///
/// # Panics
///
/// Panics if the cluster has zero nodes or a worker panics.
#[must_use]
pub fn deploy_cluster(config: &OrchestratorConfig) -> (Cluster, Vec<DeployedNode>, f64, usize) {
    let pool = ShardPool::new(resolve_workers(config.threads, config.cluster.nodes));
    let (cluster, records, secs, _) = deploy_cluster_on(config, &pool);
    (cluster, records, secs, pool.workers())
}

/// Deploys the whole rack on an existing [`ShardPool`] — the
/// orchestrator's entry point, reusing the run's persistent workers.
///
/// The pool's threads are long-lived, so jobs own their inputs: the
/// scenario configuration and the pre-trained advisor cache ride `Arc`s
/// into one contiguous node-index range per worker, and results
/// reassemble in job-index order — any worker count produces the
/// identical cluster.
///
/// The advisor cache is returned alongside the cluster so rejoin-time
/// re-characterizations ([`rejoin_node`]) reuse the per-part models
/// trained at deploy time instead of retraining mid-run.
///
/// # Panics
///
/// Panics if the cluster has zero nodes or a worker panics.
#[must_use]
pub fn deploy_cluster_on(
    config: &OrchestratorConfig,
    pool: &ShardPool,
) -> (Cluster, Vec<DeployedNode>, f64, Arc<AdvisorCache>) {
    let nodes = config.cluster.nodes;
    assert!(nodes > 0, "a cluster needs nodes");
    let workers = pool.workers().min(nodes);

    // Pre-train every part of the mix so workers only ever hit the cache.
    let cache = Arc::new(AdvisorCache::new());
    if config.margins == MarginPolicy::Extended {
        for part in &config.cluster.part_mix {
            let dep = DeploymentConfig { spec: part.spec.clone(), ..config.deployment.clone() };
            let _ = cache.get_or_train(&dep);
        }
    }

    let chunk = nodes.div_ceil(workers);
    let jobs = nodes.div_ceil(chunk);
    let shared_config = Arc::new(config.clone());
    let results = pool.scatter(jobs, |w| {
        let lo = (w * chunk).min(nodes);
        let hi = ((w + 1) * chunk).min(nodes);
        let config = Arc::clone(&shared_config);
        let cache = Arc::clone(&cache);
        Box::new(move || {
            let start = Instant::now();
            let out: Vec<_> = (lo..hi).map(|n| deploy_one(&config, &cache, n)).collect();
            (out, start.elapsed().as_secs_f64())
        })
    });

    let mut managed = Vec::with_capacity(nodes);
    let mut records = Vec::with_capacity(nodes);
    let mut deploy_secs = 0.0;
    // Job-index order == node-index order (contiguous ranges).
    for (chunk_out, chunk_secs) in results {
        for (m, r) in chunk_out {
            managed.push(m);
            records.push(r);
        }
        deploy_secs += chunk_secs;
    }
    let mut cluster =
        Cluster::from_nodes(managed, config.cluster.scheduler, config.cluster.migration);
    cluster.set_linear_placement(config.linear_placement);
    cluster.set_policy(config.policy.build(config.cluster.scheduler));
    (cluster, records, deploy_secs, cache)
}

/// Re-characterizes one repaired node in place — the rejoin path of the
/// failure lifecycle. Extended racks re-run the StressLog shmoo on the
/// node *as it is now* (aged silicon, live ambient) and re-choose the
/// operating point against the deploy-time advisor; nominal racks
/// simply re-program the conservative point. Returns the point now in
/// the node's MSRs.
#[must_use]
pub fn rejoin_node(
    config: &OrchestratorConfig,
    cache: &AdvisorCache,
    node: usize,
    server: &mut ServerNode,
) -> OperatingPoint {
    let dep = node_deployment(config, node);
    match config.margins {
        MarginPolicy::Extended => {
            let advisor = cache.get_or_train(&dep).advisor;
            recharacterize_node(&dep, server, &advisor)
        }
        MarginPolicy::Nominal => {
            let point = OperatingPoint::nominal(dep.spec.cores);
            point.apply_to(server);
            point
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deploy_is_worker_count_independent() {
        use uniserver_cloudmgr::pool::resolve_workers;

        let mut config = OrchestratorConfig::smoke(6, 11);
        config.threads = 1;
        let (_, seq, _, w1) = deploy_cluster(&config);
        config.threads = 3;
        let (_, par, _, w3) = deploy_cluster(&config);
        assert_eq!(w1, 1);
        // Requests are clamped to the machine's cores (oversubscription
        // buys nothing), so the resolved count is machine-dependent.
        assert_eq!(w3, resolve_workers(3, 6));
        assert_eq!(seq, par, "worker count must not perturb any node");
    }

    #[test]
    fn deploy_on_a_shared_pool_matches_the_transient_path() {
        let config = OrchestratorConfig::smoke(5, 23);
        let (_, transient, _, _) = deploy_cluster(&config);
        let pool = ShardPool::new(2);
        let (cluster, pooled, secs, _) = deploy_cluster_on(&config, &pool);
        assert_eq!(transient, pooled, "pool reuse must not perturb any node");
        assert_eq!(cluster.nodes().len(), 5);
        assert!(secs > 0.0);
        // The pool survives deploy and stays usable for the serve phase.
        assert_eq!(pool.scatter(2, |i| Box::new(move || i)), vec![0, 1]);
    }

    #[test]
    fn extended_racks_run_undervolted_nominal_racks_do_not() {
        let config = OrchestratorConfig::smoke(4, 7);
        let (cluster, records, _, _) = deploy_cluster(&config);
        for (node, rec) in cluster.nodes().iter().zip(&records) {
            assert!(rec.point.min_offset_mv() > 0.0, "extended node must undervolt");
            assert!(node.hypervisor.node().msr.voltage_offset_mv(0) > 0.0);
            assert_eq!(node.hypervisor.node().part().name, rec.part);
        }
        let nominal = OrchestratorConfig {
            margins: MarginPolicy::Nominal,
            ..OrchestratorConfig::smoke(4, 7)
        };
        let (cluster, records, _, _) = deploy_cluster(&nominal);
        for (node, rec) in cluster.nodes().iter().zip(&records) {
            assert_eq!(rec.point.min_offset_mv(), 0.0);
            assert_eq!(node.hypervisor.node().msr.voltage_offset_mv(0), 0.0);
        }
    }

    #[test]
    fn rejoin_recharacterizes_extended_racks_and_renominalizes_nominal_ones() {
        let config = OrchestratorConfig::smoke(2, 19);
        let pool = ShardPool::new(1);
        let (mut cluster, records, _, cache) = deploy_cluster_on(&config, &pool);
        let rejoined =
            rejoin_node(&config, &cache, 0, cluster.nodes_mut()[0].hypervisor.node_mut());
        assert!(rejoined.min_offset_mv() > 0.0, "the re-shmoo still finds real margin");
        assert!(
            rejoined.min_offset_mv() <= records[0].point.min_offset_mv() + 1e-9,
            "18 months of aging cannot leave MORE margin than the fresh deploy measured: \
             {} vs {}",
            rejoined.min_offset_mv(),
            records[0].point.min_offset_mv()
        );
        // The chosen point is actually programmed into the MSRs.
        let msr_mv = cluster.nodes()[0].hypervisor.node().msr.voltage_offset_mv(0);
        assert!((msr_mv - rejoined.core_offsets_mv[0].min(250.0)).abs() < 1e-9);

        let nominal =
            OrchestratorConfig { margins: MarginPolicy::Nominal, ..OrchestratorConfig::smoke(2, 19) };
        let (mut cluster, _, _, cache) = deploy_cluster_on(&nominal, &pool);
        let point =
            rejoin_node(&nominal, &cache, 1, cluster.nodes_mut()[1].hypervisor.node_mut());
        assert_eq!(point.min_offset_mv(), 0.0, "nominal racks rejoin at nominal");
        assert_eq!(cluster.nodes()[1].hypervisor.node().msr.voltage_offset_mv(0), 0.0);
    }

    #[test]
    fn ambient_spread_and_parts_vary_across_the_rack() {
        let config = OrchestratorConfig::datacenter(48, 3);
        let ambients: Vec<f64> =
            (0..48).map(|n| node_deployment(&config, n).ambient.as_celsius()).collect();
        let lo = ambients.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ambients.iter().cloned().fold(f64::MIN, f64::max);
        assert!(hi - lo > 6.0, "±6 °C spread must show up ({lo}..{hi})");
        let parts: std::collections::BTreeSet<String> =
            (0..48).map(|n| node_deployment(&config, n).spec.name.clone()).collect();
        assert!(parts.len() >= 2, "48 draws should mix parts: {parts:?}");
    }
}
