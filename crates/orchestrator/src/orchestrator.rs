//! The cluster-in-the-loop event loop.
//!
//! One run: deploy the rack (parallel, per-node EOPs), then walk the
//! horizon tick by tick —
//!
//! 1. fire due events (departures, migration settlements) from the
//!    deterministic [`EventQueue`];
//! 2. draw this tick's VM arrival batch from its seeded sub-stream and
//!    offer it to the energy/SLA-aware scheduler;
//! 3. advance every node's hypervisor one tick;
//! 4. for every crash the platform surfaced, run failure-driven
//!    recovery (migrate what fits elsewhere, evict the rest) and
//!    re-deploy the node at a backed-off operating point (firmware
//!    cleared its undervolts on reboot).
//!
//! Every random draw derives from `(seed, node index)` or
//! `(seed, tick index)`, and the serving loop is sequential, so a run's
//! [`ClusterSummary`] is a pure function of its configuration —
//! byte-stable for any deploy worker count.

use std::time::Instant;

use uniserver_cloudmgr::sla::SlaClass;
use uniserver_units::Seconds;

use crate::config::{MarginPolicy, OrchestratorConfig};
use crate::deploy::deploy_cluster;
use crate::events::{Event, EventQueue};
use crate::summary::{
    ClassStats, ClusterSummary, MarginComparison, OrchestratorTiming, PartUsage, TickMetrics,
};

fn class_idx(class: SlaClass) -> usize {
    match class {
        SlaClass::Gold => 0,
        SlaClass::Silver => 1,
        SlaClass::Bronze => 2,
    }
}

/// Runs one orchestrated scenario.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes, non-positive
/// tick or horizon).
#[must_use]
pub fn run(config: &OrchestratorConfig) -> ClusterSummary {
    run_timed(config).0
}

/// Runs one orchestrated scenario and reports wall-clock timings.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes, non-positive
/// tick or horizon).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn run_timed(config: &OrchestratorConfig) -> (ClusterSummary, OrchestratorTiming) {
    let ticks = config.ticks();
    let wall_start = Instant::now();
    let (mut cluster, records, deploy_secs, workers) = deploy_cluster(config);
    let mut points: Vec<_> = records.iter().map(|r| r.point.clone()).collect();

    let serve_start = Instant::now();
    let dt = config.tick;
    let mut queue = EventQueue::new();
    let mut per_class = [ClassStats::default(); 3];
    let mut per_tick = Vec::with_capacity(ticks as usize);
    let (mut offered, mut placed, mut rejected) = (0u64, 0u64, 0u64);
    let (mut completed, mut evicted) = (0u64, 0u64);
    let (mut crashes, mut crash_migrations, mut settled) = (0u64, 0u64, 0u64);
    let mut sla_violations = 0u64;
    let mut part_crashes = vec![0u64; config.cluster.part_mix.len()];
    let mut energy_j = 0.0f64;

    for tick in 0..ticks {
        let now = Seconds::new(tick as f64 * dt.as_secs());
        // The final tick of a non-dividing horizon is clamped so the
        // run never simulates past `horizon` (the summary's
        // `horizon_secs` must mean what it says).
        let step = Seconds::new(dt.as_secs().min(config.horizon.as_secs() - now.as_secs()));
        let mut t_offered = 0u64;
        let mut t_placed = 0u64;
        let mut t_completed = 0u64;
        let mut t_migrations = 0u64;

        // --- 1. Due events, earliest first.
        while let Some((_, event)) = queue.pop_due(now) {
            match event {
                Event::Departure(id) => {
                    // False = the placement was evicted earlier; the
                    // eviction already accounted for it.
                    if cluster.terminate_by_id(id) {
                        completed += 1;
                        t_completed += 1;
                    }
                }
                Event::MigrationSettled(_) => settled += 1,
            }
        }

        // --- 2. This tick's arrival batch, from its own sub-stream.
        for arrival in config.stream.tick_arrivals(config.seed, tick, step) {
            offered += 1;
            t_offered += 1;
            let c = class_idx(arrival.class);
            per_class[c].offered += 1;
            match cluster.submit(arrival.config, arrival.class) {
                Some(placement) => {
                    placed += 1;
                    t_placed += 1;
                    per_class[c].placed += 1;
                    queue.schedule(now + arrival.lifetime, Event::Departure(placement.id));
                }
                None => {
                    rejected += 1;
                    per_class[c].rejected += 1;
                }
            }
        }

        // --- 3. Advance the fleet.
        let report = cluster.tick(step);
        energy_j += report.energy.as_joules();
        t_migrations += report.proactive_migrations;
        let tick_end = now + step;

        // A proactive move whose relaunch failed lost the VM: that is
        // an eviction whatever the class promised.
        for lost in &report.evicted {
            evicted += 1;
            sla_violations += 1;
            per_class[class_idx(lost.class)].violations += 1;
        }

        // --- 4. Failure-driven recovery for every surfaced crash.
        for (node_id, _event) in &report.crashes {
            crashes += 1;
            let idx = node_id.0 as usize;
            if let Some(p) = config
                .cluster
                .part_mix
                .iter()
                .position(|p| p.spec.name == records[idx].part)
            {
                part_crashes[p] += 1;
            }
            let recovery = cluster.recover_from_crash(*node_id);
            for (moved, cost) in &recovery.migrated {
                crash_migrations += 1;
                t_migrations += 1;
                queue.schedule(cost.completes_at(tick_end), Event::MigrationSettled(moved.id));
                // Gold/Silver promise continuity; a crash-forced move
                // interrupted them.
                if moved.class != SlaClass::Bronze {
                    sla_violations += 1;
                    per_class[class_idx(moved.class)].violations += 1;
                }
            }
            for lost in &recovery.evicted {
                evicted += 1;
                sla_violations += 1;
                per_class[class_idx(lost.class)].violations += 1;
            }
            // Reboot firmware cleared the undervolts: re-deploy the
            // node at a backed-off point instead of silently running
            // nominal (or leave nominal racks alone).
            if config.margins == MarginPolicy::Extended {
                points[idx] = points[idx].backed_off(config.crash_backoff);
                points[idx].apply_to(cluster.nodes_mut()[idx].hypervisor.node_mut());
            }
        }

        per_tick.push(TickMetrics {
            tick,
            offered: t_offered,
            placed: t_placed,
            completed: t_completed,
            live: cluster.placements().len() as u64,
            crashes: report.crashes.len() as u64,
            migrations: t_migrations,
            energy_j: report.energy.as_joules(),
        });
    }

    let fleet = cluster.fleet_metrics();
    let mut min_availability = f64::MAX;
    for node in cluster.nodes() {
        min_availability = min_availability.min(node.metrics().availability);
    }
    let per_part: Vec<PartUsage> = config
        .cluster
        .part_mix
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let members: Vec<_> =
                records.iter().filter(|r| r.part == part.spec.name).collect();
            PartUsage {
                part: part.spec.name.clone(),
                nodes: members.len(),
                crashes: part_crashes[p],
                min_offset_mv_mean: if members.is_empty() {
                    0.0
                } else {
                    members.iter().map(|r| r.point.min_offset_mv()).sum::<f64>()
                        / members.len() as f64
                },
            }
        })
        .filter(|u| u.nodes > 0)
        .collect();

    let summary = ClusterSummary {
        nodes: config.cluster.nodes,
        seed: config.seed,
        margins: config.margins.label().to_string(),
        horizon_secs: config.horizon.as_secs(),
        tick_secs: dt.as_secs(),
        ticks,
        offered,
        placed,
        rejected,
        completed,
        evicted,
        live_at_end: cluster.placements().len() as u64,
        crashes,
        crash_migrations,
        migrations_settled: settled,
        proactive_migrations: fleet.migrations,
        sla_violations,
        migration_downtime_secs: fleet.migration_downtime.as_secs(),
        energy_j,
        mean_availability: fleet.mean_availability,
        min_availability,
        mean_utilization: fleet.mean_utilization,
        min_offset_mv_mean: records.iter().map(|r| r.point.min_offset_mv()).sum::<f64>()
            / records.len() as f64,
        per_class,
        per_part,
        per_tick,
    };
    let timing = OrchestratorTiming {
        wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
        deploy_ms: deploy_secs * 1e3,
        serve_ms: serve_start.elapsed().as_secs_f64() * 1e3,
        nodes: config.cluster.nodes,
        arrivals: offered,
        workers,
    };
    (summary, timing)
}

/// Runs the same scenario at extended and nominal margins off one seed —
/// the paper's savings story at cluster level.
///
/// # Panics
///
/// Panics if the configuration is degenerate.
#[must_use]
pub fn compare(config: &OrchestratorConfig) -> MarginComparison {
    let extended =
        run(&OrchestratorConfig { margins: MarginPolicy::Extended, ..config.clone() });
    let nominal = run(&OrchestratorConfig { margins: MarginPolicy::Nominal, ..config.clone() });
    MarginComparison { extended, nominal }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_places_and_completes_vms() {
        let summary = run(&OrchestratorConfig::smoke(8, 42));
        assert_eq!(summary.ticks, 60);
        assert!(summary.offered > 150, "0.75/s × 300 s ≈ 225 arrivals, got {}", summary.offered);
        assert!(summary.placed > 0 && summary.placed <= summary.offered);
        assert!(summary.completed > 0, "5-minute horizon must complete some 5-min-mean VMs");
        assert_eq!(summary.placed - summary.completed - summary.evicted, summary.live_at_end);
        assert!(summary.migrations_settled <= summary.crash_migrations);
        assert!(summary.energy_j > 0.0);
        assert_eq!(summary.per_tick.len(), 60);
        let total_offered: u64 = summary.per_tick.iter().map(|t| t.offered).sum();
        assert_eq!(total_offered, summary.offered, "time series must tie out");
        let class_offered: u64 = summary.per_class.iter().map(|c| c.offered).sum();
        assert_eq!(class_offered, summary.offered);
    }

    #[test]
    fn runs_are_deterministic_for_any_worker_count() {
        let mut config = OrchestratorConfig::smoke(6, 9);
        config.threads = 1;
        let a = run(&config);
        config.threads = 4;
        let b = run(&config);
        assert_eq!(a, b, "worker count must never leak into the summary");
        let c = run(&OrchestratorConfig { seed: 10, ..config });
        assert_ne!(a, c, "a different seed must produce a different run");
    }

    #[test]
    fn extended_fleet_saves_energy_over_nominal() {
        let comparison = compare(&OrchestratorConfig::smoke(6, 2018));
        assert!(
            comparison.energy_saving_fraction() > 0.03,
            "extended margins must save fleet energy, got {:.4}",
            comparison.energy_saving_fraction()
        );
        assert_eq!(comparison.extended.margins, "extended");
        assert_eq!(comparison.nominal.margins, "nominal");
        assert_eq!(comparison.nominal.crashes, 0, "nominal guard-bands must not crash");
        assert_eq!(comparison.nominal.min_offset_mv_mean, 0.0);
        assert!(comparison.extended.min_offset_mv_mean > 20.0);
    }
}
