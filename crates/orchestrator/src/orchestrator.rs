//! The cluster-in-the-loop event loop.
//!
//! One run: deploy the rack (parallel, per-node EOPs), then walk the
//! horizon tick by tick —
//!
//! 1. fire due events (departures, migration settlements) from the
//!    deterministic [`EventQueue`];
//! 2. re-offer queued rejections (gold first) into the capacity those
//!    departures freed, then draw this tick's VM arrival batch — at the
//!    rack's capacity-scaled, shape-modulated rate — from its seeded
//!    sub-stream and offer it to the energy/SLA-aware scheduler;
//!    rejections either enter the bounded per-class retry queue or are
//!    counted `abandoned`, per the [`crate::config::AdmissionPolicy`];
//! 3. advance every node's hypervisor one tick — **sharded across the
//!    run's persistent worker pool** (`Cluster::tick_pooled`; the same
//!    threads that deployed the rack serve every tick), with energy,
//!    crash events and predictor scores reduced sequentially in
//!    node-index order;
//! 4. for every crashed node (deduplicated: several same-tick crash
//!    events still recover once), run failure-driven recovery (migrate
//!    what fits elsewhere, evict the rest). With the failure lifecycle
//!    disabled the node re-deploys in place at a backed-off operating
//!    point (firmware cleared its undervolts on reboot); enabled, the
//!    crash *costs capacity* — the node goes offline for a seeded MTTR
//!    window (excluded from placement, ticking, energy and the crash
//!    surface) and rejoins through a re-characterization pass. A
//!    [`crate::config::OrchestratorConfig::chaos`] plan injects seeded
//!    fault campaigns — background node crashes, correlated rack/PSU
//!    failures, cooling-failure ambient steps — on top of the natural
//!    crash stream, and while capacity is degraded premium re-offers
//!    shed bronze-first ([`crate::config::OrchestratorConfig`]'s
//!    lifecycle `shed` knob).
//!
//! After the loop, events due in the final `(last tick start, horizon]`
//! window are drained so end-of-horizon departures and settlements are
//! not dropped from `completed` / `migrations_settled`.
//!
//! Every random draw derives from `(seed, node index)` or
//! `(seed, tick index)`, parallel per-node work reduces in node-index
//! order, and every placement-mutating phase is sequential, so a run's
//! [`ClusterSummary`] is a pure function of its configuration —
//! byte-stable for any worker count (`threads` drives deploy *and*
//! serve).

use std::sync::Arc;
use std::time::Instant;

use uniserver_cloudmgr::lifecycle::{GrayState, NodePhase};
use uniserver_cloudmgr::node::NodeId;
use uniserver_cloudmgr::pool::{resolve_workers, ShardPool};
use uniserver_core::eop::OperatingPoint;
use uniserver_faultinject::chaos::ChaosPlan;
use uniserver_platform::node::CrashEvent;
use uniserver_telemetry::{Stage, StageProfiler, Telemetry, TraceEvent};
use uniserver_units::{Celsius, Seconds, Volts};

use uniserver_cloudmgr::policy::PolicyKind;

use crate::config::{MarginPolicy, OrchestratorConfig};
use crate::deploy::{deploy_cluster_on, rejoin_node};
use crate::events::EventQueue;
use crate::serve::{CrashPolicy, RetryQueue, ServeCounters};
use crate::summary::{
    ChaosOutcome, ClusterSummary, GrayOutcome, MarginComparison, OrchestratorTiming, PartUsage,
    PowerOutcome, StageBreakdown, TickMetrics,
};
use crate::watchdog::{probe_fails, Verdict, Watchdog};

/// Runs one orchestrated scenario.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes, non-positive
/// tick or horizon).
#[must_use]
pub fn run(config: &OrchestratorConfig) -> ClusterSummary {
    run_timed(config).0
}

/// Runs one orchestrated scenario and reports wall-clock timings.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero nodes, non-positive
/// tick or horizon, or an invalid [`VmStream`] — e.g. a class mix whose
/// gold and silver fractions exceed 1.0).
///
/// [`VmStream`]: uniserver_cloudmgr::stream::VmStream
#[must_use]
pub fn run_timed(config: &OrchestratorConfig) -> (ClusterSummary, OrchestratorTiming) {
    let mut tel = Telemetry::disabled();
    run_with_telemetry(config, &mut tel)
}

/// Runs one orchestrated scenario with a live [`Telemetry`] bundle:
/// sim-domain metrics and trace events land in `tel` (both byte-stable
/// for any worker count — accumulation is sequential, in node-index
/// order), wall-clock stage attribution lands in the returned timing's
/// `stages` block. `Telemetry::disabled()` makes this exactly
/// [`run_timed`].
///
/// # Panics
///
/// Panics if the configuration is degenerate (see [`run_timed`]).
#[must_use]
pub fn run_with_telemetry(
    config: &OrchestratorConfig,
    tel: &mut Telemetry,
) -> (ClusterSummary, OrchestratorTiming) {
    if let Err(err) = config.stream.validate() {
        panic!("invalid stream: {err}");
    }
    let ticks = config.ticks();
    let wall_start = Instant::now();
    // One persistent worker pool for the whole run: the parallel deploy
    // and all ~720 sharded ticks reuse the same threads instead of
    // paying a `thread::scope` spawn per tick.
    let workers = resolve_workers(config.threads, config.cluster.nodes);
    let pool = ShardPool::new(workers);
    let (mut cluster, records, deploy_secs, cache) = deploy_cluster_on(config, &pool);
    // The stage profiler is wall-clock (machine-local): it feeds the
    // timing report, never the deterministic summary or metrics.
    let profiler = Arc::new(StageProfiler::new());
    profiler.add_nanos(Stage::Deploy, (deploy_secs * 1e9) as u64);
    cluster.set_profiler(Arc::clone(&profiler));
    if tel.metrics.is_some() {
        cluster.enable_metrics();
    }
    tel.begin_run(config.tick.as_secs());
    let mut points: Vec<_> = records.iter().map(|r| r.point.clone()).collect();
    // Part-mix index per node, resolved once for crash attribution.
    let node_parts: Vec<Option<usize>> = records
        .iter()
        .map(|r| config.cluster.part_mix.iter().position(|p| p.spec.name == r.part))
        .collect();

    let serve_start = Instant::now();
    let dt = config.tick;
    let mut queue = EventQueue::new();
    let mut per_tick = Vec::with_capacity(ticks as usize);
    let mut c = ServeCounters::new(config.cluster.part_mix.len());
    let mut retry = RetryQueue::new(config.admission);
    let crash_policy = CrashPolicy {
        margins: config.margins,
        backoff: config.crash_backoff,
        lifecycle: config.lifecycle,
        seed: config.seed,
    };
    // The cooling-failure ambient step currently programmed into the
    // fleet (0 = the deploy-time baseline).
    let mut ambient_applied = 0.0f64;
    // Gray failures and the watchdog only engage when the plan carries
    // a gray or power-cap campaign — every other profile must not even
    // touch the new code paths, so their summaries stay byte-identical.
    let gray_active = config.chaos.as_ref().is_some_and(ChaosPlan::has_gray);
    let mut watchdog = Watchdog::new(config.watchdog);

    for tick in 0..ticks {
        let now = Seconds::new(tick as f64 * dt.as_secs());
        // The final tick of a non-dividing horizon is clamped so the
        // run never simulates past `horizon` (the summary's
        // `horizon_secs` must mean what it says).
        let step = Seconds::new(dt.as_secs().min(config.horizon.as_secs() - now.as_secs()));
        let mut t_offered = 0u64;
        let mut t_placed = 0u64;
        let mut t_migrations = 0u64;
        tel.begin_tick(tick, now.as_secs());

        // --- 0. Repairs tick down; nodes whose MTTR window just closed
        // rejoin through a re-characterization pass — extended racks
        // re-shmoo the silicon *as it is now* (aged, at its live
        // ambient) instead of applying a geometric backoff.
        {
            let _span = profiler.scoped(Stage::Rejoin);
            for id in cluster.tick_repairs() {
                let idx = id.0 as usize;
                points[idx] =
                    rejoin_node(config, &cache, idx, cluster.nodes_mut()[idx].hypervisor.node_mut());
                cluster.complete_rejoin(id);
                c.rejoins += 1;
                tel.inc("rejoins");
                tel.emit(&TraceEvent::Rejoin { node: u64::from(id.0) });
            }
        }

        // --- 0b. Gray failures: expired faults clear, new onsets land,
        // and the watchdog probes every degraded node — quarantining,
        // draining and readmitting on its K-of-N hysteresis. Sequential
        // in node-index order (the watch map iterates ascending), so
        // worker count can never reorder a probe draw.
        if gray_active {
            let _span = profiler.scoped(Stage::Recovery);
            // (i) Faults expire on their own clock — but only while the
            // node is *not* quarantined: once the watchdog distrusts a
            // node, only a full probation run brings it back, however
            // long the underlying fault has been gone (flap-proofing).
            for idx in 0..config.cluster.nodes {
                let Some(gray) = cluster.nodes()[idx].gray() else { continue };
                if !gray.quarantined && tick >= gray.clears_at_tick {
                    cluster.clear_degraded(NodeId(idx as u32));
                    watchdog.forget(idx as u32);
                }
            }
            // (ii) New onsets from the seeded campaign. Only healthy
            // online awake nodes degrade; offline, rejoining, asleep or
            // already-degraded nodes skip their draw.
            if let Some(plan) = &config.chaos {
                #[allow(clippy::cast_possible_truncation)]
                let fleet_width = config.cluster.nodes as u32;
                for onset in plan.gray_onsets_at(config.seed, tick, step.as_secs(), fleet_width) {
                    let idx = onset.node as usize;
                    let node = &cluster.nodes()[idx];
                    if node.phase() != NodePhase::Online || node.is_asleep() {
                        continue;
                    }
                    cluster.mark_degraded(
                        NodeId(onset.node),
                        GrayState {
                            capacity_cap: onset.capacity_cap,
                            ce_multiplier: onset.ce_multiplier,
                            clears_at_tick: tick + onset.duration_ticks,
                            quarantined: false,
                        },
                    );
                    if config.watchdog.enabled {
                        watchdog.begin_watch(onset.node);
                    }
                    c.gray_onsets += 1;
                    tel.inc("gray_onsets");
                    tel.emit(&TraceEvent::GrayOnset {
                        node: u64::from(onset.node),
                        duration_ticks: onset.duration_ticks,
                    });
                }
            }
            // (iii) The watchdog's probe round over everything under
            // watch. A watch whose node left the degraded phase by
            // another path (it crashed outright) is dropped — the
            // failure lifecycle owns it now.
            for node in watchdog.watched() {
                let idx = node as usize;
                if !cluster.nodes()[idx].is_degraded() {
                    watchdog.forget(node);
                    continue;
                }
                let gray = cluster.nodes()[idx].gray().expect("degraded nodes carry gray state");
                let p = if tick < gray.clears_at_tick {
                    config.watchdog.probe_fail_degraded
                } else {
                    config.watchdog.probe_fail_healthy
                };
                let failed = probe_fails(config.seed, node, tick, p);
                if failed {
                    c.probe_failures += 1;
                    tel.inc("probe_failures");
                }
                match watchdog.observe(node, failed) {
                    Verdict::Quarantine => {
                        cluster.set_quarantined(NodeId(node), true);
                        // A quarantined extended-margin node backs its
                        // EOP off to nominal: while it is suspect it
                        // stops trading crash margin for energy.
                        if config.margins == MarginPolicy::Extended {
                            let server = cluster.nodes_mut()[idx].hypervisor.node_mut();
                            let nominal = OperatingPoint::nominal(server.part().cores);
                            nominal.apply_to(server);
                            points[idx] = nominal;
                        }
                        c.quarantines += 1;
                        tel.inc("quarantines");
                        tel.emit(&TraceEvent::Quarantine { node: u64::from(node) });
                    }
                    Verdict::Readmit => {
                        cluster.set_quarantined(NodeId(node), false);
                        cluster.clear_degraded(NodeId(node));
                        watchdog.forget(node);
                        // Readmission re-characterizes like a repair
                        // rejoin: the silicon is re-shmooed as it is
                        // now, not restored from a stale point.
                        points[idx] = rejoin_node(
                            config,
                            &cache,
                            idx,
                            cluster.nodes_mut()[idx].hypervisor.node_mut(),
                        );
                        c.readmissions += 1;
                        tel.inc("readmissions");
                        tel.emit(&TraceEvent::Readmit { node: u64::from(node) });
                    }
                    Verdict::None => {}
                }
                // Quarantined nodes drain on the per-tick budget: gold
                // first, pre-copy, never evicting — a bite per tick
                // until the node is empty.
                if watchdog.in_quarantine(node) {
                    t_migrations +=
                        cluster.drain_degraded(NodeId(node), config.watchdog.drain_budget);
                }
            }
        }

        // --- 1. Due events, earliest first.
        let t_completed = {
            let _span = profiler.scoped(Stage::Events);
            c.drain_due(&mut queue, &mut cluster, now)
        };
        tel.add("completed", t_completed);

        // --- 1b. Power management: a consolidating policy parks nodes
        // the departures just emptied and drains near-empty stragglers
        // onto the packed end of the rack. A no-op (and free) for
        // non-managing policies.
        {
            let _span = profiler.scoped(Stage::Placement);
            cluster.manage(tick, config.seed);
        }

        // --- 2a. Queued rejections re-offer first, gold before silver,
        // into whatever capacity the departures just freed. (Empty —
        // and free — under the default drop-all admission policy.)
        {
            let _span = profiler.scoped(Stage::RetryQueue);
            t_placed += c.reoffer_pending(
                &mut retry,
                &mut cluster,
                &mut queue,
                now,
                tick,
                config.lifecycle.shed,
                tel,
            );
        }

        // --- 2b. This tick's arrival batch, from its own sub-stream,
        // drawn at the rack's capacity-scaled rate.
        {
            let _span = profiler.scoped(Stage::Placement);
            for arrival in
                config.stream.tick_arrivals_scaled(config.seed, tick, step, config.cluster.nodes)
            {
                t_offered += 1;
                if c.admit(&mut retry, &mut cluster, &mut queue, arrival, now, tick, tel) {
                    t_placed += 1;
                }
            }
        }

        // --- 2c. Cooling-failure campaigns step the whole fleet's
        // ambient above the deploy-time baseline while they are in
        // force (offline nodes included — the hot aisle does not care).
        if let Some(plan) = &config.chaos {
            let delta = plan.ambient_delta_at(tick);
            if delta != ambient_applied {
                for (managed, rec) in cluster.nodes_mut().iter_mut().zip(&records) {
                    managed
                        .hypervisor
                        .node_mut()
                        .set_ambient(rec.ambient + Celsius::new(delta));
                }
                ambient_applied = delta;
            }
        }

        // --- 3. Advance the fleet, sharded across the run's pool.
        // Offline nodes are skipped wholesale: no energy, no load, no
        // crash surface while they repair.
        let mut report = {
            let _span = profiler.scoped(Stage::Tick);
            cluster.tick_pooled(step, &pool)
        };
        c.energy_j += report.energy.as_joules();
        t_migrations += report.proactive_migrations;
        tel.add("proactive_migrations", report.proactive_migrations);
        let tick_end = now + step;

        // A proactive move whose relaunch failed lost the VM: that is
        // an eviction whatever the class promised.
        for lost in &report.evicted {
            c.charge_eviction(lost, tel);
        }

        // --- 3a. Brownout: while a power-cap campaign is in force the
        // fleet's actual draw this tick is compared with the cap, the
        // shortfall is charged to the deficit meter, and the fleet
        // gracefully degrades — empty nodes park (power-managing
        // policies only; the reference policy never re-wakes parked
        // nodes) and load sheds bronze-first, with every shed charged
        // as the SLA violation it is.
        if let Some(plan) = &config.chaos {
            if let Some(cap_watts) = plan.power_cap_at(tick) {
                let draw_watts = report.energy.as_joules() / step.as_secs();
                if draw_watts > cap_watts {
                    let deficit = draw_watts - cap_watts;
                    c.powercap_deficit_watt_secs += deficit * step.as_secs();
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    tel.record("powercap_deficit_watts", deficit.max(0.0).round() as u64);
                    if cluster.policy().manages() {
                        let mut occupied = vec![false; config.cluster.nodes];
                        for p in cluster.placements() {
                            occupied[p.node.0 as usize] = true;
                        }
                        for (idx, taken) in occupied.iter().enumerate() {
                            let n = &cluster.nodes()[idx];
                            if !taken && n.is_online() && !n.is_asleep() && !n.is_degraded() {
                                #[allow(clippy::cast_possible_truncation)]
                                cluster.park_node(NodeId(idx as u32));
                            }
                        }
                    }
                    let live = cluster.placements().len();
                    if live > 0 {
                        // Proportional control: assume the deficit
                        // scales with live placements and shed just
                        // enough, bounded per tick so one bad estimate
                        // cannot hollow the fleet out.
                        let per_vm = draw_watts / live as f64;
                        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                        let needed = (deficit / per_vm).ceil().max(1.0) as usize;
                        c.shed_for_powercap(&mut cluster, needed.min(32), tel);
                    }
                }
            }
        }

        // --- 3b. Chaos-plan crash injection: seeded fault campaigns
        // surface synthetic power-loss events (voltage 0) alongside the
        // tick's natural crashes. Already-offline nodes cannot crash
        // again.
        if let Some(plan) = &config.chaos {
            #[allow(clippy::cast_possible_truncation)]
            let fleet_width = config.cluster.nodes as u32;
            for idx in plan.crash_indices_at(config.seed, tick, step.as_secs(), fleet_width) {
                if !cluster.nodes()[idx as usize].is_online() {
                    continue;
                }
                report.crashes.push((
                    NodeId(idx),
                    CrashEvent {
                        core: 0,
                        at: tick_end,
                        voltage: Volts::new(0.0),
                        workload: Arc::from("chaos"),
                    },
                ));
                c.injected_crashes += 1;
                tel.inc("injected_crashes");
            }
        }

        // --- 4. Failure-driven recovery, once per crashed node. Under
        // the lifecycle, recovery evacuates the node and takes it
        // offline for its seeded MTTR window.
        {
            let _span = profiler.scoped(Stage::Recovery);
            t_migrations += c.recover_crashes(
                &mut cluster,
                &mut queue,
                &mut points,
                &node_parts,
                &report.crashes,
                tick_end,
                tick,
                &crash_policy,
                tel,
            );
        }

        // --- 5. Downtime accrual: every tick a node spends offline is
        // real lost capacity (a freshly-crashed node's window starts
        // this tick; a rejoining node stopped counting at tick start).
        let offline = cluster.offline_count();
        c.downtime_secs += step.as_secs() * offline as f64;
        c.peak_offline = c.peak_offline.max(offline as u64);
        if cluster.policy().manages() {
            let asleep = cluster.asleep_count();
            c.asleep_node_secs += step.as_secs() * asleep as f64;
            c.peak_asleep = c.peak_asleep.max(asleep as u64);
            tel.observe("nodes_asleep", asleep as u64);
        }
        if gray_active {
            let degraded = cluster.degraded_count();
            c.degraded_node_secs += step.as_secs() * degraded as f64;
            c.peak_degraded = c.peak_degraded.max(degraded as u64);
            tel.observe("degraded_nodes", degraded as u64);
        }
        tel.observe("live_placements", cluster.placements().len() as u64);
        tel.observe("offline_nodes", offline as u64);
        tel.observe("retry_queue_depth", retry.pending_len() as u64);

        per_tick.push(TickMetrics {
            tick,
            offered: t_offered,
            placed: t_placed,
            completed: t_completed,
            live: cluster.placements().len() as u64,
            crashes: report.crashes.len() as u64,
            migrations: t_migrations,
            energy_j: report.energy.as_joules(),
        });
    }

    // --- End-of-horizon drain: departures and settlements due in the
    // final `(last tick start, horizon]` window must still fire, or
    // `completed` / `migrations_settled` undercount what the horizon
    // actually served. (These fall outside the per-tick series.)
    tel.begin_tick(ticks, config.horizon.as_secs());
    let final_completed =
        c.drain_due(&mut queue, &mut cluster, Seconds::new(config.horizon.as_secs()));
    tel.add("completed", final_completed);
    // Whatever is still waiting for re-admission when the horizon ends
    // was never served: count it abandoned so admission ties out too.
    c.flush_pending(&mut retry, ticks, tel);
    // Shard-accumulated metrics (node ticks, predictor rescores, crash
    // histograms) merge into the run's registry in node-index order.
    if let Some(shard_metrics) = cluster.take_metrics() {
        if let Some(m) = &mut tel.metrics {
            m.merge(&shard_metrics);
        }
    }
    if cluster.policy().manages() {
        let power = cluster.power_stats();
        tel.add("wake_transitions", power.wakes);
        tel.add("consolidation_migrations", power.consolidation_migrations);
    }
    debug_assert_eq!(
        c.placed,
        c.completed + c.evicted + cluster.placements().len() as u64,
        "lifecycle accounting must tie out"
    );
    debug_assert_eq!(
        c.offered,
        c.placed + c.abandoned,
        "admission accounting must tie out: every offer is placed or abandoned"
    );

    let fleet = cluster.fleet_metrics();
    let mut min_availability = f64::MAX;
    for node in cluster.nodes() {
        min_availability = min_availability.min(node.metrics().availability);
    }
    let per_part: Vec<PartUsage> = config
        .cluster
        .part_mix
        .iter()
        .enumerate()
        .map(|(p, part)| {
            let members: Vec<_> =
                records.iter().filter(|r| r.part == part.spec.name).collect();
            PartUsage {
                part: part.spec.name.clone(),
                nodes: members.len(),
                crashes: c.part_crashes[p],
                min_offset_mv_mean: if members.is_empty() {
                    0.0
                } else {
                    members.iter().map(|r| r.point.min_offset_mv()).sum::<f64>()
                        / members.len() as f64
                },
            }
        })
        .filter(|u| u.nodes > 0)
        .collect();

    let summary = ClusterSummary {
        nodes: config.cluster.nodes,
        seed: config.seed,
        margins: config.margins.label().to_string(),
        horizon_secs: config.horizon.as_secs(),
        tick_secs: dt.as_secs(),
        ticks,
        offered: c.offered,
        placed: c.placed,
        rejected: c.rejected,
        retried: c.retried,
        abandoned: c.abandoned,
        expired_at_horizon: c.expired_at_horizon,
        completed: c.completed,
        evicted: c.evicted,
        live_at_end: cluster.placements().len() as u64,
        crashes: c.crashes,
        crash_migrations: c.crash_migrations,
        migrations_settled: c.settled,
        proactive_migrations: fleet.migrations,
        sla_violations: c.sla_violations,
        migration_downtime_secs: fleet.migration_downtime.as_secs(),
        energy_j: c.energy_j,
        mean_availability: fleet.mean_availability,
        min_availability,
        mean_utilization: fleet.mean_utilization,
        min_offset_mv_mean: records.iter().map(|r| r.point.min_offset_mv()).sum::<f64>()
            / records.len() as f64,
        per_class: c.per_class,
        per_part,
        per_tick,
        chaos: (config.lifecycle.enabled || config.chaos.is_some()).then(|| {
            let node_secs = config.cluster.nodes as f64 * config.horizon.as_secs();
            ChaosOutcome {
                injected_crashes: c.injected_crashes,
                nodes_offlined: c.nodes_offlined,
                rejoins: c.rejoins,
                peak_offline: c.peak_offline,
                downtime_secs: c.downtime_secs,
                lost_capacity_node_hours: c.downtime_secs / 3600.0,
                availability: 1.0 - c.downtime_secs / node_secs,
                shed: c.shed,
            }
        }),
        policy: (config.policy != PolicyKind::EnergySla)
            .then(|| config.policy.label().to_string()),
        power: cluster.policy().manages().then(|| {
            let stats = cluster.power_stats();
            PowerOutcome {
                parks: stats.parks,
                wakes: stats.wakes,
                consolidation_migrations: stats.consolidation_migrations,
                asleep_node_secs: c.asleep_node_secs,
                peak_asleep: c.peak_asleep,
            }
        }),
        gray: gray_active.then(|| GrayOutcome {
            gray_onsets: c.gray_onsets,
            probe_failures: c.probe_failures,
            quarantines: c.quarantines,
            readmissions: c.readmissions,
            degraded_node_secs: c.degraded_node_secs,
            degraded_node_hours: c.degraded_node_secs / 3600.0,
            peak_degraded: c.peak_degraded,
            powercap_deficit_watt_secs: c.powercap_deficit_watt_secs,
            powercap_sheds: c.powercap_sheds,
        }),
    };
    let timing = OrchestratorTiming {
        wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
        deploy_ms: deploy_secs * 1e3,
        serve_ms: serve_start.elapsed().as_secs_f64() * 1e3,
        nodes: config.cluster.nodes,
        arrivals: c.offered,
        workers,
        cores: uniserver_cloudmgr::pool::cores(),
        stages: StageBreakdown {
            placement_ms: profiler.ms(Stage::Placement),
            predictor_ms: profiler.ms(Stage::Predictor),
            hypervisor_tick_ms: profiler.ms(Stage::NodeTick),
            retry_ms: profiler.ms(Stage::RetryQueue),
            recovery_ms: profiler.ms(Stage::Recovery),
            events_ms: profiler.ms(Stage::Events),
            rejoin_ms: profiler.ms(Stage::Rejoin),
            tick_wall_ms: profiler.ms(Stage::Tick),
        },
    };
    (summary, timing)
}

/// Runs the same scenario at extended and nominal margins off one seed —
/// the paper's savings story at cluster level.
///
/// # Panics
///
/// Panics if the configuration is degenerate.
#[must_use]
pub fn compare(config: &OrchestratorConfig) -> MarginComparison {
    let extended =
        run(&OrchestratorConfig { margins: MarginPolicy::Extended, ..config.clone() });
    let nominal = run(&OrchestratorConfig { margins: MarginPolicy::Nominal, ..config.clone() });
    MarginComparison { extended, nominal }
}

#[cfg(test)]
mod tests {
    use super::*;

    use uniserver_cloudmgr::stream::VmStream;

    use crate::config::AdmissionPolicy;

    #[test]
    fn admission_retries_recover_rejections_and_tie_out() {
        // The full datacenter rate on a 2-node rack: heavily overloaded,
        // so the admission policy is actually exercised.
        let base = OrchestratorConfig {
            stream: VmStream::datacenter(),
            ..OrchestratorConfig::smoke(2, 5)
        };
        let drop = run(&base.clone());
        let retrying =
            run(&OrchestratorConfig { admission: AdmissionPolicy::gold_priority(), ..base });

        assert!(drop.rejected > 0, "the rack must actually overload");
        assert_eq!(drop.retried, 0, "drop-all never re-offers");
        assert_eq!(drop.abandoned, drop.rejected, "drop-all abandons every rejection");
        assert_eq!(drop.offered, drop.placed + drop.abandoned);

        assert!(retrying.retried > 0, "gold-priority must re-offer queued rejections");
        assert_eq!(retrying.offered, retrying.placed + retrying.abandoned);
        assert_eq!(
            drop.offered, retrying.offered,
            "the admission policy must not change the arrival stream"
        );
        assert_eq!(
            retrying.per_class[2].retried, 0,
            "bronze has no budget under gold-priority"
        );
    }

    #[test]
    fn flash_crowd_runs_are_deterministic_for_any_worker_count() {
        let mut config = OrchestratorConfig {
            horizon: Seconds::new(600.0),
            ..OrchestratorConfig::flash_crowd(8, 42)
        };
        config.threads = 1;
        let a = run(&config);
        config.threads = 4;
        let b = run(&config);
        assert_eq!(a, b, "worker count must never leak into a flash-crowd summary");
        assert!(a.offered > 0);
        assert_eq!(a.offered, a.placed + a.abandoned);
    }

    #[test]
    #[should_panic(expected = "invalid stream")]
    fn invalid_stream_is_rejected_before_deploy() {
        let mut config = OrchestratorConfig::smoke(2, 1);
        config.stream.gold_fraction = 0.8;
        config.stream.silver_fraction = 0.7;
        let _ = run(&config);
    }

    #[test]
    fn smoke_run_places_and_completes_vms() {
        let summary = run(&OrchestratorConfig::smoke(8, 42));
        assert_eq!(summary.ticks, 60);
        assert!(summary.offered > 150, "0.75/s × 300 s ≈ 225 arrivals, got {}", summary.offered);
        assert!(summary.placed > 0 && summary.placed <= summary.offered);
        assert!(summary.completed > 0, "5-minute horizon must complete some 5-min-mean VMs");
        assert_eq!(summary.placed - summary.completed - summary.evicted, summary.live_at_end);
        assert!(summary.migrations_settled <= summary.crash_migrations);
        assert!(summary.energy_j > 0.0);
        assert_eq!(summary.per_tick.len(), 60);
        let total_offered: u64 = summary.per_tick.iter().map(|t| t.offered).sum();
        assert_eq!(total_offered, summary.offered, "time series must tie out");
        let class_offered: u64 = summary.per_class.iter().map(|c| c.offered).sum();
        assert_eq!(class_offered, summary.offered);
        // The end-of-horizon drain completes departures due in the
        // final (last tick start, horizon] window — completions the
        // per-tick series (which fires at tick *starts*) cannot see.
        let ticked_completed: u64 = summary.per_tick.iter().map(|t| t.completed).sum();
        assert!(
            ticked_completed < summary.completed,
            "the final-window drain must add completions: {ticked_completed} vs {}",
            summary.completed
        );
    }

    #[test]
    fn runs_are_deterministic_for_any_worker_count() {
        let mut config = OrchestratorConfig::smoke(6, 9);
        config.threads = 1;
        let a = run(&config);
        config.threads = 4;
        let b = run(&config);
        assert_eq!(a, b, "worker count must never leak into the summary");
        let c = run(&OrchestratorConfig { seed: 10, ..config });
        assert_ne!(a, c, "a different seed must produce a different run");
    }

    #[test]
    fn legacy_configs_report_no_chaos_outcome() {
        let summary = run(&OrchestratorConfig::smoke(4, 42));
        assert!(summary.chaos.is_none(), "lifecycle off + no plan must keep the legacy shape");
        assert_eq!(summary.expired_at_horizon, 0, "drop-all leaves nothing queued to expire");
    }

    #[test]
    fn chaos_profile_costs_real_capacity_and_repairs_it() {
        let mut config = OrchestratorConfig::chaos_profile(12, 42);
        config.horizon = Seconds::new(900.0);
        // Re-derive the plan for the shortened horizon so the rack and
        // cooling failures land inside it.
        config.chaos = Some(uniserver_faultinject::chaos::ChaosPlan::rack_and_flash(config.ticks()));
        let summary = run(&config);
        let chaos = summary.chaos.expect("the chaos profile must report an outcome");

        assert!(chaos.injected_crashes > 0, "the plan must inject crashes");
        assert!(chaos.nodes_offlined > 0, "lifecycle crashes must cost capacity");
        assert!(chaos.downtime_secs > 0.0, "offline windows must accrue downtime");
        assert!(chaos.rejoins > 0, "a 15-minute horizon must complete some 1–8 min repairs");
        assert!(chaos.peak_offline >= 1);
        assert!(chaos.availability < 1.0, "lost capacity must show in availability");
        assert!(chaos.availability > 0.0);
        assert!(
            (chaos.lost_capacity_node_hours - chaos.downtime_secs / 3600.0).abs() < 1e-12,
            "node-hours is the same downtime in different units"
        );
        // The accounting invariants hold under chaos too.
        assert_eq!(summary.offered, summary.placed + summary.abandoned);
        assert_eq!(
            summary.placed,
            summary.completed + summary.evicted + summary.live_at_end
        );
        assert!(
            summary.crashes >= chaos.injected_crashes,
            "injected events are counted in the crash total"
        );
    }

    #[test]
    fn chaos_runs_are_deterministic_for_any_worker_count() {
        let mut config = OrchestratorConfig::chaos_profile(8, 7);
        config.horizon = Seconds::new(600.0);
        config.chaos = Some(uniserver_faultinject::chaos::ChaosPlan::rack_and_flash(config.ticks()));
        config.threads = 1;
        let a = run(&config);
        config.threads = 4;
        let b = run(&config);
        assert_eq!(a, b, "worker count must never leak into a chaos summary");
        let chaos = a.chaos.expect("chaos outcome present");
        assert!(chaos.nodes_offlined > 0, "the 600 s profile must offline nodes");
    }

    #[test]
    fn gray_profile_quarantines_drains_and_readmits() {
        let mut config = OrchestratorConfig::gray_profile(12, 42);
        config.horizon = Seconds::new(900.0);
        // Re-derive the plan for the shortened horizon so the gray
        // trickle and the brownout window both land inside it.
        config.chaos =
            Some(uniserver_faultinject::chaos::ChaosPlan::gray_brownout(config.ticks(), 12));
        let summary = run(&config);
        let gray = summary.gray.expect("the gray profile must report an outcome");

        assert!(gray.gray_onsets > 0, "the campaign must degrade nodes");
        assert!(gray.probe_failures > 0, "degraded nodes must fail probes");
        assert!(gray.quarantines > 0, "3-of-8 hysteresis must trip on 90 % fail rates");
        assert!(gray.degraded_node_secs > 0.0, "degraded dwell must accrue");
        assert!(gray.peak_degraded >= 1);
        assert!(
            (gray.degraded_node_hours - gray.degraded_node_secs / 3600.0).abs() < 1e-12,
            "node-hours is the same dwell in different units"
        );
        assert!(
            gray.readmissions <= gray.quarantines,
            "a node must be quarantined before it can be readmitted"
        );
        assert!(
            gray.powercap_deficit_watt_secs > 0.0,
            "a 288 W cap on a 12-node fleet must run a deficit"
        );
        // Gray nodes never crash and never go offline, so the
        // accounting invariants hold with capacity merely capped.
        assert_eq!(summary.offered, summary.placed + summary.abandoned);
        assert_eq!(summary.placed, summary.completed + summary.evicted + summary.live_at_end);
    }

    #[test]
    fn gray_runs_are_deterministic_for_any_worker_count() {
        let mut config = OrchestratorConfig::gray_profile(8, 7);
        config.horizon = Seconds::new(600.0);
        config.chaos =
            Some(uniserver_faultinject::chaos::ChaosPlan::gray_brownout(config.ticks(), 8));
        config.threads = 1;
        let a = run(&config);
        config.threads = 4;
        let b = run(&config);
        assert_eq!(a, b, "worker count must never leak into a gray summary");
        let gray = a.gray.expect("gray outcome present");
        assert!(gray.gray_onsets > 0, "the 600 s profile must degrade nodes");
    }

    #[test]
    fn offline_nodes_are_excluded_from_placement_until_rejoin() {
        // Lifecycle on, no chaos plan: only natural crashes offline
        // nodes, and every placement must respect the exclusion.
        let mut config = OrchestratorConfig::smoke(6, 9);
        config.lifecycle = uniserver_cloudmgr::lifecycle::FailureLifecycle::standard();
        let summary = run(&config);
        let chaos = summary.chaos.expect("lifecycle alone must report an outcome");
        if summary.crashes > 0 {
            assert!(chaos.nodes_offlined > 0, "every crashed node must go offline");
            assert!(chaos.downtime_secs > 0.0);
        }
        assert_eq!(summary.offered, summary.placed + summary.abandoned);
    }

    #[test]
    fn extended_fleet_saves_energy_over_nominal() {
        let comparison = compare(&OrchestratorConfig::smoke(6, 2018));
        assert!(
            comparison.energy_saving_fraction() > 0.03,
            "extended margins must save fleet energy, got {:.4}",
            comparison.energy_saving_fraction()
        );
        assert_eq!(comparison.extended.margins, "extended");
        assert_eq!(comparison.nominal.margins, "nominal");
        assert_eq!(comparison.nominal.crashes, 0, "nominal guard-bands must not crash");
        assert_eq!(comparison.nominal.min_offset_mv_mean, 0.0);
        assert!(comparison.extended.min_offset_mv_mean > 20.0);
    }
}
