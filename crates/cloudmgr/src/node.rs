//! Managed nodes: the cloud layer's view of one server.
//!
//! Each node runs the full hypervisor stack; the manager reduces it to
//! the paper's four metrics — availability, utilization, energy usage
//! and the UniServer-specific **reliability** score.

use serde::{Deserialize, Serialize};
use uniserver_units::{Joules, Seconds};

use uniserver_hypervisor::hypervisor::Hypervisor;
use uniserver_hypervisor::vm::{VmConfig, VmId};
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;

use crate::lifecycle::{GrayState, NodePhase, NodePower, SLEEP_POWER_WATTS};

/// Identifier of a node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The four management metrics of §2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Fraction of time the node was serving (uptime / total).
    pub availability: f64,
    /// vCPUs committed / physical cores.
    pub utilization: f64,
    /// Energy consumed so far.
    pub energy: Joules,
    /// Predicted probability that the node is *not* about to fail
    /// (1.0 = healthy).
    pub reliability: f64,
}

/// One managed node.
#[derive(Debug, Clone)]
pub struct ManagedNode {
    /// Node identifier.
    pub id: NodeId,
    /// The full hypervisor stack.
    pub hypervisor: Hypervisor,
    energy: Joules,
    /// Most recent reliability score (updated by the failure predictor).
    pub reliability: f64,
    /// Failure-lifecycle phase; transitions go through the cluster's
    /// lifecycle methods so the placement index stays consistent.
    pub(crate) phase: NodePhase,
    /// Power state; transitions go through the cluster's park/wake
    /// methods so the placement index and power counters stay
    /// consistent.
    pub(crate) power: NodePower,
}

impl ManagedNode {
    /// Provisions a node of the given part, seeded deterministically.
    #[must_use]
    pub fn provision(id: NodeId, spec: PartSpec, seed: u64) -> Self {
        Self::adopt(id, ServerNode::new(spec, seed))
    }

    /// Wraps an already-prepared node (e.g. one provisioned at its
    /// Extended Operating Point by the orchestrator's deploy plumbing)
    /// into a managed node.
    #[must_use]
    pub fn adopt(id: NodeId, node: ServerNode) -> Self {
        ManagedNode {
            id,
            hypervisor: Hypervisor::new(node),
            energy: Joules::ZERO,
            reliability: 1.0,
            phase: NodePhase::Online,
            power: NodePower::Awake,
        }
    }

    /// The node's failure-lifecycle phase.
    #[must_use]
    pub fn phase(&self) -> NodePhase {
        self.phase
    }

    /// Whether the node is serving. Offline/repairing nodes are skipped
    /// by the tick loop and rejected by the scheduler filter.
    #[must_use]
    pub fn is_online(&self) -> bool {
        self.phase.is_online()
    }

    /// The node's power state.
    #[must_use]
    pub fn power(&self) -> NodePower {
        self.power
    }

    /// Whether the node is parked in the low-power sleep state. Asleep
    /// nodes are online (lifecycle-wise) but do not tick and are
    /// excluded from the scheduler filter.
    #[must_use]
    pub fn is_asleep(&self) -> bool {
        self.power == NodePower::Asleep
    }

    /// The gray-failure state while the node is degraded, else `None`.
    #[must_use]
    pub fn gray(&self) -> Option<GrayState> {
        match self.phase {
            NodePhase::Degraded { gray } => Some(gray),
            _ => None,
        }
    }

    /// Whether the node is serving gray (degraded capacity and an
    /// elevated CE rate, but still in the pool).
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.phase.is_degraded()
    }

    /// Whether the watchdog has quarantined this node: still probed,
    /// still ticking, but excluded from every placement path until it
    /// survives probation.
    #[must_use]
    pub fn is_quarantined(&self) -> bool {
        matches!(self.phase, NodePhase::Degraded { gray } if gray.quarantined)
    }

    /// The vCPU budget placements may commit against: 2x core
    /// overcommit, throttled by the gray capacity cap while the node is
    /// degraded. A healthy node's budget is exactly `cores * 2`.
    #[must_use]
    pub fn vcpu_budget(&self) -> usize {
        let full = self.cores() * 2;
        match self.phase {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            NodePhase::Degraded { gray } => (full as f64 * gray.capacity_cap).floor() as usize,
            _ => full,
        }
    }

    /// Ticks the node's hypervisor and accumulates energy.
    pub fn tick(&mut self, duration: Seconds) -> uniserver_hypervisor::hypervisor::TickOutcome {
        let outcome = self.hypervisor.tick(duration);
        self.energy = self.energy + outcome.energy;
        outcome
    }

    /// Charges one sleep interval at [`SLEEP_POWER_WATTS`] and returns
    /// the energy drawn. Called by the cluster's sequential reduce for
    /// nodes skipped by the tick loop because they are asleep.
    pub(crate) fn accrue_sleep_energy(&mut self, duration: Seconds) -> Joules {
        let drawn = Joules::new(SLEEP_POWER_WATTS * duration.as_secs());
        self.energy = self.energy + drawn;
        drawn
    }

    /// Launches a VM on this node.
    ///
    /// # Errors
    ///
    /// Propagates the hypervisor's placement error when memory is
    /// exhausted.
    pub fn launch(
        &mut self,
        config: VmConfig,
    ) -> Result<VmId, uniserver_hypervisor::memdomain::PlacementError> {
        self.hypervisor.launch_vm(config)
    }

    /// vCPUs committed across running VMs.
    #[must_use]
    pub fn committed_vcpus(&self) -> usize {
        self.hypervisor.vms().filter(|vm| vm.is_running()).map(|vm| vm.config.vcpus).sum()
    }

    /// Physical cores on the node.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.hypervisor.node().core_count()
    }

    /// Whether the node can fit `config` (CPU overcommit 2x — throttled
    /// by the gray capacity cap while degraded — and memory checked by
    /// the hypervisor's relaxed-domain accounting).
    #[must_use]
    pub fn fits(&self, config: &VmConfig) -> bool {
        let cpu_ok = self.committed_vcpus() + config.vcpus <= self.vcpu_budget();
        let mem_ok = self.hypervisor.memory_used_relaxed().checked_add(config.memory).is_some_and(
            |needed| {
                needed
                    <= self
                        .hypervisor
                        .node()
                        .memory
                        .domain_capacity(uniserver_platform::msr::DomainId(1))
            },
        );
        cpu_ok && mem_ok
    }

    /// The reliability score schedulers and the predictor should act
    /// on: the raw predictor score, divided by the gray CE multiplier
    /// while the node is degraded — the elevated error rate priced in
    /// honestly instead of hidden behind a stale score.
    #[must_use]
    pub fn effective_reliability(&self) -> f64 {
        match self.phase {
            NodePhase::Degraded { gray } => self.reliability / gray.ce_multiplier,
            _ => self.reliability,
        }
    }

    /// The current management metrics.
    #[must_use]
    pub fn metrics(&self) -> NodeMetrics {
        NodeMetrics {
            availability: self.hypervisor.availability(),
            utilization: self.committed_vcpus() as f64 / self.cores() as f64,
            energy: self.energy,
            reliability: self.effective_reliability(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> ManagedNode {
        ManagedNode::provision(NodeId(0), PartSpec::arm_microserver(), 3)
    }

    #[test]
    fn fresh_node_is_healthy_and_idle() {
        let n = node();
        let m = n.metrics();
        assert_eq!(m.availability, 1.0);
        assert_eq!(m.utilization, 0.0);
        assert_eq!(m.reliability, 1.0);
        assert_eq!(m.energy, Joules::ZERO);
    }

    #[test]
    fn utilization_tracks_committed_vcpus() {
        let mut n = node();
        n.launch(VmConfig::ldbc_benchmark()).unwrap();
        n.launch(VmConfig::ldbc_benchmark()).unwrap();
        // 2 VMs x 2 vCPUs on 8 cores.
        assert!((n.metrics().utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fits_respects_cpu_overcommit_and_memory() {
        let mut n = node();
        // 8 cores, 2x overcommit = 16 vCPUs; each LDBC VM takes 2 vCPUs
        // and 4 GiB of the 16 GiB relaxed domain.
        for _ in 0..4 {
            assert!(n.fits(&VmConfig::ldbc_benchmark()));
            n.launch(VmConfig::ldbc_benchmark()).unwrap();
        }
        // Memory (not CPU) is the binding constraint now.
        assert!(!n.fits(&VmConfig::ldbc_benchmark()));
    }

    #[test]
    fn degraded_nodes_throttle_capacity_and_price_reliability_honestly() {
        let mut n = node();
        assert_eq!(n.vcpu_budget(), 16, "healthy: 8 cores x 2 overcommit");
        n.launch(VmConfig::ldbc_benchmark()).unwrap();
        let gray = GrayState {
            capacity_cap: 0.25,
            ce_multiplier: 8.0,
            clears_at_tick: 100,
            quarantined: false,
        };
        n.phase = NodePhase::Degraded { gray };
        assert!(n.is_online(), "gray nodes keep serving");
        assert!(n.is_degraded());
        assert!(!n.is_quarantined());
        assert_eq!(n.vcpu_budget(), 4, "throttled to a quarter");
        // 2 vCPUs committed + 2 requested == 4: the throttled budget
        // still fits exactly one more LDBC VM, and no further.
        assert!(n.fits(&VmConfig::ldbc_benchmark()));
        n.launch(VmConfig::ldbc_benchmark()).unwrap();
        assert!(!n.fits(&VmConfig::ldbc_benchmark()), "capacity cap binds");
        assert!(
            (n.metrics().reliability - 1.0 / 8.0).abs() < 1e-12,
            "CE multiplier divides the effective reliability"
        );
        n.phase = NodePhase::Degraded { gray: GrayState { quarantined: true, ..gray } };
        assert!(n.is_quarantined());
        n.phase = NodePhase::Online;
        assert_eq!(n.vcpu_budget(), 16, "recovery restores the full budget");
        assert_eq!(n.metrics().reliability, 1.0);
    }

    #[test]
    fn energy_accumulates_with_ticks() {
        let mut n = node();
        n.launch(VmConfig::ldbc_benchmark()).unwrap();
        n.tick(Seconds::new(1.0));
        n.tick(Seconds::new(1.0));
        assert!(n.metrics().energy.as_joules() > 0.0);
    }
}
