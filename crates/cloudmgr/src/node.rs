//! Managed nodes: the cloud layer's view of one server.
//!
//! Each node runs the full hypervisor stack; the manager reduces it to
//! the paper's four metrics — availability, utilization, energy usage
//! and the UniServer-specific **reliability** score.

use serde::{Deserialize, Serialize};
use uniserver_units::{Joules, Seconds};

use uniserver_hypervisor::hypervisor::Hypervisor;
use uniserver_hypervisor::vm::{VmConfig, VmId};
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;

use crate::lifecycle::{NodePhase, NodePower, SLEEP_POWER_WATTS};

/// Identifier of a node within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The four management metrics of §2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Fraction of time the node was serving (uptime / total).
    pub availability: f64,
    /// vCPUs committed / physical cores.
    pub utilization: f64,
    /// Energy consumed so far.
    pub energy: Joules,
    /// Predicted probability that the node is *not* about to fail
    /// (1.0 = healthy).
    pub reliability: f64,
}

/// One managed node.
#[derive(Debug, Clone)]
pub struct ManagedNode {
    /// Node identifier.
    pub id: NodeId,
    /// The full hypervisor stack.
    pub hypervisor: Hypervisor,
    energy: Joules,
    /// Most recent reliability score (updated by the failure predictor).
    pub reliability: f64,
    /// Failure-lifecycle phase; transitions go through the cluster's
    /// lifecycle methods so the placement index stays consistent.
    pub(crate) phase: NodePhase,
    /// Power state; transitions go through the cluster's park/wake
    /// methods so the placement index and power counters stay
    /// consistent.
    pub(crate) power: NodePower,
}

impl ManagedNode {
    /// Provisions a node of the given part, seeded deterministically.
    #[must_use]
    pub fn provision(id: NodeId, spec: PartSpec, seed: u64) -> Self {
        Self::adopt(id, ServerNode::new(spec, seed))
    }

    /// Wraps an already-prepared node (e.g. one provisioned at its
    /// Extended Operating Point by the orchestrator's deploy plumbing)
    /// into a managed node.
    #[must_use]
    pub fn adopt(id: NodeId, node: ServerNode) -> Self {
        ManagedNode {
            id,
            hypervisor: Hypervisor::new(node),
            energy: Joules::ZERO,
            reliability: 1.0,
            phase: NodePhase::Online,
            power: NodePower::Awake,
        }
    }

    /// The node's failure-lifecycle phase.
    #[must_use]
    pub fn phase(&self) -> NodePhase {
        self.phase
    }

    /// Whether the node is serving. Offline/repairing nodes are skipped
    /// by the tick loop and rejected by the scheduler filter.
    #[must_use]
    pub fn is_online(&self) -> bool {
        self.phase.is_online()
    }

    /// The node's power state.
    #[must_use]
    pub fn power(&self) -> NodePower {
        self.power
    }

    /// Whether the node is parked in the low-power sleep state. Asleep
    /// nodes are online (lifecycle-wise) but do not tick and are
    /// excluded from the scheduler filter.
    #[must_use]
    pub fn is_asleep(&self) -> bool {
        self.power == NodePower::Asleep
    }

    /// Ticks the node's hypervisor and accumulates energy.
    pub fn tick(&mut self, duration: Seconds) -> uniserver_hypervisor::hypervisor::TickOutcome {
        let outcome = self.hypervisor.tick(duration);
        self.energy = self.energy + outcome.energy;
        outcome
    }

    /// Charges one sleep interval at [`SLEEP_POWER_WATTS`] and returns
    /// the energy drawn. Called by the cluster's sequential reduce for
    /// nodes skipped by the tick loop because they are asleep.
    pub(crate) fn accrue_sleep_energy(&mut self, duration: Seconds) -> Joules {
        let drawn = Joules::new(SLEEP_POWER_WATTS * duration.as_secs());
        self.energy = self.energy + drawn;
        drawn
    }

    /// Launches a VM on this node.
    ///
    /// # Errors
    ///
    /// Propagates the hypervisor's placement error when memory is
    /// exhausted.
    pub fn launch(
        &mut self,
        config: VmConfig,
    ) -> Result<VmId, uniserver_hypervisor::memdomain::PlacementError> {
        self.hypervisor.launch_vm(config)
    }

    /// vCPUs committed across running VMs.
    #[must_use]
    pub fn committed_vcpus(&self) -> usize {
        self.hypervisor.vms().filter(|vm| vm.is_running()).map(|vm| vm.config.vcpus).sum()
    }

    /// Physical cores on the node.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.hypervisor.node().core_count()
    }

    /// Whether the node can fit `config` (CPU overcommit 2x, memory
    /// checked by the hypervisor's relaxed-domain accounting).
    #[must_use]
    pub fn fits(&self, config: &VmConfig) -> bool {
        let cpu_ok = self.committed_vcpus() + config.vcpus <= self.cores() * 2;
        let mem_ok = self.hypervisor.memory_used_relaxed().checked_add(config.memory).is_some_and(
            |needed| {
                needed
                    <= self
                        .hypervisor
                        .node()
                        .memory
                        .domain_capacity(uniserver_platform::msr::DomainId(1))
            },
        );
        cpu_ok && mem_ok
    }

    /// The current management metrics.
    #[must_use]
    pub fn metrics(&self) -> NodeMetrics {
        NodeMetrics {
            availability: self.hypervisor.availability(),
            utilization: self.committed_vcpus() as f64 / self.cores() as f64,
            energy: self.energy,
            reliability: self.reliability,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> ManagedNode {
        ManagedNode::provision(NodeId(0), PartSpec::arm_microserver(), 3)
    }

    #[test]
    fn fresh_node_is_healthy_and_idle() {
        let n = node();
        let m = n.metrics();
        assert_eq!(m.availability, 1.0);
        assert_eq!(m.utilization, 0.0);
        assert_eq!(m.reliability, 1.0);
        assert_eq!(m.energy, Joules::ZERO);
    }

    #[test]
    fn utilization_tracks_committed_vcpus() {
        let mut n = node();
        n.launch(VmConfig::ldbc_benchmark()).unwrap();
        n.launch(VmConfig::ldbc_benchmark()).unwrap();
        // 2 VMs x 2 vCPUs on 8 cores.
        assert!((n.metrics().utilization - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fits_respects_cpu_overcommit_and_memory() {
        let mut n = node();
        // 8 cores, 2x overcommit = 16 vCPUs; each LDBC VM takes 2 vCPUs
        // and 4 GiB of the 16 GiB relaxed domain.
        for _ in 0..4 {
            assert!(n.fits(&VmConfig::ldbc_benchmark()));
            n.launch(VmConfig::ldbc_benchmark()).unwrap();
        }
        // Memory (not CPU) is the binding constraint now.
        assert!(!n.fits(&VmConfig::ldbc_benchmark()));
    }

    #[test]
    fn energy_accumulates_with_ticks() {
        let mut n = node();
        n.launch(VmConfig::ldbc_benchmark()).unwrap();
        n.tick(Seconds::new(1.0));
        n.tick(Seconds::new(1.0));
        assert!(n.metrics().energy.as_joules() > 0.0);
    }
}
