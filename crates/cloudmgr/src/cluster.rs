//! The cluster driver: streams of VMs, reliability-aware placement and
//! proactive migration off failing nodes.
//!
//! # Sharded ticks
//!
//! Per-tick node advancement (hypervisor tick + failure-predictor log
//! scan) is embarrassingly parallel between placement decisions, so
//! [`Cluster::tick_pooled`] splits it across the workers of a
//! persistent [`ShardPool`] in contiguous node-index chunks and then
//! **reduces sequentially in node order**: energy is summed
//! index-by-index (bit-identical floats for any worker count), crash
//! events are emitted ordered by `(node index, event order)`, and the
//! predictor's score write-back — plus the placement-mutating phases
//! (proactive migration, recovery) — stay sequential. Worker count can
//! therefore never change a report. [`Cluster::tick_sharded`] keeps the
//! worker-count API by running the same path on a transient pool.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use uniserver_telemetry::{MetricsRegistry, Stage, StageProfiler};
use uniserver_units::{Joules, Seconds};

use uniserver_hypervisor::vm::{VmConfig, VmId};
use uniserver_platform::node::CrashEvent;
use uniserver_platform::part::PartSpec;
use uniserver_silicon::rng::{salt, splitmix64, weighted_pick};

use crate::failure::{FailurePredictor, ScoreUpdate};
use crate::index::PlacementIndex;
use crate::lifecycle::{GrayState, NodePhase, NodePower};
use crate::migrate::MigrationModel;
use crate::node::{ManagedNode, NodeId};
use crate::policy::{EnergySlaPolicy, PlacementDecision, PlacementPolicy, RackView};
use crate::pool::ShardPool;
use crate::scheduler::Scheduler;
use crate::sla::SlaClass;

/// One entry of a cluster's weighted part mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartWeight {
    /// The part this share provisions.
    pub spec: PartSpec,
    /// Relative weight (need not sum to 1).
    pub weight: f64,
}

/// Cluster construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Weighted part mix the rack is populated from; a single entry
    /// builds a homogeneous cluster.
    pub part_mix: Vec<PartWeight>,
    /// Placement policy.
    pub scheduler: Scheduler,
    /// Migration network model.
    pub migration: MigrationModel,
}

impl ClusterConfig {
    /// A small Edge site: `n` identical ARM micro-servers behind one
    /// switch (the homogeneous test/demo preset).
    #[must_use]
    pub fn small_edge_site(n: usize) -> Self {
        ClusterConfig {
            nodes: n,
            part_mix: vec![PartWeight { spec: PartSpec::arm_microserver(), weight: 1.0 }],
            scheduler: Scheduler::default(),
            migration: MigrationModel::ten_gbe(),
        }
    }

    /// The heterogeneous UniServer rack: `n` nodes drawn from the
    /// reference fleet's ARM+i5+i7 mix at 6:1:1 part shares (the same
    /// ratios as `FleetConfig::mixed`), behind a 10 GbE migration
    /// network. Which node gets which part is a pure function of
    /// `(build seed, node index)`.
    #[must_use]
    pub fn uniserver_rack(n: usize) -> Self {
        ClusterConfig {
            nodes: n,
            part_mix: vec![
                PartWeight { spec: PartSpec::arm_microserver(), weight: 6.0 },
                PartWeight { spec: PartSpec::i5_4200u(), weight: 1.0 },
                PartWeight { spec: PartSpec::i7_3970x(), weight: 1.0 },
            ],
            scheduler: Scheduler::default(),
            migration: MigrationModel::ten_gbe(),
        }
    }

    /// The part a given node of this cluster is built from, drawn from
    /// the weighted mix by the node's seed. Pure in `(node_seed)`, so
    /// cluster builds are schedule-independent.
    ///
    /// # Panics
    ///
    /// Panics if the part mix is empty or has a non-positive total.
    #[must_use]
    pub fn node_spec(&self, node_seed: u64) -> &PartSpec {
        assert!(!self.part_mix.is_empty(), "cluster part mix must not be empty");
        let weights: Vec<f64> = self.part_mix.iter().map(|p| p.weight).collect();
        let pick = weighted_pick(splitmix64(node_seed ^ salt::PART), &weights);
        &self.part_mix[pick].spec
    }
}

/// Stable identifier of one placement across migrations: the VM may move
/// nodes (and get a new per-node [`VmId`]), but its placement id never
/// changes — event queues key departures off it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlacementId(pub u64);

/// One tracked placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Stable identifier (survives migrations).
    pub id: PlacementId,
    /// Node currently hosting the VM.
    pub node: NodeId,
    /// VM id on that node.
    pub vm: VmId,
    /// SLA class of the workload.
    pub class: SlaClass,
}

/// Aggregated fleet statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Mean node availability.
    pub mean_availability: f64,
    /// Mean node utilization.
    pub mean_utilization: f64,
    /// Total energy consumed.
    pub total_energy: Joules,
    /// Proactive migrations performed.
    pub migrations: u64,
    /// Failure-driven migrations performed after node crashes.
    pub crash_migrations: u64,
    /// Placements evicted after node crashes (no healthy node fit them).
    pub evictions: u64,
    /// Cumulative migration blackout across all moves.
    pub migration_downtime: Seconds,
    /// Placement requests rejected (no feasible node).
    pub rejected: u64,
}

/// What one cluster tick observed — the orchestrator's event feed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterTickReport {
    /// Crash events surfaced by the platform this tick, per node.
    pub crashes: Vec<(NodeId, CrashEvent)>,
    /// Energy consumed across the fleet this tick.
    pub energy: Joules,
    /// Proactive migrations performed this tick.
    pub proactive_migrations: u64,
    /// Placements lost this tick because a proactive move's relaunch
    /// failed (stopped on the source, no room on the target).
    pub evicted: Vec<Placement>,
}

/// Power-management counters a consolidating policy accumulates. All
/// zero under policies that never park anyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PowerStats {
    /// Sleep transitions: nodes parked (drained or already empty).
    pub parks: u64,
    /// Wake transitions, all demand-driven.
    pub wakes: u64,
    /// VMs moved by consolidation drains (not crash- or
    /// prediction-driven).
    pub consolidation_migrations: u64,
}

/// The outcome of failure-driven recovery after one node crash.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrashRecovery {
    /// Placements moved to healthy nodes (class and id preserved), each
    /// with the predicted cost of its move — event-queue drivers
    /// schedule the settle event at `cost.completes_at(now)`.
    pub migrated: Vec<(Placement, crate::migrate::MigrationCost)>,
    /// Placements that no healthy node could absorb; their VMs were
    /// stopped on the crashed host.
    pub evicted: Vec<Placement>,
    /// Migration blackout paid by the moved placements.
    pub downtime: Seconds,
}

/// What one node's share of a sharded tick produced — computed on a
/// worker thread, reduced sequentially in node-index order.
#[derive(Debug, Clone)]
struct NodeAdvance {
    /// Energy the node consumed this tick.
    energy: Joules,
    /// Crash events the platform surfaced this tick, in drain order.
    crash_events: Vec<CrashEvent>,
    /// The predictor's worker-side log-scan outcome, applied during the
    /// sequential reduce.
    score: ScoreUpdate,
}

/// One node through the parallel phase of a sharded tick: hypervisor
/// tick plus the predictor's immutable log scan. Touches only the node
/// itself and the (shared, read-only) predictor, so shards never race.
fn advance_node(node: &mut ManagedNode, predictor: &FailurePredictor, duration: Seconds) -> NodeAdvance {
    let outcome = node.tick(duration);
    let score = predictor.observe(node.id.0, node.hypervisor.health());
    NodeAdvance { energy: outcome.energy, crash_events: outcome.crash_events, score }
}

/// Instrumentation one shard's advance produced on its worker:
/// wall-clock nanos for the stage profiler (commutative, flushed to
/// atomics per chunk) and an optional per-shard metrics registry
/// (merged in job-index == node-index order by the reduce).
#[derive(Debug, Default)]
struct ShardStats {
    tick_ns: u64,
    predictor_ns: u64,
    metrics: Option<MetricsRegistry>,
}

/// The shared per-node phase of both the sequential and the pooled
/// tick path: identical computation, so the two stay bit-identical.
/// `profile` adds per-node span timing; `collect` fills a shard-local
/// registry with integer tick-domain stats.
fn advance_slice(
    nodes: &mut [ManagedNode],
    predictor: &FailurePredictor,
    duration: Seconds,
    profile: bool,
    collect: bool,
) -> (Vec<Option<NodeAdvance>>, ShardStats) {
    let mut stats = ShardStats { metrics: collect.then(MetricsRegistry::new), ..ShardStats::default() };
    let advances = nodes
        .iter_mut()
        .map(|node| {
            if !node.is_online() {
                if let Some(m) = &mut stats.metrics {
                    m.inc("node_ticks_skipped_offline");
                }
                return None;
            }
            // Asleep nodes are frozen: no hypervisor tick, no crash
            // draws, no predictor observation. Their sleep-state energy
            // is charged by the sequential reduce, not here.
            if node.is_asleep() {
                if let Some(m) = &mut stats.metrics {
                    m.inc("node_ticks_skipped_asleep");
                }
                return None;
            }
            let adv = if profile {
                let t0 = Instant::now();
                let outcome = node.tick(duration);
                let t1 = Instant::now();
                let score = predictor.observe(node.id.0, node.hypervisor.health());
                #[allow(clippy::cast_possible_truncation)]
                {
                    stats.tick_ns += (t1 - t0).as_nanos() as u64;
                    stats.predictor_ns += t1.elapsed().as_nanos() as u64;
                }
                NodeAdvance { energy: outcome.energy, crash_events: outcome.crash_events, score }
            } else {
                advance_node(node, predictor, duration)
            };
            if let Some(m) = &mut stats.metrics {
                m.inc("node_ticks");
                if matches!(adv.score, ScoreUpdate::Rescore { .. }) {
                    m.inc("predictor_rescores");
                }
                if !adv.crash_events.is_empty() {
                    m.record("crash_events_per_node_tick", adv.crash_events.len() as u64);
                }
            }
            Some(adv)
        })
        .collect();
    (advances, stats)
}

/// The cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<ManagedNode>,
    /// The placement policy every submit/re-offer/recovery decision and
    /// the periodic management pass route through. Immutable and
    /// shared; defaults to the reference [`EnergySlaPolicy`] over the
    /// configured scheduler.
    policy: Arc<dyn PlacementPolicy>,
    predictor: FailurePredictor,
    migration: MigrationModel,
    /// Incremental placement index over `nodes` (see [`PlacementIndex`]).
    index: PlacementIndex,
    /// Route placement through the reference linear scan instead of the
    /// index — the ablation/CI-diff path.
    linear_placement: bool,
    placements: Vec<Placement>,
    next_placement: u64,
    migrations: u64,
    crash_migrations: u64,
    evictions: u64,
    migration_downtime: Seconds,
    rejected: u64,
    /// Park/wake/consolidation counters (all zero unless the policy
    /// manages power states).
    power_stats: PowerStats,
    /// Wall-clock stage attribution for the per-node phase, when a
    /// caller installed one (machine-local; never in a report).
    profiler: Option<Arc<StageProfiler>>,
    /// Accumulated tick-domain metrics, when enabled — kept out of
    /// [`ClusterTickReport`] so the report's `PartialEq` determinism
    /// contract is untouched.
    metrics: Option<MetricsRegistry>,
}

impl Cluster {
    /// Provisions a cluster; node chips are manufactured from
    /// `seed`, `seed+1`, … (wrapping, so seeds near `u64::MAX` stay
    /// valid — the same convention as `silicon::rng::indexed_seed`) so
    /// every node is a *different* chip, with parts drawn from the
    /// configured mix.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes.
    #[must_use]
    pub fn build(config: &ClusterConfig, seed: u64) -> Self {
        assert!(config.nodes > 0, "a cluster needs nodes");
        let nodes = (0..config.nodes)
            .map(|i| {
                let node_seed = seed.wrapping_add(i as u64);
                let spec = config.node_spec(node_seed).clone();
                ManagedNode::provision(NodeId(i as u32), spec, node_seed)
            })
            .collect();
        Self::from_nodes(nodes, config.scheduler, config.migration)
    }

    /// Assembles a cluster from already-provisioned nodes — the
    /// orchestrator's entry point after deploying nodes at their
    /// Extended Operating Points.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    #[must_use]
    pub fn from_nodes(nodes: Vec<ManagedNode>, scheduler: Scheduler, migration: MigrationModel) -> Self {
        assert!(!nodes.is_empty(), "a cluster needs nodes");
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(node.id.0 as usize, i, "cluster node ids must be dense 0..n");
        }
        let index = PlacementIndex::new(nodes.len());
        Cluster {
            nodes,
            policy: Arc::new(EnergySlaPolicy::new(scheduler)),
            predictor: FailurePredictor::new(),
            migration,
            index,
            linear_placement: false,
            placements: Vec::new(),
            next_placement: 0,
            migrations: 0,
            crash_migrations: 0,
            evictions: 0,
            migration_downtime: Seconds::ZERO,
            rejected: 0,
            power_stats: PowerStats::default(),
            profiler: None,
            metrics: None,
        }
    }

    /// Installs a placement policy; subsequent placement decisions and
    /// management passes route through it. The index keeps caching the
    /// policy's weigher, so the whole rack is re-scored.
    pub fn set_policy(&mut self, policy: Arc<dyn PlacementPolicy>) {
        self.policy = policy;
        self.index.mark_all();
    }

    /// The installed placement policy.
    #[must_use]
    pub fn policy(&self) -> &dyn PlacementPolicy {
        self.policy.as_ref()
    }

    /// Installs a stage profiler: the per-node phase attributes its
    /// wall-clock to [`Stage::NodeTick`] / [`Stage::Predictor`] from
    /// then on (worker threads flush once per chunk).
    pub fn set_profiler(&mut self, profiler: Arc<StageProfiler>) {
        self.profiler = Some(profiler);
    }

    /// Switches on tick-domain metrics collection: subsequent ticks
    /// accumulate per-shard registries merged in node-index order, so
    /// the result is byte-identical for any worker count.
    pub fn enable_metrics(&mut self) {
        self.metrics = Some(MetricsRegistry::new());
    }

    /// Takes the accumulated metrics registry (collection stops until
    /// [`Cluster::enable_metrics`] is called again).
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.metrics.take()
    }

    fn absorb_shard_stats(&mut self, stats: ShardStats) {
        if let Some(p) = &self.profiler {
            p.add_nanos(Stage::NodeTick, stats.tick_ns);
            p.add_nanos(Stage::Predictor, stats.predictor_ns);
        }
        if let (Some(registry), Some(shard)) = (&mut self.metrics, stats.metrics) {
            registry.merge(&shard);
        }
    }

    /// The nodes (read-only).
    #[must_use]
    pub fn nodes(&self) -> &[ManagedNode] {
        &self.nodes
    }

    /// Mutable node access, for experiments that degrade specific nodes.
    /// Unrestricted mutation can move any placement score, so the whole
    /// index is invalidated (re-scored lazily on the next placement).
    pub fn nodes_mut(&mut self) -> &mut [ManagedNode] {
        self.index.mark_all();
        &mut self.nodes
    }

    /// Routes placement through [`Scheduler::place_linear`] instead of
    /// the incremental index. The two are equivalent by construction
    /// (CI byte-diffs them end-to-end); the linear scan is kept as the
    /// reference for tests, ablations and micro-benchmarks.
    pub fn set_linear_placement(&mut self, linear: bool) {
        self.linear_placement = linear;
    }

    /// One policy decision over the current rack view: indexed (flushed
    /// first) or the reference linear scan, identical ordering either
    /// way.
    fn decide_on(
        &mut self,
        config: &VmConfig,
        class: SlaClass,
        avoid: &[NodeId],
    ) -> PlacementDecision {
        let policy = Arc::clone(&self.policy);
        if self.linear_placement {
            policy.decide(&RackView::linear(&self.nodes), config, class, avoid)
        } else {
            self.index.flush(policy.scheduler(), &self.nodes);
            policy.decide(&RackView::indexed(&self.nodes, &self.index), config, class, avoid)
        }
    }

    /// One placement decision, executing wake-on-demand: a policy that
    /// answers [`PlacementDecision::WakeAndPlace`] gets its candidate
    /// woken here, in the same decision.
    fn place_on(
        &mut self,
        config: &VmConfig,
        class: SlaClass,
        exclude: Option<NodeId>,
    ) -> Option<NodeId> {
        let buf;
        let avoid: &[NodeId] = match exclude {
            Some(id) => {
                buf = [id];
                &buf
            }
            None => &[],
        };
        match self.decide_on(config, class, avoid) {
            PlacementDecision::Place(id) => Some(id),
            PlacementDecision::WakeAndPlace(id) => {
                self.wake_node(id);
                Some(id)
            }
            PlacementDecision::Reject => None,
        }
    }

    /// A placement decision that refuses to wake anyone — consolidation
    /// drains use this so emptying one node can never power another one
    /// up.
    fn place_no_wake(&mut self, config: &VmConfig, class: SlaClass, source: NodeId) -> Option<NodeId> {
        match self.decide_on(config, class, &[source]) {
            PlacementDecision::Place(id) => Some(id),
            _ => None,
        }
    }

    /// Current placements.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Parks an online, evacuated node into the low-power sleep state.
    ///
    /// # Panics
    ///
    /// Panics if the node is not online, is already asleep, or (debug
    /// builds) still hosts tracked placements.
    pub fn park_node(&mut self, id: NodeId) {
        debug_assert!(
            self.placements.iter().all(|p| p.node != id),
            "{id} must be drained before parking"
        );
        let node = self.node_mut(id);
        assert!(node.is_online(), "only online nodes can sleep");
        assert!(!node.is_asleep(), "{id} is already asleep");
        node.power = NodePower::Asleep;
        self.index.mark(id);
        self.power_stats.parks += 1;
    }

    /// Wakes a sleeping node; it ticks, consumes full power and takes
    /// placements again from this call on.
    ///
    /// # Panics
    ///
    /// Panics if the node is not asleep.
    pub fn wake_node(&mut self, id: NodeId) {
        let node = self.node_mut(id);
        assert!(node.is_asleep(), "{id} is not asleep");
        node.power = NodePower::Awake;
        self.index.mark(id);
        self.power_stats.wakes += 1;
    }

    /// Nodes currently parked in the sleep state.
    #[must_use]
    pub fn asleep_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_asleep()).count()
    }

    /// The accumulated park/wake/consolidation counters.
    #[must_use]
    pub fn power_stats(&self) -> PowerStats {
        self.power_stats
    }

    /// Runs the policy's periodic management pass: parks empties, drains
    /// stragglers within the plan's migration budget, and parks
    /// fully-drained sources. A no-op (no flush, no occupancy scan)
    /// under policies that do not manage power states.
    pub fn manage(&mut self, tick: u64, seed: u64) {
        if !self.policy.manages() {
            return;
        }
        // The sleeper slow clock, on the policy's cadence: parked nodes
        // age their error evidence out so a mid-dip park recovers.
        if let Some(every) = self.policy.sleeper_rescore_every() {
            if every > 0 && tick > 0 && tick.is_multiple_of(every) {
                self.rescore_sleepers();
            }
        }
        let policy = Arc::clone(&self.policy);
        let mut occupancy = vec![0u32; self.nodes.len()];
        for p in &self.placements {
            occupancy[p.node.0 as usize] += 1;
        }
        let plan = if self.linear_placement {
            policy.manage(&RackView::linear(&self.nodes), &occupancy, tick, seed)
        } else {
            self.index.flush(policy.scheduler(), &self.nodes);
            policy.manage(&RackView::indexed(&self.nodes, &self.index), &occupancy, tick, seed)
        };
        // Parks first: a freshly-parked node can then never be chosen
        // as a drain target below.
        for &id in &plan.park {
            self.park_node(id);
        }
        for &id in &plan.drain {
            self.drain_node(id, &plan);
        }
    }

    /// Re-runs the failure predictor over every asleep node — the slow
    /// clock behind recoverable parks. A sleeping node's hypervisor log
    /// is frozen, so each visit is a no-new-lines observation and the
    /// predictor's silent decay ages the rolling error score down
    /// exactly as it would were the node awake and idle: a node parked
    /// mid-reliability-dip recovers towards 1.0 while it sleeps instead
    /// of freezing below the wake floors forever. Sequential, in
    /// node-index order, so runs are worker-count invariant.
    fn rescore_sleepers(&mut self) {
        for i in 0..self.nodes.len() {
            if !self.nodes[i].is_asleep() {
                continue;
            }
            let id = self.nodes[i].id;
            let update = self.predictor.observe(id.0, self.nodes[i].hypervisor.health());
            let reliability = self.predictor.apply(id.0, update);
            if reliability != self.nodes[i].reliability {
                self.nodes[i].reliability = reliability;
                self.index.mark(id);
            }
        }
    }

    /// Drains one node for consolidation: live-migrates every resident
    /// VM to a policy-chosen awake target, then parks the source.
    /// Aborts with no side effects if any resident VM's predicted
    /// migration exceeds the plan's budget (all-or-nothing — a hot VM
    /// keeps its node awake rather than strand half the set); aborts
    /// mid-way, leaving the source awake, if targets run out.
    fn drain_node(&mut self, source: NodeId, plan: &crate::policy::ManagementPlan) {
        let victims: Vec<Placement> =
            self.placements.iter().filter(|p| p.node == source).cloned().collect();
        if victims.is_empty() {
            return; // departures raced the plan; the next pass parks it
        }
        for victim in &victims {
            let node = self.node_ref(source);
            let Some(vm) = node.hypervisor.vm(victim.vm) else { return };
            if self.migration.cost(vm).duration.as_secs() > plan.max_migration_secs {
                return;
            }
        }
        for victim in victims {
            let (config, cost) = {
                let Some(vm) = self.node_ref(source).hypervisor.vm(victim.vm) else { return };
                (vm.config.clone(), self.migration.cost(vm))
            };
            let Some(target) = self.place_no_wake(&config, victim.class, source) else { return };
            // Pre-copy semantics: the source copy keeps running until
            // the target launch succeeds, so a failed cutover leaves
            // the VM untouched (unlike crash evacuation, nothing forces
            // it off).
            let Ok(new_vm) = self.node_mut(target).launch(config) else { return };
            self.index.mark(target);
            self.node_mut(source).hypervisor.stop_vm(victim.vm);
            self.index.mark(source);
            let slot = self
                .placements
                .iter_mut()
                .find(|p| p.id == victim.id)
                .expect("victim is tracked");
            *slot = Placement { id: victim.id, node: target, vm: new_vm, class: victim.class };
            self.power_stats.consolidation_migrations += 1;
            self.migration_downtime = self.migration_downtime + cost.downtime;
        }
        self.park_node(source);
    }

    /// Submits a VM request; returns its placement if a node was found.
    pub fn submit(&mut self, config: VmConfig, class: SlaClass) -> Option<Placement> {
        let Some(target) = self.place_on(&config, class, None) else {
            self.rejected += 1;
            return None;
        };
        let node = self.node_mut(target);
        match node.launch(config) {
            Ok(vm) => {
                self.index.mark(target);
                let id = PlacementId(self.next_placement);
                self.next_placement += 1;
                let placement = Placement { id, node: target, vm, class };
                self.placements.push(placement.clone());
                Some(placement)
            }
            Err(_) => {
                self.rejected += 1;
                None
            }
        }
    }

    /// Advances the whole cluster by one interval: ticks every node,
    /// refreshes reliability scores, and proactively migrates protected
    /// workloads off nodes predicted to fail. The report surfaces crash
    /// events (drained from each node's platform feed) so event-driven
    /// callers can trigger failure-driven recovery.
    ///
    /// Equivalent to [`Cluster::tick_sharded`] with one worker.
    pub fn tick(&mut self, duration: Seconds) -> ClusterTickReport {
        self.tick_sharded(duration, 1)
    }

    /// [`Cluster::tick`] with the per-node phase sharded across
    /// `workers` threads (clamped to `[1, nodes]`) of a **transient**
    /// pool. Per-tick callers should hold a [`ShardPool`] and use
    /// [`Cluster::tick_pooled`] instead — spawning threads every tick is
    /// exactly the overhead the persistent pool removes — but the
    /// reduce contract is identical either way.
    pub fn tick_sharded(&mut self, duration: Seconds, workers: usize) -> ClusterTickReport {
        let workers = workers.clamp(1, self.nodes.len());
        if workers <= 1 {
            return self.tick_reduce(duration, None);
        }
        let pool = ShardPool::new(workers);
        self.tick_pooled(duration, &pool)
    }

    /// [`Cluster::tick`] with the per-node phase sharded across the
    /// workers of a persistent [`ShardPool`] in contiguous node-index
    /// chunks. The results are reduced sequentially in node order, so
    /// **any worker count produces the identical report**: energy sums
    /// in index order (bit-identical floats), crash events order by
    /// `(node index, event order)`, and the predictor write-back and
    /// placement-mutating phases run on the caller's thread.
    pub fn tick_pooled(&mut self, duration: Seconds, pool: &ShardPool) -> ClusterTickReport {
        if pool.workers() <= 1 || self.nodes.len() <= 1 {
            return self.tick_reduce(duration, None);
        }
        self.tick_reduce(duration, Some(pool))
    }

    /// The full tick: parallel per-node phase (sequential when `pool` is
    /// `None`), then the sequential reduce and placement-mutating
    /// phases.
    fn tick_reduce(&mut self, duration: Seconds, pool: Option<&ShardPool>) -> ClusterTickReport {
        let advances = match pool {
            Some(pool) => self.advance_nodes_pooled(duration, pool),
            None => {
                let profile = self.profiler.is_some();
                let collect = self.metrics.is_some();
                let (advances, stats) =
                    advance_slice(&mut self.nodes, &self.predictor, duration, profile, collect);
                self.absorb_shard_stats(stats);
                advances
            }
        };

        // --- Sequential reduce, in node-index order. Offline nodes
        // produced no advance: no tick, no energy, no crash feed, and
        // the predictor neither observes nor decays them — their score
        // freezes until they rejoin.
        let mut crashes = Vec::new();
        let mut energy = Joules::ZERO;
        let predictor = &mut self.predictor;
        let index = &mut self.index;
        for (node, adv) in self.nodes.iter_mut().zip(advances) {
            let Some(adv) = adv else {
                // Asleep nodes produced no advance either, but unlike
                // offline nodes they draw sleep power — charged here in
                // the sequential reduce so the float sums stay in
                // node-index order for any worker count.
                if node.is_online() && node.is_asleep() {
                    energy = energy + node.accrue_sleep_energy(duration);
                }
                continue;
            };
            energy = energy + adv.energy;
            crashes.extend(adv.crash_events.into_iter().map(|ev| (node.id, ev)));
            let reliability = predictor.apply(node.id.0, adv.score);
            // Reliability moves the placement score; healthy nodes whose
            // rolling score stays put (the common case) stay clean.
            if reliability != node.reliability {
                node.reliability = reliability;
                index.mark(node.id);
            }
        }

        // Nodes that crashed *this tick* are failure-recovery business,
        // not prediction business: leave their placements for
        // recover_from_crash so crash-interrupted VMs are classified
        // (and SLA-charged) as such, never laundered into proactive
        // moves by the crash line that just hit their own log.
        let crashed_now: Vec<NodeId> = crashes.iter().map(|(id, _)| *id).collect();
        let before = self.migrations;
        // The blind ablation cannot see the predictor's signal, so it
        // never migrates proactively.
        let evicted = if self.policy.proactive_migration() {
            self.proactive_migrations(&crashed_now)
        } else {
            Vec::new()
        };
        ClusterTickReport {
            crashes,
            energy,
            proactive_migrations: self.migrations - before,
            evicted,
        }
    }

    /// The parallel phase of a sharded tick: every node's hypervisor
    /// advances and its health log is scored, one contiguous chunk per
    /// worker. Returns per-node advances **in node-index order**
    /// ([`ShardPool::scatter`] reassembles chunks in job-index order, so
    /// worker scheduling cannot reorder them).
    ///
    /// The pool's workers are long-lived, so they cannot borrow from the
    /// cluster the way scoped threads could: node chunks move **by
    /// value** into the jobs and back out with the results (two shallow
    /// O(n) moves per tick), and the predictor rides an `Arc` whose last
    /// reference returns here after the join — per-node computation is
    /// untouched, so the pooled and sequential paths are bit-identical.
    fn advance_nodes_pooled(&mut self, duration: Seconds, pool: &ShardPool) -> Vec<Option<NodeAdvance>> {
        let n = self.nodes.len();
        let workers = pool.workers().clamp(1, n);
        let chunk = n.div_ceil(workers);
        let jobs = n.div_ceil(chunk);
        let predictor = Arc::new(std::mem::take(&mut self.predictor));

        let profile = self.profiler.is_some();
        let collect = self.metrics.is_some();
        let mut it = std::mem::take(&mut self.nodes).into_iter();
        let mut chunks: Vec<Vec<ManagedNode>> =
            (0..jobs).map(|_| it.by_ref().take(chunk).collect()).collect();
        let results = pool.scatter(jobs, |i| {
            let mut shard = std::mem::take(&mut chunks[i]);
            let predictor = Arc::clone(&predictor);
            Box::new(move || {
                let (advances, stats) =
                    advance_slice(&mut shard, &predictor, duration, profile, collect);
                (shard, advances, stats)
            })
        });

        let mut nodes = Vec::with_capacity(n);
        let mut advances = Vec::with_capacity(n);
        // Shard stats absorb in job-index order too, so the metrics
        // merge order equals node-index order exactly as the sequential
        // path records it.
        for (shard, shard_advances, stats) in results {
            nodes.extend(shard);
            advances.extend(shard_advances);
            self.absorb_shard_stats(stats);
        }
        self.nodes = nodes;
        // Every job dropped its clone before reporting its result, and
        // `scatter` saw all of them: this reference is the last.
        self.predictor =
            Arc::try_unwrap(predictor).expect("workers released the predictor on join");
        advances
    }

    /// Failure-driven recovery after a node crash: every tracked
    /// placement on `node` is either migrated to a healthy node
    /// (preserving its SLA class and placement id, Gold first) or
    /// evicted. Post-condition: no tracked placement remains on `node`.
    pub fn recover_from_crash(&mut self, crashed: NodeId) -> CrashRecovery {
        let mut victims: Vec<Placement> = self
            .placements
            .iter()
            .filter(|p| p.node == crashed)
            .cloned()
            .collect();
        // Scarce spare capacity serves the highest classes first; ties
        // keep submission order (stable sort, Gold < Silver < Bronze).
        victims.sort_by_key(|p| p.class);

        let mut recovery =
            CrashRecovery { migrated: Vec::new(), evicted: Vec::new(), downtime: Seconds::ZERO };
        for victim in victims {
            let (config, cost) = {
                let node = self.node_ref(victim.node);
                match node.hypervisor.vm(victim.vm) {
                    Some(vm) => (vm.config.clone(), self.migration.cost(vm)),
                    // The VM record vanished (should not happen); drop
                    // the stale placement.
                    None => {
                        self.forget(victim.id);
                        recovery.evicted.push(victim);
                        self.evictions += 1;
                        continue;
                    }
                }
            };
            let target = self.place_on(&config, victim.class, Some(crashed));
            // Off the crashed host either way.
            self.node_mut(victim.node).hypervisor.stop_vm(victim.vm);
            self.index.mark(victim.node);
            let launched = target.and_then(|t| {
                let launched = self.node_mut(t).launch(config).ok().map(|new_vm| (t, new_vm));
                if launched.is_some() {
                    self.index.mark(t);
                }
                launched
            });
            match launched {
                Some((t, new_vm)) => {
                    let moved = Placement { id: victim.id, node: t, vm: new_vm, class: victim.class };
                    let slot = self
                        .placements
                        .iter_mut()
                        .find(|p| p.id == victim.id)
                        .expect("victim is tracked");
                    *slot = moved.clone();
                    self.crash_migrations += 1;
                    self.migration_downtime = self.migration_downtime + cost.downtime;
                    recovery.downtime = recovery.downtime + cost.downtime;
                    recovery.migrated.push((moved, cost));
                }
                None => {
                    self.forget(victim.id);
                    self.evictions += 1;
                    recovery.evicted.push(victim);
                }
            }
        }
        recovery
    }

    /// Drops a placement from tracking without touching its VM.
    fn forget(&mut self, id: PlacementId) {
        if let Some(idx) = self.placements.iter().position(|p| p.id == id) {
            self.placements.swap_remove(idx);
        }
    }

    /// Moves Gold/Silver VMs off nodes whose predicted reliability has
    /// collapsed — skipping `exclude` (nodes that just crashed; their
    /// placements belong to failure-driven recovery). Returns the
    /// placements lost to failed relaunches.
    fn proactive_migrations(&mut self, exclude: &[NodeId]) -> Vec<Placement> {
        let mut lost = Vec::new();
        let failing: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| {
                n.is_online()
                    && self.predictor.predicts_failure(n.reliability)
                    && !exclude.contains(&n.id)
            })
            .map(|n| n.id)
            .collect();
        if failing.is_empty() {
            return lost;
        }
        let mut moves: Vec<(usize, Placement)> = Vec::new();
        for (idx, placement) in self.placements.iter().enumerate() {
            if failing.contains(&placement.node) && placement.class.proactive_migration() {
                moves.push((idx, placement.clone()));
            }
        }
        // Process moves back-to-front so indices stay valid.
        for (idx, placement) in moves.into_iter().rev() {
            let (config, cost) = {
                let node = self.node_ref(placement.node);
                let Some(vm) = node.hypervisor.vm(placement.vm) else { continue };
                if !vm.is_running() {
                    continue;
                }
                (vm.config.clone(), self.migration.cost(vm))
            };
            let target = self.place_on(&config, placement.class, Some(placement.node));
            let Some(target) = target else { continue };

            // Stop on the failing source, start on the healthy target.
            self.node_mut(placement.node).hypervisor.stop_vm(placement.vm);
            self.index.mark(placement.node);
            if let Ok(new_vm) = self.node_mut(target).launch(config) {
                self.index.mark(target);
                self.placements[idx] =
                    Placement { id: placement.id, node: target, vm: new_vm, class: placement.class };
                self.migrations += 1;
                self.migration_downtime = self.migration_downtime + cost.downtime;
            } else {
                // The target filled up between weighing and launch; the
                // VM is already stopped on the failing source, so the
                // move became an eviction. (Back-to-front iteration
                // keeps the remaining indices valid across swap_remove.)
                lost.push(self.placements.swap_remove(idx));
                self.evictions += 1;
            }
        }
        lost
    }

    /// Terminates a tracked placement (the VM's lifetime ended).
    /// Returns false when the placement is no longer tracked (e.g. its
    /// record was replaced during a migration race).
    pub fn terminate(&mut self, placement: &Placement) -> bool {
        let Some(idx) = self
            .placements
            .iter()
            .position(|p| p.node == placement.node && p.vm == placement.vm)
        else {
            return false;
        };
        self.terminate_idx(idx)
    }

    /// Terminates by stable placement id — migration-proof: the event
    /// queue's departure events stay valid even after the VM moved
    /// nodes. Returns false when the id is no longer tracked (the
    /// placement was evicted).
    pub fn terminate_by_id(&mut self, id: PlacementId) -> bool {
        let Some(idx) = self.placements.iter().position(|p| p.id == id) else {
            return false;
        };
        self.terminate_idx(idx)
    }

    fn terminate_idx(&mut self, idx: usize) -> bool {
        let record = self.placements.swap_remove(idx);
        self.index.mark(record.node);
        // stop_vm is idempotent: false means the VM was already stopped
        // (e.g. by a migration whose relaunch failed).
        self.node_mut(record.node).hypervisor.stop_vm(record.vm)
    }

    /// Aggregated fleet metrics.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no nodes (cannot happen after `build`).
    #[must_use]
    pub fn fleet_metrics(&self) -> FleetMetrics {
        assert!(!self.nodes.is_empty(), "empty cluster");
        let n = self.nodes.len() as f64;
        let mut availability = 0.0;
        let mut utilization = 0.0;
        let mut energy = Joules::ZERO;
        for node in &self.nodes {
            let m = node.metrics();
            availability += m.availability / n;
            utilization += m.utilization / n;
            energy = energy + m.energy;
        }
        FleetMetrics {
            mean_availability: availability,
            mean_utilization: utilization,
            total_energy: energy,
            migrations: self.migrations,
            crash_migrations: self.crash_migrations,
            evictions: self.evictions,
            migration_downtime: self.migration_downtime,
            rejected: self.rejected,
        }
    }

    /// Tracked placements currently on `node`.
    #[must_use]
    pub fn placements_on(&self, node: NodeId) -> Vec<&Placement> {
        self.placements.iter().filter(|p| p.node == node).collect()
    }

    // --- Failure lifecycle transitions. All phase changes go through
    // these so the placement index is marked consistently; the
    // orchestrator drives the sequence
    // `mark_crashed → recover_from_crash → begin_repair →
    // tick_repairs … → complete_rejoin`.

    /// The failure-lifecycle phase of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this cluster.
    #[must_use]
    pub fn phase(&self, id: NodeId) -> NodePhase {
        self.node_ref(id).phase
    }

    /// Nodes currently out of the pool (crashed, under repair, or
    /// rejoining) — the cluster's lost capacity in node units.
    #[must_use]
    pub fn offline_count(&self) -> usize {
        self.nodes.iter().filter(|n| !n.is_online()).count()
    }

    /// Marks a node as crashed: it stops passing the scheduler filter
    /// immediately. Transient — the caller evacuates it with
    /// [`Cluster::recover_from_crash`] and parks it with
    /// [`Cluster::begin_repair`] before the tick ends.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node of this cluster.
    pub fn mark_crashed(&mut self, id: NodeId) {
        let node = self.node_mut(id);
        node.phase = NodePhase::Crashed;
        // A crash is a power cycle: whatever repairs and rejoins comes
        // back awake, so only Online nodes are ever asleep.
        node.power = NodePower::Awake;
        self.index.mark(id);
    }

    /// Takes an evacuated node offline for `mttr_ticks` repair ticks.
    ///
    /// # Panics
    ///
    /// Panics if the repair window is zero ticks, and (debug builds) if
    /// the node still hosts tracked placements — an offline node must be
    /// evacuated first, or its VMs would silently stop ticking.
    pub fn begin_repair(&mut self, id: NodeId, mttr_ticks: u32) {
        assert!(mttr_ticks >= 1, "repairs take at least one tick");
        debug_assert!(
            self.placements_on(id).is_empty(),
            "{id} must be evacuated before going offline"
        );
        self.node_mut(id).phase = NodePhase::Offline { remaining_ticks: mttr_ticks };
        self.index.mark(id);
    }

    /// Advances every offline node's repair clock by one tick. Nodes
    /// whose repair just finished move to [`NodePhase::Rejoining`] and
    /// are returned in node-index order for the caller to
    /// re-characterize and [`Cluster::complete_rejoin`].
    pub fn tick_repairs(&mut self) -> Vec<NodeId> {
        let mut ready = Vec::new();
        for node in &mut self.nodes {
            if let NodePhase::Offline { remaining_ticks } = node.phase {
                if remaining_ticks <= 1 {
                    node.phase = NodePhase::Rejoining;
                    ready.push(node.id);
                } else {
                    node.phase = NodePhase::Offline { remaining_ticks: remaining_ticks - 1 };
                }
            }
        }
        ready
    }

    /// Returns a re-characterized node to service: it ticks, consumes
    /// energy and takes placements again from this call on.
    ///
    /// # Panics
    ///
    /// Panics if the node is not in [`NodePhase::Rejoining`] — online
    /// nodes cannot "rejoin", and offline nodes must finish their repair
    /// window first.
    pub fn complete_rejoin(&mut self, id: NodeId) {
        let node = self.node_mut(id);
        assert_eq!(node.phase, NodePhase::Rejoining, "only rejoining nodes come back online");
        node.phase = NodePhase::Online;
        self.index.mark(id);
    }

    // --- Gray-failure transitions: silent onset, watchdog-driven
    // quarantine, and the clear back to full health. Like the crash
    // lifecycle, every phase change marks the index.

    /// Marks an online node as serving gray: capacity capped, CE rate
    /// multiplied, still in the pool. Gray onset is silent — the node
    /// keeps ticking and holding placements; only the watchdog's probes
    /// can tell it from a healthy one. Asleep nodes never degrade (they
    /// are frozen, not serving).
    ///
    /// # Panics
    ///
    /// Panics unless the node is awake and in [`NodePhase::Online`].
    pub fn mark_degraded(&mut self, id: NodeId, gray: GrayState) {
        let node = self.node_mut(id);
        assert_eq!(node.phase, NodePhase::Online, "only healthy online nodes degrade");
        assert!(!node.is_asleep(), "{id} is asleep — frozen nodes cannot degrade");
        node.phase = NodePhase::Degraded { gray };
        self.index.mark(id);
    }

    /// Sets or clears the watchdog's quarantine marker on a degraded
    /// node. Quarantined nodes keep ticking (their fault clock and
    /// probes must keep running) but are excluded from every placement
    /// path, including the reliability-blind gates.
    ///
    /// # Panics
    ///
    /// Panics if the node is not degraded.
    pub fn set_quarantined(&mut self, id: NodeId, quarantined: bool) {
        let node = self.node_mut(id);
        match node.phase {
            NodePhase::Degraded { mut gray } => {
                gray.quarantined = quarantined;
                node.phase = NodePhase::Degraded { gray };
            }
            phase => panic!("{id} is not degraded (phase {phase:?})"),
        }
        self.index.mark(id);
    }

    /// Returns a degraded node to full health: the underlying fault
    /// cleared (or probation ended in readmission), so the capacity cap
    /// and CE multiplier lift.
    ///
    /// # Panics
    ///
    /// Panics if the node is not degraded.
    pub fn clear_degraded(&mut self, id: NodeId) {
        let node = self.node_mut(id);
        assert!(node.is_degraded(), "{id} is not degraded");
        node.phase = NodePhase::Online;
        self.index.mark(id);
    }

    /// Nodes currently serving gray.
    #[must_use]
    pub fn degraded_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_degraded()).count()
    }

    /// Migrates up to `budget` placements off a (typically quarantined)
    /// degraded node, Gold first, with pre-copy semantics: the source
    /// copy keeps running until the target launch succeeds, so a failed
    /// placement leaves the VM where it is — a watchdog drain never
    /// evicts anyone, it just takes another bite next tick. Returns the
    /// number of placements actually moved.
    ///
    /// Unlike the crash path these moves are not a response to lost
    /// capacity, so they count as proactive migrations (and accrue
    /// pre-copy downtime), not as SLA violations.
    pub fn drain_degraded(&mut self, source: NodeId, budget: usize) -> u64 {
        let mut victims: Vec<Placement> =
            self.placements.iter().filter(|p| p.node == source).cloned().collect();
        // Gold first: the strictest SLA gets off the sick node before
        // the budget runs out. The sort is stable, so same-class
        // victims keep their (deterministic) placement order.
        victims.sort_by_key(|p| p.class);
        victims.truncate(budget);
        let mut moved = 0u64;
        for victim in victims {
            let (config, cost) = {
                let Some(vm) = self.node_ref(source).hypervisor.vm(victim.vm) else { continue };
                if !vm.is_running() {
                    continue;
                }
                (vm.config.clone(), self.migration.cost(vm))
            };
            let Some(target) = self.place_no_wake(&config, victim.class, source) else { continue };
            let Ok(new_vm) = self.node_mut(target).launch(config) else { continue };
            self.index.mark(target);
            self.node_mut(source).hypervisor.stop_vm(victim.vm);
            self.index.mark(source);
            let slot = self
                .placements
                .iter_mut()
                .find(|p| p.id == victim.id)
                .expect("victim is tracked");
            *slot = Placement { id: victim.id, node: target, vm: new_vm, class: victim.class };
            self.migrations += 1;
            self.migration_downtime = self.migration_downtime + cost.downtime;
            moved += 1;
        }
        moved
    }

    fn node_mut(&mut self, id: NodeId) -> &mut ManagedNode {
        self.nodes.iter_mut().find(|n| n.id == id).expect("node ids are dense")
    }

    fn node_ref(&self, id: NodeId) -> &ManagedNode {
        self.nodes.iter().find(|n| n.id == id).expect("node ids are dense")
    }

    /// Placement histogram per node, for load-balance assertions.
    #[must_use]
    pub fn placements_per_node(&self) -> HashMap<NodeId, usize> {
        let mut map = HashMap::new();
        for p in &self.placements {
            *map.entry(p.node).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_platform::msr::DomainId;

    #[test]
    fn submissions_spread_across_nodes() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(4), 100);
        for _ in 0..8 {
            assert!(cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Silver).is_some());
        }
        let per_node = cluster.placements_per_node();
        assert_eq!(per_node.values().sum::<usize>(), 8);
        assert!(per_node.len() >= 3, "placements should spread, got {per_node:?}");
    }

    #[test]
    fn saturated_cluster_rejects() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(1), 100);
        let mut accepted = 0;
        for _ in 0..6 {
            if cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Bronze).is_some() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4, "one 16 GiB relaxed domain fits four 4 GiB guests");
        assert_eq!(cluster.fleet_metrics().rejected, 2);
    }

    #[test]
    fn healthy_cluster_runs_without_migrations() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 100);
        cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Gold);
        for _ in 0..30 {
            cluster.tick(Seconds::new(1.0));
        }
        let m = cluster.fleet_metrics();
        assert_eq!(m.migrations, 0);
        assert_eq!(m.mean_availability, 1.0);
        assert!(m.total_energy.as_joules() > 0.0);
    }

    #[test]
    fn failing_node_triggers_proactive_migration_of_gold() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 100);
        let gold =
            cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Gold).expect("placed");
        let bronze_cfg = VmConfig { name: "batch".into(), ..VmConfig::ldbc_benchmark() };
        let bronze = cluster.submit(bronze_cfg, SlaClass::Bronze).expect("placed");

        // Degrade both hosting nodes' relaxed DRAM domain so their logs
        // fill with corrected errors and reliability collapses.
        for id in [gold.node, bronze.node] {
            let node =
                cluster.nodes_mut().iter_mut().find(|n| n.id == id).expect("node exists");
            node.hypervisor
                .node_mut()
                .msr
                .set_refresh_interval(DomainId(1), Seconds::new(10.0))
                .unwrap();
        }

        for _ in 0..60 {
            cluster.tick(Seconds::new(2.0));
            if cluster.fleet_metrics().migrations > 0 {
                break;
            }
        }
        let m = cluster.fleet_metrics();
        assert!(m.migrations >= 1, "gold VM should have been migrated");
        let gold_now = cluster
            .placements()
            .iter()
            .find(|p| p.class == SlaClass::Gold)
            .expect("gold placement tracked");
        assert_ne!(gold_now.node, gold.node, "gold VM left the degraded node");
        let bronze_now = cluster
            .placements()
            .iter()
            .find(|p| p.class == SlaClass::Bronze)
            .expect("bronze placement tracked");
        assert_eq!(bronze_now.node, bronze.node, "bronze stays (no proactive migration)");
        assert!(m.migration_downtime.as_secs() < 1.0, "pre-copy keeps blackout sub-second");
    }

    #[test]
    fn build_is_deterministic_but_nodes_differ() {
        let a = Cluster::build(&ClusterConfig::small_edge_site(2), 5);
        let b = Cluster::build(&ClusterConfig::small_edge_site(2), 5);
        assert_eq!(
            a.nodes()[0].hypervisor.node().chip().speed_factor,
            b.nodes()[0].hypervisor.node().chip().speed_factor
        );
        assert_ne!(
            a.nodes()[0].hypervisor.node().chip().speed_factor,
            a.nodes()[1].hypervisor.node().chip().speed_factor,
            "every node is a different manufactured chip"
        );
    }

    #[test]
    #[should_panic(expected = "needs nodes")]
    fn empty_cluster_panics() {
        let _ = Cluster::build(&ClusterConfig::small_edge_site(0), 1);
    }

    #[test]
    fn uniserver_rack_mixes_parts_six_to_one_to_one() {
        let config = ClusterConfig::uniserver_rack(64);
        let cluster = Cluster::build(&config, 500);
        let mut counts = [0usize; 3];
        for node in cluster.nodes() {
            let name = &node.hypervisor.node().part().name;
            let idx = config
                .part_mix
                .iter()
                .position(|p| &p.spec.name == name)
                .expect("drawn part comes from the mix");
            counts[idx] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0), "64 draws must hit every part: {counts:?}");
        assert!(counts[0] > counts[1] + counts[2], "ARM dominates 6:1:1: {counts:?}");
        // Pure function of (seed, index): rebuilding reproduces the rack.
        let again = Cluster::build(&config, 500);
        for (a, b) in cluster.nodes().iter().zip(again.nodes()) {
            assert_eq!(a.hypervisor.node().part().name, b.hypervisor.node().part().name);
        }
    }

    #[test]
    fn placement_ids_are_stable_and_unique() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 100);
        let a = cluster.submit(VmConfig::idle_guest(), SlaClass::Silver).expect("placed");
        let b = cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze).expect("placed");
        assert_ne!(a.id, b.id);
        assert!(cluster.terminate_by_id(a.id));
        assert!(!cluster.terminate_by_id(a.id), "double termination is reported");
        assert!(cluster.terminate_by_id(b.id));
    }

    #[test]
    fn crash_recovery_clears_the_crashed_node() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 100);
        let placed: Vec<Placement> = (0..4)
            .filter_map(|i| {
                let class = if i % 2 == 0 { SlaClass::Gold } else { SlaClass::Bronze };
                cluster.submit(VmConfig::idle_guest(), class)
            })
            .collect();
        assert_eq!(placed.len(), 4);
        let crashed = placed[0].node;
        let before = cluster.placements_on(crashed).len();
        assert!(before > 0);
        let recovery = cluster.recover_from_crash(crashed);
        assert_eq!(recovery.migrated.len() + recovery.evicted.len(), before);
        assert!(cluster.placements_on(crashed).is_empty(), "no placement survives the crash");
        for (moved, cost) in &recovery.migrated {
            assert_ne!(moved.node, crashed);
            assert!(cost.duration.as_secs() > 0.0, "every move has a real cost");
            let tracked = cluster
                .placements()
                .iter()
                .find(|p| p.id == moved.id)
                .expect("migrated placement stays tracked");
            assert_eq!(tracked.class, moved.class, "migration preserves the SLA class");
        }
        let m = cluster.fleet_metrics();
        assert_eq!(m.crash_migrations, recovery.migrated.len() as u64);
        assert_eq!(m.evictions, recovery.evicted.len() as u64);
    }

    #[test]
    fn sharded_tick_matches_sequential_on_a_degraded_rack() {
        let build = || {
            let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(6), 100);
            for i in 0..6 {
                let class = if i % 2 == 0 { SlaClass::Gold } else { SlaClass::Bronze };
                cluster.submit(VmConfig::idle_guest(), class);
            }
            // Degrade two nodes: node 0 deep into its crash region,
            // node 1's relaxed DRAM into CE noise, so the comparison
            // covers crash events, predictor re-scores and migrations.
            let deep = cluster.nodes()[0].hypervisor.node().part().offset_mv(0.20);
            cluster.nodes_mut()[0].hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();
            cluster.nodes_mut()[1]
                .hypervisor
                .node_mut()
                .msr
                .set_refresh_interval(DomainId(1), Seconds::new(10.0))
                .unwrap();
            cluster
        };
        let mut seq = build();
        let mut par = build();
        let mut saw_crash = false;
        for _ in 0..60 {
            let a = seq.tick(Seconds::new(1.0));
            let b = par.tick_sharded(Seconds::new(1.0), 4);
            assert_eq!(a, b, "worker count must never change a tick report");
            saw_crash |= !a.crashes.is_empty();
        }
        assert!(saw_crash, "a 20 % undervolt must crash within 60 ticks");
        assert_eq!(seq.fleet_metrics(), par.fleet_metrics());
        assert_eq!(seq.placements(), par.placements());
        for (a, b) in seq.nodes().iter().zip(par.nodes()) {
            assert_eq!(a.reliability, b.reliability);
            assert_eq!(a.metrics(), b.metrics());
        }
    }

    #[test]
    fn one_persistent_pool_serves_every_tick_identically() {
        // The orchestrator's pattern: one ShardPool reused across the
        // whole horizon (deploy + ~720 ticks) — versus fresh sequential
        // ticks. Reusing workers must be invisible in every report.
        let build = || {
            let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(5), 100);
            for i in 0..5 {
                let class = if i % 2 == 0 { SlaClass::Gold } else { SlaClass::Bronze };
                cluster.submit(VmConfig::idle_guest(), class);
            }
            let deep = cluster.nodes()[0].hypervisor.node().part().offset_mv(0.20);
            cluster.nodes_mut()[0].hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();
            cluster
        };
        let mut seq = build();
        let mut pooled = build();
        let pool = ShardPool::new(3);
        let mut saw_crash = false;
        for tick in 0..60 {
            let a = seq.tick(Seconds::new(1.0));
            let b = pooled.tick_pooled(Seconds::new(1.0), &pool);
            assert_eq!(a, b, "pool reuse changed tick {tick}");
            saw_crash |= !a.crashes.is_empty();
        }
        assert!(saw_crash, "a 20 % undervolt must crash within 60 ticks");
        assert_eq!(seq.fleet_metrics(), pooled.fleet_metrics());
        assert_eq!(seq.placements(), pooled.placements());
    }

    #[test]
    fn sharded_tick_clamps_workers_to_node_count() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 100);
        cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze);
        // More workers than nodes (and zero workers) both behave.
        let a = cluster.tick_sharded(Seconds::new(1.0), 64);
        assert!(a.crashes.is_empty());
        let b = cluster.tick_sharded(Seconds::new(1.0), 0);
        assert!(b.crashes.is_empty());
        assert!(cluster.fleet_metrics().total_energy.as_joules() > 0.0);
    }

    #[test]
    fn build_accepts_seeds_near_u64_max() {
        // `seed + i` used to panic on overflow in debug builds; the
        // wrapping derivation matches silicon::rng::indexed_seed.
        let cluster = Cluster::build(&ClusterConfig::small_edge_site(3), u64::MAX);
        assert_eq!(cluster.nodes().len(), 3);
        let again = Cluster::build(&ClusterConfig::small_edge_site(3), u64::MAX);
        assert_eq!(
            cluster.nodes()[2].hypervisor.node().chip().speed_factor,
            again.nodes()[2].hypervisor.node().chip().speed_factor,
            "wrapped seeds stay deterministic"
        );
    }

    #[test]
    fn tick_surfaces_crash_events() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 100);
        cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Bronze);
        // Undervolt node 0 deep into its crash region.
        let node = &mut cluster.nodes_mut()[0];
        let deep = node.hypervisor.node().part().offset_mv(0.20);
        node.hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();
        let mut seen = Vec::new();
        for _ in 0..60 {
            let report = cluster.tick(Seconds::new(1.0));
            if !report.crashes.is_empty() {
                seen = report.crashes;
                break;
            }
        }
        assert!(!seen.is_empty(), "a 20 % undervolt must surface a crash event");
        assert_eq!(seen[0].0, NodeId(0));
        assert!(seen[0].1.voltage.as_volts() > 0.0);
    }

    #[test]
    fn lifecycle_round_trips_through_repair() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 100);
        assert_eq!(cluster.phase(NodeId(0)), NodePhase::Online);
        cluster.mark_crashed(NodeId(0));
        assert_eq!(cluster.phase(NodeId(0)), NodePhase::Crashed);
        assert_eq!(cluster.offline_count(), 1);
        cluster.begin_repair(NodeId(0), 2);
        assert_eq!(cluster.phase(NodeId(0)), NodePhase::Offline { remaining_ticks: 2 });
        assert!(cluster.tick_repairs().is_empty(), "one tick left on the clock");
        assert_eq!(cluster.phase(NodeId(0)), NodePhase::Offline { remaining_ticks: 1 });
        assert_eq!(cluster.tick_repairs(), vec![NodeId(0)], "repair finished");
        assert_eq!(cluster.phase(NodeId(0)), NodePhase::Rejoining);
        assert_eq!(cluster.offline_count(), 1, "rejoining nodes are still out of the pool");
        cluster.complete_rejoin(NodeId(0));
        assert_eq!(cluster.phase(NodeId(0)), NodePhase::Online);
        assert_eq!(cluster.offline_count(), 0);
    }

    #[test]
    fn offline_nodes_take_no_placements_and_consume_no_energy() {
        for linear in [false, true] {
            let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 100);
            cluster.set_linear_placement(linear);
            cluster.mark_crashed(NodeId(1));
            cluster.begin_repair(NodeId(1), 10);
            // Node 0's relaxed domain fits four 4 GiB guests; all four
            // land there, the fifth has nowhere to go.
            for _ in 0..4 {
                let p = cluster
                    .submit(VmConfig::ldbc_benchmark(), SlaClass::Bronze)
                    .expect("the online node fits");
                assert_eq!(p.node, NodeId(0), "offline nodes never take placements");
            }
            assert!(cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Bronze).is_none());
            for _ in 0..5 {
                cluster.tick(Seconds::new(1.0));
            }
            assert!(cluster.nodes()[0].metrics().energy.as_joules() > 0.0);
            assert_eq!(
                cluster.nodes()[1].metrics().energy,
                Joules::ZERO,
                "offline nodes do not tick"
            );
        }
    }

    #[test]
    fn offline_skip_is_worker_count_invariant() {
        let build = || {
            let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(6), 100);
            for i in 0..6 {
                let class = if i % 2 == 0 { SlaClass::Gold } else { SlaClass::Bronze };
                cluster.submit(VmConfig::idle_guest(), class);
            }
            let crashed = NodeId(2);
            cluster.mark_crashed(crashed);
            cluster.recover_from_crash(crashed);
            cluster.begin_repair(crashed, 30);
            cluster
        };
        let mut seq = build();
        let mut par = build();
        for tick in 0..20 {
            let a = seq.tick(Seconds::new(1.0));
            let b = par.tick_sharded(Seconds::new(1.0), 4);
            assert_eq!(a, b, "offline skip changed tick {tick} across worker counts");
        }
        assert_eq!(seq.fleet_metrics(), par.fleet_metrics());
        assert_eq!(seq.nodes()[2].metrics().energy, Joules::ZERO);
    }

    #[test]
    #[should_panic(expected = "only rejoining nodes")]
    fn online_nodes_cannot_rejoin() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(1), 100);
        cluster.complete_rejoin(NodeId(0));
    }

    #[test]
    fn parked_nodes_freeze_and_draw_only_sleep_power() {
        use crate::lifecycle::SLEEP_POWER_WATTS;

        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 100);
        cluster.park_node(NodeId(2));
        assert_eq!(cluster.asleep_count(), 1);
        assert_eq!(cluster.power_stats().parks, 1);
        // Placements route around the sleeper under the default policy.
        for _ in 0..4 {
            let p = cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze).expect("placed");
            assert_ne!(p.node, NodeId(2), "the default policy never places onto sleepers");
        }
        for _ in 0..5 {
            cluster.tick(Seconds::new(1.0));
        }
        let sleeper = cluster.nodes()[2].metrics();
        let expected = SLEEP_POWER_WATTS * 5.0;
        assert!(
            (sleeper.energy.as_joules() - expected).abs() < 1e-9,
            "5 s asleep must cost exactly {expected} J, got {}",
            sleeper.energy.as_joules()
        );
        assert!(
            cluster.nodes()[0].metrics().energy.as_joules() > expected,
            "an awake node must out-consume the sleeper"
        );
        cluster.wake_node(NodeId(2));
        assert_eq!(cluster.asleep_count(), 0);
        assert_eq!(cluster.power_stats().wakes, 1);
    }

    #[test]
    fn asleep_skip_is_worker_count_invariant() {
        let build = || {
            let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(6), 100);
            for i in 0..6 {
                let class = if i % 2 == 0 { SlaClass::Gold } else { SlaClass::Bronze };
                cluster.submit(VmConfig::idle_guest(), class);
            }
            // Evacuate node 4 by terminating whatever landed on it, then
            // park it; node 2 goes offline so both skip paths coexist.
            let on_four: Vec<PlacementId> =
                cluster.placements_on(NodeId(4)).iter().map(|p| p.id).collect();
            for id in on_four {
                cluster.terminate_by_id(id);
            }
            cluster.park_node(NodeId(4));
            let crashed = NodeId(2);
            cluster.mark_crashed(crashed);
            cluster.recover_from_crash(crashed);
            cluster.begin_repair(crashed, 30);
            cluster
        };
        let mut seq = build();
        let mut par = build();
        for tick in 0..20 {
            let a = seq.tick(Seconds::new(1.0));
            let b = par.tick_sharded(Seconds::new(1.0), 4);
            assert_eq!(a, b, "asleep skip changed tick {tick} across worker counts");
        }
        assert_eq!(seq.fleet_metrics(), par.fleet_metrics());
        assert_eq!(seq.power_stats(), par.power_stats());
    }

    #[test]
    fn consolidating_cluster_packs_drains_and_parks() {
        use crate::policy::{ConsolidatePolicy, EnergySlaPolicy};

        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(6), 100);
        cluster.set_policy(Arc::new(ConsolidatePolicy::new(Scheduler::default())));
        // Six bronze guests pack onto one node (ties break to the lowest
        // id on the packing end, so the empty rack fills node 0 first)
        // instead of spreading.
        let placed: Vec<Placement> = (0..6)
            .map(|_| cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze).expect("placed"))
            .collect();
        let hosts: std::collections::HashSet<NodeId> = placed.iter().map(|p| p.node).collect();
        assert_eq!(hosts, std::collections::HashSet::from([NodeId(0)]), "consolidation must pack");
        // The management pass parks the empties beyond the spare buffer
        // (identical empties tie, so the two highest ids stay awake).
        cluster.manage(0, 42);
        assert_eq!(cluster.asleep_count(), 3, "6 nodes - 1 host - 2 spares = 3 parked");
        assert_eq!(cluster.power_stats().parks, 3);

        // Strand one tracked straggler on a spare via the spreading
        // reference policy (it picks the best-scored awake node — an
        // empty spare, tie-broken to the highest id: node 5).
        cluster.set_policy(Arc::new(EnergySlaPolicy::new(Scheduler::default())));
        let straggler =
            cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze).expect("placed");
        assert_eq!(straggler.node, NodeId(5));
        cluster.set_policy(Arc::new(ConsolidatePolicy::new(Scheduler::default())));

        // The next pass drains the straggler into the pack (a cheap,
        // within-budget migration) and parks its node.
        cluster.manage(12, 42);
        assert_eq!(cluster.power_stats().consolidation_migrations, 1);
        assert_eq!(cluster.asleep_count(), 4, "the drained source joins the sleepers");
        assert!(cluster.nodes()[5].is_asleep());
        let moved = cluster
            .placements()
            .iter()
            .find(|p| p.id == straggler.id)
            .expect("straggler is still tracked");
        assert_eq!(moved.node, NodeId(0), "the straggler joined the pack");
        assert!(
            cluster.fleet_metrics().migration_downtime.as_secs() > 0.0,
            "consolidation moves pay real blackout"
        );
    }

    #[test]
    fn gray_transitions_keep_the_node_in_the_pool_until_quarantine() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 100);
        let gray = GrayState {
            capacity_cap: 0.5,
            ce_multiplier: 2.0,
            clears_at_tick: 10,
            quarantined: false,
        };
        cluster.mark_degraded(NodeId(1), gray);
        assert!(cluster.nodes()[1].is_degraded());
        assert_eq!(cluster.degraded_count(), 1);
        assert_eq!(cluster.offline_count(), 0, "gray nodes stay in the pool");
        // Degraded but not quarantined: the filter still admits it at
        // Bronze (effective reliability 0.5 clears the 0.3 floor) but
        // the halved reliability fails the premium floors.
        let s = Scheduler::default();
        let cfg = VmConfig::idle_guest();
        assert!(s.filter(&cluster.nodes()[1], &cfg, SlaClass::Bronze));
        assert!(!s.filter(&cluster.nodes()[1], &cfg, SlaClass::Gold));
        cluster.set_quarantined(NodeId(1), true);
        assert!(
            !s.filter(&cluster.nodes()[1], &cfg, SlaClass::Bronze),
            "quarantine closes even the Bronze gate"
        );
        assert!(cluster.nodes()[1].is_quarantined());
        // Quarantined: every placement routes to node 0, even classes
        // the blind gates would admit.
        for _ in 0..3 {
            let p = cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze).expect("placed");
            assert_eq!(p.node, NodeId(0), "quarantined nodes take nothing");
        }
        cluster.set_quarantined(NodeId(1), false);
        assert!(!cluster.nodes()[1].is_quarantined());
        cluster.clear_degraded(NodeId(1));
        assert_eq!(cluster.phase(NodeId(1)), NodePhase::Online);
        assert_eq!(cluster.degraded_count(), 0);
        assert_eq!(cluster.nodes()[1].metrics().reliability, 1.0, "the cap and multiplier lift");
    }

    #[test]
    fn drain_degraded_moves_gold_first_within_budget_and_never_evicts() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 100);
        // Fill node 1 with a bronze, a gold and a silver guest — launch
        // order deliberately puts gold in the middle.
        let mut on_node_1 = Vec::new();
        for class in [SlaClass::Bronze, SlaClass::Gold, SlaClass::Silver] {
            loop {
                let p = cluster.submit(VmConfig::idle_guest(), class).expect("fits");
                if p.node == NodeId(1) {
                    on_node_1.push(p);
                    break;
                }
            }
        }
        let before = cluster.fleet_metrics();
        cluster.mark_degraded(
            NodeId(1),
            GrayState { capacity_cap: 0.5, ce_multiplier: 2.0, clears_at_tick: 50, quarantined: false },
        );
        cluster.set_quarantined(NodeId(1), true);
        // Budget 2: the gold and silver guests move, bronze waits.
        let moved = cluster.drain_degraded(NodeId(1), 2);
        assert_eq!(moved, 2);
        let left: Vec<SlaClass> =
            cluster.placements_on(NodeId(1)).iter().map(|p| p.class).collect();
        assert_eq!(left, vec![SlaClass::Bronze], "gold and silver drain first");
        let after = cluster.fleet_metrics();
        assert_eq!(after.migrations, before.migrations + 2, "drains are proactive migrations");
        assert_eq!(after.evictions, before.evictions, "a watchdog drain never evicts");
        assert!(after.migration_downtime > before.migration_downtime);
        // Next bite finishes the node.
        assert_eq!(cluster.drain_degraded(NodeId(1), 8), 1);
        assert!(cluster.placements_on(NodeId(1)).is_empty());
        assert_eq!(cluster.drain_degraded(NodeId(1), 8), 0, "an empty node drains to zero");
    }

    #[test]
    #[should_panic(expected = "only healthy online nodes degrade")]
    fn offline_nodes_cannot_degrade() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(1), 100);
        cluster.mark_crashed(NodeId(0));
        let gray = GrayState {
            capacity_cap: 0.5,
            ce_multiplier: 2.0,
            clears_at_tick: 1,
            quarantined: false,
        };
        cluster.mark_degraded(NodeId(0), gray);
    }

    #[test]
    fn parked_mid_dip_nodes_recover_on_the_sleeper_slow_clock() {
        use crate::policy::ConsolidatePolicy;

        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 100);
        cluster.set_policy(Arc::new(ConsolidatePolicy::new(Scheduler::default())));
        // Pack two bronze guests onto node 0 and make its DRAM noisy so
        // the predictor's rolling error score climbs for real (bronze
        // placements are never proactively migrated, so they stay put).
        let placed: Vec<Placement> = (0..2)
            .map(|_| {
                cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Bronze).expect("placed")
            })
            .collect();
        assert!(placed.iter().all(|p| p.node == NodeId(0)), "consolidation packs onto node 0");
        cluster.nodes_mut()[0]
            .hypervisor
            .node_mut()
            .msr
            .set_refresh_interval(DomainId(1), Seconds::new(10.0))
            .unwrap();
        for _ in 0..200 {
            cluster.tick(Seconds::new(2.0));
            if cluster.nodes()[0].reliability < 0.7 {
                break;
            }
        }
        let dipped = cluster.nodes()[0].reliability;
        assert!(dipped < 0.7, "the noisy domain must dip reliability, got {dipped}");
        // Park the node mid-dip (the relaxed parkability gate allows
        // exactly this) and drive only the management slow clock.
        for p in placed {
            cluster.terminate_by_id(p.id);
        }
        cluster.park_node(NodeId(0));
        let mut last = dipped;
        let mut recovered_at = None;
        for k in 1..=400u64 {
            cluster.manage(60 * k, 42);
            let r = cluster.nodes()[0].reliability;
            assert!(r >= last, "slow-clock re-scores must never worsen a frozen log: {r} < {last}");
            last = r;
            if r >= 0.9 {
                recovered_at = Some(k);
                break;
            }
        }
        let k = recovered_at.expect("a parked dip must age out on the slow clock");
        assert!(k > 1, "recovery takes multiple decay visits, not one jump");
        assert!(cluster.nodes()[0].is_asleep(), "the node recovered *while* asleep");
        // Awake again, the recovered node clears the strictest wake
        // floor and can serve premium placements.
        cluster.wake_node(NodeId(0));
        assert!(
            cluster.nodes()[0].reliability >= SlaClass::Gold.min_reliability(),
            "a recovered sleeper must clear Gold's floor"
        );
    }

    /// A 6-node rack with one deep-undervolted node, one noisy DRAM
    /// domain and one node parked offline — the same degradation the
    /// shard-equivalence tests use, so metrics cover crashes, rescores
    /// and the offline skip.
    fn instrumented_rack() -> Cluster {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(6), 100);
        for i in 0..6 {
            let class = if i % 2 == 0 { SlaClass::Gold } else { SlaClass::Bronze };
            cluster.submit(VmConfig::idle_guest(), class);
        }
        let deep = cluster.nodes()[0].hypervisor.node().part().offset_mv(0.20);
        cluster.nodes_mut()[0].hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();
        cluster.nodes_mut()[1]
            .hypervisor
            .node_mut()
            .msr
            .set_refresh_interval(DomainId(1), Seconds::new(10.0))
            .unwrap();
        let parked = NodeId(5);
        cluster.mark_crashed(parked);
        cluster.recover_from_crash(parked);
        cluster.begin_repair(parked, 100);
        cluster
    }

    #[test]
    fn shard_metrics_are_byte_identical_across_worker_counts() {
        let mut seq = instrumented_rack();
        let mut par = instrumented_rack();
        seq.enable_metrics();
        par.enable_metrics();
        for _ in 0..40 {
            let a = seq.tick(Seconds::new(1.0));
            let b = par.tick_sharded(Seconds::new(1.0), 4);
            assert_eq!(a, b, "metrics collection must not perturb the tick");
        }
        let a = seq.take_metrics().expect("metrics were enabled");
        let b = par.take_metrics().expect("metrics were enabled");
        assert_eq!(a.to_json(), b.to_json(), "shard merge order must equal node order");
        assert_eq!(a.counter("node_ticks"), 5 * 40, "five online nodes tick every tick");
        assert_eq!(a.counter("node_ticks_skipped_offline"), 40);
        assert!(a.counter("predictor_rescores") > 0, "noisy logs must rescore");
        let crashes = a.histogram("crash_events_per_node_tick").expect("deep undervolt crashes");
        assert!(crashes.count > 0);
        assert!(seq.take_metrics().is_none(), "take_metrics stops collection");
    }

    #[test]
    fn profiler_attributes_tick_time_without_changing_reports() {
        let mut plain = instrumented_rack();
        let mut profiled = instrumented_rack();
        let profiler = Arc::new(StageProfiler::new());
        profiled.set_profiler(Arc::clone(&profiler));
        let pool = ShardPool::new(3);
        for tick in 0..20 {
            let a = plain.tick(Seconds::new(1.0));
            let b = profiled.tick_pooled(Seconds::new(1.0), &pool);
            assert_eq!(a, b, "profiling changed tick {tick}");
        }
        assert!(profiler.nanos(Stage::NodeTick) > 0, "node ticking must be attributed");
        assert!(profiler.nanos(Stage::Predictor) > 0, "predictor scans must be attributed");
        assert_eq!(profiler.nanos(Stage::Placement), 0, "the cluster only times its own phase");
    }
}
