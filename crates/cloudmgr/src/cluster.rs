//! The cluster driver: streams of VMs, reliability-aware placement and
//! proactive migration off failing nodes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use uniserver_units::{Joules, Seconds};

use uniserver_hypervisor::vm::{VmConfig, VmId};
use uniserver_platform::part::PartSpec;

use crate::failure::FailurePredictor;
use crate::migrate::MigrationModel;
use crate::node::{ManagedNode, NodeId};
use crate::scheduler::Scheduler;
use crate::sla::SlaClass;

/// Cluster construction parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Part every node is built from.
    pub spec: PartSpec,
    /// Placement policy.
    pub scheduler: Scheduler,
    /// Migration network model.
    pub migration: MigrationModel,
}

impl ClusterConfig {
    /// A small Edge site: `n` ARM micro-servers behind one switch.
    #[must_use]
    pub fn small_edge_site(n: usize) -> Self {
        ClusterConfig {
            nodes: n,
            spec: PartSpec::arm_microserver(),
            scheduler: Scheduler::default(),
            migration: MigrationModel::ten_gbe(),
        }
    }
}

/// One tracked placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// Node currently hosting the VM.
    pub node: NodeId,
    /// VM id on that node.
    pub vm: VmId,
    /// SLA class of the workload.
    pub class: SlaClass,
}

/// Aggregated fleet statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetMetrics {
    /// Mean node availability.
    pub mean_availability: f64,
    /// Mean node utilization.
    pub mean_utilization: f64,
    /// Total energy consumed.
    pub total_energy: Joules,
    /// Proactive migrations performed.
    pub migrations: u64,
    /// Cumulative migration blackout across all moves.
    pub migration_downtime: Seconds,
    /// Placement requests rejected (no feasible node).
    pub rejected: u64,
}

/// The cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    nodes: Vec<ManagedNode>,
    scheduler: Scheduler,
    predictor: FailurePredictor,
    migration: MigrationModel,
    placements: Vec<Placement>,
    migrations: u64,
    migration_downtime: Seconds,
    rejected: u64,
}

impl Cluster {
    /// Provisions a cluster; node chips are manufactured from
    /// `seed`, `seed+1`, … so every node is a *different* chip.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero nodes.
    #[must_use]
    pub fn build(config: &ClusterConfig, seed: u64) -> Self {
        assert!(config.nodes > 0, "a cluster needs nodes");
        let nodes = (0..config.nodes)
            .map(|i| {
                ManagedNode::provision(NodeId(i as u32), config.spec.clone(), seed + i as u64)
            })
            .collect();
        Cluster {
            nodes,
            scheduler: config.scheduler,
            predictor: FailurePredictor::new(),
            migration: config.migration,
            placements: Vec::new(),
            migrations: 0,
            migration_downtime: Seconds::ZERO,
            rejected: 0,
        }
    }

    /// The nodes (read-only).
    #[must_use]
    pub fn nodes(&self) -> &[ManagedNode] {
        &self.nodes
    }

    /// Mutable node access, for experiments that degrade specific nodes.
    pub fn nodes_mut(&mut self) -> &mut [ManagedNode] {
        &mut self.nodes
    }

    /// Current placements.
    #[must_use]
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Submits a VM request; returns its placement if a node was found.
    pub fn submit(&mut self, config: VmConfig, class: SlaClass) -> Option<Placement> {
        let Some(target) = self.scheduler.place(self.nodes.iter(), &config, class) else {
            self.rejected += 1;
            return None;
        };
        let node = self.node_mut(target);
        match node.launch(config) {
            Ok(vm) => {
                let placement = Placement { node: target, vm, class };
                self.placements.push(placement.clone());
                Some(placement)
            }
            Err(_) => {
                self.rejected += 1;
                None
            }
        }
    }

    /// Advances the whole cluster by one interval: ticks every node,
    /// refreshes reliability scores, and proactively migrates protected
    /// workloads off nodes predicted to fail.
    pub fn tick(&mut self, duration: Seconds) {
        for node in &mut self.nodes {
            node.tick(duration);
        }
        for i in 0..self.nodes.len() {
            let id = self.nodes[i].id.0;
            let r = self.predictor.update_node(id, self.nodes[i].hypervisor.health());
            self.nodes[i].reliability = r;
        }
        self.proactive_migrations();
    }

    /// Moves Gold/Silver VMs off nodes whose predicted reliability has
    /// collapsed.
    fn proactive_migrations(&mut self) {
        let failing: Vec<NodeId> = self
            .nodes
            .iter()
            .filter(|n| self.predictor.predicts_failure(n.reliability))
            .map(|n| n.id)
            .collect();
        if failing.is_empty() {
            return;
        }
        let mut moves: Vec<(usize, Placement)> = Vec::new();
        for (idx, placement) in self.placements.iter().enumerate() {
            if failing.contains(&placement.node) && placement.class.proactive_migration() {
                moves.push((idx, placement.clone()));
            }
        }
        // Process moves back-to-front so indices stay valid.
        for (idx, placement) in moves.into_iter().rev() {
            let (config, cost) = {
                let node = self.node_ref(placement.node);
                let Some(vm) = node.hypervisor.vm(placement.vm) else { continue };
                if !vm.is_running() {
                    continue;
                }
                (vm.config.clone(), self.migration.cost(vm))
            };
            let target = self
                .scheduler
                .place(
                    self.nodes.iter().filter(|n| n.id != placement.node),
                    &config,
                    placement.class,
                )
                .filter(|t| *t != placement.node);
            let Some(target) = target else { continue };

            // Stop on the failing source, start on the healthy target.
            self.node_mut(placement.node).hypervisor.stop_vm(placement.vm);
            if let Ok(new_vm) = self.node_mut(target).launch(config) {
                self.placements[idx] = Placement { node: target, vm: new_vm, class: placement.class };
                self.migrations += 1;
                self.migration_downtime = self.migration_downtime + cost.downtime;
            }
        }
    }

    /// Terminates a tracked placement (the VM's lifetime ended).
    /// Returns false when the placement is no longer tracked (e.g. its
    /// record was replaced during a migration race).
    pub fn terminate(&mut self, placement: &Placement) -> bool {
        let Some(idx) = self
            .placements
            .iter()
            .position(|p| p.node == placement.node && p.vm == placement.vm)
        else {
            return false;
        };
        let record = self.placements.swap_remove(idx);
        let node = self.node_mut(record.node);
        if node.hypervisor.vm(record.vm).is_some() {
            node.hypervisor.stop_vm(record.vm);
            true
        } else {
            false
        }
    }

    /// Aggregated fleet metrics.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has no nodes (cannot happen after `build`).
    #[must_use]
    pub fn fleet_metrics(&self) -> FleetMetrics {
        assert!(!self.nodes.is_empty(), "empty cluster");
        let n = self.nodes.len() as f64;
        let mut availability = 0.0;
        let mut utilization = 0.0;
        let mut energy = Joules::ZERO;
        for node in &self.nodes {
            let m = node.metrics();
            availability += m.availability / n;
            utilization += m.utilization / n;
            energy = energy + m.energy;
        }
        FleetMetrics {
            mean_availability: availability,
            mean_utilization: utilization,
            total_energy: energy,
            migrations: self.migrations,
            migration_downtime: self.migration_downtime,
            rejected: self.rejected,
        }
    }

    fn node_mut(&mut self, id: NodeId) -> &mut ManagedNode {
        self.nodes.iter_mut().find(|n| n.id == id).expect("node ids are dense")
    }

    fn node_ref(&self, id: NodeId) -> &ManagedNode {
        self.nodes.iter().find(|n| n.id == id).expect("node ids are dense")
    }

    /// Placement histogram per node, for load-balance assertions.
    #[must_use]
    pub fn placements_per_node(&self) -> HashMap<NodeId, usize> {
        let mut map = HashMap::new();
        for p in &self.placements {
            *map.entry(p.node).or_insert(0) += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_platform::msr::DomainId;

    #[test]
    fn submissions_spread_across_nodes() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(4), 100);
        for _ in 0..8 {
            assert!(cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Silver).is_some());
        }
        let per_node = cluster.placements_per_node();
        assert_eq!(per_node.values().sum::<usize>(), 8);
        assert!(per_node.len() >= 3, "placements should spread, got {per_node:?}");
    }

    #[test]
    fn saturated_cluster_rejects() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(1), 100);
        let mut accepted = 0;
        for _ in 0..6 {
            if cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Bronze).is_some() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4, "one 16 GiB relaxed domain fits four 4 GiB guests");
        assert_eq!(cluster.fleet_metrics().rejected, 2);
    }

    #[test]
    fn healthy_cluster_runs_without_migrations() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 100);
        cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Gold);
        for _ in 0..30 {
            cluster.tick(Seconds::new(1.0));
        }
        let m = cluster.fleet_metrics();
        assert_eq!(m.migrations, 0);
        assert_eq!(m.mean_availability, 1.0);
        assert!(m.total_energy.as_joules() > 0.0);
    }

    #[test]
    fn failing_node_triggers_proactive_migration_of_gold() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 100);
        let gold =
            cluster.submit(VmConfig::ldbc_benchmark(), SlaClass::Gold).expect("placed");
        let bronze_cfg = VmConfig { name: "batch".into(), ..VmConfig::ldbc_benchmark() };
        let bronze = cluster.submit(bronze_cfg, SlaClass::Bronze).expect("placed");

        // Degrade both hosting nodes' relaxed DRAM domain so their logs
        // fill with corrected errors and reliability collapses.
        for id in [gold.node, bronze.node] {
            let node =
                cluster.nodes_mut().iter_mut().find(|n| n.id == id).expect("node exists");
            node.hypervisor
                .node_mut()
                .msr
                .set_refresh_interval(DomainId(1), Seconds::new(10.0))
                .unwrap();
        }

        for _ in 0..60 {
            cluster.tick(Seconds::new(2.0));
            if cluster.fleet_metrics().migrations > 0 {
                break;
            }
        }
        let m = cluster.fleet_metrics();
        assert!(m.migrations >= 1, "gold VM should have been migrated");
        let gold_now = cluster
            .placements()
            .iter()
            .find(|p| p.class == SlaClass::Gold)
            .expect("gold placement tracked");
        assert_ne!(gold_now.node, gold.node, "gold VM left the degraded node");
        let bronze_now = cluster
            .placements()
            .iter()
            .find(|p| p.class == SlaClass::Bronze)
            .expect("bronze placement tracked");
        assert_eq!(bronze_now.node, bronze.node, "bronze stays (no proactive migration)");
        assert!(m.migration_downtime.as_secs() < 1.0, "pre-copy keeps blackout sub-second");
    }

    #[test]
    fn build_is_deterministic_but_nodes_differ() {
        let a = Cluster::build(&ClusterConfig::small_edge_site(2), 5);
        let b = Cluster::build(&ClusterConfig::small_edge_site(2), 5);
        assert_eq!(
            a.nodes()[0].hypervisor.node().chip().speed_factor,
            b.nodes()[0].hypervisor.node().chip().speed_factor
        );
        assert_ne!(
            a.nodes()[0].hypervisor.node().chip().speed_factor,
            a.nodes()[1].hypervisor.node().chip().speed_factor,
            "every node is a different manufactured chip"
        );
    }

    #[test]
    #[should_panic(expected = "needs nodes")]
    fn empty_cluster_panics() {
        let _ = Cluster::build(&ClusterConfig::small_edge_site(0), 1);
    }
}
