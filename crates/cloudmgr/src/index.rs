//! Incremental placement index: cached scores + a sorted candidate set.
//!
//! `Scheduler::place_linear` re-weighs the whole rack for every request
//! — ~10⁸ filter/weigh evaluations per simulated hour at 10⁴ nodes.
//! Energy-aware cloud managers treat placement as an incremental,
//! indexed decision instead (Beloglazov & Buyya's survey of
//! energy-efficient cloud scheduling; Paya & Marinescu's energy-aware
//! load-balancing policies): a node's placement score only changes when
//! one of a handful of events touches it, so the manager maintains the
//! ranking and re-evaluates *dirty* nodes, not the rack.
//!
//! [`PlacementIndex`] caches each node's weigher score in a flat
//! `Vec<f64>` keyed by node index plus a `BTreeSet<(score, NodeId)>`
//! ranking. The cluster marks a node dirty on exactly the events that
//! can move its score — VM launch, departure, migration (stop + start),
//! crash recovery and predictor write-backs that change reliability —
//! and [`PlacementIndex::place`] flushes the dirty set, then walks the
//! ranking from the top, returning the first node that passes the
//! *request-dependent* filter (capacity, crash state, availability and
//! reliability floors are read live from the node).
//!
//! # Equivalence with the linear scan
//!
//! The scan order is descending `(score, NodeId)` — exactly the
//! explicit tie-break of [`Scheduler::place_linear`] — and the weigher
//! is deterministic in its inputs, so a correctly-invalidated index
//! returns the *identical* node for every request. CI byte-diffs the
//! two paths end-to-end; `tests/placement_index.rs` property-tests them
//! against each other under churn.

use std::cmp::Ordering;
use std::collections::BTreeSet;

use uniserver_hypervisor::vm::VmConfig;

use crate::node::{ManagedNode, NodeId};
use crate::scheduler::Scheduler;
use crate::sla::SlaClass;

/// A finite `f64` score with a total order, so scores can key the
/// ranking set. Placement scores are finite by construction (the
/// weigher is a weighted sum of bounded metrics); a NaN panics loudly
/// instead of corrupting the order.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Score(f64);

impl Eq for Score {}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.partial_cmp(&other.0).expect("placement scores are finite")
    }
}

/// The incremental placement index. One per [`crate::cluster::Cluster`];
/// node ids must be the dense `0..n` the cluster builders produce.
#[derive(Debug, Clone)]
pub struct PlacementIndex {
    /// Cached weigher score per node index (valid when not dirty).
    scores: Vec<f64>,
    /// Ranking of all indexed nodes by `(score, NodeId)`.
    by_score: BTreeSet<(Score, NodeId)>,
    /// Per-node dirty flag (score must be recomputed before use).
    dirty: Vec<bool>,
    /// Dirty node indices pending a flush (each at most once).
    pending: Vec<u32>,
    /// Whether the node currently has an entry in `by_score`.
    indexed: Vec<bool>,
}

impl PlacementIndex {
    /// An index over `n` nodes, all initially dirty (first use scores
    /// the whole rack once; after that only events pay).
    #[must_use]
    pub fn new(n: usize) -> Self {
        #[allow(clippy::cast_possible_truncation)]
        let pending = (0..n as u32).collect();
        PlacementIndex {
            scores: vec![0.0; n],
            by_score: BTreeSet::new(),
            dirty: vec![true; n],
            pending,
            indexed: vec![false; n],
        }
    }

    /// Marks one node's cached score stale.
    pub fn mark(&mut self, id: NodeId) {
        let i = id.0 as usize;
        if !self.dirty[i] {
            self.dirty[i] = true;
            self.pending.push(id.0);
        }
    }

    /// Marks every node stale — the blunt hammer behind unrestricted
    /// mutable node access.
    pub fn mark_all(&mut self) {
        self.pending.clear();
        for (i, d) in self.dirty.iter_mut().enumerate() {
            *d = true;
            #[allow(clippy::cast_possible_truncation)]
            self.pending.push(i as u32);
        }
    }

    /// Number of nodes currently marked dirty (diagnostics/tests).
    #[must_use]
    pub fn dirty_count(&self) -> usize {
        self.pending.len()
    }

    /// Re-scores every dirty node and repairs the ranking.
    pub fn flush(&mut self, scheduler: &Scheduler, nodes: &[ManagedNode]) {
        for i in std::mem::take(&mut self.pending) {
            let i = i as usize;
            let node = &nodes[i];
            debug_assert_eq!(node.id.0 as usize, i, "node ids must be dense");
            if self.indexed[i] {
                self.by_score.remove(&(Score(self.scores[i]), node.id));
            }
            let score = scheduler.weigh(node);
            self.scores[i] = score;
            self.by_score.insert((Score(score), node.id));
            self.indexed[i] = true;
            self.dirty[i] = false;
        }
    }

    /// Indexed placement: the feasible node with the highest
    /// `(score, NodeId)`, walking the ranking from the top and
    /// re-checking only the request-dependent filter per candidate.
    /// Callers must [`PlacementIndex::flush`] first (the cluster's
    /// placement wrapper does).
    #[must_use]
    pub fn place(
        &self,
        scheduler: &Scheduler,
        nodes: &[ManagedNode],
        config: &VmConfig,
        class: SlaClass,
        exclude: Option<NodeId>,
    ) -> Option<NodeId> {
        debug_assert_eq!(self.dirty_count(), 0, "place() requires a flushed index");
        for &(_, id) in self.by_score.iter().rev() {
            if Some(id) == exclude {
                continue;
            }
            let node = &nodes[id.0 as usize];
            if scheduler.filter(node, config, class) {
                return Some(id);
            }
        }
        None
    }

    /// All indexed nodes in *ascending* `(score, NodeId)` order — the
    /// other end of the ranking. A consolidation policy walks this to
    /// find the lowest-scored (fullest, least desirable) node that still
    /// fits a request, packing the rack instead of spreading it. Callers
    /// must [`PlacementIndex::flush`] first.
    pub fn ranked(&self) -> impl Iterator<Item = NodeId> + '_ {
        debug_assert_eq!(self.dirty_count(), 0, "ranked() requires a flushed index");
        self.by_score.iter().map(|&(_, id)| id)
    }

    /// All indexed nodes in *descending* `(score, NodeId)` order — the
    /// best-first walk [`PlacementIndex::place`] uses, exposed so policy
    /// implementations can apply their own per-candidate feasibility
    /// checks. Callers must [`PlacementIndex::flush`] first.
    pub fn ranked_rev(&self) -> impl Iterator<Item = NodeId> + '_ {
        debug_assert_eq!(self.dirty_count(), 0, "ranked_rev() requires a flushed index");
        self.by_score.iter().rev().map(|&(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_platform::part::PartSpec;

    fn nodes(n: usize) -> Vec<ManagedNode> {
        (0..n)
            .map(|i| {
                #[allow(clippy::cast_possible_truncation)]
                ManagedNode::provision(NodeId(i as u32), PartSpec::arm_microserver(), i as u64)
            })
            .collect()
    }

    fn assert_matches_linear(
        index: &mut PlacementIndex,
        scheduler: &Scheduler,
        ns: &[ManagedNode],
        config: &VmConfig,
    ) {
        index.flush(scheduler, ns);
        for class in [SlaClass::Gold, SlaClass::Silver, SlaClass::Bronze] {
            assert_eq!(
                index.place(scheduler, ns, config, class, None),
                scheduler.place_linear(ns.iter(), config, class),
                "indexed placement diverged from the linear scan at {class}"
            );
        }
    }

    #[test]
    fn fresh_index_matches_linear_scan() {
        let ns = nodes(5);
        let s = Scheduler::default();
        let mut index = PlacementIndex::new(ns.len());
        assert_matches_linear(&mut index, &s, &ns, &VmConfig::idle_guest());
    }

    #[test]
    fn dirty_marks_track_load_and_reliability_changes() {
        let mut ns = nodes(4);
        let s = Scheduler::default();
        let mut index = PlacementIndex::new(ns.len());
        index.flush(&s, &ns);
        assert_eq!(index.dirty_count(), 0);

        // Load node 3 (the previous tie-break winner) and tell the index.
        ns[3].launch(VmConfig::ldbc_benchmark()).unwrap();
        index.mark(NodeId(3));
        assert_eq!(index.dirty_count(), 1);
        assert_matches_linear(&mut index, &s, &ns, &VmConfig::idle_guest());

        // Degrade node 2's reliability and tell the index.
        ns[2].reliability = 0.4;
        index.mark(NodeId(2));
        assert_matches_linear(&mut index, &s, &ns, &VmConfig::idle_guest());
    }

    #[test]
    fn excluded_nodes_are_skipped() {
        let ns = nodes(3);
        let s = Scheduler::default();
        let mut index = PlacementIndex::new(ns.len());
        index.flush(&s, &ns);
        let cfg = VmConfig::idle_guest();
        assert_eq!(index.place(&s, &ns, &cfg, SlaClass::Gold, None), Some(NodeId(2)));
        assert_eq!(
            index.place(&s, &ns, &cfg, SlaClass::Gold, Some(NodeId(2))),
            Some(NodeId(1)),
            "excluding the winner must yield the runner-up"
        );
    }

    #[test]
    fn duplicate_marks_flush_once() {
        let ns = nodes(2);
        let s = Scheduler::default();
        let mut index = PlacementIndex::new(ns.len());
        index.flush(&s, &ns);
        index.mark(NodeId(1));
        index.mark(NodeId(1));
        assert_eq!(index.dirty_count(), 1, "re-marking a dirty node must not grow the queue");
        index.flush(&s, &ns);
        assert_eq!(index.dirty_count(), 0);
    }

    #[test]
    fn mark_all_rescores_the_rack() {
        let mut ns = nodes(3);
        let s = Scheduler::default();
        let mut index = PlacementIndex::new(ns.len());
        index.flush(&s, &ns);
        // Mutate behind the index's back, then invalidate wholesale.
        ns[0].reliability = 0.1;
        ns[1].launch(VmConfig::ldbc_benchmark()).unwrap();
        index.mark_all();
        assert_eq!(index.dirty_count(), 3);
        assert_matches_linear(&mut index, &s, &ns, &VmConfig::idle_guest());
    }
}
