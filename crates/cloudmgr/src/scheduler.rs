//! Nova-style filter + weigher scheduling with a reliability weigher.
//!
//! The paper's §4.B promises "new scheduling policies … focused on
//! incurring minimal overhead and being non-intrusive in real-world
//! scenarios where OpenStack would manage streams of incoming and
//! terminating VMs". The scheduler is the classic two-phase pipeline:
//! *filters* drop infeasible hosts, *weighers* rank the rest. UniServer
//! adds reliability to the weigher set.

use serde::{Deserialize, Serialize};

use uniserver_hypervisor::vm::VmConfig;

use crate::node::ManagedNode;
use crate::sla::SlaClass;

/// Weigher coefficients (higher weight = preferred).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerWeights {
    /// Preference for free CPU capacity (spreading).
    pub free_capacity: f64,
    /// Preference for energy-efficient (low power-per-core) nodes.
    pub energy: f64,
    /// Preference for reliable nodes — the UniServer addition.
    pub reliability: f64,
}

impl SchedulerWeights {
    /// Balanced production weights.
    #[must_use]
    pub fn balanced() -> Self {
        SchedulerWeights { free_capacity: 1.0, energy: 0.5, reliability: 2.0 }
    }

    /// A legacy scheduler that ignores reliability (the ablation
    /// baseline).
    #[must_use]
    pub fn reliability_blind() -> Self {
        SchedulerWeights { free_capacity: 1.0, energy: 0.5, reliability: 0.0 }
    }
}

impl Default for SchedulerWeights {
    fn default() -> Self {
        SchedulerWeights::balanced()
    }
}

/// The scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Scheduler {
    /// Weigher coefficients.
    pub weights: SchedulerWeights,
}

impl Scheduler {
    /// Creates a scheduler with the given weights.
    #[must_use]
    pub fn new(weights: SchedulerWeights) -> Self {
        Scheduler { weights }
    }

    /// Filter phase: can `node` host `config` at `class`?
    ///
    /// Composed from the layered predicates below: a node must be awake
    /// (not parked in [`crate::lifecycle::NodePower::Asleep`]) and pass
    /// [`Scheduler::admits_awake`].
    #[must_use]
    pub fn filter(&self, node: &ManagedNode, config: &VmConfig, class: SlaClass) -> bool {
        !node.is_asleep() && self.admits_awake(node, config, class)
    }

    /// Feasibility for a node assumed awake (or about to be woken): the
    /// reliability-blind gates plus the class reliability floor. This is
    /// the predicate a consolidation policy checks against *asleep*
    /// candidates before spending a wake transition on them.
    #[must_use]
    pub fn admits_awake(&self, node: &ManagedNode, config: &VmConfig, class: SlaClass) -> bool {
        self.admits_blind(node, config, class)
            && node.metrics().reliability >= class.min_reliability()
    }

    /// The pre-UniServer feasibility gates: capacity, liveness, and the
    /// availability floor — everything *except* the reliability floor.
    /// The `reliability_blind()` ablation admits exactly this set.
    /// `fits` is capacity-capped while a node serves gray, and a
    /// watchdog-quarantined node hosts nothing until it survives
    /// probation — even the blind ablation respects the quarantine,
    /// because a quarantined node is operationally out of the pool, not
    /// merely predicted unreliable.
    #[must_use]
    pub fn admits_blind(&self, node: &ManagedNode, config: &VmConfig, class: SlaClass) -> bool {
        node.fits(config)
            // The failure lifecycle pulls crashed nodes out of the pool
            // entirely; an offline or rejoining node hosts nothing.
            && node.is_online()
            && !node.is_quarantined()
            && !node.hypervisor.node().is_crashed()
            // Availability gating uses the class requirement directly;
            // fresh nodes (availability 1.0) pass every floor.
            && node.metrics().availability >= class.min_availability() - 1e-12
    }

    /// Weigher phase: the placement score of a feasible node.
    #[must_use]
    pub fn weigh(&self, node: &ManagedNode) -> f64 {
        let m = node.metrics();
        let free = 1.0 - m.utilization.min(1.0);
        self.weights.free_capacity * free
            + self.weights.reliability * m.reliability
            + self.weights.energy * self.energy_score(node)
    }

    /// Energy score in `[0, 1]`: cooler parts (lower nominal per-core
    /// power proxy) score higher.
    fn energy_score(&self, node: &ManagedNode) -> f64 {
        let spec = node.hypervisor.node().part();
        let per_core = spec.power.ceff_nf * spec.nominal_voltage.as_volts().powi(2)
            * spec.nominal_frequency.as_mhz()
            / 1000.0;
        (1.0 / (1.0 + per_core / 3.0)).clamp(0.0, 1.0)
    }

    /// Full placement by linear scan: the feasible node with the highest
    /// `(score, NodeId)` — ties between equal-score nodes break towards
    /// the **higher** node id, explicitly.
    ///
    /// The tie-break used to be implicit: `max_by` keeps the *last*
    /// maximum, so equal-score nodes resolved by whatever order the
    /// iterator happened to visit them in. Index-ordered scans made that
    /// look deterministic, but any re-ordered iterator (or an indexed
    /// scan) would silently pick a different node. The explicit ordering
    /// is what [`crate::index::PlacementIndex`] reproduces, so the
    /// indexed fast path and this reference scan are byte-comparable.
    #[must_use]
    pub fn place_linear<'a>(
        &self,
        nodes: impl Iterator<Item = &'a ManagedNode>,
        config: &VmConfig,
        class: SlaClass,
    ) -> Option<crate::node::NodeId> {
        nodes
            .filter(|n| self.filter(n, config, class))
            .map(|n| (self.weigh(n), n.id))
            .max_by(|a, b| {
                a.0.partial_cmp(&b.0).expect("weights are finite").then_with(|| a.1.cmp(&b.1))
            })
            .map(|(_, id)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use uniserver_platform::part::PartSpec;

    fn nodes(n: usize) -> Vec<ManagedNode> {
        (0..n)
            .map(|i| ManagedNode::provision(NodeId(i as u32), PartSpec::arm_microserver(), i as u64))
            .collect()
    }

    #[test]
    fn placement_prefers_empty_reliable_nodes() {
        let mut ns = nodes(3);
        // Load node 0 heavily; degrade node 1's reliability.
        for _ in 0..4 {
            ns[0].launch(uniserver_hypervisor::vm::VmConfig::ldbc_benchmark()).unwrap();
        }
        ns[1].reliability = 0.2;
        let s = Scheduler::default();
        let chosen = s
            .place_linear(ns.iter(), &uniserver_hypervisor::vm::VmConfig::ldbc_benchmark(), SlaClass::Gold)
            .expect("a node fits");
        assert_eq!(chosen, NodeId(2));
    }

    #[test]
    fn gold_rejects_unreliable_nodes_bronze_tolerates() {
        let mut ns = nodes(1);
        ns[0].reliability = 0.5;
        let s = Scheduler::default();
        let cfg = uniserver_hypervisor::vm::VmConfig::idle_guest();
        assert!(s.place_linear(ns.iter(), &cfg, SlaClass::Gold).is_none());
        assert!(s.place_linear(ns.iter(), &cfg, SlaClass::Bronze).is_some());
    }

    #[test]
    fn blind_scheduler_ignores_reliability_in_weighing() {
        let mut ns = nodes(2);
        ns[0].reliability = 0.31; // just above Bronze's floor
        let blind = Scheduler::new(SchedulerWeights::reliability_blind());
        let aware = Scheduler::new(SchedulerWeights::balanced());
        let cfg = uniserver_hypervisor::vm::VmConfig::idle_guest();
        // The blind scheduler sees two identical nodes and picks the max
        // — tie-broken explicitly towards the higher NodeId; the aware
        // scheduler must pick the reliable node 1.
        assert_eq!(aware.place_linear(ns.iter(), &cfg, SlaClass::Bronze), Some(NodeId(1)));
        let w0 = blind.weigh(&ns[0]);
        let w1 = blind.weigh(&ns[1]);
        assert!((w0 - w1).abs() < 1e-12, "blind weights must tie: {w0} vs {w1}");
    }

    #[test]
    fn nodes_below_the_class_availability_floor_are_filtered() {
        use uniserver_units::Seconds;

        let mut ns = nodes(1);
        // Crash the node once: the 120 s reboot penalty against a few
        // seconds of uptime sinks availability below every class floor.
        let deep = ns[0].hypervisor.node().part().offset_mv(0.20);
        ns[0].hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();
        ns[0].launch(uniserver_hypervisor::vm::VmConfig::ldbc_benchmark()).unwrap();
        let mut crashed = false;
        for _ in 0..120 {
            if ns[0].tick(Seconds::new(1.0)).node_crashed {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "a 20 % undervolt must crash within 120 ticks");
        // Isolate the availability gate: reliability stays pristine.
        ns[0].reliability = 1.0;
        let m = ns[0].metrics();
        assert!(
            m.availability < SlaClass::Bronze.min_availability(),
            "reboot penalty must sink availability below the lowest floor: {}",
            m.availability
        );
        let s = Scheduler::default();
        let cfg = uniserver_hypervisor::vm::VmConfig::idle_guest();
        for class in [SlaClass::Gold, SlaClass::Silver, SlaClass::Bronze] {
            assert!(!s.filter(&ns[0], &cfg, class), "{class} must reject the node");
        }
        assert!(s.place_linear(ns.iter(), &cfg, SlaClass::Bronze).is_none());
    }

    #[test]
    fn equal_score_ties_break_by_node_id_not_scan_order() {
        // Three identical fresh nodes tie exactly (same part, zero
        // utilization, pristine reliability): the winner must be the
        // highest NodeId no matter how the iterator orders the rack.
        // (The old `max_by`-only scan returned the *last* maximum, so a
        // reversed iterator silently flipped the pick to NodeId(0).)
        let ns = nodes(3);
        let s = Scheduler::default();
        let cfg = uniserver_hypervisor::vm::VmConfig::idle_guest();
        let w: Vec<f64> = ns.iter().map(|n| s.weigh(n)).collect();
        assert!(w.iter().all(|&x| x == w[0]), "fresh same-part nodes must tie: {w:?}");
        let forward = s.place_linear(ns.iter(), &cfg, SlaClass::Gold);
        let reversed = s.place_linear(ns.iter().rev(), &cfg, SlaClass::Gold);
        assert_eq!(forward, Some(NodeId(2)), "ties break towards the higher id");
        assert_eq!(forward, reversed, "scan order must not change the winner");
    }

    #[test]
    fn full_nodes_are_filtered_out() {
        let mut ns = nodes(1);
        for _ in 0..4 {
            ns[0].launch(uniserver_hypervisor::vm::VmConfig::ldbc_benchmark()).unwrap();
        }
        let s = Scheduler::default();
        assert!(s
            .place_linear(ns.iter(), &uniserver_hypervisor::vm::VmConfig::ldbc_benchmark(), SlaClass::Bronze)
            .is_none());
    }
}
