//! A persistent worker pool for the serving loop's sharded phases.
//!
//! The sharded cluster tick used to spawn fresh `thread::scope` workers
//! every tick — ~720 spawns × workers per simulated hour, paid again by
//! the parallel deploy. [`ShardPool`] spawns its workers **once** and
//! feeds them jobs over a channel, so the orchestrator creates one pool
//! per run and reuses it across deploy and every tick.
//!
//! # Design
//!
//! The workspace denies `unsafe_code`, so the pool cannot hand borrowed
//! slices to long-lived threads the way `thread::scope` does. Jobs are
//! therefore **owning** closures (`FnOnce() + Send + 'static`): callers
//! move their data in (node chunks by value, shared state behind `Arc`)
//! and receive it back through the result channel of
//! [`ShardPool::scatter`]. Moving a `ManagedNode` is a shallow struct
//! copy — the hypervisor state behind it stays put — so a 10⁴-node tick
//! pays two O(n) pointer-sized moves, not a deep clone.
//!
//! # Determinism
//!
//! Workers compete for jobs, so *completion* order is scheduling-
//! dependent — but [`ShardPool::scatter`] returns results in job-index
//! order regardless, and every consumer reduces sequentially in that
//! order. Worker count and scheduling can never change a result.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};

/// An owning unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A long-lived pool of shard workers. Dropping the pool closes the job
/// channel and joins every worker.
#[derive(Debug)]
pub struct ShardPool {
    /// Job injector; `None` only during drop (closing it stops workers).
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns a pool of `workers` threads (at least one).
    ///
    /// # Panics
    ///
    /// Panics if the OS refuses to spawn a thread.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..workers)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                thread::Builder::new()
                    .name(format!("shard-worker-{i}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool { sender: Some(sender), workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `jobs` closures on the pool and collects their results **in
    /// job-index order** (independent of which worker ran what, or
    /// when). Blocks until every job has reported.
    ///
    /// # Panics
    ///
    /// Panics if any job panicked on a worker (the panic is contained
    /// worker-side so remaining jobs still run, then re-raised here).
    pub fn scatter<R, F>(&self, jobs: usize, mut make_job: F) -> Vec<R>
    where
        R: Send + 'static,
        F: FnMut(usize) -> Box<dyn FnOnce() -> R + Send + 'static>,
    {
        let sender = self.sender.as_ref().expect("pool is live");
        let (result_tx, result_rx) = channel::<(usize, R)>();
        for i in 0..jobs {
            let job = make_job(i);
            let result_tx = result_tx.clone();
            sender
                .send(Box::new(move || {
                    let r = job();
                    // A receiver that hung up means the caller already
                    // panicked; nothing useful left to report.
                    let _ = result_tx.send((i, r));
                }))
                .expect("pool workers are joined only on drop");
        }
        drop(result_tx);
        let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
        for _ in 0..jobs {
            match result_rx.recv() {
                Ok((i, r)) => slots[i] = Some(r),
                // Every sender clone lives inside a job; disconnection
                // before `jobs` results means a job died mid-flight.
                Err(_) => panic!("shard pool job panicked"),
            }
        }
        slots.into_iter().map(|r| r.expect("each job reports exactly once")).collect()
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop.
        self.sender = None;
        for handle in self.workers.drain(..) {
            // A worker that panicked outside a job already aborted its
            // loop; drop must not double-panic.
            let _ = handle.join();
        }
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the lock only to receive: the job itself runs unlocked,
        // so one long chunk never blocks the other workers' pickup.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        match job {
            // Contain job panics so the pool survives and `scatter` can
            // report the failure from the calling thread instead of
            // deadlocking on a missing result.
            Ok(job) => drop(catch_unwind(AssertUnwindSafe(job))),
            Err(_) => return,
        }
    }
}

/// CPU cores available to this process (1 when the probe fails) — the
/// single source for [`resolve_workers`] and for the `cores` column of
/// the bench records, so what gets recorded is exactly what requests
/// were clamped against.
#[must_use]
pub fn cores() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolves a requested worker count against the machine and the job
/// count: `0` means one worker per available core, and explicit requests
/// are clamped to the core count — oversubscribing a CPU-bound shard
/// phase only adds scheduling overhead (on a 1-core container, `-t 4`
/// used to triple deploy cost per node against `-t 1`). The result is
/// further clamped to `[1, jobs]`.
#[must_use]
pub fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let cores = cores();
    let workers = if requested == 0 { cores } else { requested.min(cores) };
    workers.clamp(1, jobs.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_returns_results_in_job_order() {
        let pool = ShardPool::new(4);
        assert_eq!(pool.workers(), 4);
        let results = pool.scatter(16, |i| Box::new(move || i * 10));
        assert_eq!(results, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_batches() {
        let pool = ShardPool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for batch in 0..5 {
            let counter = Arc::clone(&counter);
            let results = pool.scatter(3, move |i| {
                let counter = Arc::clone(&counter);
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    batch * 3 + i
                })
            });
            assert_eq!(results, vec![batch * 3, batch * 3 + 1, batch * 3 + 2]);
        }
        assert_eq!(counter.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn single_worker_pool_still_completes_many_jobs() {
        let pool = ShardPool::new(1);
        let results = pool.scatter(8, |i| Box::new(move || i));
        assert_eq!(results.len(), 8);
    }

    #[test]
    #[should_panic(expected = "shard pool job panicked")]
    fn job_panics_propagate_to_the_caller() {
        let pool = ShardPool::new(2);
        let _ = pool.scatter(4, |i| {
            Box::new(move || {
                assert!(i != 2, "job 2 dies");
                i
            })
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let pool = ShardPool::new(1);
        let died = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.scatter(1, |_| Box::new(|| panic!("boom")));
        }));
        assert!(died.is_err());
        // The worker contained the panic: the pool still works.
        let results: Vec<usize> = pool.scatter(2, |i| Box::new(move || i + 1));
        assert_eq!(results, vec![1, 2]);
    }

    #[test]
    fn resolve_workers_clamps_to_cores_and_jobs() {
        let cores = cores();
        assert!(cores >= 1);
        assert_eq!(resolve_workers(0, 1_000_000), cores, "0 means one per core");
        assert_eq!(resolve_workers(10_000, 1_000_000), cores, "requests clamp to cores");
        assert_eq!(resolve_workers(1, 8), 1);
        assert_eq!(resolve_workers(0, 0), 1, "degenerate job counts still get a worker");
        assert!(resolve_workers(64, 3) <= 3, "never more workers than jobs");
    }
}
