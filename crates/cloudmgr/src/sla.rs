//! Service-level agreements.
//!
//! §2: "The optimization of operations at the EOP in UniServer is guided
//! by the system requirements of the end-user for each VM, which are
//! typically communicated to the Cloud provider through Service Level
//! Agreements (SLAs)."

use serde::{Deserialize, Serialize};

/// Coarse service classes, each mapping to concrete requirements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SlaClass {
    /// Latency-sensitive, user-facing, high-value.
    Gold,
    /// Standard production service.
    Silver,
    /// Batch / best-effort.
    Bronze,
}

impl SlaClass {
    /// Minimum node availability required to host this class.
    #[must_use]
    pub fn min_availability(self) -> f64 {
        match self {
            SlaClass::Gold => 0.9995,
            SlaClass::Silver => 0.995,
            SlaClass::Bronze => 0.95,
        }
    }

    /// Minimum node reliability score (predicted absence of imminent
    /// failure) required to host this class.
    #[must_use]
    pub fn min_reliability(self) -> f64 {
        match self {
            SlaClass::Gold => 0.9,
            SlaClass::Silver => 0.7,
            SlaClass::Bronze => 0.3,
        }
    }

    /// Whether workloads of this class should be proactively migrated
    /// off nodes with predicted failures (§5.B: "critical to sustain
    /// high-availability especially for high value and user-facing
    /// workloads").
    #[must_use]
    pub fn proactive_migration(self) -> bool {
        !matches!(self, SlaClass::Bronze)
    }

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SlaClass::Gold => "gold",
            SlaClass::Silver => "silver",
            SlaClass::Bronze => "bronze",
        }
    }
}

impl std::fmt::Display for SlaClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirements_are_ordered_by_class() {
        assert!(SlaClass::Gold.min_availability() > SlaClass::Silver.min_availability());
        assert!(SlaClass::Silver.min_availability() > SlaClass::Bronze.min_availability());
        assert!(SlaClass::Gold.min_reliability() > SlaClass::Bronze.min_reliability());
    }

    #[test]
    fn only_batch_skips_proactive_migration() {
        assert!(SlaClass::Gold.proactive_migration());
        assert!(SlaClass::Silver.proactive_migration());
        assert!(!SlaClass::Bronze.proactive_migration());
    }

    #[test]
    fn labels() {
        assert_eq!(SlaClass::Gold.to_string(), "gold");
    }
}
