//! Log-pattern failure prediction (paper §5.B, refs [21]–[24]).
//!
//! "These techniques generally leverage machine learning or statistical
//! analysis techniques to process the log data generated from the
//! physical or virtual servers" — here: a message-pattern scorer over
//! the HealthLog's logfile plus an error-rate trend detector, fused into
//! a node reliability score in `[0, 1]`. UniServer's contribution is the
//! *integration*: the score feeds the scheduler and the proactive
//! migrator directly.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use uniserver_healthlog::HealthLog;

/// Weights learned-by-construction for log-message patterns: how
/// strongly each pattern signals an imminent failure (after ref [24]'s
/// message-pattern classification).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PatternWeights {
    patterns: Vec<(String, f64)>,
}

impl PatternWeights {
    /// The default pattern book: uncorrected errors and crash markers
    /// dominate; corrected errors contribute mildly; stress-test notes
    /// are neutral-ish.
    #[must_use]
    pub fn default_book() -> Self {
        PatternWeights {
            patterns: vec![
                ("crashed=true".into(), 3.0),
                ("err[UE@".into(), 1.2),
                ("err[FATAL@".into(), 3.0),
                ("err[CE@".into(), 0.15),
                ("stresslog: begin".into(), 0.05),
            ],
        }
    }

    /// Scores one log line: each pattern contributes its weight once
    /// per occurrence (a line reporting thirty corrected errors is
    /// thirty times the evidence of a line reporting one).
    #[must_use]
    pub fn score_line(&self, line: &str) -> f64 {
        self.patterns
            .iter()
            .map(|(p, w)| line.matches(p.as_str()).count() as f64 * w)
            .sum()
    }
}

/// What one predictor update should do to a node's rolling score — the
/// outcome of the immutable [`FailurePredictor::observe`] phase, folded
/// back in by [`FailurePredictor::apply`]. Splitting the two lets the
/// sharded cluster loop score logs on worker threads while keeping the
/// state write-back sequential (and therefore deterministic).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScoreUpdate {
    /// The log did not grow: decay the rolling score one step.
    Decay,
    /// The log grew: fold the new lines' scores into the rolling window.
    Rescore {
        /// Log length consumed by the scan.
        consumed: usize,
        /// Pattern scores of the log lines appended since the last
        /// apply, capped at the window size (earlier appends scrolled
        /// straight out). Log lines are immutable once written, so a
        /// line is pattern-matched **once** in its lifetime — the
        /// write-back keeps a per-node window of these cached scores
        /// and re-sums it in line order, which is bit-identical to
        /// re-scanning the whole window (same addends, same order) at
        /// a fraction of the string-matching cost.
        line_scores: Vec<f64>,
    },
}

/// The failure predictor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailurePredictor {
    /// Pattern book for log scoring.
    pub patterns: PatternWeights,
    /// How many of the most recent log lines are considered.
    pub window_lines: usize,
    /// Log-score at which reliability reaches ~0.27 (e^-1.3).
    pub score_scale: f64,
    /// Per-update decay of the rolling score while a node's log stays
    /// silent: error evidence ages out, so a node that has run clean
    /// since its last event gradually regains trust (and re-enters the
    /// scheduler's pool) instead of being quarantined forever.
    pub silent_decay: f64,
    /// Per-node count of log lines already consumed (so scoring is
    /// incremental, "minimal overhead and non-intrusive").
    consumed: HashMap<u32, usize>,
    /// Per-node rolling score: a node whose log did not grow since the
    /// last update decays its memoized score instead of re-scanning —
    /// the cluster loop calls this for every node every tick.
    scores: HashMap<u32, f64>,
    /// Per-node window of cached per-line pattern scores (the last
    /// `window_lines` log lines, oldest first). Lines are scored once,
    /// on the worker that observed them; the window re-sums in line
    /// order so the rolling score stays bit-identical to a full window
    /// re-scan.
    windows: HashMap<u32, Vec<f64>>,
}

impl FailurePredictor {
    /// Creates a predictor with the default pattern book.
    #[must_use]
    pub fn new() -> Self {
        FailurePredictor {
            patterns: PatternWeights::default_book(),
            window_lines: 64,
            score_scale: 4.0,
            silent_decay: 0.97,
            consumed: HashMap::new(),
            scores: HashMap::new(),
            windows: HashMap::new(),
        }
    }

    /// Scores a node's health log into a reliability value in `[0, 1]`:
    /// `exp(-window_score / scale)`. A silent log scores 1.0.
    #[must_use]
    pub fn reliability(&self, health: &HealthLog) -> f64 {
        let lines = health.logfile();
        let start = lines.len().saturating_sub(self.window_lines);
        let score: f64 = lines[start..].iter().map(|l| self.patterns.score_line(l)).sum();
        (-score / self.score_scale).exp()
    }

    /// Incremental variant keyed by node id: the log is only re-scored
    /// when it grew since the last update (healthy nodes with silent
    /// logs cost one HashMap probe — the cluster loop polls every node
    /// every tick), and while it stays silent the rolling score decays
    /// by [`FailurePredictor::silent_decay`] per update, so past error
    /// evidence ages out and the node's reliability recovers towards
    /// 1.0.
    ///
    /// Equivalent to [`FailurePredictor::observe`] followed by
    /// [`FailurePredictor::apply`] — the sharded cluster loop uses the
    /// split form so the log scan runs on worker threads while the
    /// write-back stays sequential.
    pub fn update_node(&mut self, node_id: u32, health: &HealthLog) -> f64 {
        let update = self.observe(node_id, health);
        self.apply(node_id, update)
    }

    /// The read-only half of [`FailurePredictor::update_node`]: scores
    /// the log lines appended since the last apply (only when the log
    /// grew) and returns what the write-back should do. Immutable, so
    /// the cluster loop's workers can score whole node shards in
    /// parallel; the resulting updates are applied sequentially in
    /// node-index order.
    ///
    /// Only *new* lines are pattern-matched — the expensive string scan
    /// runs once per line ever, not once per line per tick. Each
    /// observation must be applied (once) before the next observation
    /// of the same node, which is exactly the cluster loop's
    /// observe-all / apply-all-in-order contract.
    #[must_use]
    pub fn observe(&self, node_id: u32, health: &HealthLog) -> ScoreUpdate {
        let len = health.logfile().len();
        match (self.consumed.get(&node_id), self.scores.get(&node_id)) {
            (Some(&seen), Some(_)) if seen == len => ScoreUpdate::Decay,
            tracked => {
                let lines = health.logfile();
                let seen = match tracked {
                    (Some(&seen), Some(_)) => seen,
                    _ => 0,
                };
                // Lines that would scroll straight out of the window are
                // never worth scoring.
                let start = seen.max(len.saturating_sub(self.window_lines));
                let line_scores: Vec<f64> =
                    lines[start..].iter().map(|l| self.patterns.score_line(l)).collect();
                ScoreUpdate::Rescore { consumed: len, line_scores }
            }
        }
    }

    /// The write-back half of [`FailurePredictor::update_node`]: folds a
    /// worker-computed [`ScoreUpdate`] into the rolling per-node state
    /// and returns the node's reliability. A rescore slides the cached
    /// line scores through the node's window and re-sums it **in line
    /// order** — the identical addends, in the identical order, as the
    /// full window scan it replaces, so reliabilities are bit-equal.
    ///
    /// # Panics
    ///
    /// Panics if a [`ScoreUpdate::Decay`] arrives for a node this
    /// predictor has never scored (decays are only ever observed for
    /// tracked nodes).
    pub fn apply(&mut self, node_id: u32, update: ScoreUpdate) -> f64 {
        let score = match update {
            ScoreUpdate::Decay => {
                let score = self
                    .scores
                    .get_mut(&node_id)
                    .expect("Decay is only observed for already-tracked nodes");
                *score *= self.silent_decay;
                *score
            }
            ScoreUpdate::Rescore { consumed, line_scores } => {
                let window = self.windows.entry(node_id).or_default();
                window.extend_from_slice(&line_scores);
                if window.len() > self.window_lines {
                    let excess = window.len() - self.window_lines;
                    window.drain(..excess);
                }
                let score: f64 = window.iter().sum();
                self.consumed.insert(node_id, consumed);
                self.scores.insert(node_id, score);
                score
            }
        };
        (-score / self.score_scale).exp()
    }

    /// Whether the score crosses the "about to fail" line.
    #[must_use]
    pub fn predicts_failure(&self, reliability: f64) -> bool {
        reliability < 0.5
    }
}

impl Default for FailurePredictor {
    fn default() -> Self {
        FailurePredictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_healthlog::ThresholdPolicy;

    fn log_with(lines: &[&str]) -> HealthLog {
        let mut h = HealthLog::new(128, ThresholdPolicy::default());
        for l in lines {
            h.log_note(*l);
        }
        h
    }

    #[test]
    fn silent_log_is_fully_reliable() {
        let p = FailurePredictor::new();
        let h = log_with(&[]);
        assert_eq!(p.reliability(&h), 1.0);
        assert!(!p.predicts_failure(1.0));
    }

    #[test]
    fn ces_erode_reliability_slowly_ues_fast() {
        let p = FailurePredictor::new();
        let ce_log = log_with(&["t=1 err[CE@l3bank0]"; 8]);
        let ue_log = log_with(&["t=1 err[UE@dimm2@word0x10]"; 8]);
        let r_ce = p.reliability(&ce_log);
        let r_ue = p.reliability(&ue_log);
        assert!(r_ce > 0.6, "CE-only log keeps reliability high: {r_ce}");
        assert!(r_ue < r_ce, "UEs must erode faster: {r_ue} vs {r_ce}");
        assert!(p.predicts_failure(r_ue));
    }

    #[test]
    fn crash_markers_are_decisive() {
        let p = FailurePredictor::new();
        let h = log_with(&["t=9 dur=1 crashed=true err[FATAL@core0]"]);
        let r = p.reliability(&h);
        assert!(r < 0.3, "a crash line must tank reliability: {r}");
    }

    #[test]
    fn window_forgets_ancient_history() {
        let p = FailurePredictor::new();
        let mut lines = vec!["t=0 crashed=true err[FATAL@core0]"; 4];
        lines.extend(vec!["t=1 healthy note"; 64]);
        let h = log_with(&lines);
        // The crashes scrolled out of the 64-line window.
        assert_eq!(p.reliability(&h), 1.0);
    }

    #[test]
    fn update_node_memoizes_and_decays_until_the_log_grows() {
        let mut p = FailurePredictor::new();
        let mut h = log_with(&["t=1 err[CE@l3bank0]"]);
        let first = p.update_node(7, &h);
        assert_eq!(first, p.reliability(&h));
        let second = p.update_node(7, &h);
        assert!(second >= first, "silent ticks must not erode trust: {second} vs {first}");
        h.log_note("t=2 dur=1 crashed=true err[FATAL@core0]");
        let after = p.update_node(7, &h);
        assert!(after < second, "new crash line must re-score: {after} vs {second}");
        assert_eq!(after, p.reliability(&h));
        // Other nodes are keyed independently.
        let clean = log_with(&[]);
        assert_eq!(p.update_node(8, &clean), 1.0);
    }

    #[test]
    fn silent_nodes_rehabilitate() {
        let mut p = FailurePredictor::new();
        let h = log_with(&["t=9 dur=1 crashed=true err[FATAL@core0]"]);
        let crashed = p.update_node(3, &h);
        assert!(p.predicts_failure(crashed), "fresh crash must predict failure");
        let mut r = crashed;
        let mut updates = 0;
        while p.predicts_failure(r) {
            r = p.update_node(3, &h);
            updates += 1;
            assert!(updates < 200, "a clean-running node must eventually regain trust");
        }
        // Recovery is gradual, not instant: quarantine lasts a while.
        assert!(updates > 10, "rehabilitation must take time, took {updates} updates");
    }

    #[test]
    fn observe_then_apply_equals_update_node() {
        // The sharded loop's split form must be indistinguishable from
        // the fused update, tick for tick.
        let mut fused = FailurePredictor::new();
        let mut split = FailurePredictor::new();
        let mut h = log_with(&["t=1 err[CE@l3bank0]"]);
        for round in 0..6 {
            if round == 3 {
                h.log_note("t=3 dur=1 crashed=true err[FATAL@core0]");
            }
            let a = fused.update_node(4, &h);
            let update = split.observe(4, &h);
            let b = split.apply(4, update);
            assert_eq!(a, b, "round {round} diverged");
        }
        assert_eq!(fused, split, "internal rolling state must match too");
    }

    #[test]
    fn observe_is_pure() {
        let p = FailurePredictor::new();
        let h = log_with(&["t=1 err[UE@dimm2@word0x10]"]);
        let a = p.observe(9, &h);
        let b = p.observe(9, &h);
        assert_eq!(a, b, "observe must not mutate predictor state");
        assert!(matches!(a, ScoreUpdate::Rescore { consumed: 1, .. }));
        let ScoreUpdate::Rescore { line_scores, .. } = a else { unreachable!() };
        assert_eq!(line_scores.len(), 1, "only the new line is scored");
    }

    #[test]
    fn pattern_book_scores_compose() {
        let book = PatternWeights::default_book();
        let line = "t=3 crashed=true err[FATAL@core1] err[CE@l3bank0]";
        assert!((book.score_line(line) - (3.0 + 3.0 + 0.15)).abs() < 1e-12);
    }
}
