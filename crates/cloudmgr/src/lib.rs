//! OpenStack-like resource management (paper §4.B).
//!
//! "Our extended version of OpenStack includes support for monitoring
//! VMs … new scheduling policies … as well as to assess the
//! susceptibility of VMs to experience catastrophic errors due to
//! hardware faults" — with the UniServer twist that a **node
//! reliability metric is added to the traditional metrics of interest
//! (availability, utilization and energy usage)**, and an integrated
//! failure-prediction component proactively migrates workloads off
//! nodes that are about to fail.
//!
//! * [`node`] — managed nodes: a full hypervisor stack per node plus
//!   the four management metrics;
//! * [`sla`] — service classes and their requirements;
//! * [`scheduler`] — Nova-style filter + weigher placement;
//! * [`policy`] — pluggable placement policies over the scheduler
//!   primitives: the reference energy/SLA scorer, pack-and-power-down
//!   consolidation with node sleep states, and the reliability-blind
//!   ablation;
//! * [`failure`] — log-pattern failure prediction (refs [21][24]);
//! * [`lifecycle`] — the node failure lifecycle: crashed nodes go
//!   offline (real downtime, lost capacity) for a seeded MTTR window,
//!   then re-characterize and rejoin;
//! * [`migrate`] — live-migration cost model;
//! * [`stream`] — the traffic engine: capacity-scaled, diurnal and
//!   flash-crowd-modulated arrival/departure streams of VMs;
//! * [`cluster`] — the cluster driver: VM streams, proactive
//!   migration, fleet metrics.
//!
//! # Examples
//!
//! ```
//! use uniserver_cloudmgr::cluster::{Cluster, ClusterConfig};
//! use uniserver_cloudmgr::sla::SlaClass;
//! use uniserver_hypervisor::vm::VmConfig;
//! use uniserver_units::Seconds;
//!
//! let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 7);
//! let placed = cluster.submit(VmConfig::idle_guest(), SlaClass::Bronze);
//! assert!(placed.is_some());
//! cluster.tick(Seconds::new(1.0));
//! ```

pub mod cluster;
pub mod failure;
pub mod index;
pub mod lifecycle;
pub mod migrate;
pub mod node;
pub mod policy;
pub mod pool;
pub mod scheduler;
pub mod sla;
pub mod stream;

pub use cluster::{
    Cluster, ClusterConfig, ClusterTickReport, CrashRecovery, PartWeight, Placement, PlacementId,
    PowerStats,
};
pub use failure::{FailurePredictor, ScoreUpdate};
pub use index::PlacementIndex;
pub use lifecycle::{FailureLifecycle, GrayState, NodePhase, NodePower, SLEEP_POWER_WATTS};
pub use migrate::{MigrationCost, MigrationModel};
pub use node::{ManagedNode, NodeId, NodeMetrics};
pub use policy::{
    ConsolidatePolicy, EnergySlaPolicy, ManagementPlan, PlacementDecision, PlacementPolicy,
    PolicyKind, RackView, ReliabilityBlindPolicy,
};
pub use pool::{cores, resolve_workers, ShardPool};
pub use scheduler::{Scheduler, SchedulerWeights};
pub use sla::SlaClass;
pub use stream::{
    arrival_seed, Arrival, FlashCrowds, LifetimeModel, Modulation, StreamDriver, TrafficShape,
    VmStream,
};
