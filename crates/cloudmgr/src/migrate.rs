//! Live migration: the proactive response to predicted failures.
//!
//! Pre-copy live migration: iteratively copy dirty pages over the
//! management network until the residual set fits a stop-and-copy
//! window. The model predicts total traffic and downtime, and the
//! cluster uses it to cost proactive migrations ("proactively migrate
//! the running workloads on the healthy nodes", §5.B).

use serde::{Deserialize, Serialize};
use uniserver_units::{Bytes, Seconds};

use uniserver_hypervisor::vm::Vm;

/// Migration network/behaviour parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationModel {
    /// Management network bandwidth.
    pub bandwidth_bytes_per_sec: f64,
    /// Guest page-dirtying rate as a fraction of its working set per
    /// second.
    pub dirty_fraction_per_sec: f64,
    /// Stop-and-copy threshold: residual bytes that may be copied with
    /// the VM paused.
    pub stop_copy_threshold: Bytes,
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
}

impl MigrationModel {
    /// 10 GbE management network, modestly dirty guests.
    #[must_use]
    pub fn ten_gbe() -> Self {
        MigrationModel {
            bandwidth_bytes_per_sec: 1.1e9,
            dirty_fraction_per_sec: 0.02,
            stop_copy_threshold: Bytes::mib(64),
            max_rounds: 8,
        }
    }
}

/// Predicted cost of one migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCost {
    /// Total bytes moved (all pre-copy rounds + stop-and-copy).
    pub traffic: Bytes,
    /// Total wall-clock duration.
    pub duration: Seconds,
    /// VM pause (blackout) time during stop-and-copy.
    pub downtime: Seconds,
    /// Pre-copy rounds used.
    pub rounds: u32,
}

impl MigrationCost {
    /// When a migration started at `now` finishes — the completion event
    /// an event-queue driver schedules.
    #[must_use]
    pub fn completes_at(&self, now: Seconds) -> Seconds {
        now + self.duration
    }
}

impl MigrationModel {
    /// Predicts the cost of migrating `vm` given its current footprint.
    #[must_use]
    pub fn cost(&self, vm: &Vm) -> MigrationCost {
        let working_set = vm.utilized_footprint().as_u64() as f64;
        let mut to_copy = working_set;
        let mut traffic = 0.0;
        let mut duration = 0.0;
        let mut rounds = 0;

        // Pre-copy rounds: copying to_copy bytes takes t; meanwhile the
        // guest dirties ws·rate·t bytes, which seeds the next round.
        while rounds < self.max_rounds && to_copy > self.stop_copy_threshold.as_u64() as f64 {
            let t = to_copy / self.bandwidth_bytes_per_sec;
            traffic += to_copy;
            duration += t;
            to_copy = (working_set * self.dirty_fraction_per_sec * t).min(working_set);
            rounds += 1;
        }
        // Stop-and-copy the residue.
        let downtime = to_copy / self.bandwidth_bytes_per_sec;
        traffic += to_copy;
        duration += downtime;

        MigrationCost {
            traffic: Bytes::new(traffic as u64),
            duration: Seconds::new(duration),
            downtime: Seconds::new(downtime),
            rounds,
        }
    }
}

impl Default for MigrationModel {
    fn default() -> Self {
        MigrationModel::ten_gbe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_hypervisor::vm::{VmConfig, VmId};

    fn ldbc_vm() -> Vm {
        let mut vm = Vm::launch(VmId(0), VmConfig::ldbc_benchmark());
        vm.advance(Seconds::new(60.0));
        vm
    }

    #[test]
    fn migration_converges_quickly_on_fast_networks() {
        let cost = MigrationModel::ten_gbe().cost(&ldbc_vm());
        assert!(cost.rounds <= 3, "rounds {}", cost.rounds);
        // Blackout well below a second.
        assert!(cost.downtime.as_secs() < 0.2, "downtime {}", cost.downtime);
        // Total duration a few seconds for ~4 GiB of state.
        assert!(cost.duration.as_secs() < 10.0, "duration {}", cost.duration);
        assert!(cost.traffic >= ldbc_vm().utilized_footprint());
    }

    #[test]
    fn dirty_guests_cost_more() {
        let calm = MigrationModel { dirty_fraction_per_sec: 0.01, ..MigrationModel::ten_gbe() };
        let dirty = MigrationModel { dirty_fraction_per_sec: 0.3, ..MigrationModel::ten_gbe() };
        let vm = ldbc_vm();
        let a = calm.cost(&vm);
        let b = dirty.cost(&vm);
        assert!(b.traffic > a.traffic);
        assert!(b.downtime >= a.downtime);
    }

    #[test]
    fn slow_network_forces_stop_copy_cap() {
        let slow = MigrationModel {
            bandwidth_bytes_per_sec: 5e7, // ~400 Mb/s
            dirty_fraction_per_sec: 0.5,
            ..MigrationModel::ten_gbe()
        };
        let cost = slow.cost(&ldbc_vm());
        assert_eq!(cost.rounds, slow.max_rounds, "divergent pre-copy must hit the round cap");
        assert!(cost.downtime.as_secs() > 1.0, "and pay real blackout: {}", cost.downtime);
    }
}
