//! Streams of incoming and terminating VMs (paper §4.B: scheduling
//! policies must be "non-intrusive in real-world scenarios where
//! OpenStack would manage streams of incoming and terminating VMs").
//!
//! The traffic engine composes production shapes on top of the paper's
//! Poisson base process:
//!
//! * **capacity scaling** — `per_node_rate` scales the offered rate with
//!   the rack size, so a 10⁴-node rack is not served the same ~10.9k
//!   arrivals as a 256-node one;
//! * **diurnal modulation** — a sine factor over a configurable period
//!   models time-of-day load swings;
//! * **flash crowds** — seeded bursts (one draw per epoch) spike the
//!   rate by a multiplier and decay exponentially, with their own
//!   (bronze-heavy) SLA mix;
//! * **heavy-tailed lifetimes** — a bounded-Pareto option replaces the
//!   exponential lifetime draw.
//!
//! Every draw remains a pure function of `(stream seed, tick)` — the
//! modulation factors are closed-form in simulated time and the burst
//! schedule derives from its own SplitMix64 sub-stream — so arrival
//! streams stay byte-identical across thread counts and draw orders.
//! The flat default (`TrafficShape::Flat`, exponential lifetimes,
//! `per_node_rate = 0`) reproduces the legacy stream draw-for-draw.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_hypervisor::vm::VmConfig;
use uniserver_silicon::rng::{exponential, poisson, splitmix64, unit_fraction};

use crate::cluster::{Cluster, Placement};
use crate::node::NodeId;
use crate::sla::SlaClass;

/// Sub-stream salt for the arrival process (keeps arrival draws
/// independent of the fleet's part/mix/ambient draws off the same seed).
const ARRIVAL_SALT: u64 = 0x4528_21E6_38D0_1377;

/// Sub-stream salt for the flash-crowd schedule (one burst draw per
/// epoch, independent of the per-tick arrival sub-streams).
const FLASH_SALT: u64 = 0x243F_6A88_85A3_08D3;

/// Derives the RNG seed for one tick's arrival batch — a pure function
/// of `(stream seed, tick index)` exactly as `fleet::node_seed` derives
/// node silicon, so arrival streams are byte-stable however the driving
/// loop is scheduled or threaded.
#[must_use]
pub fn arrival_seed(stream_seed: u64, tick: u64) -> u64 {
    splitmix64(stream_seed ^ ARRIVAL_SALT ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// How the offered arrival rate is shaped over simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TrafficShape {
    /// Constant rate — the paper-era stream and the default (prior runs
    /// reproduce byte-for-byte).
    Flat,
    /// Production shapes: diurnal sine modulation plus optional seeded
    /// flash-crowd bursts.
    Modulated(Modulation),
}

/// Closed-form rate modulation over simulated time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Modulation {
    /// Diurnal sine amplitude as a fraction of the base rate, in
    /// `[0, 1)` (0 disables the diurnal component).
    pub diurnal_amplitude: f64,
    /// Diurnal period (e.g. 86 400 s for a day).
    pub diurnal_period: Seconds,
    /// Phase offset as a fraction of the period at `t = 0`.
    pub diurnal_phase: f64,
    /// Flash-crowd bursts on top of the diurnal swell.
    pub flash: Option<FlashCrowds>,
}

/// Seeded flash-crowd bursts: at most one burst starts per `epoch`,
/// drawn from the stream seed's own sub-stream, spikes the rate by
/// `peak_multiplier` and decays exponentially with constant `decay`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlashCrowds {
    /// Window per burst draw.
    pub epoch: Seconds,
    /// Probability that an epoch starts a burst, in `[0, 1]`.
    pub probability: f64,
    /// Peak rate multiple at burst onset (≥ 1; 1 disables).
    pub peak_multiplier: f64,
    /// Exponential decay constant of a burst.
    pub decay: Seconds,
    /// SLA mix of burst traffic as (gold, silver) fractions — flash
    /// crowds skew towards best-effort user traffic, so their mix is
    /// configured separately from the base stream's.
    pub gold_fraction: f64,
    /// Silver fraction of burst traffic.
    pub silver_fraction: f64,
}

/// How requested VM lifetimes are drawn.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LifetimeModel {
    /// Exponential around the stream's `mean_lifetime` (the legacy
    /// default).
    Exponential,
    /// Bounded Pareto on `[min, max]` with tail index `alpha` — the
    /// heavy-tailed production shape (most VMs are short, a few run for
    /// hours). `mean_lifetime` is ignored under this model.
    BoundedPareto {
        /// Tail index (> 0; smaller = heavier tail).
        alpha: f64,
        /// Shortest lifetime.
        min: Seconds,
        /// Longest lifetime.
        max: Seconds,
    },
}

/// Stream configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmStream {
    /// Mean VM arrivals per second, independent of rack size.
    pub arrival_rate: f64,
    /// Mean VM arrivals per second **per rack node** — capacity scaling:
    /// the effective base rate is `arrival_rate + per_node_rate × nodes`
    /// when the driver passes its rack size (0 keeps the flat legacy
    /// rate).
    pub per_node_rate: f64,
    /// Mean VM lifetime (exponential model).
    pub mean_lifetime: Seconds,
    /// Template for arriving guests.
    pub template: VmConfig,
    /// SLA mix as (gold, silver) fractions; the rest is bronze.
    pub gold_fraction: f64,
    /// Silver fraction of arrivals.
    pub silver_fraction: f64,
    /// Rate shape over simulated time.
    pub shape: TrafficShape,
    /// Lifetime distribution.
    pub lifetimes: LifetimeModel,
}

/// One VM arrival drawn from a stream: what to run, at which class, for
/// how long.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Guest configuration.
    pub config: VmConfig,
    /// SLA class of the request.
    pub class: SlaClass,
    /// Requested lifetime (drawn from the stream's lifetime model).
    pub lifetime: Seconds,
}

/// Checks one (gold, silver) class mix; the remainder is bronze, so the
/// fractions must be non-negative and sum to at most 1.
fn check_mix(what: &str, gold: f64, silver: f64) -> Result<(), String> {
    if !(gold.is_finite() && silver.is_finite() && gold >= 0.0 && silver >= 0.0) {
        return Err(format!("{what}: class fractions must be finite and non-negative, got gold {gold} / silver {silver}"));
    }
    if gold + silver > 1.0 {
        return Err(format!(
            "{what}: gold ({gold}) + silver ({silver}) = {} exceeds 1.0 and would starve bronze",
            gold + silver
        ));
    }
    Ok(())
}

impl VmStream {
    /// A busy edge-site stream: ~one arrival per 20 s, 2-minute
    /// lifetimes, 20 % gold / 30 % silver.
    #[must_use]
    pub fn edge_site() -> Self {
        VmStream {
            arrival_rate: 0.05,
            per_node_rate: 0.0,
            mean_lifetime: Seconds::new(120.0),
            template: VmConfig::idle_guest(),
            gold_fraction: 0.2,
            silver_fraction: 0.3,
            shape: TrafficShape::Flat,
            lifetimes: LifetimeModel::Exponential,
        }
    }

    /// A datacenter-scale stream: three LDBC guests arriving per second,
    /// 5-minute lifetimes, 20 % gold / 30 % silver — ≥10⁴ arrivals over
    /// a simulated hour, the orchestrator's flat-profile headline load.
    #[must_use]
    pub fn datacenter() -> Self {
        VmStream {
            arrival_rate: 3.0,
            per_node_rate: 0.0,
            mean_lifetime: Seconds::new(300.0),
            template: VmConfig::ldbc_benchmark(),
            gold_fraction: 0.2,
            silver_fraction: 0.3,
            shape: TrafficShape::Flat,
            lifetimes: LifetimeModel::Exponential,
        }
    }

    /// The production traffic engine preset: capacity-scaled arrivals
    /// (3/256 per node per second — a 256-node rack sees the flat
    /// headline's 3/s), a mild diurnal swell, flash crowds that spike
    /// the rate ~6× for minutes at a time with a bronze-heavy mix, and
    /// bounded-Pareto lifetimes (30 s – 2 h, α = 1.5).
    #[must_use]
    pub fn flash_crowd() -> Self {
        VmStream {
            arrival_rate: 0.0,
            per_node_rate: 3.0 / 256.0,
            shape: TrafficShape::Modulated(Modulation {
                diurnal_amplitude: 0.25,
                diurnal_period: Seconds::new(86_400.0),
                diurnal_phase: 0.0,
                flash: Some(FlashCrowds {
                    epoch: Seconds::new(600.0),
                    probability: 0.5,
                    peak_multiplier: 6.0,
                    decay: Seconds::new(120.0),
                    gold_fraction: 0.05,
                    silver_fraction: 0.15,
                }),
            }),
            lifetimes: LifetimeModel::BoundedPareto {
                alpha: 1.5,
                min: Seconds::new(30.0),
                max: Seconds::new(7_200.0),
            },
            ..VmStream::datacenter()
        }
    }

    /// Returns `self` with the base class mix replaced, rejecting mixes
    /// that would silently starve bronze (gold + silver > 1) or are
    /// otherwise degenerate.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn with_class_mix(mut self, gold: f64, silver: f64) -> Result<Self, String> {
        check_mix("class mix", gold, silver)?;
        self.gold_fraction = gold;
        self.silver_fraction = silver;
        Ok(self)
    }

    /// Validates every knob of the stream. Drivers call this once at
    /// startup; the sampling paths `debug_assert` it so a hand-rolled
    /// invalid stream fails fast in tests instead of silently skewing
    /// the mix.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.arrival_rate.is_finite() && self.arrival_rate >= 0.0) {
            return Err(format!("arrival_rate must be finite and non-negative, got {}", self.arrival_rate));
        }
        if !(self.per_node_rate.is_finite() && self.per_node_rate >= 0.0) {
            return Err(format!("per_node_rate must be finite and non-negative, got {}", self.per_node_rate));
        }
        check_mix("class mix", self.gold_fraction, self.silver_fraction)?;
        if let TrafficShape::Modulated(m) = &self.shape {
            if !(0.0..1.0).contains(&m.diurnal_amplitude) {
                return Err(format!("diurnal_amplitude must be in [0, 1), got {}", m.diurnal_amplitude));
            }
            if m.diurnal_period.as_secs() <= 0.0 {
                return Err("diurnal_period must be positive".into());
            }
            if let Some(f) = &m.flash {
                if !(0.0..=1.0).contains(&f.probability) {
                    return Err(format!("flash probability must be in [0, 1], got {}", f.probability));
                }
                if f.peak_multiplier < 1.0 {
                    return Err(format!("flash peak_multiplier must be ≥ 1, got {}", f.peak_multiplier));
                }
                if f.epoch.as_secs() <= 0.0 || f.decay.as_secs() <= 0.0 {
                    return Err("flash epoch and decay must be positive".into());
                }
                check_mix("flash mix", f.gold_fraction, f.silver_fraction)?;
            }
        }
        if let LifetimeModel::BoundedPareto { alpha, min, max } = self.lifetimes {
            if !(alpha.is_finite() && alpha > 0.0) {
                return Err(format!("pareto alpha must be positive, got {alpha}"));
            }
            if !(min.as_secs() > 0.0 && max.as_secs() > min.as_secs()) {
                return Err(format!(
                    "pareto bounds must satisfy 0 < min < max, got [{}, {}]",
                    min.as_secs(),
                    max.as_secs()
                ));
            }
        } else if self.mean_lifetime.as_secs() <= 0.0 {
            return Err("mean_lifetime must be positive".into());
        }
        Ok(())
    }

    /// The effective base rate for a rack of `nodes` machines (pass 0 to
    /// keep the capacity-independent `arrival_rate` alone).
    #[must_use]
    pub fn effective_rate(&self, nodes: usize) -> f64 {
        self.arrival_rate + self.per_node_rate * nodes as f64
    }

    /// The additive flash-crowd boost at simulated time `t` (0 when no
    /// burst is live). Bursts from the current and previous epoch
    /// contribute, so a burst decays smoothly across an epoch boundary.
    fn flash_boost(&self, stream_seed: u64, t: f64) -> f64 {
        let TrafficShape::Modulated(m) = &self.shape else { return 0.0 };
        let Some(f) = &m.flash else { return 0.0 };
        let epoch = f.epoch.as_secs();
        let e = (t / epoch).floor().max(0.0) as u64;
        let mut boost = 0.0;
        for k in e.saturating_sub(1)..=e {
            let w = splitmix64(stream_seed ^ FLASH_SALT ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if unit_fraction(w) >= f.probability {
                continue;
            }
            let start = k as f64 * epoch + unit_fraction(splitmix64(w)) * epoch;
            if t >= start {
                boost += (f.peak_multiplier - 1.0) * (-(t - start) / f.decay.as_secs()).exp();
            }
        }
        boost
    }

    /// The modulated arrival rate for a rack of `nodes` machines at
    /// simulated time `t` — a closed-form pure function of
    /// `(self, stream_seed, nodes, t)`.
    #[must_use]
    pub fn rate_at(&self, stream_seed: u64, nodes: usize, t: Seconds) -> f64 {
        let base = self.effective_rate(nodes);
        match &self.shape {
            TrafficShape::Flat => base,
            TrafficShape::Modulated(m) => {
                let phase = t.as_secs() / m.diurnal_period.as_secs() + m.diurnal_phase;
                let diurnal = 1.0 + m.diurnal_amplitude * (std::f64::consts::TAU * phase).sin();
                base * diurnal * (1.0 + self.flash_boost(stream_seed, t.as_secs()))
            }
        }
    }

    /// The arrival batch of one tick for a capacity-independent stream —
    /// [`VmStream::tick_arrivals_scaled`] with zero rack nodes.
    #[must_use]
    pub fn tick_arrivals(&self, stream_seed: u64, tick: u64, duration: Seconds) -> Vec<Arrival> {
        self.tick_arrivals_scaled(stream_seed, tick, duration, 0)
    }

    /// The arrival batch of one tick, drawn from a per-tick sub-stream
    /// of `stream_seed` (see [`arrival_seed`]) at the rate the rack's
    /// capacity and the traffic shape prescribe for this tick's start
    /// time (`tick × duration`). Pure in
    /// `(self, stream_seed, tick, duration, nodes)`: the event-queue
    /// driver can generate batches in any order — or in parallel — and
    /// always get the same stream.
    #[must_use]
    pub fn tick_arrivals_scaled(
        &self,
        stream_seed: u64,
        tick: u64,
        duration: Seconds,
        nodes: usize,
    ) -> Vec<Arrival> {
        debug_assert!(self.validate().is_ok(), "invalid stream: {:?}", self.validate());
        let mut rng = StdRng::seed_from_u64(arrival_seed(stream_seed, tick));
        let t = tick as f64 * duration.as_secs();
        let rate = self.rate_at(stream_seed, nodes, Seconds::new(t));
        let count = poisson(&mut rng, rate * duration.as_secs());
        // Fraction of this tick's traffic that is burst traffic; burst
        // arrivals draw their class from the flash mix. 0 for flat
        // streams, where the short-circuit keeps the legacy draw
        // sequence byte-identical.
        let boost = self.flash_boost(stream_seed, t);
        let burst_share = boost / (1.0 + boost);
        (0..count)
            .map(|_| {
                let class = if burst_share > 0.0 && rng.gen::<f64>() < burst_share {
                    self.sample_burst_class(&mut rng)
                } else {
                    self.sample_class_with(&mut rng)
                };
                let lifetime = self.sample_lifetime(&mut rng);
                Arrival { config: self.template.clone(), class, lifetime }
            })
            .collect()
    }

    fn sample_class_with<R: Rng>(&self, rng: &mut R) -> SlaClass {
        debug_assert!(
            check_mix("class mix", self.gold_fraction, self.silver_fraction).is_ok(),
            "gold + silver fractions exceed 1.0 and would starve bronze"
        );
        pick_class(rng, self.gold_fraction, self.silver_fraction)
    }

    /// Class draw for burst (flash-crowd) traffic, from the flash mix.
    fn sample_burst_class<R: Rng>(&self, rng: &mut R) -> SlaClass {
        if let TrafficShape::Modulated(Modulation { flash: Some(f), .. }) = &self.shape {
            pick_class(rng, f.gold_fraction, f.silver_fraction)
        } else {
            self.sample_class_with(rng)
        }
    }

    fn sample_lifetime<R: Rng>(&self, rng: &mut R) -> Seconds {
        match self.lifetimes {
            LifetimeModel::Exponential => {
                Seconds::new(exponential(rng, self.mean_lifetime.as_secs()))
            }
            LifetimeModel::BoundedPareto { alpha, min, max } => {
                // Inverse CDF of the bounded Pareto on [min, max]:
                // x = L · (1 − U·(1 − (L/H)^α))^(−1/α), U ∈ [0, 1).
                let u: f64 = rng.gen();
                let l = min.as_secs();
                let ratio = (l / max.as_secs()).powf(alpha);
                Seconds::new(l * (1.0 - u * (1.0 - ratio)).powf(-1.0 / alpha))
            }
        }
    }
}

fn pick_class<R: Rng>(rng: &mut R, gold: f64, silver: f64) -> SlaClass {
    let x: f64 = rng.gen();
    if x < gold {
        SlaClass::Gold
    } else if x < gold + silver {
        SlaClass::Silver
    } else {
        SlaClass::Bronze
    }
}

/// Statistics of one driven interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Arrivals offered to the scheduler.
    pub offered: u64,
    /// Arrivals successfully placed.
    pub placed: u64,
    /// VMs terminated (lifetime expired).
    pub terminated: u64,
    /// Tracked placements lost to evictions (crash recovery that found
    /// no healthy capacity, or proactive moves whose relaunch failed).
    pub evicted: u64,
}

/// The stream driver: owns the live-placement lifetimes.
#[derive(Debug, Clone)]
pub struct StreamDriver {
    config: VmStream,
    live: Vec<(Placement, Seconds)>,
    stats: StreamStats,
    seed: u64,
    tick: u64,
}

impl StreamDriver {
    /// Creates a driver with a deterministic seed. Arrival draws derive
    /// from per-tick sub-streams of `seed` (see [`arrival_seed`]), so a
    /// driven run is reproducible tick-by-tick.
    #[must_use]
    pub fn new(config: VmStream, seed: u64) -> Self {
        StreamDriver { config, live: Vec::new(), stats: StreamStats::default(), seed, tick: 0 }
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Live (stream-tracked) placements.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Drives one interval: terminate expired guests, then offer new
    /// arrivals, then tick the cluster and reconcile its feedback —
    /// crashed nodes run failure-driven recovery, and placements the
    /// cluster evicted (crash recovery or failed proactive relaunches)
    /// leave the live table immediately instead of lingering until
    /// their lifetime expires and overstating `live_count`.
    pub fn drive(&mut self, cluster: &mut Cluster, duration: Seconds) {
        // --- Departures, keyed by stable placement id so a VM that was
        // migrated (new node, new per-node VmId) still terminates.
        let mut survivors = Vec::with_capacity(self.live.len());
        for (placement, mut remaining) in self.live.drain(..) {
            if remaining <= duration {
                if cluster.terminate_by_id(placement.id) {
                    self.stats.terminated += 1;
                }
            } else {
                remaining = remaining - duration;
                survivors.push((placement, remaining));
            }
        }
        self.live = survivors;

        // --- Arrivals, from this tick's sub-stream, at the rack's
        // capacity-scaled rate.
        let nodes = cluster.nodes().len();
        for arrival in self.config.tick_arrivals_scaled(self.seed, self.tick, duration, nodes) {
            self.stats.offered += 1;
            if let Some(placement) = cluster.submit(arrival.config, arrival.class) {
                self.stats.placed += 1;
                self.live.push((placement, arrival.lifetime));
            }
        }
        self.tick += 1;

        // --- Advance the cluster and reconcile its eviction feedback.
        let report = cluster.tick(duration);
        let mut lost: Vec<_> = report.evicted.iter().map(|p| p.id).collect();
        let mut crashed: Vec<NodeId> = Vec::new();
        for (node_id, _event) in &report.crashes {
            if !crashed.contains(node_id) {
                crashed.push(*node_id);
            }
        }
        for node_id in crashed {
            let recovery = cluster.recover_from_crash(node_id);
            lost.extend(recovery.evicted.iter().map(|p| p.id));
        }
        if !lost.is_empty() {
            let stats = &mut self.stats;
            self.live.retain(|(p, _)| {
                let evicted = lost.contains(&p.id);
                if evicted {
                    stats.evicted += 1;
                }
                !evicted
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn stream_churns_vms_through_the_cluster() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 7);
        let mut driver = StreamDriver::new(VmStream::edge_site(), 7);
        for _ in 0..300 {
            driver.drive(&mut cluster, Seconds::new(5.0));
        }
        let s = driver.stats();
        assert!(s.offered > 40, "offered {}", s.offered);
        assert!(s.placed > 0 && s.placed <= s.offered);
        assert!(s.terminated > 0, "lifetimes must expire during the run");
        // Steady state: the live population stays bounded by capacity.
        assert!(driver.live_count() < 60);
    }

    #[test]
    fn placement_rate_degrades_gracefully_under_overload() {
        let overloaded = VmStream {
            arrival_rate: 0.5,
            mean_lifetime: Seconds::new(600.0),
            template: VmConfig::ldbc_benchmark(),
            ..VmStream::edge_site()
        };
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 9);
        let mut driver = StreamDriver::new(overloaded, 9);
        for _ in 0..120 {
            driver.drive(&mut cluster, Seconds::new(5.0));
        }
        let s = driver.stats();
        assert!(s.placed < s.offered, "an overloaded site must reject some arrivals");
        assert!(cluster.fleet_metrics().rejected > 0);
        // But what was placed keeps running: no crashes from churn alone.
        assert_eq!(cluster.fleet_metrics().mean_availability, 1.0);
    }

    #[test]
    fn tick_arrivals_are_pure_and_order_independent() {
        let s = VmStream::datacenter();
        let forward: Vec<_> = (0..50).map(|t| s.tick_arrivals(9, t, Seconds::new(5.0))).collect();
        let backward: Vec<_> =
            (0..50).rev().map(|t| s.tick_arrivals(9, t, Seconds::new(5.0))).collect();
        for (t, batch) in forward.iter().enumerate() {
            assert_eq!(batch, &backward[49 - t], "tick {t} must not depend on draw order");
        }
        let total: usize = forward.iter().map(Vec::len).sum();
        assert!((600..=900).contains(&total), "3/s × 250 s ≈ 750 arrivals, got {total}");
        let gold = forward.iter().flatten().filter(|a| a.class == SlaClass::Gold).count();
        assert!(gold > 0, "the class mix must draw gold arrivals");
    }

    #[test]
    fn arrival_seed_separates_ticks_and_seeds() {
        assert_ne!(arrival_seed(1, 0), arrival_seed(1, 1));
        assert_ne!(arrival_seed(1, 0), arrival_seed(2, 0));
        assert_eq!(arrival_seed(7, 42), arrival_seed(7, 42));
    }

    #[test]
    fn driver_is_deterministic() {
        let run = |seed: u64| {
            let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), seed);
            let mut driver = StreamDriver::new(VmStream::edge_site(), seed);
            for _ in 0..50 {
                driver.drive(&mut cluster, Seconds::new(5.0));
            }
            driver.stats()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn per_node_rate_scales_arrivals_with_rack_size() {
        let s = VmStream { arrival_rate: 0.0, per_node_rate: 0.01, ..VmStream::datacenter() };
        let count = |nodes: usize| -> usize {
            (0..60).map(|t| s.tick_arrivals_scaled(11, t, Seconds::new(5.0), nodes).len()).sum()
        };
        let small = count(64);
        let big = count(1024);
        // 64 nodes → 0.64/s ≈ 192 arrivals over 300 s; 1024 → 16×.
        assert!((120..=280).contains(&small), "64-node rack drew {small}");
        assert!(big > 10 * small, "1024-node rack must draw ~16× more, got {big} vs {small}");
        // nodes = 0 keeps the capacity-independent rate (here zero).
        assert_eq!(count(0), 0, "zero effective rate must draw nothing");
    }

    #[test]
    fn flash_crowds_spike_and_decay_deterministically() {
        let s = VmStream::flash_crowd();
        s.validate().expect("preset is valid");
        // Scan a few hours for the seeded burst schedule: rates must
        // spike past the diurnal ceiling and return to it.
        let base = s.effective_rate(256);
        let ceiling = base * 1.26; // diurnal amplitude 0.25 + margin
        let rates: Vec<f64> =
            (0..2_000).map(|t| s.rate_at(77, 256, Seconds::new(t as f64 * 10.0))).collect();
        let peak = rates.iter().cloned().fold(0.0, f64::max);
        assert!(peak > 2.0 * base, "bursts must spike the rate, peak {peak} vs base {base}");
        let quiet = rates.iter().filter(|r| **r < ceiling).count();
        assert!(quiet > rates.len() / 3, "bursts must decay back below the diurnal ceiling");
        // Pure function of (seed, t): the schedule replays byte-for-byte.
        for (i, r) in rates.iter().enumerate() {
            assert_eq!(*r, s.rate_at(77, 256, Seconds::new(i as f64 * 10.0)));
        }
        // A different seed draws a different burst schedule.
        let other: Vec<f64> =
            (0..2_000).map(|t| s.rate_at(78, 256, Seconds::new(t as f64 * 10.0))).collect();
        assert_ne!(rates, other, "the burst schedule must derive from the stream seed");
    }

    #[test]
    fn bounded_pareto_lifetimes_stay_in_bounds_and_skew_short() {
        let s = VmStream::flash_crowd();
        let lifetimes: Vec<f64> = (0..200)
            .flat_map(|t| s.tick_arrivals_scaled(5, t, Seconds::new(5.0), 256))
            .map(|a| a.lifetime.as_secs())
            .collect();
        assert!(lifetimes.len() > 500, "got {}", lifetimes.len());
        assert!(lifetimes.iter().all(|l| (30.0..=7_200.0).contains(l)), "bounds violated");
        let short = lifetimes.iter().filter(|l| **l < 120.0).count();
        assert!(
            short * 2 > lifetimes.len(),
            "a heavy-tailed draw must skew short: {short}/{}",
            lifetimes.len()
        );
        let long = lifetimes.iter().filter(|l| **l > 1_800.0).count();
        assert!(long > 0, "the tail must reach long lifetimes");
    }

    #[test]
    fn burst_traffic_skews_towards_bronze() {
        let mut s = VmStream::flash_crowd();
        // Make bursts near-certain and strong so the burst mix dominates.
        if let TrafficShape::Modulated(m) = &mut s.shape {
            let f = m.flash.as_mut().unwrap();
            f.probability = 1.0;
            f.peak_multiplier = 20.0;
            f.decay = Seconds::new(600.0);
        }
        let arrivals: Vec<Arrival> =
            (0..120).flat_map(|t| s.tick_arrivals_scaled(3, t, Seconds::new(5.0), 256)).collect();
        let gold = arrivals.iter().filter(|a| a.class == SlaClass::Gold).count();
        let total = arrivals.len();
        assert!(total > 1_000, "burst traffic must dominate, got {total}");
        // Base mix is 20 % gold; the flash mix is 5 %. With bursts
        // carrying ~95 % of traffic the blend must sit well below 15 %.
        assert!(
            (gold as f64) < 0.15 * total as f64,
            "burst mix must pull gold down: {gold}/{total}"
        );
    }

    #[test]
    fn class_mix_constructor_rejects_bronze_starvation() {
        assert!(VmStream::datacenter().with_class_mix(0.8, 0.4).is_err());
        assert!(VmStream::datacenter().with_class_mix(-0.1, 0.3).is_err());
        let ok = VmStream::datacenter().with_class_mix(0.5, 0.5).expect("valid mix");
        assert_eq!(ok.gold_fraction, 0.5);
        assert!(VmStream::datacenter().validate().is_ok());
        assert!(VmStream::edge_site().validate().is_ok());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "invalid stream")]
    fn sampling_an_overfull_mix_panics_in_debug() {
        let bad = VmStream { gold_fraction: 0.8, silver_fraction: 0.4, ..VmStream::datacenter() };
        let _ = bad.tick_arrivals(1, 0, Seconds::new(5.0));
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        let mut s = VmStream::flash_crowd();
        if let TrafficShape::Modulated(m) = &mut s.shape {
            m.diurnal_amplitude = 1.5;
        }
        assert!(s.validate().is_err(), "amplitude ≥ 1 would drive the rate negative");
        let s = VmStream {
            lifetimes: LifetimeModel::BoundedPareto {
                alpha: 1.0,
                min: Seconds::new(100.0),
                max: Seconds::new(50.0),
            },
            ..VmStream::datacenter()
        };
        assert!(s.validate().is_err(), "inverted pareto bounds");
        let s = VmStream { per_node_rate: -1.0, ..VmStream::datacenter() };
        assert!(s.validate().is_err(), "negative rates");
    }

    #[test]
    fn crash_evictions_reconcile_the_live_table() {
        // A single-node site: when the node crashes, recovery has
        // nowhere to migrate, so every live placement is evicted. The
        // driver must learn this from the cluster's feedback instead of
        // carrying the placements until their lifetimes expire.
        let stream = VmStream {
            arrival_rate: 0.5,
            mean_lifetime: Seconds::new(3_600.0),
            template: VmConfig::idle_guest(),
            ..VmStream::edge_site()
        };
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(1), 21);
        let mut driver = StreamDriver::new(stream, 21);
        for _ in 0..4 {
            driver.drive(&mut cluster, Seconds::new(5.0));
        }
        assert!(driver.live_count() > 0, "long-lived guests must accumulate");

        // Undervolt the only node deep into its crash region.
        let deep = cluster.nodes()[0].hypervisor.node().part().offset_mv(0.20);
        cluster.nodes_mut()[0].hypervisor.node_mut().msr.set_voltage_offset_all(deep).unwrap();

        let mut crashed = false;
        for _ in 0..60 {
            driver.drive(&mut cluster, Seconds::new(5.0));
            // The live table must always agree with the cluster's
            // tracked placements — stale evicted entries are the bug.
            assert_eq!(
                driver.live_count(),
                cluster.placements().len(),
                "driver live table diverged from the cluster"
            );
            if driver.stats().evicted > 0 {
                crashed = true;
                break;
            }
        }
        assert!(crashed, "a 20 % undervolt must crash and evict within 60 ticks");
        assert_eq!(driver.live_count(), 0, "a 1-node site cannot absorb its own crash");
    }
}
