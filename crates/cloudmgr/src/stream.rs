//! Streams of incoming and terminating VMs (paper §4.B: scheduling
//! policies must be "non-intrusive in real-world scenarios where
//! OpenStack would manage streams of incoming and terminating VMs").
//!
//! Arrivals are Poisson; lifetimes are exponential; the SLA mix is a
//! configurable gold/silver/bronze split. The stream drives a
//! [`Cluster`] from outside, so the same driver works for any policy
//! under test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_hypervisor::vm::VmConfig;
use uniserver_silicon::rng::{exponential, poisson, splitmix64};

use crate::cluster::{Cluster, Placement};
use crate::sla::SlaClass;

/// Sub-stream salt for the arrival process (keeps arrival draws
/// independent of the fleet's part/mix/ambient draws off the same seed).
const ARRIVAL_SALT: u64 = 0x4528_21E6_38D0_1377;

/// Derives the RNG seed for one tick's arrival batch — a pure function
/// of `(stream seed, tick index)` exactly as `fleet::node_seed` derives
/// node silicon, so arrival streams are byte-stable however the driving
/// loop is scheduled or threaded.
#[must_use]
pub fn arrival_seed(stream_seed: u64, tick: u64) -> u64 {
    splitmix64(stream_seed ^ ARRIVAL_SALT ^ tick.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Stream configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmStream {
    /// Mean VM arrivals per second.
    pub arrival_rate: f64,
    /// Mean VM lifetime.
    pub mean_lifetime: Seconds,
    /// Template for arriving guests.
    pub template: VmConfig,
    /// SLA mix as (gold, silver) fractions; the rest is bronze.
    pub gold_fraction: f64,
    /// Silver fraction of arrivals.
    pub silver_fraction: f64,
}

/// One VM arrival drawn from a stream: what to run, at which class, for
/// how long.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Guest configuration.
    pub config: VmConfig,
    /// SLA class of the request.
    pub class: SlaClass,
    /// Requested lifetime (exponential around the stream mean).
    pub lifetime: Seconds,
}

impl VmStream {
    /// A busy edge-site stream: ~one arrival per 20 s, 2-minute
    /// lifetimes, 20 % gold / 30 % silver.
    #[must_use]
    pub fn edge_site() -> Self {
        VmStream {
            arrival_rate: 0.05,
            mean_lifetime: Seconds::new(120.0),
            template: VmConfig::idle_guest(),
            gold_fraction: 0.2,
            silver_fraction: 0.3,
        }
    }

    /// A datacenter-scale stream: three LDBC guests arriving per second,
    /// 5-minute lifetimes, 20 % gold / 30 % silver — ≥10⁴ arrivals over
    /// a simulated hour, the orchestrator's headline load.
    #[must_use]
    pub fn datacenter() -> Self {
        VmStream {
            arrival_rate: 3.0,
            mean_lifetime: Seconds::new(300.0),
            template: VmConfig::ldbc_benchmark(),
            gold_fraction: 0.2,
            silver_fraction: 0.3,
        }
    }

    /// The arrival batch of one tick, drawn from a per-tick sub-stream
    /// of `stream_seed` (see [`arrival_seed`]). Pure in
    /// `(self, stream_seed, tick, duration)`: the event-queue driver can
    /// generate batches in any order — or in parallel — and always get
    /// the same stream.
    #[must_use]
    pub fn tick_arrivals(&self, stream_seed: u64, tick: u64, duration: Seconds) -> Vec<Arrival> {
        let mut rng = StdRng::seed_from_u64(arrival_seed(stream_seed, tick));
        let count = poisson(&mut rng, self.arrival_rate * duration.as_secs());
        (0..count)
            .map(|_| {
                let class = self.sample_class_with(&mut rng);
                let lifetime =
                    Seconds::new(exponential(&mut rng, self.mean_lifetime.as_secs()));
                Arrival { config: self.template.clone(), class, lifetime }
            })
            .collect()
    }

    fn sample_class_with<R: Rng>(&self, rng: &mut R) -> SlaClass {
        let x: f64 = rng.gen();
        if x < self.gold_fraction {
            SlaClass::Gold
        } else if x < self.gold_fraction + self.silver_fraction {
            SlaClass::Silver
        } else {
            SlaClass::Bronze
        }
    }
}

/// Statistics of one driven interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Arrivals offered to the scheduler.
    pub offered: u64,
    /// Arrivals successfully placed.
    pub placed: u64,
    /// VMs terminated (lifetime expired).
    pub terminated: u64,
}

/// The stream driver: owns the live-placement lifetimes.
#[derive(Debug, Clone)]
pub struct StreamDriver {
    config: VmStream,
    live: Vec<(Placement, Seconds)>,
    stats: StreamStats,
    seed: u64,
    tick: u64,
}

impl StreamDriver {
    /// Creates a driver with a deterministic seed. Arrival draws derive
    /// from per-tick sub-streams of `seed` (see [`arrival_seed`]), so a
    /// driven run is reproducible tick-by-tick.
    #[must_use]
    pub fn new(config: VmStream, seed: u64) -> Self {
        StreamDriver { config, live: Vec::new(), stats: StreamStats::default(), seed, tick: 0 }
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Live (stream-tracked) placements.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Drives one interval: terminate expired guests, then offer new
    /// arrivals, then tick the cluster.
    pub fn drive(&mut self, cluster: &mut Cluster, duration: Seconds) {
        // --- Departures, keyed by stable placement id so a VM that was
        // migrated (new node, new per-node VmId) still terminates.
        let mut survivors = Vec::with_capacity(self.live.len());
        for (placement, mut remaining) in self.live.drain(..) {
            if remaining <= duration {
                if cluster.terminate_by_id(placement.id) {
                    self.stats.terminated += 1;
                }
            } else {
                remaining = remaining - duration;
                survivors.push((placement, remaining));
            }
        }
        self.live = survivors;

        // --- Arrivals, from this tick's sub-stream.
        for arrival in self.config.tick_arrivals(self.seed, self.tick, duration) {
            self.stats.offered += 1;
            if let Some(placement) = cluster.submit(arrival.config, arrival.class) {
                self.stats.placed += 1;
                self.live.push((placement, arrival.lifetime));
            }
        }
        self.tick += 1;

        cluster.tick(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn stream_churns_vms_through_the_cluster() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 7);
        let mut driver = StreamDriver::new(VmStream::edge_site(), 7);
        for _ in 0..300 {
            driver.drive(&mut cluster, Seconds::new(5.0));
        }
        let s = driver.stats();
        assert!(s.offered > 40, "offered {}", s.offered);
        assert!(s.placed > 0 && s.placed <= s.offered);
        assert!(s.terminated > 0, "lifetimes must expire during the run");
        // Steady state: the live population stays bounded by capacity.
        assert!(driver.live_count() < 60);
    }

    #[test]
    fn placement_rate_degrades_gracefully_under_overload() {
        let overloaded = VmStream {
            arrival_rate: 0.5,
            mean_lifetime: Seconds::new(600.0),
            template: VmConfig::ldbc_benchmark(),
            ..VmStream::edge_site()
        };
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 9);
        let mut driver = StreamDriver::new(overloaded, 9);
        for _ in 0..120 {
            driver.drive(&mut cluster, Seconds::new(5.0));
        }
        let s = driver.stats();
        assert!(s.placed < s.offered, "an overloaded site must reject some arrivals");
        assert!(cluster.fleet_metrics().rejected > 0);
        // But what was placed keeps running: no crashes from churn alone.
        assert_eq!(cluster.fleet_metrics().mean_availability, 1.0);
    }

    #[test]
    fn tick_arrivals_are_pure_and_order_independent() {
        let s = VmStream::datacenter();
        let forward: Vec<_> = (0..50).map(|t| s.tick_arrivals(9, t, Seconds::new(5.0))).collect();
        let backward: Vec<_> =
            (0..50).rev().map(|t| s.tick_arrivals(9, t, Seconds::new(5.0))).collect();
        for (t, batch) in forward.iter().enumerate() {
            assert_eq!(batch, &backward[49 - t], "tick {t} must not depend on draw order");
        }
        let total: usize = forward.iter().map(Vec::len).sum();
        assert!((600..=900).contains(&total), "3/s × 250 s ≈ 750 arrivals, got {total}");
        let gold = forward.iter().flatten().filter(|a| a.class == SlaClass::Gold).count();
        assert!(gold > 0, "the class mix must draw gold arrivals");
    }

    #[test]
    fn arrival_seed_separates_ticks_and_seeds() {
        assert_ne!(arrival_seed(1, 0), arrival_seed(1, 1));
        assert_ne!(arrival_seed(1, 0), arrival_seed(2, 0));
        assert_eq!(arrival_seed(7, 42), arrival_seed(7, 42));
    }

    #[test]
    fn driver_is_deterministic() {
        let run = |seed: u64| {
            let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), seed);
            let mut driver = StreamDriver::new(VmStream::edge_site(), seed);
            for _ in 0..50 {
                driver.drive(&mut cluster, Seconds::new(5.0));
            }
            driver.stats()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
