//! Streams of incoming and terminating VMs (paper §4.B: scheduling
//! policies must be "non-intrusive in real-world scenarios where
//! OpenStack would manage streams of incoming and terminating VMs").
//!
//! Arrivals are Poisson; lifetimes are exponential; the SLA mix is a
//! configurable gold/silver/bronze split. The stream drives a
//! [`Cluster`] from outside, so the same driver works for any policy
//! under test.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_hypervisor::vm::VmConfig;
use uniserver_silicon::rng::{exponential, poisson};

use crate::cluster::{Cluster, Placement};
use crate::sla::SlaClass;

/// Stream configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmStream {
    /// Mean VM arrivals per second.
    pub arrival_rate: f64,
    /// Mean VM lifetime.
    pub mean_lifetime: Seconds,
    /// Template for arriving guests.
    pub template: VmConfig,
    /// SLA mix as (gold, silver) fractions; the rest is bronze.
    pub gold_fraction: f64,
    /// Silver fraction of arrivals.
    pub silver_fraction: f64,
}

impl VmStream {
    /// A busy edge-site stream: ~one arrival per 20 s, 2-minute
    /// lifetimes, 20 % gold / 30 % silver.
    #[must_use]
    pub fn edge_site() -> Self {
        VmStream {
            arrival_rate: 0.05,
            mean_lifetime: Seconds::new(120.0),
            template: VmConfig::idle_guest(),
            gold_fraction: 0.2,
            silver_fraction: 0.3,
        }
    }
}

/// Statistics of one driven interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StreamStats {
    /// Arrivals offered to the scheduler.
    pub offered: u64,
    /// Arrivals successfully placed.
    pub placed: u64,
    /// VMs terminated (lifetime expired).
    pub terminated: u64,
}

/// The stream driver: owns the live-placement lifetimes.
#[derive(Debug, Clone)]
pub struct StreamDriver {
    config: VmStream,
    live: Vec<(Placement, Seconds)>,
    stats: StreamStats,
    rng: StdRng,
}

impl StreamDriver {
    /// Creates a driver with a deterministic seed.
    #[must_use]
    pub fn new(config: VmStream, seed: u64) -> Self {
        StreamDriver { config, live: Vec::new(), stats: StreamStats::default(), rng: StdRng::seed_from_u64(seed) }
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> StreamStats {
        self.stats
    }

    /// Live (stream-tracked) placements.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Drives one interval: terminate expired guests, then offer new
    /// arrivals, then tick the cluster.
    pub fn drive(&mut self, cluster: &mut Cluster, duration: Seconds) {
        // --- Departures.
        let mut survivors = Vec::with_capacity(self.live.len());
        for (placement, mut remaining) in self.live.drain(..) {
            if remaining <= duration {
                if cluster.terminate(&placement) {
                    self.stats.terminated += 1;
                }
            } else {
                remaining = remaining - duration;
                survivors.push((placement, remaining));
            }
        }
        self.live = survivors;

        // --- Arrivals.
        let arrivals = poisson(&mut self.rng, self.config.arrival_rate * duration.as_secs());
        for _ in 0..arrivals {
            self.stats.offered += 1;
            let class = self.sample_class();
            if let Some(placement) = cluster.submit(self.config.template.clone(), class) {
                self.stats.placed += 1;
                let lifetime =
                    Seconds::new(exponential(&mut self.rng, self.config.mean_lifetime.as_secs()));
                self.live.push((placement, lifetime));
            }
        }

        cluster.tick(duration);
    }

    fn sample_class(&mut self) -> SlaClass {
        let x: f64 = self.rng.gen();
        if x < self.config.gold_fraction {
            SlaClass::Gold
        } else if x < self.config.gold_fraction + self.config.silver_fraction {
            SlaClass::Silver
        } else {
            SlaClass::Bronze
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;

    #[test]
    fn stream_churns_vms_through_the_cluster() {
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(3), 7);
        let mut driver = StreamDriver::new(VmStream::edge_site(), 7);
        for _ in 0..300 {
            driver.drive(&mut cluster, Seconds::new(5.0));
        }
        let s = driver.stats();
        assert!(s.offered > 40, "offered {}", s.offered);
        assert!(s.placed > 0 && s.placed <= s.offered);
        assert!(s.terminated > 0, "lifetimes must expire during the run");
        // Steady state: the live population stays bounded by capacity.
        assert!(driver.live_count() < 60);
    }

    #[test]
    fn placement_rate_degrades_gracefully_under_overload() {
        let overloaded = VmStream {
            arrival_rate: 0.5,
            mean_lifetime: Seconds::new(600.0),
            template: VmConfig::ldbc_benchmark(),
            ..VmStream::edge_site()
        };
        let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), 9);
        let mut driver = StreamDriver::new(overloaded, 9);
        for _ in 0..120 {
            driver.drive(&mut cluster, Seconds::new(5.0));
        }
        let s = driver.stats();
        assert!(s.placed < s.offered, "an overloaded site must reject some arrivals");
        assert!(cluster.fleet_metrics().rejected > 0);
        // But what was placed keeps running: no crashes from churn alone.
        assert_eq!(cluster.fleet_metrics().mean_availability, 1.0);
    }

    #[test]
    fn driver_is_deterministic() {
        let run = |seed: u64| {
            let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(2), seed);
            let mut driver = StreamDriver::new(VmStream::edge_site(), seed);
            for _ in 0..50 {
                driver.drive(&mut cluster, Seconds::new(5.0));
            }
            driver.stats()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
