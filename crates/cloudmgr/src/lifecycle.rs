//! The node failure lifecycle: `Online → Crashed → Offline(repairing)
//! → Rejoining → Online`.
//!
//! Before this state machine, failure was free: a crashed node was
//! evacuated, backed off its operating point, and kept taking
//! placements in the very same tick. With the lifecycle enabled, a
//! crash takes the node *out of the pool* — it stops ticking, consumes
//! no energy, is excluded from [`crate::scheduler::Scheduler::filter`]
//! (and therefore from the [`crate::index::PlacementIndex`], which
//! re-checks the filter live per candidate) — for a seeded, bounded
//! MTTR window, then rejoins through a re-characterization pass that
//! measures what margins the aged silicon *actually* has instead of
//! guessing with geometric EOP backoff.
//!
//! Every MTTR draw is a pure function of `(seed, node, tick)` via the
//! workspace's SplitMix64 sub-stream convention ([`salt::MTTR`]), so a
//! run's downtime schedule is byte-identical for any worker count.

use serde::{Deserialize, Serialize};
use uniserver_silicon::rng::{salt, splitmix64};

use crate::node::NodeId;

/// Gray-failure state riding on a [`NodePhase::Degraded`] node: the
/// throttle and error-rate parameters drawn at onset, when the
/// underlying fault clears, and whether the health watchdog has
/// quarantined the node in the meantime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrayState {
    /// Usable fraction of nominal vCPU capacity while degraded,
    /// `(0, 1]` — the thermal-throttle cap honored by
    /// [`crate::node::ManagedNode::fits`].
    pub capacity_cap: f64,
    /// CE-rate multiplier while the fault is active: the node's
    /// effective reliability is divided by it, so schedulers and the
    /// failure predictor see the elevated error rate honestly.
    pub ce_multiplier: f64,
    /// The tick at which the underlying fault clears (exclusive) —
    /// probes keep failing until then.
    pub clears_at_tick: u64,
    /// True once the watchdog has quarantined the node: drained,
    /// excluded from placement, EOP backed off to nominal, pending
    /// probation and readmission.
    pub quarantined: bool,
}

/// Where a managed node is in its failure lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NodePhase {
    /// Serving: ticked, placeable, consuming energy.
    Online,
    /// Serving *gray*: still ticking, still holding placements, but at
    /// throttled capacity and an elevated correctable-error rate. Only
    /// the health watchdog's probes distinguish a degraded node from a
    /// healthy one; the node itself never reports the fault.
    Degraded {
        /// The onset parameters and quarantine marker.
        gray: GrayState,
    },
    /// A crash was observed this tick; evacuation is in progress. The
    /// phase is transient — recovery moves the node to `Offline` before
    /// the tick ends.
    Crashed,
    /// Out of the pool, under repair for the remaining tick count.
    Offline {
        /// Repair ticks left before the node may rejoin.
        remaining_ticks: u32,
    },
    /// Repair finished; the node is being re-characterized and will be
    /// back online within the current tick.
    Rejoining,
}

impl NodePhase {
    /// Whether the node is serving (only `Online` and `Degraded` nodes
    /// tick, hold placements, or pass the scheduler filter — a gray
    /// node keeps serving at throttled capacity, which is the whole
    /// point of the failure mode).
    #[must_use]
    pub fn is_online(self) -> bool {
        matches!(self, NodePhase::Online | NodePhase::Degraded { .. })
    }

    /// Whether the node is serving gray.
    #[must_use]
    pub fn is_degraded(self) -> bool {
        matches!(self, NodePhase::Degraded { .. })
    }
}

/// Power state of an online node, orthogonal to [`NodePhase`]: a node
/// can be fully operational yet parked in a low-power sleep state by a
/// consolidation policy. Only `Online` nodes may be asleep — crashes
/// and repairs wake a node as a side effect (the reboot is a power
/// cycle).
///
/// Asleep nodes do not tick (no crash draws, no guest progress — they
/// host nothing by construction), are excluded from the scheduler
/// filter, and draw only [`SLEEP_POWER_WATTS`]. They wake synchronously
/// on demand pressure: a placement decision that finds no awake
/// feasible node may wake one and place onto it in the same tick
/// (suspend-to-RAM resume is well under the 5 s datacenter tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum NodePower {
    /// Normal operation: ticking, placeable, consuming full power.
    #[default]
    Awake,
    /// Parked by consolidation: near-zero power, frozen state.
    Asleep,
}

/// Wall power of a sleeping node (suspend-to-RAM: DRAM refresh plus the
/// BMC). Charged per tick by the cluster's deterministic reduce, so
/// sleeping is cheap but not free and energy totals stay comparable.
pub const SLEEP_POWER_WATTS: f64 = 2.5;

/// Configuration of the failure lifecycle.
///
/// Disabled (the default), crashed nodes never leave the pool and the
/// legacy recover-and-back-off path runs unchanged, draw for draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureLifecycle {
    /// Whether crashes take nodes offline at all.
    pub enabled: bool,
    /// Shortest repair, in ticks (inclusive). Must be at least 1.
    pub mttr_min_ticks: u32,
    /// Longest repair, in ticks (inclusive).
    pub mttr_max_ticks: u32,
    /// Graceful degradation: when a premium re-offer fails while
    /// capacity is short, shed one best-effort placement (bronze first)
    /// so the next re-offer lands in the freed slot.
    pub shed: bool,
}

impl FailureLifecycle {
    /// Lifecycle off: crashed nodes stay in the pool (legacy behavior,
    /// preserved draw-for-draw).
    #[must_use]
    pub fn disabled() -> Self {
        FailureLifecycle { enabled: false, mttr_min_ticks: 1, mttr_max_ticks: 1, shed: false }
    }

    /// The standard repair policy: crashed nodes go offline for a
    /// seeded 12–96-tick repair (1–8 minutes at the datacenter's 5 s
    /// ticks) and load sheds bronze-first under capacity pressure.
    #[must_use]
    pub fn standard() -> Self {
        FailureLifecycle { enabled: true, mttr_min_ticks: 12, mttr_max_ticks: 96, shed: true }
    }

    /// The bounded MTTR for a node crashing at `tick` — a pure function
    /// of `(seed, node, tick)`, so the repair schedule is independent of
    /// worker count and discovery order.
    ///
    /// # Panics
    ///
    /// Panics if the configured MTTR bounds are invalid
    /// (`min < 1` or `max < min`).
    #[must_use]
    pub fn draw_mttr(&self, seed: u64, node: NodeId, tick: u64) -> u32 {
        assert!(self.mttr_min_ticks >= 1, "repairs take at least one tick");
        assert!(
            self.mttr_max_ticks >= self.mttr_min_ticks,
            "MTTR bounds are inverted: [{}, {}]",
            self.mttr_min_ticks,
            self.mttr_max_ticks
        );
        let word = splitmix64(
            seed ^ salt::MTTR
                ^ u64::from(node.0).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ tick.wrapping_mul(0xBF58_476D_1CE4_E5B9),
        );
        let span = u64::from(self.mttr_max_ticks - self.mttr_min_ticks) + 1;
        #[allow(clippy::cast_possible_truncation)]
        let draw = (word % span) as u32;
        self.mttr_min_ticks + draw
    }
}

impl Default for FailureLifecycle {
    fn default() -> Self {
        FailureLifecycle::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mttr_draws_are_pure_and_bounded() {
        let lc = FailureLifecycle::standard();
        for tick in 0..200u64 {
            for node in 0..8u32 {
                let a = lc.draw_mttr(42, NodeId(node), tick);
                let b = lc.draw_mttr(42, NodeId(node), tick);
                assert_eq!(a, b, "draws must be pure in (seed, node, tick)");
                assert!(
                    (lc.mttr_min_ticks..=lc.mttr_max_ticks).contains(&a),
                    "draw {a} escaped [{}, {}]",
                    lc.mttr_min_ticks,
                    lc.mttr_max_ticks
                );
            }
        }
    }

    #[test]
    fn mttr_draws_spread_across_the_range() {
        let lc = FailureLifecycle::standard();
        let draws: Vec<u32> =
            (0..500).map(|t| lc.draw_mttr(7, NodeId(3), t)).collect();
        let lo = *draws.iter().min().unwrap();
        let hi = *draws.iter().max().unwrap();
        assert!(hi - lo > 40, "500 draws should span most of 12..=96: {lo}..{hi}");
        assert_ne!(
            lc.draw_mttr(7, NodeId(0), 5),
            lc.draw_mttr(8, NodeId(0), 5),
            "different seeds must decorrelate repairs"
        );
    }

    #[test]
    fn phases_classify_online() {
        assert!(NodePhase::Online.is_online());
        let gray = GrayState {
            capacity_cap: 0.5,
            ce_multiplier: 8.0,
            clears_at_tick: 40,
            quarantined: false,
        };
        assert!(
            NodePhase::Degraded { gray }.is_online(),
            "gray nodes keep serving — degraded is not offline"
        );
        assert!(NodePhase::Degraded { gray }.is_degraded());
        assert!(!NodePhase::Online.is_degraded());
        for phase in
            [NodePhase::Crashed, NodePhase::Offline { remaining_ticks: 3 }, NodePhase::Rejoining]
        {
            assert!(!phase.is_online());
            assert!(!phase.is_degraded());
        }
    }

    #[test]
    #[should_panic(expected = "at least one tick")]
    fn zero_mttr_is_rejected() {
        let lc = FailureLifecycle { mttr_min_ticks: 0, ..FailureLifecycle::standard() };
        let _ = lc.draw_mttr(1, NodeId(0), 0);
    }
}
