//! Pluggable placement policies: one trait, three competing managers.
//!
//! PR 8 demonstrated the paper's headline claim — extended-margin
//! operation beats conservative scaling — under exactly one placement
//! policy. To tell how much of the energy win survives a different
//! scheduler, placement becomes a [`PlacementPolicy`] trait (the same
//! pluggable-backend shape the hypervisor stack uses for guests) and
//! the suite ships three implementations that compete on
//! energy × crashes × SLA abandons:
//!
//! * [`EnergySlaPolicy`] — the reference: the Nova-style filter +
//!   weigher pipeline of [`Scheduler`], byte-identical to the
//!   pre-trait behavior.
//! * [`ConsolidatePolicy`] — pack-and-power-down consolidation in the
//!   Beloglazov et al. taxonomy: place onto the *lowest*-scored
//!   feasible node (packing), park drained nodes in
//!   [`NodePower::Asleep`](crate::lifecycle::NodePower) at near-zero
//!   power, wake them on demand pressure, and rebalance with
//!   migration-cost-aware drain thresholds.
//! * [`ReliabilityBlindPolicy`] — the ablation:
//!   [`SchedulerWeights::reliability_blind`] weighing plus a filter
//!   with the reliability floor removed, quantifying what the
//!   UniServer reliability signal buys.
//!
//! Policies are stateless: every decision is a pure function of the
//! rack view and the request, and the only draws a policy may make are
//! pure in `(seed, tick)` — so every summary row is byte-stable across
//! worker counts, per the workspace determinism contract.

use std::sync::Arc;

use uniserver_hypervisor::vm::VmConfig;

use crate::index::PlacementIndex;
use crate::node::{ManagedNode, NodeId};
use crate::scheduler::{Scheduler, SchedulerWeights};
use crate::sla::SlaClass;

/// The policy selector: a parseable, copyable name for each shipped
/// policy, used by `OrchestratorConfig` and the `fleet_sim --policy`
/// flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PolicyKind {
    /// The reference energy/SLA scorer (the default).
    #[default]
    EnergySla,
    /// Pack-and-power-down consolidation with sleep states.
    Consolidate,
    /// The reliability-blind ablation.
    ReliabilityBlind,
}

impl PolicyKind {
    /// Every shipped policy, in matrix order.
    pub const ALL: [PolicyKind; 3] =
        [PolicyKind::EnergySla, PolicyKind::Consolidate, PolicyKind::ReliabilityBlind];

    /// Parses a CLI policy name. Returns `None` for unknown names so
    /// drivers can reject them before a run starts.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "energy-sla" => Some(PolicyKind::EnergySla),
            "consolidate" => Some(PolicyKind::Consolidate),
            "reliability-blind" => Some(PolicyKind::ReliabilityBlind),
            _ => None,
        }
    }

    /// The canonical CLI/JSON name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::EnergySla => "energy-sla",
            PolicyKind::Consolidate => "consolidate",
            PolicyKind::ReliabilityBlind => "reliability-blind",
        }
    }

    /// Builds the policy object. `scheduler` carries the configured
    /// weigher coefficients; the blind ablation substitutes its own
    /// weights (that substitution *is* the ablation).
    #[must_use]
    pub fn build(self, scheduler: Scheduler) -> Arc<dyn PlacementPolicy> {
        match self {
            PolicyKind::EnergySla => Arc::new(EnergySlaPolicy::new(scheduler)),
            PolicyKind::Consolidate => Arc::new(ConsolidatePolicy::new(scheduler)),
            PolicyKind::ReliabilityBlind => Arc::new(ReliabilityBlindPolicy::new()),
        }
    }
}

/// What a policy decided for one placement request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementDecision {
    /// Place onto this awake, feasible node.
    Place(NodeId),
    /// Wake this sleeping node and place onto it (demand pressure).
    WakeAndPlace(NodeId),
    /// No feasible node, awake or asleep.
    Reject,
}

/// A consolidation pass's orders: nodes to park (already empty) and
/// nodes to drain (migrate off, then park). Disjoint lists; the cluster
/// executes parks first so drain targets can never be freshly-parked
/// nodes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ManagementPlan {
    /// Empty awake nodes to put to sleep immediately.
    pub park: Vec<NodeId>,
    /// Lightly-loaded nodes to drain towards the pack, then park.
    pub drain: Vec<NodeId>,
    /// Per-VM migration budget: a drain aborts if any resident VM's
    /// predicted pre-copy duration exceeds this (migration-cost-aware
    /// rebalancing — moving a hot VM costs more than the sleep saves).
    pub max_migration_secs: f64,
}

/// A read-only view of the rack for policy decisions: the node slice
/// plus, when the cluster runs indexed placement, the flushed
/// [`PlacementIndex`] whose `BTreeSet` ranking serves *both* ends —
/// best-first for spreading, worst-first for packing. With `index`
/// absent (the `--place linear` reference path) every query falls back
/// to a full scan with the identical `(score, NodeId)` ordering, so
/// indexed and linear placement stay byte-comparable per policy.
#[derive(Debug, Clone, Copy)]
pub struct RackView<'a> {
    /// All managed nodes, dense by `NodeId`.
    pub nodes: &'a [ManagedNode],
    index: Option<&'a PlacementIndex>,
}

impl<'a> RackView<'a> {
    /// A view backed by the flushed placement index.
    #[must_use]
    pub fn indexed(nodes: &'a [ManagedNode], index: &'a PlacementIndex) -> Self {
        RackView { nodes, index: Some(index) }
    }

    /// A view that scans linearly (the reference path).
    #[must_use]
    pub fn linear(nodes: &'a [ManagedNode]) -> Self {
        RackView { nodes, index: None }
    }

    /// Whether `node` can take the request right now: awake and
    /// admitted by the policy's feasibility gates.
    fn feasible<P: PlacementPolicy + ?Sized>(
        node: &ManagedNode,
        policy: &P,
        config: &VmConfig,
        class: SlaClass,
    ) -> bool {
        !node.is_asleep() && policy.admits(node, config, class)
    }

    /// The feasible node with the *highest* `(score, NodeId)` — the
    /// spreading end of the ranking, byte-identical to
    /// [`Scheduler::place_linear`] for the reference policy.
    #[must_use]
    pub fn best<P: PlacementPolicy + ?Sized>(
        &self,
        policy: &P,
        config: &VmConfig,
        class: SlaClass,
        avoid: &[NodeId],
    ) -> Option<NodeId> {
        match self.index {
            Some(index) => index.ranked_rev().find(|id| {
                !avoid.contains(id)
                    && Self::feasible(&self.nodes[id.0 as usize], policy, config, class)
            }),
            None => self
                .nodes
                .iter()
                .filter(|n| {
                    !avoid.contains(&n.id) && Self::feasible(n, policy, config, class)
                })
                .map(|n| (policy.scheduler().weigh(n), n.id))
                .max_by(|a, b| {
                    a.0.partial_cmp(&b.0).expect("weights are finite").then_with(|| a.1.cmp(&b.1))
                })
                .map(|(_, id)| id),
        }
    }

    /// The feasible node with the *lowest* `(score, NodeId)` — the
    /// packing end of the ranking, served by the same `BTreeSet` walked
    /// forwards.
    #[must_use]
    pub fn worst<P: PlacementPolicy + ?Sized>(
        &self,
        policy: &P,
        config: &VmConfig,
        class: SlaClass,
        avoid: &[NodeId],
    ) -> Option<NodeId> {
        match self.index {
            Some(index) => index.ranked().find(|id| {
                !avoid.contains(id)
                    && Self::feasible(&self.nodes[id.0 as usize], policy, config, class)
            }),
            None => self
                .nodes
                .iter()
                .filter(|n| {
                    !avoid.contains(&n.id) && Self::feasible(n, policy, config, class)
                })
                .map(|n| (policy.scheduler().weigh(n), n.id))
                .min_by(|a, b| {
                    a.0.partial_cmp(&b.0).expect("weights are finite").then_with(|| a.1.cmp(&b.1))
                })
                .map(|(_, id)| id),
        }
    }

    /// The best-scored *asleep* node that would admit the request once
    /// woken — the wake-on-demand candidate.
    #[must_use]
    pub fn best_asleep<P: PlacementPolicy + ?Sized>(
        &self,
        policy: &P,
        config: &VmConfig,
        class: SlaClass,
        avoid: &[NodeId],
    ) -> Option<NodeId> {
        let sleeping_fit = |n: &ManagedNode| {
            n.is_asleep() && !avoid.contains(&n.id) && policy.admits(n, config, class)
        };
        match self.index {
            Some(index) => index.ranked_rev().find(|id| sleeping_fit(&self.nodes[id.0 as usize])),
            None => self
                .nodes
                .iter()
                .filter(|n| sleeping_fit(n))
                .map(|n| (policy.scheduler().weigh(n), n.id))
                .max_by(|a, b| {
                    a.0.partial_cmp(&b.0).expect("weights are finite").then_with(|| a.1.cmp(&b.1))
                })
                .map(|(_, id)| id),
        }
    }
}

/// A placement policy: the pluggable brain behind every submit,
/// re-offer, crash recovery and shed decision the cluster makes.
///
/// Implementations are immutable and shared (`Arc<dyn PlacementPolicy>`
/// in the cluster), so decisions must be pure functions of the view and
/// the request — any randomness must be a pure function of
/// `(seed, tick)`.
pub trait PlacementPolicy: std::fmt::Debug + Send + Sync {
    /// The policy's canonical name (matches [`PolicyKind::label`]).
    fn name(&self) -> &'static str;

    /// The weigher whose scores rank the rack (and that the placement
    /// index caches).
    fn scheduler(&self) -> &Scheduler;

    /// Request-dependent feasibility of one node, *ignoring* its power
    /// state (the view applies the sleep gate; the wake path checks
    /// feasibility of sleeping candidates through this too). The
    /// default is the reference filter's awake gates.
    fn admits(&self, node: &ManagedNode, config: &VmConfig, class: SlaClass) -> bool {
        self.scheduler().admits_awake(node, config, class)
    }

    /// One placement decision. The default is the reference behavior:
    /// best-first spreading, never waking anyone.
    fn decide(
        &self,
        view: &RackView<'_>,
        config: &VmConfig,
        class: SlaClass,
        avoid: &[NodeId],
    ) -> PlacementDecision {
        match view.best(self, config, class, avoid) {
            Some(id) => PlacementDecision::Place(id),
            None => PlacementDecision::Reject,
        }
    }

    /// Whether prediction-driven proactive migration runs under this
    /// policy. The blind ablation turns it off — it cannot see the
    /// predictor's signal by definition.
    fn proactive_migration(&self) -> bool {
        true
    }

    /// Whether the policy runs a periodic management pass. When false
    /// (the default) the cluster skips [`PlacementPolicy::manage`]
    /// entirely, keeping the reference path zero-overhead.
    fn manages(&self) -> bool {
        false
    }

    /// Cadence, in ticks, at which the cluster re-scores *asleep* nodes
    /// through the failure predictor — the slow clock that lets a node
    /// parked mid-reliability-dip age its error evidence out and
    /// recover while it sleeps, instead of freezing below the wake
    /// floors forever. `None` (the default) never re-scores, which is
    /// byte-identical to the pre-slow-clock behavior.
    fn sleeper_rescore_every(&self) -> Option<u64> {
        None
    }

    /// The periodic management pass: given the rack view, per-node live
    /// placement counts and the current tick, return park/drain orders.
    /// Draws, if any, must be pure in `(seed, tick)`.
    fn manage(
        &self,
        view: &RackView<'_>,
        occupancy: &[u32],
        tick: u64,
        seed: u64,
    ) -> ManagementPlan {
        let _ = (view, occupancy, tick, seed);
        ManagementPlan::default()
    }
}

/// The reference policy: the energy/SLA filter + weigher pipeline,
/// byte-identical to pre-trait placement.
#[derive(Debug, Clone, Copy)]
pub struct EnergySlaPolicy {
    scheduler: Scheduler,
}

impl EnergySlaPolicy {
    /// Wraps the configured scheduler.
    #[must_use]
    pub fn new(scheduler: Scheduler) -> Self {
        EnergySlaPolicy { scheduler }
    }
}

impl PlacementPolicy for EnergySlaPolicy {
    fn name(&self) -> &'static str {
        PolicyKind::EnergySla.label()
    }

    fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

/// The reliability-blind ablation: weighs with
/// [`SchedulerWeights::reliability_blind`] and admits through
/// [`Scheduler::admits_blind`] — no reliability floor, no proactive
/// migration. Running the matrix with and without this policy prices
/// the UniServer reliability signal.
#[derive(Debug, Clone, Copy)]
pub struct ReliabilityBlindPolicy {
    scheduler: Scheduler,
}

impl ReliabilityBlindPolicy {
    /// The ablation always uses the blind weights; a configured
    /// scheduler would defeat its purpose.
    #[must_use]
    pub fn new() -> Self {
        ReliabilityBlindPolicy { scheduler: Scheduler::new(SchedulerWeights::reliability_blind()) }
    }
}

impl Default for ReliabilityBlindPolicy {
    fn default() -> Self {
        ReliabilityBlindPolicy::new()
    }
}

impl PlacementPolicy for ReliabilityBlindPolicy {
    fn name(&self) -> &'static str {
        PolicyKind::ReliabilityBlind.label()
    }

    fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    fn admits(&self, node: &ManagedNode, config: &VmConfig, class: SlaClass) -> bool {
        self.scheduler.admits_blind(node, config, class)
    }

    fn proactive_migration(&self) -> bool {
        false
    }
}

/// Pack-and-power-down consolidation: place onto the fullest feasible
/// node, periodically park empties (keeping a spare buffer awake) and
/// drain stragglers whose migrations are cheap, wake sleepers on demand
/// pressure. Closes the energy-proportionality gap: an idle node burns
/// a large fraction of peak power, a parked one draws
/// [`crate::lifecycle::SLEEP_POWER_WATTS`].
#[derive(Debug, Clone, Copy)]
pub struct ConsolidatePolicy {
    scheduler: Scheduler,
    /// Management pass period, in ticks.
    pub rebalance_every: u64,
    /// Empty nodes kept awake as a demand buffer (hysteresis against
    /// park/wake thrash).
    pub spare_nodes: usize,
    /// Nodes drained per management pass — one, so a pass can never
    /// ping-pong VMs between two draining nodes.
    pub max_drains_per_pass: usize,
    /// Only nodes at or below this many placements are drain
    /// candidates.
    pub drain_max_placements: u32,
    /// Per-VM predicted migration-duration budget for drains.
    pub max_migration_secs: f64,
    /// Slow-clock cadence, in ticks, at which the cluster re-runs the
    /// failure predictor over *asleep* nodes so a mid-dip park recovers
    /// in its sleep (silent decay ages the error evidence out).
    pub sleeper_rescore_every: u64,
}

impl ConsolidatePolicy {
    /// Production defaults: rebalance every 12 ticks (one minute at 5 s
    /// ticks), two spares, drain one ≤2-placement node per pass, only
    /// move VMs whose predicted pre-copy completes within 10 s, and
    /// re-score sleepers every 60 ticks (five minutes at 5 s ticks).
    #[must_use]
    pub fn new(scheduler: Scheduler) -> Self {
        ConsolidatePolicy {
            scheduler,
            rebalance_every: 12,
            spare_nodes: 2,
            max_drains_per_pass: 1,
            drain_max_placements: 2,
            max_migration_secs: 10.0,
            sleeper_rescore_every: 60,
        }
    }

    /// Whether parking `node` is safe. The availability wake floor must
    /// pass *right now*: a sleeping node accrues neither uptime nor
    /// downtime, so availability freezes at park time and a node parked
    /// below Gold's floor could never serve premium wakes. Reliability
    /// is deliberately *not* gated any more — the cluster re-scores
    /// sleepers on a slow clock
    /// ([`PlacementPolicy::sleeper_rescore_every`]), so a node parked
    /// mid-reliability-dip ages its error evidence out while asleep and
    /// wakes recovered instead of freezing below the floors forever.
    /// Gray nodes never park: a parked node is invisible to the health
    /// watchdog's probes, and its fault clock must keep running in view.
    fn parkable(&self, node: &ManagedNode) -> bool {
        !node.is_degraded()
            && node.metrics().availability >= SlaClass::Gold.min_availability() - 1e-12
    }

    /// Reliability band (quarters of the unit interval, top band
    /// `[0.75, 1.0]`) used as the pack walk's primary key.
    fn reliability_band(reliability: f64) -> u8 {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let band = (reliability.clamp(0.0, 1.0) * 4.0).floor() as u8;
        band.min(3)
    }

    /// The pack walk's target: among feasible awake nodes, the highest
    /// reliability *band* first, then the legacy lowest `(score, id)`
    /// within that band. Pure worst-first packing concentrated load on
    /// exactly the nodes the predictor was souring on — low reliability
    /// drags the weigher score down, so the walk kept piling VMs onto
    /// the flakiest node and proactive migration kept hauling them back
    /// off. Banding keeps the bin-packing behavior between comparable
    /// nodes but never prefers a node a full band less reliable.
    /// Degraded nodes are never packing targets: their capacity cap is
    /// a symptom, not a bin to fill. The same linear scan serves the
    /// indexed and linear placement paths, so both stay byte-identical.
    fn pack_target(
        &self,
        view: &RackView<'_>,
        config: &VmConfig,
        class: SlaClass,
        avoid: &[NodeId],
    ) -> Option<NodeId> {
        view.nodes
            .iter()
            .filter(|n| {
                !n.is_asleep()
                    && !n.is_degraded()
                    && !avoid.contains(&n.id)
                    && self.admits(n, config, class)
            })
            .map(|n| (Self::reliability_band(n.metrics().reliability), self.scheduler.weigh(n), n.id))
            .min_by(|a, b| {
                b.0.cmp(&a.0)
                    .then_with(|| a.1.partial_cmp(&b.1).expect("weights are finite"))
                    .then_with(|| a.2.cmp(&b.2))
            })
            .map(|(_, _, id)| id)
    }
}

impl PlacementPolicy for ConsolidatePolicy {
    fn name(&self) -> &'static str {
        PolicyKind::Consolidate.label()
    }

    fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// The reference gates *plus* the hypervisor's exact launch
    /// predicate. The coarse capacity filter only checks the relaxed
    /// domain; a packed node whose *reliable* domain is exhausted still
    /// passes it, and because packing walks worst-first, that node stays
    /// the first candidate — a black hole where every launch fails while
    /// sleepers idle. The precise check drops it from the walk instead.
    fn admits(&self, node: &ManagedNode, config: &VmConfig, class: SlaClass) -> bool {
        self.scheduler.admits_awake(node, config, class) && node.hypervisor.can_host(config)
    }

    fn decide(
        &self,
        view: &RackView<'_>,
        config: &VmConfig,
        class: SlaClass,
        avoid: &[NodeId],
    ) -> PlacementDecision {
        // Pack: the lowest-scored awake node that still fits, within the
        // highest reliability band on offer.
        if let Some(id) = self.pack_target(view, config, class, avoid) {
            return PlacementDecision::Place(id);
        }
        // Demand pressure: wake the best sleeping candidate.
        match view.best_asleep(self, config, class, avoid) {
            Some(id) => PlacementDecision::WakeAndPlace(id),
            None => PlacementDecision::Reject,
        }
    }

    fn manages(&self) -> bool {
        true
    }

    fn sleeper_rescore_every(&self) -> Option<u64> {
        Some(self.sleeper_rescore_every)
    }

    fn manage(
        &self,
        view: &RackView<'_>,
        occupancy: &[u32],
        tick: u64,
        _seed: u64,
    ) -> ManagementPlan {
        if !tick.is_multiple_of(self.rebalance_every) {
            return ManagementPlan::default();
        }
        // Empty awake nodes, best-scored first: the top `spare_nodes`
        // stay awake as the demand buffer, the rest park. Only
        // [`ConsolidatePolicy::parkable`] nodes qualify — gray nodes
        // stay awake in the watchdog's view, availability-sunk nodes
        // stay awake because that metric freezes at park time. Scores
        // come from the policy's own weigher so the selection is
        // identical under indexed and linear placement.
        let mut empties: Vec<(f64, NodeId)> = view
            .nodes
            .iter()
            .filter(|n| {
                n.is_online()
                    && !n.is_asleep()
                    && occupancy[n.id.0 as usize] == 0
                    && self.parkable(n)
            })
            .map(|n| (self.scheduler.weigh(n), n.id))
            .collect();
        empties.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).expect("weights are finite").then_with(|| b.1.cmp(&a.1))
        });
        let park: Vec<NodeId> =
            empties.iter().skip(self.spare_nodes).map(|&(_, id)| id).collect();

        // Drain the lightest straggler (lowest occupancy, then lowest
        // id) so its handful of VMs join the pack and it can park next.
        // Draining ends in a park, so the same parkability gate applies.
        let mut stragglers: Vec<(u32, NodeId)> = view
            .nodes
            .iter()
            .filter(|n| {
                n.is_online()
                    && !n.is_asleep()
                    && (1..=self.drain_max_placements).contains(&occupancy[n.id.0 as usize])
                    && self.parkable(n)
            })
            .map(|n| (occupancy[n.id.0 as usize], n.id))
            .collect();
        stragglers.sort_unstable();
        let drain: Vec<NodeId> =
            stragglers.iter().take(self.max_drains_per_pass).map(|&(_, id)| id).collect();

        ManagementPlan { park, drain, max_migration_secs: self.max_migration_secs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifecycle::{GrayState, NodePhase, NodePower};
    use uniserver_platform::part::PartSpec;

    fn nodes(n: usize) -> Vec<ManagedNode> {
        (0..n)
            .map(|i| {
                #[allow(clippy::cast_possible_truncation)]
                ManagedNode::provision(NodeId(i as u32), PartSpec::arm_microserver(), i as u64)
            })
            .collect()
    }

    #[test]
    fn policy_names_parse_and_roundtrip() {
        for kind in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
            assert_eq!(kind.build(Scheduler::default()).name(), kind.label());
        }
        assert_eq!(PolicyKind::parse("spread"), None);
        assert_eq!(PolicyKind::parse(""), None);
        assert_eq!(PolicyKind::default(), PolicyKind::EnergySla);
    }

    #[test]
    fn reference_policy_decides_exactly_like_place_linear() {
        let mut ns = nodes(4);
        for _ in 0..3 {
            ns[3].launch(VmConfig::ldbc_benchmark()).unwrap();
        }
        ns[1].reliability = 0.4;
        let scheduler = Scheduler::default();
        let policy = EnergySlaPolicy::new(scheduler);
        let cfg = VmConfig::ldbc_benchmark();
        for class in [SlaClass::Gold, SlaClass::Silver, SlaClass::Bronze] {
            let expected = match scheduler.place_linear(ns.iter(), &cfg, class) {
                Some(id) => PlacementDecision::Place(id),
                None => PlacementDecision::Reject,
            };
            assert_eq!(policy.decide(&RackView::linear(&ns), &cfg, class, &[]), expected);
        }
    }

    #[test]
    fn blind_policy_places_onto_quarantine_worthy_nodes() {
        // One node, reliability collapsed below even Bronze's 0.3 floor:
        // the reference policy quarantines it (no placement at any
        // class); the ablation, blind to the signal, happily uses it.
        let mut ns = nodes(1);
        ns[0].reliability = 0.2;
        let reference = EnergySlaPolicy::new(Scheduler::default());
        let blind = ReliabilityBlindPolicy::new();
        let cfg = VmConfig::ldbc_benchmark();
        let view = RackView::linear(&ns);
        for class in [SlaClass::Gold, SlaClass::Silver, SlaClass::Bronze] {
            assert_eq!(
                reference.decide(&view, &cfg, class, &[]),
                PlacementDecision::Reject,
                "the reference policy must quarantine at {class}"
            );
            assert_eq!(
                blind.decide(&view, &cfg, class, &[]),
                PlacementDecision::Place(NodeId(0)),
                "the blind ablation must place at {class}"
            );
        }
        assert!(!blind.proactive_migration(), "blind cannot act on predictions");
    }

    #[test]
    fn consolidation_packs_where_the_reference_spreads() {
        let mut ns = nodes(2);
        ns[0].launch(VmConfig::ldbc_benchmark()).unwrap();
        let scheduler = Scheduler::default();
        let cfg = VmConfig::ldbc_benchmark();
        let view = RackView::linear(&ns);
        let reference = EnergySlaPolicy::new(scheduler);
        let pack = ConsolidatePolicy::new(scheduler);
        assert_eq!(
            reference.decide(&view, &cfg, SlaClass::Bronze, &[]),
            PlacementDecision::Place(NodeId(1)),
            "the reference spreads onto the empty node"
        );
        assert_eq!(
            pack.decide(&view, &cfg, SlaClass::Bronze, &[]),
            PlacementDecision::Place(NodeId(0)),
            "consolidation packs onto the loaded node"
        );
    }

    #[test]
    fn consolidation_wakes_a_sleeper_under_demand_pressure() {
        let mut ns = nodes(2);
        // Node 0 is full; node 1 sleeps.
        for _ in 0..4 {
            ns[0].launch(VmConfig::ldbc_benchmark()).unwrap();
        }
        ns[1].power = NodePower::Asleep;
        let pack = ConsolidatePolicy::new(Scheduler::default());
        let cfg = VmConfig::ldbc_benchmark();
        assert_eq!(
            pack.decide(&RackView::linear(&ns), &cfg, SlaClass::Bronze, &[]),
            PlacementDecision::WakeAndPlace(NodeId(1)),
            "demand pressure must wake the sleeper"
        );
        // The reference policy never wakes anyone.
        let reference = EnergySlaPolicy::new(Scheduler::default());
        assert_eq!(
            reference.decide(&RackView::linear(&ns), &cfg, SlaClass::Bronze, &[]),
            PlacementDecision::Reject
        );
    }

    #[test]
    fn consolidation_skips_launch_infeasible_nodes_the_coarse_filter_admits() {
        use uniserver_hypervisor::hypervisor::{Hypervisor, HypervisorConfig};
        use uniserver_platform::node::ServerNode;
        use uniserver_units::Bytes;

        // Node 0's reliable domain exhausts after one guest (inflated
        // fixed overhead), while its relaxed domain and vCPU budget
        // still pass the coarse `fits` check. Node 1 sleeps.
        let mut ns = nodes(2);
        ns[0].hypervisor = Hypervisor::with_config(
            ServerNode::new(PartSpec::arm_microserver(), 0),
            HypervisorConfig { per_vm_fixed: Bytes::gib(9), ..HypervisorConfig::default() },
        );
        let cfg = VmConfig::ldbc_benchmark();
        ns[0].launch(cfg.clone()).unwrap();
        ns[1].power = NodePower::Asleep;
        assert!(ns[0].fits(&cfg), "the coarse filter still admits the packed node");
        assert!(!ns[0].hypervisor.can_host(&cfg), "but a launch there would fail");

        // Without the precise gate, packing would keep returning node 0
        // — the black hole where every launch fails. With it, demand
        // pressure falls through to the sleeper.
        let pack = ConsolidatePolicy::new(Scheduler::default());
        assert_eq!(
            pack.decide(&RackView::linear(&ns), &cfg, SlaClass::Bronze, &[]),
            PlacementDecision::WakeAndPlace(NodeId(1)),
            "consolidation must skip the launch-infeasible node"
        );
    }

    #[test]
    fn dipped_nodes_park_but_gray_nodes_never_do() {
        // A mid-reliability-dip empty *does* park now: the sleeper slow
        // clock ([`PlacementPolicy::sleeper_rescore_every`]) re-scores
        // it while asleep, so the dip ages out in its sleep and the park
        // is recoverable. Gray (Degraded-phase) nodes still never park
        // or drain — a parked node is invisible to the watchdog probes
        // that must drive it through quarantine and probation.
        let gray = GrayState {
            capacity_cap: 0.5,
            ce_multiplier: 8.0,
            clears_at_tick: 1000,
            quarantined: false,
        };
        let mut ns = nodes(6);
        ns[0].reliability = 0.25; // dipped — recoverable asleep, parks
        ns[1].phase = NodePhase::Degraded { gray }; // gray — never parks
        ns[5].launch(VmConfig::ldbc_benchmark()).unwrap();
        ns[5].phase = NodePhase::Degraded { gray }; // gray straggler
        let occupancy = [0, 0, 0, 0, 0, 1];
        let pack = ConsolidatePolicy::new(Scheduler::default());
        let plan = pack.manage(&RackView::linear(&ns), &occupancy, 0, 7);
        // Healthy empties 2..=4 tie on score and sort desc by id; the
        // two highest-id ones stay as spares, then come node 2 and the
        // low-scored dipped node 0. The gray empty never appears.
        assert_eq!(
            plan.park,
            vec![NodeId(2), NodeId(0)],
            "the dip parks (recoverable), the gray empty must not"
        );
        assert!(
            plan.drain.is_empty(),
            "a gray straggler must not be drained into a park"
        );
    }

    #[test]
    fn packing_prefers_the_higher_reliability_band_and_skips_gray_nodes() {
        let mut ns = nodes(3);
        // Node 0: heaviest load, a full band less reliable — the legacy
        // worst-first pick. Node 1: lighter, pristine. Node 2: lowest
        // score in the top band, but serving gray.
        for _ in 0..2 {
            ns[0].launch(VmConfig::ldbc_benchmark()).unwrap();
            ns[2].launch(VmConfig::ldbc_benchmark()).unwrap();
        }
        ns[1].launch(VmConfig::ldbc_benchmark()).unwrap();
        ns[0].reliability = 0.65; // band 2; node 1 sits in band 3
        ns[2].phase = NodePhase::Degraded {
            gray: GrayState {
                capacity_cap: 1.0,
                ce_multiplier: 1.0,
                clears_at_tick: 1000,
                quarantined: false,
            },
        };
        let pack = ConsolidatePolicy::new(Scheduler::default());
        let cfg = VmConfig::ldbc_benchmark();
        let view = RackView::linear(&ns);
        // The raw ranking would still pack onto the flaky node …
        assert_eq!(
            view.worst(&pack, &cfg, SlaClass::Bronze, &[]),
            Some(NodeId(0)),
            "low reliability drags the score down, so the raw walk picks node 0"
        );
        // … but the band tie-break holds the pack inside the healthy
        // band, and the gray node (cheapest there) is never a target.
        assert_eq!(
            pack.decide(&view, &cfg, SlaClass::Bronze, &[]),
            PlacementDecision::Place(NodeId(1)),
            "pack within the top band, skipping the gray node"
        );
    }

    #[test]
    fn manage_parks_empties_beyond_the_spares_and_drains_the_lightest() {
        let mut ns = nodes(6);
        // Nodes 0..=2 loaded (0 heaviest), 3..=5 empty.
        for _ in 0..3 {
            ns[0].launch(VmConfig::ldbc_benchmark()).unwrap();
        }
        for _ in 0..2 {
            ns[1].launch(VmConfig::ldbc_benchmark()).unwrap();
        }
        ns[2].launch(VmConfig::ldbc_benchmark()).unwrap();
        let occupancy = [3, 2, 1, 0, 0, 0];
        let pack = ConsolidatePolicy::new(Scheduler::default());
        let plan = pack.manage(&RackView::linear(&ns), &occupancy, 0, 42);
        // Identical empties tie on score; descending (score, id) keeps
        // the two highest-id spares awake and parks the rest.
        assert_eq!(plan.park, vec![NodeId(3)]);
        // The lightest loaded node (node 2, one placement) drains.
        assert_eq!(plan.drain, vec![NodeId(2)]);
        assert!(plan.max_migration_secs > 0.0);
        // Off-period ticks are a no-op.
        assert_eq!(pack.manage(&RackView::linear(&ns), &occupancy, 5, 42), ManagementPlan::default());
    }
}
