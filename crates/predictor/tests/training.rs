//! Training-behaviour tests: convergence on clean data and the mode
//! advisor's ordering guarantees.

use uniserver_predictor::features::FeatureVector;
use uniserver_predictor::harness::{Dataset, Sample};
use uniserver_predictor::{LogisticModel, ModeAdvisor, OperatingMode};
use uniserver_units::Celsius;

/// A linearly separable dataset: crashes iff the undervolt offset
/// exceeds 10 % (feature 0 > 1.0), everything else benign.
fn separable() -> Dataset {
    let mut samples = Vec::new();
    for i in 0..40 {
        let offset = 0.005 * f64::from(i); // 0 %..19.5 %
        samples.push(Sample {
            features: FeatureVector::from_observables(offset, 0.4, Celsius::new(26.0), 0.0),
            crashed: offset > 0.10,
        });
    }
    Dataset { samples }
}

#[test]
fn logistic_training_converges_on_separable_data() {
    let data = separable();
    let model = LogisticModel::fit(&data, 200, 1.0);
    // Perfect separation is achievable and the optimizer must find it.
    assert_eq!(model.accuracy(&data), 1.0, "separable data must be fit exactly");
    assert!(model.auc(&data) > 0.999, "AUC {}", model.auc(&data));
    // The ridge keeps the weights finite even though the MLE diverges.
    for w in model.weights {
        assert!(w.is_finite());
    }
    assert!(model.bias.is_finite());
    // Probabilities saturate on the right sides of the boundary.
    let p_safe = model.predict_proba(&FeatureVector::from_observables(
        0.02,
        0.4,
        Celsius::new(26.0),
        0.0,
    ));
    let p_deep = model.predict_proba(&FeatureVector::from_observables(
        0.18,
        0.4,
        Celsius::new(26.0),
        0.0,
    ));
    assert!(p_safe < 0.1, "shallow side must be confidently safe, got {p_safe}");
    assert!(p_deep > 0.9, "deep side must be confidently unsafe, got {p_deep}");
}

#[test]
fn logistic_fit_is_deterministic_and_order_independent() {
    let data = separable();
    let mut reversed = Dataset { samples: data.samples.clone() };
    reversed.samples.reverse();
    let a = LogisticModel::fit(&data, 100, 1.0);
    let b = LogisticModel::fit(&data, 100, 1.0);
    let c = LogisticModel::fit(&reversed, 100, 1.0);
    assert_eq!(a, b, "same data, same model");
    for (wa, wc) in a.weights.iter().zip(c.weights) {
        assert!((wa - wc).abs() < 1e-9, "sample order must not matter: {wa} vs {wc}");
    }
}

#[test]
fn mode_advisor_risk_is_monotone_in_depth() {
    let model = LogisticModel::fit(&separable(), 200, 1.0);
    let advisor = ModeAdvisor::new(model, 0.05);
    let mut last = -1.0;
    for &off in &advisor.candidate_offsets {
        let risk = advisor.risk(off, 0.4, Celsius::new(26.0), 0.0);
        assert!(
            risk >= last - 1e-12,
            "risk must not fall as the undervolt deepens: {last} -> {risk} at {off}"
        );
        last = risk;
    }
}

#[test]
fn mode_advisor_tolerance_orders_advice() {
    // A tighter risk budget can never advise a deeper undervolt, and the
    // advised mode escalates Safe → Balanced → LowPower with depth.
    let model = LogisticModel::fit(&separable(), 200, 1.0);
    let strict = ModeAdvisor::new(model.clone(), 0.001);
    let relaxed = ModeAdvisor::new(model, 0.4);
    let w = uniserver_platform::workload::WorkloadProfile::spec_bzip2();
    let pdn = uniserver_silicon::droop::DroopModel::typical_server_pdn();
    let a = strict.advise(&w, &pdn, Celsius::new(26.0), 0.0);
    let b = relaxed.advise(&w, &pdn, Celsius::new(26.0), 0.0);
    assert!(a.offset_fraction <= b.offset_fraction + 1e-12);
    assert!(a.predicted_risk <= strict.risk_tolerance + 1e-9);
    assert!(b.predicted_risk <= relaxed.risk_tolerance + 1e-9);
    let rank = |m: OperatingMode| match m {
        OperatingMode::Safe => 0,
        OperatingMode::Balanced => 1,
        OperatingMode::LowPower | OperatingMode::HighPerformance => 2,
    };
    assert!(rank(a.mode) <= rank(b.mode), "{:?} must not exceed {:?}", a.mode, b.mode);
}
