//! Gaussian naive-Bayes comparator.
//!
//! The paper's related-work section surveys Bayesian failure detection
//! ([21]); this model doubles as the reproduction's second opinion: a
//! generative classifier with per-class Gaussian feature likelihoods.
//! It trades the logistic model's discriminative sharpness for
//! closed-form training — useful as a sanity cross-check in tests and as
//! a cheap online-updatable alternative.

use serde::{Deserialize, Serialize};

use crate::features::{FeatureVector, FEATURE_DIM};
use crate::harness::Dataset;

/// Per-class Gaussian statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct ClassStats {
    mean: [f64; FEATURE_DIM],
    var: [f64; FEATURE_DIM],
    prior: f64,
}

/// A trained Gaussian naive-Bayes classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianNaiveBayes {
    crash: ClassStats,
    survive: ClassStats,
}

impl GaussianNaiveBayes {
    /// Fits class-conditional Gaussians to the dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset lacks either class (a generative model
    /// needs both).
    #[must_use]
    pub fn fit(data: &Dataset) -> Self {
        let (pos, neg): (Vec<&FeatureVector>, Vec<&FeatureVector>) = {
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for s in &data.samples {
                if s.crashed {
                    pos.push(&s.features);
                } else {
                    neg.push(&s.features);
                }
            }
            (pos, neg)
        };
        assert!(!pos.is_empty(), "dataset has no crash samples");
        assert!(!neg.is_empty(), "dataset has no survival samples");
        let n = data.samples.len() as f64;
        GaussianNaiveBayes {
            crash: Self::stats(&pos, pos.len() as f64 / n),
            survive: Self::stats(&neg, neg.len() as f64 / n),
        }
    }

    fn stats(rows: &[&FeatureVector], prior: f64) -> ClassStats {
        let n = rows.len() as f64;
        let mut mean = [0.0; FEATURE_DIM];
        for r in rows {
            for (m, x) in mean.iter_mut().zip(r.values) {
                *m += x / n;
            }
        }
        let mut var = [1e-3; FEATURE_DIM]; // variance floor for stability
        for r in rows {
            for ((v, x), m) in var.iter_mut().zip(r.values).zip(mean) {
                *v += (x - m) * (x - m) / n;
            }
        }
        ClassStats { mean, var, prior }
    }

    fn log_likelihood(stats: &ClassStats, f: &FeatureVector) -> f64 {
        let mut ll = stats.prior.max(1e-12).ln();
        for ((x, m), v) in f.values.iter().zip(stats.mean).zip(stats.var) {
            ll += -0.5 * ((x - m) * (x - m) / v + v.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }

    /// Posterior crash probability.
    #[must_use]
    pub fn predict_proba(&self, f: &FeatureVector) -> f64 {
        let lc = Self::log_likelihood(&self.crash, f);
        let ls = Self::log_likelihood(&self.survive, f);
        // Softmax over the two log-joint densities.
        let m = lc.max(ls);
        let ec = (lc - m).exp();
        let es = (ls - m).exp();
        ec / (ec + es)
    }

    /// Hard classification at the 0.5 threshold.
    #[must_use]
    pub fn predict(&self, f: &FeatureVector) -> bool {
        self.predict_proba(f) >= 0.5
    }

    /// Classification accuracy on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        assert!(!data.samples.is_empty(), "empty dataset");
        let correct =
            data.samples.iter().filter(|s| self.predict(&s.features) == s.crashed).count();
        correct as f64 / data.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TrainingHarness;
    use crate::logistic::LogisticModel;
    use uniserver_units::Celsius;

    #[test]
    fn bayes_learns_the_same_boundary_shape() {
        let data = TrainingHarness::quick().generate(3);
        let (train, test) = data.split(0.8);
        let nb = GaussianNaiveBayes::fit(&train);
        assert!(nb.accuracy(&test) > 0.8, "accuracy {}", nb.accuracy(&test));
        let p = |off: f64| {
            nb.predict_proba(&FeatureVector::from_observables(off, 0.5, Celsius::new(25.0), 0.0))
        };
        // Compare in-distribution depths: a generative Gaussian model is
        // only trustworthy where it saw data (its quadratic boundary can
        // fold back in the far tails, unlike the logistic model).
        assert!(p(0.05) < p(0.13), "risk must grow with depth");
    }

    #[test]
    fn discriminative_model_is_at_least_competitive() {
        let data = TrainingHarness::quick().generate(3);
        let (train, test) = data.split(0.8);
        let nb = GaussianNaiveBayes::fit(&train);
        let lr = LogisticModel::fit(&train, 150, 0.5);
        // Logistic regression should not lose badly to naive Bayes here.
        assert!(lr.accuracy(&test) + 0.05 >= nb.accuracy(&test));
    }

    #[test]
    #[should_panic(expected = "no crash samples")]
    fn single_class_data_panics() {
        use crate::harness::Sample;
        let d: Dataset = (0..4)
            .map(|_| Sample {
                features: FeatureVector::from_observables(0.0, 0.0, Celsius::new(25.0), 0.0),
                crashed: false,
            })
            .collect();
        let _ = GaussianNaiveBayes::fit(&d);
    }
}
