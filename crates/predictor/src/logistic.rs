//! Logistic-regression failure-probability model.
//!
//! Small, dependency-free and entirely adequate: the crash boundary in
//! feature space (offset vs stress) is close to linear, which is exactly
//! the regime logistic regression handles well. Trained with plain SGD
//! over epochs; evaluated with accuracy, log-loss and AUC.

use serde::{Deserialize, Serialize};

use uniserver_silicon::math::sigmoid;

use crate::features::{FeatureVector, FEATURE_DIM};
use crate::harness::Dataset;

/// A trained logistic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    /// Per-feature weights.
    pub weights: [f64; FEATURE_DIM],
    /// Bias term.
    pub bias: f64,
}

impl LogisticModel {
    /// An untrained (all-zero) model predicting 0.5 everywhere.
    #[must_use]
    pub fn zeroed() -> Self {
        LogisticModel { weights: [0.0; FEATURE_DIM], bias: 0.0 }
    }

    /// Fits by SGD: `epochs` passes over the dataset at learning rate
    /// `lr` (decayed 1/√epoch).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or hyper-parameters are
    /// non-positive.
    #[must_use]
    pub fn fit(data: &Dataset, epochs: usize, lr: f64) -> Self {
        assert!(!data.samples.is_empty(), "cannot fit on an empty dataset");
        assert!(epochs > 0, "need at least one epoch");
        assert!(lr > 0.0, "learning rate must be positive");

        let mut model = LogisticModel::zeroed();
        for epoch in 0..epochs {
            let rate = lr / ((1 + epoch) as f64).sqrt();
            for s in &data.samples {
                let p = model.predict_proba(&s.features);
                let err = p - if s.crashed { 1.0 } else { 0.0 };
                for (w, x) in model.weights.iter_mut().zip(s.features.values) {
                    *w -= rate * err * x;
                }
                model.bias -= rate * err;
            }
        }
        model
    }

    /// Predicted crash probability for a feature vector.
    #[must_use]
    pub fn predict_proba(&self, f: &FeatureVector) -> f64 {
        let z: f64 =
            self.weights.iter().zip(f.values).map(|(w, x)| w * x).sum::<f64>() + self.bias;
        sigmoid(z)
    }

    /// Hard classification at the 0.5 threshold.
    #[must_use]
    pub fn predict(&self, f: &FeatureVector) -> bool {
        self.predict_proba(f) >= 0.5
    }

    /// Classification accuracy on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        assert!(!data.samples.is_empty(), "empty dataset");
        let correct =
            data.samples.iter().filter(|s| self.predict(&s.features) == s.crashed).count();
        correct as f64 / data.samples.len() as f64
    }

    /// Mean negative log-likelihood on a dataset (lower is better).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        assert!(!data.samples.is_empty(), "empty dataset");
        let eps = 1e-12;
        let total: f64 = data
            .samples
            .iter()
            .map(|s| {
                let p = self.predict_proba(&s.features).clamp(eps, 1.0 - eps);
                if s.crashed {
                    -p.ln()
                } else {
                    -(1.0 - p).ln()
                }
            })
            .sum();
        total / data.samples.len() as f64
    }

    /// Area under the ROC curve via the rank-sum (Mann–Whitney)
    /// formulation. Returns 0.5 when one class is absent.
    #[must_use]
    pub fn auc(&self, data: &Dataset) -> f64 {
        let mut scored: Vec<(f64, bool)> = data
            .samples
            .iter()
            .map(|s| (self.predict_proba(&s.features), s.crashed))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("probabilities are finite"));
        let positives = scored.iter().filter(|(_, y)| *y).count() as f64;
        let negatives = scored.len() as f64 - positives;
        if positives == 0.0 || negatives == 0.0 {
            return 0.5;
        }
        let mut rank_sum = 0.0;
        for (rank, (_, y)) in scored.iter().enumerate() {
            if *y {
                rank_sum += (rank + 1) as f64;
            }
        }
        (rank_sum - positives * (positives + 1.0) / 2.0) / (positives * negatives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TrainingHarness;

    fn trained() -> (LogisticModel, Dataset) {
        let data = TrainingHarness::quick().generate(3);
        let (train, test) = data.split(0.8);
        (LogisticModel::fit(&train, 150, 0.5), test)
    }

    #[test]
    fn model_beats_chance_comfortably() {
        let (model, test) = trained();
        let acc = model.accuracy(&test);
        let auc = model.auc(&test);
        assert!(acc > 0.85, "accuracy {acc}");
        assert!(auc > 0.9, "AUC {auc}");
    }

    #[test]
    fn training_reduces_log_loss() {
        let data = TrainingHarness::quick().generate(2);
        let untrained = LogisticModel::zeroed();
        let model = LogisticModel::fit(&data, 100, 0.5);
        assert!(model.log_loss(&data) < untrained.log_loss(&data) * 0.8);
    }

    #[test]
    fn deeper_undervolt_predicts_higher_risk() {
        let (model, _) = trained();
        use uniserver_units::Celsius;
        let p = |off: f64| {
            model.predict_proba(&FeatureVector::from_observables(
                off,
                0.5,
                Celsius::new(55.0),
                0.0,
            ))
        };
        assert!(p(0.02) < p(0.10));
        assert!(p(0.10) < p(0.18));
        assert!(p(0.02) < 0.1, "shallow offsets are safe: {}", p(0.02));
        assert!(p(0.18) > 0.9, "deep offsets are fatal: {}", p(0.18));
    }

    #[test]
    fn stressful_workloads_raise_risk_at_the_margin() {
        let (model, _) = trained();
        use uniserver_units::Celsius;
        let marginal = 0.12;
        let quiet = model.predict_proba(&FeatureVector::from_observables(
            marginal,
            0.1,
            Celsius::new(55.0),
            0.0,
        ));
        let loud = model.predict_proba(&FeatureVector::from_observables(
            marginal,
            0.9,
            Celsius::new(55.0),
            0.0,
        ));
        assert!(loud > quiet, "stress must raise predicted risk ({loud} vs {quiet})");
    }

    #[test]
    fn untrained_model_is_uninformative() {
        let m = LogisticModel::zeroed();
        use uniserver_units::Celsius;
        let f = FeatureVector::from_observables(0.1, 0.5, Celsius::new(45.0), 0.0);
        assert_eq!(m.predict_proba(&f), 0.5);
    }

    #[test]
    fn auc_degenerates_gracefully() {
        use crate::harness::Sample;
        use uniserver_units::Celsius;
        let one_class: Dataset = (0..5)
            .map(|_| Sample {
                features: FeatureVector::from_observables(0.1, 0.5, Celsius::new(45.0), 0.0),
                crashed: false,
            })
            .collect();
        assert_eq!(LogisticModel::zeroed().auc(&one_class), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn accuracy_on_empty_panics() {
        let _ = LogisticModel::zeroed().accuracy(&Dataset::default());
    }
}
