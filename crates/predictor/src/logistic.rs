//! Logistic-regression failure-probability model.
//!
//! Small, dependency-free and entirely adequate: the crash boundary in
//! feature space (offset vs stress) is close to linear, which is exactly
//! the regime logistic regression handles well. Trained by damped
//! Newton/IRLS iterations; evaluated with accuracy, log-loss and AUC.

use serde::{Deserialize, Serialize};

use uniserver_silicon::math::sigmoid;

use crate::features::{FeatureVector, FEATURE_DIM};
use crate::harness::Dataset;

/// A trained logistic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    /// Per-feature weights.
    pub weights: [f64; FEATURE_DIM],
    /// Bias term.
    pub bias: f64,
}

/// Solves the symmetric positive-definite system `a · x = b` by Gaussian
/// elimination with partial pivoting (the Newton step of [`LogisticModel::fit`]).
fn solve<const N: usize>(mut a: [[f64; N]; N], mut b: [f64; N]) -> [f64; N] {
    for col in 0..N {
        let pivot = (col..N)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty column");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        // The ridge term guarantees a strictly positive diagonal, but be
        // defensive against degenerate accumulations.
        if diag.abs() < 1e-30 {
            continue;
        }
        for row in col + 1..N {
            let factor = a[row][col] / diag;
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = pivot_rows[col];
            for (cell, pivot_cell) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *cell -= factor * pivot_cell;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = [0.0; N];
    for col in (0..N).rev() {
        let mut acc = b[col];
        for k in col + 1..N {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-30 { 0.0 } else { acc / a[col][col] };
    }
    x
}

impl LogisticModel {
    /// An untrained (all-zero) model predicting 0.5 everywhere.
    #[must_use]
    pub fn zeroed() -> Self {
        LogisticModel { weights: [0.0; FEATURE_DIM], bias: 0.0 }
    }

    /// Fits by damped Newton/IRLS: up to `epochs` iterations with step
    /// damping `lr` (1.0 = full Newton steps), stopping early once the
    /// step norm vanishes.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or hyper-parameters are
    /// non-positive.
    #[must_use]
    pub fn fit(data: &Dataset, epochs: usize, lr: f64) -> Self {
        assert!(!data.samples.is_empty(), "cannot fit on an empty dataset");
        assert!(epochs > 0, "need at least one epoch");
        assert!(lr > 0.0, "learning rate must be positive");

        // Damped Newton iterations (IRLS) on the ridge-regularized
        // log-loss. Unlike per-sample SGD this is independent of sample
        // order (no recency bias from whatever ends the dataset) and it
        // reaches the calibrated maximum-likelihood fit in a handful of
        // steps instead of thousands. The small ridge keeps the Hessian
        // invertible and the weights finite on separable data.
        const DIM: usize = FEATURE_DIM + 1; // weights + bias
        const RIDGE: f64 = 1e-4;
        let n = data.samples.len() as f64;

        // Per-feature ridge strength, inversely proportional to the
        // feature's variance in the training data. A feature that barely
        // varied provides no evidence, yet the unregularized MLE happily
        // parks a huge weight on it (it is almost free) — and that weight
        // then dominates predictions for queries outside the training
        // range. Tying the penalty to 1/variance pins unidentified
        // weights near zero while leaving well-explored features free.
        // The bias is never penalized (it must absorb the base rate).
        let mut mean = [0.0; FEATURE_DIM];
        for s in &data.samples {
            for (m, x) in mean.iter_mut().zip(s.features.values) {
                *m += x / n;
            }
        }
        let mut var = [0.0; FEATURE_DIM];
        for s in &data.samples {
            for i in 0..FEATURE_DIM {
                let d = s.features.values[i] - mean[i];
                var[i] += d * d / n;
            }
        }
        let mut ridge = [0.0; DIM];
        for i in 0..FEATURE_DIM {
            ridge[i] = RIDGE / (var[i] + 1e-6);
        }

        // Regularized mean log-loss — the line-search objective.
        let loss = |wb: &[f64; DIM]| -> f64 {
            let mut total = 0.0;
            for s in &data.samples {
                let mut x = [1.0; DIM];
                x[..FEATURE_DIM].copy_from_slice(&s.features.values);
                let z: f64 = wb.iter().zip(x).map(|(w, xi)| w * xi).sum();
                // Stable formulation of -ln σ(±z).
                total += if s.crashed { (1.0 + (-z).exp()).ln() } else { (1.0 + z.exp()).ln() };
            }
            let l2: f64 = wb.iter().zip(ridge).map(|(w, r)| r * w * w).sum::<f64>();
            total / n + 0.5 * l2
        };
        let mut wb = [0.0; DIM];
        let mut current_loss = loss(&wb);
        for _ in 0..epochs {
            let mut grad = [0.0; DIM];
            let mut hess = [[0.0; DIM]; DIM];
            for s in &data.samples {
                let mut x = [1.0; DIM];
                x[..FEATURE_DIM].copy_from_slice(&s.features.values);
                let z: f64 = wb.iter().zip(x).map(|(w, xi)| w * xi).sum();
                let p = sigmoid(z);
                let err = if s.crashed { 1.0 } else { 0.0 } - p;
                let weight = (p * (1.0 - p)).max(1e-9);
                for i in 0..DIM {
                    grad[i] += err * x[i] / n;
                    for j in 0..DIM {
                        hess[i][j] += weight * x[i] * x[j] / n;
                    }
                }
            }
            for i in 0..DIM {
                grad[i] -= ridge[i] * wb[i];
                hess[i][i] += ridge[i].max(RIDGE);
            }
            let step = solve(hess, grad);
            // Backtracking line search: a raw Newton step can overshoot
            // into the sigmoid's saturated region (where the Hessian
            // vanishes and later steps explode); halve until the loss
            // actually improves.
            let mut scale = lr;
            let mut advanced = false;
            for _ in 0..30 {
                let mut candidate = wb;
                for (w, d) in candidate.iter_mut().zip(step) {
                    *w += scale * d;
                }
                let candidate_loss = loss(&candidate);
                if candidate_loss < current_loss {
                    wb = candidate;
                    current_loss = candidate_loss;
                    advanced = true;
                    break;
                }
                scale *= 0.5;
            }
            let step_norm: f64 = step.iter().map(|d| d * d).sum::<f64>().sqrt();
            if !advanced || scale * step_norm < 1e-10 {
                break;
            }
        }
        let mut model = LogisticModel::zeroed();
        model.weights.copy_from_slice(&wb[..FEATURE_DIM]);
        model.bias = wb[FEATURE_DIM];
        model
    }

    /// Predicted crash probability for a feature vector.
    #[must_use]
    pub fn predict_proba(&self, f: &FeatureVector) -> f64 {
        let z: f64 =
            self.weights.iter().zip(f.values).map(|(w, x)| w * x).sum::<f64>() + self.bias;
        sigmoid(z)
    }

    /// Hard classification at the 0.5 threshold.
    #[must_use]
    pub fn predict(&self, f: &FeatureVector) -> bool {
        self.predict_proba(f) >= 0.5
    }

    /// Classification accuracy on a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        assert!(!data.samples.is_empty(), "empty dataset");
        let correct =
            data.samples.iter().filter(|s| self.predict(&s.features) == s.crashed).count();
        correct as f64 / data.samples.len() as f64
    }

    /// Mean negative log-likelihood on a dataset (lower is better).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn log_loss(&self, data: &Dataset) -> f64 {
        assert!(!data.samples.is_empty(), "empty dataset");
        let eps = 1e-12;
        let total: f64 = data
            .samples
            .iter()
            .map(|s| {
                let p = self.predict_proba(&s.features).clamp(eps, 1.0 - eps);
                if s.crashed {
                    -p.ln()
                } else {
                    -(1.0 - p).ln()
                }
            })
            .sum();
        total / data.samples.len() as f64
    }

    /// Area under the ROC curve via the rank-sum (Mann–Whitney)
    /// formulation. Returns 0.5 when one class is absent.
    #[must_use]
    pub fn auc(&self, data: &Dataset) -> f64 {
        let mut scored: Vec<(f64, bool)> = data
            .samples
            .iter()
            .map(|s| (self.predict_proba(&s.features), s.crashed))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("probabilities are finite"));
        let positives = scored.iter().filter(|(_, y)| *y).count() as f64;
        let negatives = scored.len() as f64 - positives;
        if positives == 0.0 || negatives == 0.0 {
            return 0.5;
        }
        let mut rank_sum = 0.0;
        for (rank, (_, y)) in scored.iter().enumerate() {
            if *y {
                rank_sum += (rank + 1) as f64;
            }
        }
        (rank_sum - positives * (positives + 1.0) / 2.0) / (positives * negatives)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TrainingHarness;

    fn trained() -> (LogisticModel, Dataset) {
        let data = TrainingHarness::quick().generate(3);
        let (train, test) = data.split(0.8);
        (LogisticModel::fit(&train, 150, 0.5), test)
    }

    #[test]
    fn model_beats_chance_comfortably() {
        let (model, test) = trained();
        let acc = model.accuracy(&test);
        let auc = model.auc(&test);
        assert!(acc > 0.85, "accuracy {acc}");
        assert!(auc > 0.9, "AUC {auc}");
    }

    #[test]
    fn training_reduces_log_loss() {
        let data = TrainingHarness::quick().generate(2);
        let untrained = LogisticModel::zeroed();
        let model = LogisticModel::fit(&data, 100, 0.5);
        assert!(model.log_loss(&data) < untrained.log_loss(&data) * 0.8);
    }

    #[test]
    fn deeper_undervolt_predicts_higher_risk() {
        let (model, _) = trained();
        use uniserver_units::Celsius;
        let p = |off: f64| {
            model.predict_proba(&FeatureVector::from_observables(
                off,
                0.5,
                Celsius::new(55.0),
                0.0,
            ))
        };
        assert!(p(0.02) < p(0.10));
        assert!(p(0.10) < p(0.18));
        assert!(p(0.02) < 0.1, "shallow offsets are safe: {}", p(0.02));
        assert!(p(0.18) > 0.9, "deep offsets are fatal: {}", p(0.18));
    }

    #[test]
    fn stressful_workloads_raise_risk_at_the_margin() {
        let (model, _) = trained();
        use uniserver_units::Celsius;
        let marginal = 0.12;
        let quiet = model.predict_proba(&FeatureVector::from_observables(
            marginal,
            0.1,
            Celsius::new(55.0),
            0.0,
        ));
        let loud = model.predict_proba(&FeatureVector::from_observables(
            marginal,
            0.9,
            Celsius::new(55.0),
            0.0,
        ));
        assert!(loud > quiet, "stress must raise predicted risk ({loud} vs {quiet})");
    }

    #[test]
    fn untrained_model_is_uninformative() {
        let m = LogisticModel::zeroed();
        use uniserver_units::Celsius;
        let f = FeatureVector::from_observables(0.1, 0.5, Celsius::new(45.0), 0.0);
        assert_eq!(m.predict_proba(&f), 0.5);
    }

    #[test]
    fn auc_degenerates_gracefully() {
        use crate::harness::Sample;
        use uniserver_units::Celsius;
        let one_class: Dataset = (0..5)
            .map(|_| Sample {
                features: FeatureVector::from_observables(0.1, 0.5, Celsius::new(45.0), 0.0),
                crashed: false,
            })
            .collect();
        assert_eq!(LogisticModel::zeroed().auc(&one_class), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn accuracy_on_empty_panics() {
        let _ = LogisticModel::zeroed().accuracy(&Dataset::default());
    }
}
