//! The Predictor daemon (paper §3.E).
//!
//! "In order to advise the system regarding the best V-F-R mode depending
//! on the current workload and runtime characteristics of the system, we
//! will develop a machine-learning predictor that interacts with the
//! HealthLog and StressLog monitors to provide advice to the Hypervisor
//! for choosing the desired operation mode."
//!
//! * [`features`] — feature extraction from operating points and
//!   HealthLog vectors;
//! * [`logistic`] — the failure-probability model (logistic regression
//!   trained with SGD) plus evaluation metrics;
//! * [`bayes`] — a Gaussian naive-Bayes comparator;
//! * [`harness`] — labeled-sample generation by exercising platform
//!   nodes across operating points;
//! * [`advisor`] — the operating-mode advisor consuming the model.
//!
//! # Examples
//!
//! ```
//! use uniserver_predictor::harness::TrainingHarness;
//! use uniserver_predictor::logistic::LogisticModel;
//!
//! let data = TrainingHarness::quick().generate(3);
//! let (train, test) = data.split(0.8);
//! let model = LogisticModel::fit(&train, 150, 0.5);
//! assert!(model.accuracy(&test) > 0.8);
//! ```

pub mod advisor;
pub mod bayes;
pub mod features;
pub mod harness;
pub mod logistic;

pub use advisor::{ModeAdvisor, OperatingMode};
pub use features::FeatureVector;
pub use harness::{Dataset, Sample, TrainingHarness};
pub use logistic::LogisticModel;
