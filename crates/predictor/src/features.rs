//! Feature extraction.
//!
//! The predictor sees exactly what the daemons can measure: the proposed
//! undervolt depth, how stressful the current workload is, how hot the
//! node runs and how many corrected errors it has been producing. All
//! features are normalized to O(1) ranges so one SGD learning rate fits.

use serde::{Deserialize, Serialize};
use uniserver_units::Celsius;

use uniserver_healthlog::InfoVector;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::droop::DroopModel;

/// Number of features in a [`FeatureVector`].
pub const FEATURE_DIM: usize = 4;

/// One normalized feature vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// `[offset_fraction×10, stress, temp_delta/50, ce_rate/10]`.
    pub values: [f64; FEATURE_DIM],
}

impl FeatureVector {
    /// Builds a feature vector from raw observables.
    ///
    /// * `offset_fraction` — undervolt depth as a fraction of nominal;
    /// * `stress` — workload stress scalar in `[0, 1]`;
    /// * `max_core_temp` — hottest junction;
    /// * `ce_per_minute` — recent corrected-error rate.
    ///
    /// # Panics
    ///
    /// Panics if `offset_fraction` is negative or `stress` outside
    /// `[0, 1]`.
    #[must_use]
    pub fn from_observables(
        offset_fraction: f64,
        stress: f64,
        max_core_temp: Celsius,
        ce_per_minute: f64,
    ) -> Self {
        assert!(offset_fraction >= 0.0, "offset fraction must be non-negative");
        assert!((0.0..=1.0).contains(&stress), "stress must be in [0, 1], got {stress}");
        FeatureVector {
            values: [
                offset_fraction * 10.0,
                stress,
                max_core_temp.delta_above(Celsius::new(25.0)) / 50.0,
                (ce_per_minute / 10.0).min(10.0),
            ],
        }
    }

    /// Builds the features for *proposing* an operating point given the
    /// current workload and the latest HealthLog vector.
    #[must_use]
    pub fn for_proposal(
        offset_fraction: f64,
        workload: &WorkloadProfile,
        pdn: &DroopModel,
        latest: Option<&InfoVector>,
        ce_per_minute: f64,
    ) -> Self {
        let temp = latest
            .map(|v| v.sensors.max_core_temp())
            .unwrap_or(Celsius::new(45.0));
        Self::from_observables(offset_fraction, workload.stress_scalar(pdn), temp, ce_per_minute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_keeps_features_order_one() {
        let f = FeatureVector::from_observables(0.12, 0.6, Celsius::new(75.0), 12.0);
        for (i, v) in f.values.iter().enumerate() {
            assert!(v.abs() <= 10.0, "feature {i} = {v}");
        }
        assert!((f.values[0] - 1.2).abs() < 1e-12);
        assert!((f.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ce_rate_is_capped() {
        let f = FeatureVector::from_observables(0.0, 0.0, Celsius::new(25.0), 1e9);
        assert_eq!(f.values[3], 10.0);
    }

    #[test]
    fn proposal_defaults_temperature_without_history() {
        let w = WorkloadProfile::spec_bzip2();
        let pdn = DroopModel::typical_server_pdn();
        let f = FeatureVector::for_proposal(0.08, &w, &pdn, None, 0.0);
        assert!((f.values[2] - 0.4).abs() < 1e-12, "45 °C default -> 0.4");
        assert!(f.values[1] > 0.0, "stress comes from the workload profile");
    }

    #[test]
    #[should_panic(expected = "stress must be in [0, 1]")]
    fn bad_stress_panics() {
        let _ = FeatureVector::from_observables(0.1, 2.0, Celsius::new(25.0), 0.0);
    }
}
