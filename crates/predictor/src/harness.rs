//! Labeled-sample generation.
//!
//! The Predictor trains on the record the HealthLog/StressLog pipeline
//! accumulates: operating points that were tried, and whether the node
//! survived them. The harness replays that process in bulk: it sweeps
//! nodes across undervolt depths and workloads and labels each interval
//! with its outcome.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;

use crate::features::FeatureVector;

/// One labeled training sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Input features.
    pub features: FeatureVector,
    /// Whether the node crashed during the labeled interval.
    pub crashed: bool,
}

/// A labeled dataset.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Dataset {
    /// The samples, in generation order.
    pub samples: Vec<Sample>,
}

impl Dataset {
    /// Fraction of positive (crash) labels.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    #[must_use]
    pub fn positive_rate(&self) -> f64 {
        assert!(!self.samples.is_empty(), "empty dataset");
        self.samples.iter().filter(|s| s.crashed).count() as f64 / self.samples.len() as f64
    }

    /// Splits into (train, test) at the given fraction, preserving
    /// generation order (time-based split, as a deployed predictor
    /// would face).
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is outside `(0, 1)`.
    #[must_use]
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1), got {train_fraction}"
        );
        let cut = ((self.samples.len() as f64) * train_fraction) as usize;
        (
            Dataset { samples: self.samples[..cut].to_vec() },
            Dataset { samples: self.samples[cut..].to_vec() },
        )
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        Dataset { samples: iter.into_iter().collect() }
    }
}

/// Sweeps nodes across operating points to label outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingHarness {
    /// Part to exercise.
    pub spec: PartSpec,
    /// Workloads to mix.
    pub workloads: Vec<WorkloadProfile>,
    /// Undervolt depths (fractions of nominal) to explore.
    pub offsets: Vec<f64>,
    /// Intervals per (offset, workload) cell.
    pub intervals_per_cell: usize,
    /// Interval length.
    pub dwell: Seconds,
    /// Base RNG seed.
    pub seed: u64,
}

impl TrainingHarness {
    /// A harness spanning safe, marginal and fatal depths on the ARM
    /// micro-server part.
    #[must_use]
    pub fn standard() -> Self {
        TrainingHarness {
            spec: PartSpec::arm_microserver(),
            workloads: WorkloadProfile::spec2006_subset(),
            offsets: (0..14).map(|i| 0.01 + 0.01 * i as f64).collect(),
            intervals_per_cell: 6,
            dwell: Seconds::from_millis(250.0),
            seed: 0xBEEF,
        }
    }

    /// A reduced harness for tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        TrainingHarness {
            workloads: vec![
                WorkloadProfile::spec_bzip2(),
                WorkloadProfile::spec_zeusmp(),
                WorkloadProfile::spec_namd(),
            ],
            offsets: vec![0.02, 0.06, 0.09, 0.11, 0.13, 0.15, 0.17],
            intervals_per_cell: 4,
            ..TrainingHarness::standard()
        }
    }

    /// Generates a dataset from `chips` distinct manufactured nodes.
    ///
    /// # Panics
    ///
    /// Panics if the harness has no offsets/workloads or `chips` is zero.
    #[must_use]
    pub fn generate(&self, chips: usize) -> Dataset {
        assert!(chips > 0, "need at least one chip");
        assert!(!self.offsets.is_empty() && !self.workloads.is_empty(), "empty harness");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut samples = Vec::new();
        for chip in 0..chips {
            let mut node = ServerNode::new(self.spec.clone(), self.seed ^ (chip as u64) << 8);
            let nominal_mv = self.spec.nominal_voltage.as_millivolts();
            // The CE-rate and temperature features must be *prior*
            // information (what the HealthLog knew before the interval),
            // not the interval's own measurements — that would leak the
            // label through the crash-time CE burst.
            let mut prev_ce_rate = 0.0;
            let mut prev_temp = uniserver_units::Celsius::new(25.0);
            for &offset in &self.offsets {
                for workload in &self.workloads {
                    for _ in 0..self.intervals_per_cell {
                        if node.is_crashed() {
                            node.reboot();
                            prev_ce_rate = 0.0;
                        }
                        node.msr
                            .set_voltage_offset_all(offset * nominal_mv)
                            .expect("harness offsets stay within MSR limits");
                        let features = FeatureVector::from_observables(
                            offset,
                            workload.stress_scalar(&self.spec.pdn),
                            prev_temp,
                            prev_ce_rate,
                        );
                        let report = node.run_interval(workload, self.dwell);
                        prev_ce_rate =
                            report.errors.len() as f64 * 60.0 / self.dwell.as_secs().max(1e-9);
                        prev_temp = report.sensors.max_core_temp();
                        samples.push(Sample { features, crashed: report.crash.is_some() });
                    }
                }
            }
        }
        // Shuffle so batches are i.i.d.-ish while keeping determinism.
        for i in (1..samples.len()).rev() {
            let j = rng.gen_range(0..=i);
            samples.swap(i, j);
        }
        Dataset { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_covers_both_classes() {
        let data = TrainingHarness::quick().generate(2);
        assert!(data.samples.len() > 100);
        let rate = data.positive_rate();
        assert!(rate > 0.05 && rate < 0.75, "positive rate {rate}");
    }

    #[test]
    fn deeper_offsets_crash_more() {
        let data = TrainingHarness::quick().generate(2);
        let crash_rate = |lo: f64, hi: f64| {
            let in_band: Vec<&Sample> = data
                .samples
                .iter()
                .filter(|s| s.features.values[0] >= lo * 10.0 && s.features.values[0] < hi * 10.0)
                .collect();
            in_band.iter().filter(|s| s.crashed).count() as f64 / in_band.len().max(1) as f64
        };
        let shallow = crash_rate(0.0, 0.10);
        let deep = crash_rate(0.13, 0.20);
        assert!(deep > shallow + 0.3, "deep {deep} vs shallow {shallow}");
    }

    #[test]
    fn split_preserves_counts() {
        let data = TrainingHarness::quick().generate(1);
        let (train, test) = data.split(0.8);
        assert_eq!(train.samples.len() + test.samples.len(), data.samples.len());
        assert!(train.samples.len() > test.samples.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TrainingHarness::quick().generate(1);
        let b = TrainingHarness::quick().generate(1);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn positive_rate_of_empty_panics() {
        let _ = Dataset::default().positive_rate();
    }
}
