//! The operating-mode advisor: the Predictor's interface to the
//! Hypervisor ("advice to the Hypervisor for choosing the desired
//! operation mode", §3.E; "possible execution modes (e.g.
//! high-performance or low-power)", §3).

use serde::{Deserialize, Serialize};
use uniserver_units::Celsius;

use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::droop::DroopModel;

use crate::features::FeatureVector;
use crate::logistic::LogisticModel;

/// Execution modes the Hypervisor can be advised into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatingMode {
    /// Nominal settings; maximum safety margin.
    Safe,
    /// Mild undervolt: most of the margin kept.
    Balanced,
    /// Deep undervolt within the predicted-safe envelope.
    LowPower,
    /// Nominal voltage *kept* for stability but margins exploited for
    /// DRAM refresh only.
    HighPerformance,
}

/// Advice returned to the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Advice {
    /// Suggested mode.
    pub mode: OperatingMode,
    /// Suggested undervolt depth (fraction of nominal).
    pub offset_fraction: f64,
    /// Predicted crash probability per interval at that depth.
    pub predicted_risk: f64,
}

/// The advisor: a trained model plus a risk budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModeAdvisor {
    model: LogisticModel,
    /// Maximum acceptable predicted crash probability per interval.
    pub risk_tolerance: f64,
    /// Candidate undervolt depths, ascending.
    pub candidate_offsets: Vec<f64>,
}

impl ModeAdvisor {
    /// Creates an advisor over the default candidate grid.
    ///
    /// # Panics
    ///
    /// Panics if `risk_tolerance` is outside `(0, 1)`.
    #[must_use]
    pub fn new(model: LogisticModel, risk_tolerance: f64) -> Self {
        assert!(
            risk_tolerance > 0.0 && risk_tolerance < 1.0,
            "risk tolerance must be in (0, 1), got {risk_tolerance}"
        );
        ModeAdvisor {
            model,
            risk_tolerance,
            candidate_offsets: (0..=16).map(|i| i as f64 * 0.01).collect(),
        }
    }

    /// The deepest candidate offset whose predicted risk stays within
    /// tolerance for the given workload and temperature, plus the mode
    /// that depth maps onto.
    #[must_use]
    pub fn advise(
        &self,
        workload: &WorkloadProfile,
        pdn: &DroopModel,
        temp: Celsius,
        ce_per_minute: f64,
    ) -> Advice {
        let stress = workload.stress_scalar(pdn);
        let mut chosen = 0.0;
        let mut risk_at_chosen = self.risk(0.0, stress, temp, ce_per_minute);
        for &off in &self.candidate_offsets {
            let risk = self.risk(off, stress, temp, ce_per_minute);
            if risk <= self.risk_tolerance {
                chosen = off;
                risk_at_chosen = risk;
            }
        }
        Advice { mode: Self::mode_for(chosen), offset_fraction: chosen, predicted_risk: risk_at_chosen }
    }

    /// Predicted risk at a specific depth.
    #[must_use]
    pub fn risk(&self, offset_fraction: f64, stress: f64, temp: Celsius, ce_per_minute: f64) -> f64 {
        self.model.predict_proba(&FeatureVector::from_observables(
            offset_fraction,
            stress,
            temp,
            ce_per_minute,
        ))
    }

    /// Maps an undervolt depth onto a mode label.
    #[must_use]
    fn mode_for(offset_fraction: f64) -> OperatingMode {
        if offset_fraction < 0.005 {
            OperatingMode::Safe
        } else if offset_fraction < 0.05 {
            OperatingMode::Balanced
        } else {
            OperatingMode::LowPower
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::TrainingHarness;

    fn advisor(tolerance: f64) -> ModeAdvisor {
        let data = TrainingHarness::quick().generate(3);
        let model = LogisticModel::fit(&data, 400, 1.0);
        ModeAdvisor::new(model, tolerance)
    }

    #[test]
    fn advice_is_within_tolerance_and_nontrivial() {
        let a = advisor(0.05);
        let advice = a.advise(
            &WorkloadProfile::spec_bzip2(),
            &DroopModel::typical_server_pdn(),
            Celsius::new(26.0),
            0.0,
        );
        assert!(advice.predicted_risk <= 0.05 + 1e-9);
        assert!(
            advice.offset_fraction >= 0.05,
            "a trained advisor should reclaim real margin, got {}",
            advice.offset_fraction
        );
        assert_eq!(advice.mode, OperatingMode::LowPower);
    }

    #[test]
    fn tighter_tolerance_means_shallower_offsets() {
        let strict = advisor(0.005);
        let loose = advisor(0.2);
        let pdn = DroopModel::typical_server_pdn();
        let w = WorkloadProfile::spec_zeusmp();
        let a = strict.advise(&w, &pdn, Celsius::new(26.0), 0.0);
        let b = loose.advise(&w, &pdn, Celsius::new(26.0), 0.0);
        assert!(a.offset_fraction <= b.offset_fraction);
    }

    #[test]
    fn stressful_workloads_get_shallower_advice() {
        let a = advisor(0.02);
        let pdn = DroopModel::typical_server_pdn();
        let quiet = a.advise(&WorkloadProfile::spec_namd(), &pdn, Celsius::new(26.0), 0.0);
        let loud = a.advise(&WorkloadProfile::spec_zeusmp(), &pdn, Celsius::new(26.0), 0.0);
        assert!(
            loud.offset_fraction <= quiet.offset_fraction,
            "zeusmp ({}) must not get deeper advice than namd ({})",
            loud.offset_fraction,
            quiet.offset_fraction
        );
    }

    #[test]
    fn mode_labels_map_depths() {
        let a = advisor(0.5);
        let advice = a.advise(
            &WorkloadProfile::idle(),
            &DroopModel::typical_server_pdn(),
            Celsius::new(30.0),
            0.0,
        );
        // With an absurd risk budget, the advisor goes deep.
        assert_eq!(advice.mode, OperatingMode::LowPower);
    }

    #[test]
    #[should_panic(expected = "risk tolerance")]
    fn bad_tolerance_panics() {
        let _ = advisor(0.0);
    }
}
