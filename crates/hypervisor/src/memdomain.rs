//! Reliable vs relaxed memory placement and page retirement.
//!
//! §6.B: "we have separated the main memory into domains … This allowed
//! us to isolate critical kernel code and stack data by placing them on
//! a reliable memory domain (using nominal refresh-rate)". The placement
//! map assigns the hypervisor's own footprint to the reliable domain and
//! guest memory to the relaxed domain; pages that produce uncorrectable
//! errors are retired (never allocated again).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};
use uniserver_units::Bytes;

use uniserver_platform::msr::DomainId;

/// 4 KiB pages, the retirement granularity.
pub const PAGE_BYTES: u64 = 4_096;

/// Placement decision for an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// Reliable domain: nominal refresh, hypervisor-critical state.
    Reliable,
    /// Relaxed domain: extended refresh interval, guest pages.
    Relaxed,
}

/// Error for placement requests that cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementError {
    /// What was requested.
    pub requested: Bytes,
    /// What remains available in the target domain.
    pub available: Bytes,
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "placement of {} failed: only {} available", self.requested, self.available)
    }
}

impl std::error::Error for PlacementError {}

/// The memory placement map of one node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryMap {
    /// Capacity of the reliable domain.
    pub reliable_capacity: Bytes,
    /// Capacity of the relaxed domain.
    pub relaxed_capacity: Bytes,
    reliable_used: Bytes,
    relaxed_used: Bytes,
    retired_pages: BTreeSet<u64>,
    /// Platform refresh-domain id backing the reliable region.
    pub reliable_domain: DomainId,
    /// Platform refresh-domain id backing the relaxed region.
    pub relaxed_domain: DomainId,
}

impl MemoryMap {
    /// Creates a map over two capacities, bound to platform refresh
    /// domains (by convention domain 0 = reliable, domain 1 = relaxed,
    /// matching [`uniserver_platform::dram::MemorySystem::commodity_server`]).
    #[must_use]
    pub fn new(reliable_capacity: Bytes, relaxed_capacity: Bytes) -> Self {
        MemoryMap {
            reliable_capacity,
            relaxed_capacity,
            reliable_used: Bytes::ZERO,
            relaxed_used: Bytes::ZERO,
            retired_pages: BTreeSet::new(),
            reliable_domain: DomainId(0),
            relaxed_domain: DomainId(1),
        }
    }

    /// Bytes allocated in a domain.
    #[must_use]
    pub fn used(&self, placement: Placement) -> Bytes {
        match placement {
            Placement::Reliable => self.reliable_used,
            Placement::Relaxed => self.relaxed_used,
        }
    }

    /// Bytes still available in a domain (accounting for retired pages in
    /// the relaxed domain).
    #[must_use]
    pub fn available(&self, placement: Placement) -> Bytes {
        match placement {
            Placement::Reliable => self.reliable_capacity.saturating_sub(self.reliable_used),
            Placement::Relaxed => self
                .relaxed_capacity
                .saturating_sub(self.relaxed_used)
                .saturating_sub(self.retired_bytes()),
        }
    }

    /// Allocates in the given domain.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when the domain cannot fit the request.
    pub fn allocate(&mut self, placement: Placement, size: Bytes) -> Result<(), PlacementError> {
        let available = self.available(placement);
        if size > available {
            return Err(PlacementError { requested: size, available });
        }
        match placement {
            Placement::Reliable => self.reliable_used = self.reliable_used + size,
            Placement::Relaxed => self.relaxed_used = self.relaxed_used + size,
        }
        Ok(())
    }

    /// Frees from the given domain.
    ///
    /// # Panics
    ///
    /// Panics if freeing more than is allocated (accounting corruption).
    pub fn free(&mut self, placement: Placement, size: Bytes) {
        match placement {
            Placement::Reliable => {
                assert!(size <= self.reliable_used, "freeing more reliable memory than allocated");
                self.reliable_used = self.reliable_used - size;
            }
            Placement::Relaxed => {
                assert!(size <= self.relaxed_used, "freeing more relaxed memory than allocated");
                self.relaxed_used = self.relaxed_used - size;
            }
        }
    }

    /// Retires the (relaxed-domain) page containing `word_index`.
    /// Returns whether the page was newly retired.
    pub fn retire_page_of_word(&mut self, word_index: u64) -> bool {
        self.retired_pages.insert(word_index * 8 / PAGE_BYTES)
    }

    /// Number of retired pages.
    #[must_use]
    pub fn retired_page_count(&self) -> usize {
        self.retired_pages.len()
    }

    /// Capacity lost to retirement.
    #[must_use]
    pub fn retired_bytes(&self) -> Bytes {
        Bytes::new(self.retired_pages.len() as u64 * PAGE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> MemoryMap {
        MemoryMap::new(Bytes::gib(16), Bytes::gib(16))
    }

    #[test]
    fn allocate_and_free_round_trip() {
        let mut m = map();
        m.allocate(Placement::Reliable, Bytes::mib(700)).unwrap();
        m.allocate(Placement::Relaxed, Bytes::gib(4)).unwrap();
        assert_eq!(m.used(Placement::Reliable), Bytes::mib(700));
        assert_eq!(m.used(Placement::Relaxed), Bytes::gib(4));
        m.free(Placement::Relaxed, Bytes::gib(4));
        assert_eq!(m.used(Placement::Relaxed), Bytes::ZERO);
    }

    #[test]
    fn over_allocation_is_rejected_without_state_change() {
        let mut m = MemoryMap::new(Bytes::gib(1), Bytes::gib(1));
        let err = m.allocate(Placement::Reliable, Bytes::gib(2)).unwrap_err();
        assert_eq!(err.requested, Bytes::gib(2));
        assert_eq!(err.available, Bytes::gib(1));
        assert_eq!(m.used(Placement::Reliable), Bytes::ZERO);
        assert!(err.to_string().contains("placement of"));
    }

    #[test]
    fn retirement_shrinks_relaxed_availability() {
        let mut m = map();
        let before = m.available(Placement::Relaxed);
        // Words 0 and 1 share a page; word 1024 is the next page.
        assert!(m.retire_page_of_word(0));
        assert!(!m.retire_page_of_word(1), "same page retires once");
        assert!(m.retire_page_of_word(1024));
        assert_eq!(m.retired_page_count(), 2);
        assert_eq!(before - m.available(Placement::Relaxed), Bytes::new(2 * PAGE_BYTES));
    }

    #[test]
    #[should_panic(expected = "freeing more")]
    fn double_free_panics() {
        let mut m = map();
        m.free(Placement::Reliable, Bytes::mib(1));
    }
}
