//! Virtual machines and their memory-footprint dynamics.
//!
//! Figure 3 plots the memory footprint of the hypervisor, the VMs and
//! the application over repeated executions of the LDBC Social Network
//! Benchmark (on Sparksee) inside four VMs. The footprint model here
//! reproduces those dynamics: a guest OS baseline plus an application
//! heap that grows through each benchmark execution and resets when the
//! run restarts.

use serde::{Deserialize, Serialize};
use uniserver_units::{Bytes, Seconds};

use uniserver_platform::workload::WorkloadProfile;

/// Identifier of a VM within one hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub u32);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm{}", self.0)
    }
}

/// Lifecycle state of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VmState {
    /// Scheduled and executing.
    Running,
    /// Killed by an unrecoverable error; awaiting restart.
    Failed,
    /// Shut down by request.
    Stopped,
}

/// Static configuration of a VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Human-readable name.
    pub name: String,
    /// Number of virtual CPUs.
    pub vcpus: usize,
    /// Configured guest memory.
    pub memory: Bytes,
    /// Guest workload profile.
    pub workload: WorkloadProfile,
    /// Long-lived application resident set (e.g. the loaded graph
    /// database), which survives across benchmark executions.
    pub resident_set: Bytes,
    /// Application heap ceiling within the guest (per-execution working
    /// set on top of the resident set).
    pub heap_ceiling: Bytes,
    /// Wall-clock length of one benchmark execution before the
    /// application restarts (heap resets).
    pub execution_period: Seconds,
}

impl VmConfig {
    /// The Figure 3 guest: LDBC SNB on a graph database. Stresses CPU,
    /// disk I/O and network; heap grows to a couple of GiB per
    /// execution.
    #[must_use]
    pub fn ldbc_benchmark() -> Self {
        VmConfig {
            name: "ldbc-snb-sparksee".into(),
            vcpus: 2,
            memory: Bytes::gib(4),
            workload: WorkloadProfile::ldbc_graph_vm(),
            resident_set: Bytes::new(3 * Bytes::gib(1).as_u64() / 2),
            heap_ceiling: Bytes::gib(2),
            execution_period: Seconds::new(120.0),
        }
    }

    /// A small idle guest (control group in tests).
    #[must_use]
    pub fn idle_guest() -> Self {
        VmConfig {
            name: "idle-guest".into(),
            vcpus: 1,
            memory: Bytes::gib(1),
            workload: WorkloadProfile::idle(),
            resident_set: Bytes::mib(32),
            heap_ceiling: Bytes::mib(64),
            execution_period: Seconds::new(3600.0),
        }
    }
}

/// A live VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    /// Identifier within the hypervisor.
    pub id: VmId,
    /// Static configuration.
    pub config: VmConfig,
    /// Lifecycle state.
    pub state: VmState,
    /// Time spent inside the current benchmark execution.
    pub phase: Seconds,
    /// Completed benchmark executions.
    pub executions_completed: u64,
    /// Times this VM was killed and restarted after errors.
    pub restarts: u64,
}

impl Vm {
    /// Creates a freshly launched VM.
    #[must_use]
    pub fn launch(id: VmId, config: VmConfig) -> Self {
        Vm { id, config, state: VmState::Running, phase: Seconds::ZERO, executions_completed: 0, restarts: 0 }
    }

    /// Whether the VM is running.
    #[must_use]
    pub fn is_running(&self) -> bool {
        self.state == VmState::Running
    }

    /// Advances the VM's internal phase clock.
    pub fn advance(&mut self, dur: Seconds) {
        if self.state != VmState::Running {
            return;
        }
        self.phase = self.phase + dur;
        while self.phase >= self.config.execution_period {
            self.phase = self.phase - self.config.execution_period;
            self.executions_completed += 1;
        }
    }

    /// Guest-OS baseline footprint (kernel, daemons, page cache floor).
    #[must_use]
    pub fn os_baseline(&self) -> Bytes {
        // ~12 % of configured memory, floor of 192 MiB.
        Bytes::new(((self.config.memory.as_u64() as f64 * 0.12) as u64).max(Bytes::mib(192).as_u64()))
    }

    /// Application heap at the current execution phase: fast growth
    /// early in the run that saturates towards the ceiling (graph load,
    /// then query working set).
    #[must_use]
    pub fn application_heap(&self) -> Bytes {
        if self.state != VmState::Running {
            return Bytes::ZERO;
        }
        let t = self.phase.as_secs() / self.config.execution_period.as_secs();
        // Saturating growth: 1 - e^(-4t) reaches ~98 % by the period end.
        let fill = 1.0 - (-4.0 * t).exp();
        Bytes::new((self.config.heap_ceiling.as_u64() as f64 * fill) as u64)
    }

    /// Total utilized guest footprint (baseline + resident set + heap).
    #[must_use]
    pub fn utilized_footprint(&self) -> Bytes {
        if self.state != VmState::Running {
            return Bytes::ZERO;
        }
        self.os_baseline() + self.config.resident_set + self.application_heap()
    }

    /// Kills the VM (UE containment path).
    pub fn kill(&mut self) {
        self.state = VmState::Failed;
    }

    /// Restarts a failed VM (heap resets, restart counted).
    pub fn restart(&mut self) {
        if self.state == VmState::Failed {
            self.restarts += 1;
        }
        self.state = VmState::Running;
        self.phase = Seconds::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_grows_within_an_execution_and_resets() {
        let mut vm = Vm::launch(VmId(0), VmConfig::ldbc_benchmark());
        let early = vm.application_heap();
        vm.advance(Seconds::new(30.0));
        let mid = vm.application_heap();
        vm.advance(Seconds::new(60.0));
        let late = vm.application_heap();
        assert!(early < mid && mid < late, "{early} < {mid} < {late}");
        // Crossing the execution boundary resets the heap.
        vm.advance(Seconds::new(40.0));
        assert_eq!(vm.executions_completed, 1);
        assert!(vm.application_heap() < mid);
    }

    #[test]
    fn heap_saturates_below_ceiling() {
        let mut vm = Vm::launch(VmId(0), VmConfig::ldbc_benchmark());
        vm.advance(Seconds::new(119.0));
        assert!(vm.application_heap() <= vm.config.heap_ceiling);
        assert!(vm.application_heap().as_u64() > vm.config.heap_ceiling.as_u64() * 9 / 10);
    }

    #[test]
    fn footprint_is_baseline_plus_heap() {
        let mut vm = Vm::launch(VmId(1), VmConfig::ldbc_benchmark());
        vm.advance(Seconds::new(60.0));
        assert_eq!(
            vm.utilized_footprint(),
            vm.os_baseline() + vm.config.resident_set + vm.application_heap()
        );
        assert!(vm.os_baseline() >= Bytes::mib(192));
    }

    #[test]
    fn dead_vms_occupy_nothing() {
        let mut vm = Vm::launch(VmId(2), VmConfig::ldbc_benchmark());
        vm.advance(Seconds::new(60.0));
        vm.kill();
        assert_eq!(vm.utilized_footprint(), Bytes::ZERO);
        assert!(!vm.is_running());
        vm.restart();
        assert!(vm.is_running());
        assert_eq!(vm.restarts, 1);
        assert_eq!(vm.phase, Seconds::ZERO);
    }

    #[test]
    fn stopped_vms_do_not_advance() {
        let mut vm = Vm::launch(VmId(3), VmConfig::idle_guest());
        vm.state = VmState::Stopped;
        vm.advance(Seconds::new(100.0));
        assert_eq!(vm.phase, Seconds::ZERO);
    }
}
