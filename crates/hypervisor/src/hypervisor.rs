//! The hypervisor proper: VM lifecycle, error masking, isolation,
//! the V-F-R governor and availability accounting.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use uniserver_units::{Bytes, Joules, Seconds, Watts};

use uniserver_healthlog::{ErrorLedger, HealthAction, HealthLog, LedgerKey, OriginStats, ThresholdPolicy};
use uniserver_platform::mca::ErrorOrigin;
use uniserver_platform::node::{CrashEvent, ServerNode};
use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::ErrorSeverity;
use uniserver_stresslog::MarginVector;

use crate::memdomain::{MemoryMap, Placement, PlacementError};
use crate::objects::ObjectInventory;
use crate::protect::{ProtectionPolicy, Protector};
use crate::vm::{Vm, VmConfig, VmId, VmState};

/// Static hypervisor configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HypervisorConfig {
    /// Host kernel + KVM baseline footprint.
    pub base_footprint: Bytes,
    /// Fixed per-VM overhead (QEMU process, vhost rings).
    pub per_vm_fixed: Bytes,
    /// Per-VM overhead proportional to guest memory (shadow page
    /// tables, memslots).
    pub per_vm_fraction: f64,
    /// Downtime charged per full node crash (reboot + VM restart).
    pub reboot_penalty: Seconds,
    /// Error thresholds used by the embedded HealthLog.
    pub thresholds: ThresholdPolicy,
    /// Categories of hypervisor objects to protect with shadows.
    pub protection: ProtectionPolicy,
}

impl Default for HypervisorConfig {
    fn default() -> Self {
        HypervisorConfig {
            base_footprint: Bytes::mib(160),
            per_vm_fixed: Bytes::mib(32),
            per_vm_fraction: 0.015,
            reboot_penalty: Seconds::new(120.0),
            thresholds: ThresholdPolicy::default(),
            protection: ProtectionPolicy::top_categories(3),
        }
    }
}

/// What happened during one hypervisor tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TickOutcome {
    /// End-of-tick node time.
    pub at: Seconds,
    /// The node crashed and was rebooted this tick.
    pub node_crashed: bool,
    /// The platform's crash events for this tick, drained on recovery —
    /// which core failed, at what voltage, under which workload. Empty
    /// on clean ticks; cluster managers feed these to failure-driven
    /// recovery.
    pub crash_events: Vec<CrashEvent>,
    /// Corrected errors masked from guests this tick.
    pub masked_corrected: u64,
    /// Uncorrected errors contained by killing/restarting a VM.
    pub contained_uncorrected: u64,
    /// Pages retired this tick.
    pub pages_retired: u64,
    /// VMs restarted this tick (after UE kills or a node crash).
    pub vm_restarts: u64,
    /// Resources isolated this tick on HealthLog advice.
    pub isolations: u64,
    /// Whether the HealthLog asked for a StressLog cycle.
    pub recharacterization_requested: bool,
    /// Node power over the tick.
    pub power: Watts,
    /// Energy over the tick.
    pub energy: Joules,
}

/// One sample of the Figure 3 footprint series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintSample {
    /// Node time of the sample.
    pub at: Seconds,
    /// Hypervisor's own footprint.
    pub hypervisor: Bytes,
    /// Guest-OS footprint across VMs (baseline + resident sets).
    pub vms: Bytes,
    /// Application heaps across VMs.
    pub application: Bytes,
}

impl FootprintSample {
    /// Total utilized memory in the sample.
    #[must_use]
    pub fn total(&self) -> Bytes {
        self.hypervisor + self.vms + self.application
    }

    /// Hypervisor share of utilized memory (the Figure 3 red line).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty (total zero).
    #[must_use]
    pub fn hypervisor_fraction(&self) -> f64 {
        self.hypervisor.fraction_of(self.total())
    }
}

/// The error-resilient hypervisor.
#[derive(Debug, Clone)]
pub struct Hypervisor {
    node: ServerNode,
    config: HypervisorConfig,
    vms: BTreeMap<VmId, Vm>,
    next_vm: u32,
    memory: MemoryMap,
    /// Static-object inventory, shared copy-on-write across hypervisors
    /// (fleet scale: thousands of instances, all booting the identical
    /// 16 820-object set; a write un-shares via `Arc::make_mut`).
    inventory: std::sync::Arc<ObjectInventory>,
    protector: Protector,
    health: HealthLog,
    uptime: Seconds,
    downtime: Seconds,
    crashes: u64,
    masked_corrected_total: u64,
    contained_uncorrected_total: u64,
    /// Cached merge of the running guests' profiles, keyed by the VM-id
    /// set it was computed for: the serving tick only recomputes (and
    /// re-allocates) when the running set actually changes.
    merged_cache: Option<WorkloadProfile>,
    merged_cache_vms: Vec<VmId>,
}

impl Hypervisor {
    /// Boots a hypervisor on a node with the default configuration.
    #[must_use]
    pub fn new(node: ServerNode) -> Self {
        Hypervisor::with_config(node, HypervisorConfig::default())
    }

    /// Boots with an explicit configuration.
    #[must_use]
    pub fn with_config(node: ServerNode, config: HypervisorConfig) -> Self {
        let reliable = node.memory.domain_capacity(uniserver_platform::msr::DomainId(0));
        let relaxed = node.memory.domain_capacity(uniserver_platform::msr::DomainId(1));
        let memory = MemoryMap::new(reliable, relaxed);
        let inventory = ObjectInventory::standard_shared();
        // The default policy over the standard inventory yields the same
        // shadow set for every hypervisor: snapshot it once per process
        // and clone (fleet deployments boot thousands of hypervisors).
        static DEFAULT_PROTECTOR: std::sync::OnceLock<Protector> = std::sync::OnceLock::new();
        let protector = if config.protection == ProtectionPolicy::top_categories(3) {
            DEFAULT_PROTECTOR
                .get_or_init(|| Protector::new(config.protection.clone(), &inventory))
                .clone()
        } else {
            Protector::new(config.protection.clone(), &inventory)
        };
        let health = HealthLog::new(4_096, config.thresholds);
        Hypervisor {
            node,
            config,
            vms: BTreeMap::new(),
            next_vm: 0,
            memory,
            inventory,
            protector,
            health,
            uptime: Seconds::ZERO,
            downtime: Seconds::ZERO,
            crashes: 0,
            masked_corrected_total: 0,
            contained_uncorrected_total: 0,
            merged_cache: None,
            merged_cache_vms: Vec::new(),
        }
    }

    /// The underlying node (read-only).
    #[must_use]
    pub fn node(&self) -> &ServerNode {
        &self.node
    }

    /// Mutable node access — the governor's escape hatch for direct MSR
    /// programming (used by the EOP manager).
    pub fn node_mut(&mut self) -> &mut ServerNode {
        &mut self.node
    }

    /// The embedded HealthLog.
    #[must_use]
    pub fn health(&self) -> &HealthLog {
        &self.health
    }

    /// The static-object inventory (the fault injector's target set).
    #[must_use]
    pub fn inventory(&self) -> &ObjectInventory {
        &self.inventory
    }

    /// Mutable inventory access (fault injection). Un-shares the
    /// copy-on-write inventory, so this hypervisor pays for its own copy.
    pub fn inventory_mut(&mut self) -> &mut ObjectInventory {
        std::sync::Arc::make_mut(&mut self.inventory)
    }

    /// The object protector.
    #[must_use]
    pub fn protector(&self) -> &Protector {
        &self.protector
    }

    /// Launches a VM, placing its guest memory in the relaxed domain.
    ///
    /// # Errors
    ///
    /// Returns [`PlacementError`] when the relaxed domain cannot fit the
    /// guest.
    pub fn launch_vm(&mut self, config: VmConfig) -> Result<VmId, PlacementError> {
        self.memory.allocate(Placement::Relaxed, config.memory)?;
        // The hypervisor's own per-VM overhead lives in the reliable
        // domain — that is the whole point of the placement strategy.
        let overhead = self.per_vm_overhead(&config);
        if let Err(e) = self.memory.allocate(Placement::Reliable, overhead) {
            self.memory.free(Placement::Relaxed, config.memory);
            return Err(e);
        }
        let id = VmId(self.next_vm);
        self.next_vm += 1;
        self.vms.insert(id, Vm::launch(id, config));
        Ok(id)
    }

    /// Whether [`Hypervisor::launch_vm`] would succeed for `config`
    /// right now: the guest fits the relaxed domain *and* the
    /// hypervisor's own per-VM overhead fits the reliable domain.
    /// Capacity-only filters that check just the relaxed side admit
    /// nodes whose reliable domain is exhausted; packing policies use
    /// this exact predicate so a full node drops out of the candidate
    /// walk instead of failing every launch aimed at it.
    #[must_use]
    pub fn can_host(&self, config: &VmConfig) -> bool {
        self.memory.available(Placement::Relaxed) >= config.memory
            && self.memory.available(Placement::Reliable) >= self.per_vm_overhead(config)
    }

    /// Stops a VM, releases its memory and drops its record — a
    /// long-running node's per-tick work stays proportional to its
    /// *live* guests, not to every VM it ever hosted. Idempotent:
    /// stopping an unknown (or already-stopped-and-dropped) id is a
    /// no-op returning false, so double stops can never corrupt the
    /// memory-domain accounting.
    pub fn stop_vm(&mut self, id: VmId) -> bool {
        let Some(vm) = self.vms.remove(&id) else {
            return false;
        };
        let overhead = self.per_vm_overhead(&vm.config);
        self.memory.free(Placement::Relaxed, vm.config.memory);
        self.memory.free(Placement::Reliable, overhead);
        true
    }

    /// A VM by id.
    #[must_use]
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id)
    }

    /// All VMs.
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.vms.values()
    }

    fn per_vm_overhead(&self, config: &VmConfig) -> Bytes {
        self.config.per_vm_fixed
            + Bytes::new((config.memory.as_u64() as f64 * self.config.per_vm_fraction) as u64)
    }

    /// The hypervisor's own footprint: baseline + per-VM overheads +
    /// static objects + protection shadows. This is the red line of
    /// Figure 3 and it lives entirely in the reliable domain.
    #[must_use]
    pub fn own_footprint(&self) -> Bytes {
        // Stopped VMs are dropped from the map, so every record counts.
        let vm_overheads: Bytes =
            self.vms.values().map(|vm| self.per_vm_overhead(&vm.config)).sum();
        self.config.base_footprint
            + vm_overheads
            + self.inventory.total_size()
            + self.protector.overhead()
    }

    /// A Figure 3 footprint sample at the current instant.
    #[must_use]
    pub fn footprint_sample(&self) -> FootprintSample {
        let vms: Bytes = self
            .vms
            .values()
            .filter(|vm| vm.is_running())
            .map(|vm| vm.os_baseline() + vm.config.resident_set)
            .sum();
        let application: Bytes =
            self.vms.values().filter(|vm| vm.is_running()).map(Vm::application_heap).sum();
        FootprintSample { at: self.node.now(), hypervisor: self.own_footprint(), vms, application }
    }

    /// Applies a StressLog margin vector: per-core undervolts (clamped
    /// by an extra policy slack) and the relaxed-domain refresh. The
    /// reliable domain always stays at nominal refresh.
    ///
    /// # Panics
    ///
    /// Panics if the margin vector does not match the node's core count.
    pub fn apply_margins(&mut self, margins: &MarginVector) {
        assert_eq!(
            margins.per_core_safe_offset_mv.len(),
            self.node.core_count(),
            "margin vector does not match node topology"
        );
        for (core, &offset_mv) in margins.per_core_safe_offset_mv.iter().enumerate() {
            self.node
                .msr
                .set_voltage_offset(core, offset_mv.min(250.0))
                .expect("validated offsets are within MSR limits");
        }
        let relaxed = self.memory.relaxed_domain;
        self.node
            .msr
            .set_refresh_interval(relaxed, margins.safe_refresh)
            .expect("safe refresh within controller range");
        // Reliable domain: pinned at nominal.
        self.node
            .msr
            .set_refresh_interval(self.memory.reliable_domain, Seconds::from_millis(64.0))
            .expect("nominal refresh is always valid");
    }

    /// Runs the node for one interval under the merged guest workload
    /// and performs all resilience duties.
    pub fn tick(&mut self, duration: Seconds) -> TickOutcome {
        let running: Vec<VmId> =
            self.vms.values().filter(|vm| vm.is_running()).map(|vm| vm.id).collect();
        if self.merged_cache.is_none() || self.merged_cache_vms != running {
            self.merged_cache = Some(self.merged_workload());
            self.merged_cache_vms.clone_from(&running);
        }
        let workload = self.merged_cache.clone().expect("cache populated above");
        let report = self.node.run_interval(&workload, duration);

        let mut outcome = TickOutcome {
            at: report.at,
            node_crashed: false,
            crash_events: Vec::new(),
            masked_corrected: 0,
            contained_uncorrected: 0,
            pages_retired: 0,
            vm_restarts: 0,
            isolations: 0,
            recharacterization_requested: false,
            power: report.power,
            energy: report.energy,
        };
        let crashed = report.crash.is_some();

        // --- Error masking and containment (`running` still reflects
        // the start-of-tick set: run_interval cannot change VM states).
        for err in &report.errors {
            match err.severity {
                ErrorSeverity::Corrected => {
                    // Masked: guests never see corrected errors.
                    outcome.masked_corrected += 1;
                    self.masked_corrected_total += 1;
                }
                ErrorSeverity::Uncorrected => {
                    if let ErrorOrigin::Dimm { word, .. } = err.origin {
                        if self.memory.retire_page_of_word(word) {
                            outcome.pages_retired += 1;
                        }
                        // Contain: the UE hit a guest page; kill exactly
                        // that VM instead of the whole machine.
                        if !running.is_empty() {
                            let victim = running[(word % running.len() as u64) as usize];
                            if let Some(vm) = self.vms.get_mut(&victim) {
                                if vm.is_running() {
                                    vm.kill();
                                    outcome.contained_uncorrected += 1;
                                    self.contained_uncorrected_total += 1;
                                }
                            }
                        }
                    }
                }
                ErrorSeverity::Fatal => { /* handled via report.crash below */ }
            }
        }

        // --- HealthLog ingest, by value: the containment pass above was
        // the last reader, so the sensor sweep, PMU deltas and (at CE-
        // storm rates, thousands of) error records move into the vector
        // instead of being cloned. Ingest ordering relative to the
        // containment pass is immaterial — the HealthLog never touches
        // VM or memory state, and containment never touches the log.
        let actions = self.health.ingest_owned(report);

        // --- HealthLog recommendations: isolation & re-characterization.
        for action in actions {
            match action {
                HealthAction::TriggerStressTest => outcome.recharacterization_requested = true,
                HealthAction::IsolateResource(key) => match key {
                    LedgerKey::Core(c) if !self.node.is_isolated(c) => {
                        self.node.isolate_core(c);
                        outcome.isolations += 1;
                    }
                    LedgerKey::CacheBank(b) => {
                        self.node.cache_mut().isolate(b);
                        outcome.isolations += 1;
                    }
                    // DIMM-level isolation happens through page
                    // retirement rather than whole-DIMM offlining.
                    _ => {}
                },
            }
        }

        // --- Crash recovery: reboot, restart every VM, charge downtime.
        if crashed {
            outcome.node_crashed = true;
            outcome.crash_events = self.node.take_crash_events();
            self.crashes += 1;
            self.node.reboot();
            self.downtime = self.downtime + self.config.reboot_penalty;
            for vm in self.vms.values_mut() {
                vm.kill();
                vm.restart();
                outcome.vm_restarts += 1;
            }
        } else {
            self.uptime = self.uptime + duration;
            // Restart any VM killed by UE containment this tick.
            for vm in self.vms.values_mut() {
                if vm.state == VmState::Failed {
                    vm.restart();
                    outcome.vm_restarts += 1;
                }
            }
            for vm in self.vms.values_mut() {
                vm.advance(duration);
            }
        }

        // --- Periodic scrub of protected objects (no-op scan when the
        // shared inventory is provably untouched).
        self.protector.scrub_shared(&mut self.inventory);

        outcome
    }

    /// Merges the running guests' workload profiles into the node-level
    /// excitation (plus idle background when no guest runs).
    fn merged_workload(&self) -> WorkloadProfile {
        let running: Vec<&Vm> = self.vms.values().filter(|vm| vm.is_running()).collect();
        if running.is_empty() {
            return WorkloadProfile::idle();
        }
        let n = running.len() as f64;
        let avg = |f: fn(&WorkloadProfile) -> f64| {
            running.iter().map(|vm| f(&vm.config.workload)).sum::<f64>() / n
        };
        WorkloadProfile::new(
            "merged-guests",
            avg(|w| w.activity).clamp(0.0, 1.0),
            avg(|w| w.didt).clamp(0.0, 1.0),
            avg(|w| w.resonance).clamp(0.0, 1.0),
            avg(|w| w.ipc).max(0.1),
            avg(|w| w.cache_mpki),
            avg(|w| w.mem_bw_util).clamp(0.0, 1.0),
            running.iter().map(|vm| vm.config.workload.footprint_mib).sum(),
        )
    }

    /// Node availability so far: uptime / (uptime + downtime).
    #[must_use]
    pub fn availability(&self) -> f64 {
        let total = self.uptime.as_secs() + self.downtime.as_secs();
        if total == 0.0 {
            1.0
        } else {
            self.uptime.as_secs() / total
        }
    }

    /// Full node crashes observed.
    #[must_use]
    pub fn crashes(&self) -> u64 {
        self.crashes
    }

    /// Lifetime corrected errors masked from guests.
    #[must_use]
    pub fn masked_corrected_total(&self) -> u64 {
        self.masked_corrected_total
    }

    /// Lifetime uncorrected errors contained at VM granularity.
    #[must_use]
    pub fn contained_uncorrected_total(&self) -> u64 {
        self.contained_uncorrected_total
    }

    /// Per-origin error statistics (what the isolation logic consults).
    #[must_use]
    pub fn error_ledger(&self) -> &ErrorLedger {
        self.health.ledger()
    }

    /// Stats of a specific ledger origin, for reporting.
    #[must_use]
    pub fn origin_stats(&self, key: LedgerKey) -> OriginStats {
        self.health.ledger().stats(key)
    }
}

impl Hypervisor {
    /// Test/reporting helper: bytes allocated in the relaxed domain.
    #[must_use]
    pub fn memory_used_relaxed(&self) -> Bytes {
        self.memory.used(Placement::Relaxed)
    }

    /// Test/reporting helper: retired page count.
    #[must_use]
    pub fn memory_retired_pages(&self) -> usize {
        self.memory.retired_page_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_platform::msr::DomainId;
    use uniserver_platform::part::PartSpec;

    fn hypervisor() -> Hypervisor {
        Hypervisor::new(ServerNode::new(PartSpec::arm_microserver(), 42))
    }

    #[test]
    fn can_host_predicts_launch_across_both_domains() {
        // Inflate the fixed per-VM overhead so the *reliable* domain
        // (16 GiB) exhausts after one guest while the relaxed domain
        // still has room — the divergence a relaxed-only capacity check
        // cannot see.
        let config =
            HypervisorConfig { per_vm_fixed: Bytes::gib(9), ..HypervisorConfig::default() };
        let mut hv =
            Hypervisor::with_config(ServerNode::new(PartSpec::arm_microserver(), 42), config);
        let guest = VmConfig::ldbc_benchmark();
        assert!(hv.can_host(&guest));
        hv.launch_vm(guest.clone()).unwrap();
        assert!(
            hv.memory.available(Placement::Relaxed) >= guest.memory,
            "the relaxed domain must still have room for the second guest"
        );
        assert!(!hv.can_host(&guest), "the reliable domain is exhausted");
        assert!(hv.launch_vm(guest).is_err(), "can_host must mirror launch_vm");
    }

    #[test]
    fn vm_lifecycle_and_memory_accounting() {
        let mut hv = hypervisor();
        let id = hv.launch_vm(VmConfig::ldbc_benchmark()).expect("fits");
        assert!(hv.vm(id).unwrap().is_running());
        assert_eq!(hv.memory_used_relaxed(), Bytes::gib(4));
        assert!(hv.stop_vm(id));
        assert_eq!(hv.memory_used_relaxed(), Bytes::ZERO);
        // Idempotent: a second stop must not double-free the accounting.
        assert!(!hv.stop_vm(id));
        assert_eq!(hv.memory_used_relaxed(), Bytes::ZERO);
    }

    #[test]
    fn relaxed_domain_capacity_is_enforced() {
        let mut hv = hypervisor();
        // The commodity server has 16 GiB relaxed; five 4 GiB guests
        // cannot fit.
        let mut launched = 0;
        for _ in 0..5 {
            if hv.launch_vm(VmConfig::ldbc_benchmark()).is_ok() {
                launched += 1;
            }
        }
        assert_eq!(launched, 4);
    }

    #[test]
    fn figure3_hypervisor_share_stays_below_7_percent() {
        let mut hv = hypervisor();
        for _ in 0..4 {
            hv.launch_vm(VmConfig::ldbc_benchmark()).expect("4 VMs fit");
        }
        let mut max_share: f64 = 0.0;
        for _ in 0..240 {
            hv.tick(Seconds::new(2.5));
            let sample = hv.footprint_sample();
            max_share = max_share.max(sample.hypervisor_fraction());
        }
        assert!(
            max_share < 0.07,
            "hypervisor share peaked at {:.1} % (paper: always <7 %)",
            max_share * 100.0
        );
        assert!(max_share > 0.01, "share {max_share} suspiciously small");
    }

    #[test]
    fn nominal_ticks_are_clean_and_available() {
        let mut hv = hypervisor();
        hv.launch_vm(VmConfig::ldbc_benchmark()).unwrap();
        for _ in 0..50 {
            let out = hv.tick(Seconds::new(1.0));
            assert!(!out.node_crashed);
        }
        assert_eq!(hv.availability(), 1.0);
        assert_eq!(hv.crashes(), 0);
    }

    #[test]
    fn ue_is_contained_at_vm_granularity() {
        // ECC off + aggressively relaxed refresh => UEs in the relaxed
        // domain; the hypervisor must kill/restart VMs, never the node.
        let node = ServerNode::with_memory(
            PartSpec::arm_microserver(),
            uniserver_platform::dram::MemorySystem::commodity_server(false),
            7,
        );
        let mut hv = Hypervisor::new(node);
        hv.node_mut().msr.set_refresh_interval(DomainId(1), Seconds::new(10.0)).unwrap();
        for _ in 0..2 {
            hv.launch_vm(VmConfig::ldbc_benchmark()).unwrap();
        }
        let mut contained = 0;
        let mut restarts = 0;
        for _ in 0..100 {
            let out = hv.tick(Seconds::new(2.0));
            assert!(!out.node_crashed, "UEs must not take the node down");
            contained += out.contained_uncorrected;
            restarts += out.vm_restarts;
        }
        assert!(contained > 0, "expected UE containment events");
        assert!(restarts >= contained);
        assert!(hv.memory_retired_pages() > 0, "pages with UEs must be retired");
        assert_eq!(hv.availability(), 1.0, "containment preserves node availability");
    }

    #[test]
    fn deep_undervolt_crash_is_recovered_with_downtime() {
        let mut hv = hypervisor();
        hv.launch_vm(VmConfig::ldbc_benchmark()).unwrap();
        let deep = hv.node().part().offset_mv(0.20);
        hv.node_mut().msr.set_voltage_offset_all(deep).unwrap();
        let mut crashed = false;
        for _ in 0..50 {
            let out = hv.tick(Seconds::new(1.0));
            if out.node_crashed {
                crashed = true;
                assert!(out.vm_restarts > 0, "VMs restart after a node crash");
                break;
            }
        }
        assert!(crashed, "a 20 % undervolt must crash");
        assert!(hv.availability() < 1.0);
        assert!(hv.vm(VmId(0)).unwrap().is_running(), "VM is back after recovery");
        // Reboot cleared the offsets: ticks are stable again.
        for _ in 0..20 {
            assert!(!hv.tick(Seconds::new(1.0)).node_crashed);
        }
    }

    #[test]
    fn margins_from_stresslog_hold_in_production() {
        use uniserver_stresslog::{StressLog, StressTargetParams};
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 21);
        let mut stress = StressLog::new(StressTargetParams::quick());
        let margins = stress.characterize(&mut node, None);
        let mut hv = Hypervisor::new(node);
        hv.launch_vm(VmConfig::ldbc_benchmark()).unwrap();
        hv.apply_margins(&margins);
        let before = hv.tick(Seconds::new(1.0)).power;
        for _ in 0..100 {
            let out = hv.tick(Seconds::new(1.0));
            assert!(!out.node_crashed, "crashed under StressLog margins");
        }
        // And the margins actually save power vs nominal.
        let mut nominal = Hypervisor::new(ServerNode::new(PartSpec::arm_microserver(), 21));
        nominal.launch_vm(VmConfig::ldbc_benchmark()).unwrap();
        let nominal_power = nominal.tick(Seconds::new(1.0)).power;
        assert!(
            before.as_watts() < nominal_power.as_watts(),
            "EOP must save power: {before} vs {nominal_power}"
        );
    }

    #[test]
    fn stopping_unknown_vm_is_a_noop() {
        let mut hv = hypervisor();
        assert!(!hv.stop_vm(VmId(99)));
        assert_eq!(hv.memory_used_relaxed(), Bytes::ZERO);
    }

    #[test]
    fn stopped_vms_are_dropped_from_the_map() {
        // High-churn cluster workloads stop thousands of VMs per node;
        // per-tick cost must track live guests, not lifetime launches.
        let mut hv = hypervisor();
        for _ in 0..64 {
            let id = hv.launch_vm(VmConfig::idle_guest()).expect("fits");
            assert!(hv.stop_vm(id));
        }
        assert_eq!(hv.vms().count(), 0);
        assert_eq!(hv.memory_used_relaxed(), Bytes::ZERO);
    }
}
