//! The error-resilient hypervisor (paper §4.A).
//!
//! UniServer's KVM-based hypervisor has "additional roles": it sets the
//! node at a just-right V-F-R configuration, transparently masks errors
//! from upper software layers, isolates problematic processing and
//! memory resources, and protects the whole system from catastrophic
//! failures — all while its own footprint stays small enough (<7 % of
//! utilized memory, Figure 3) to live entirely in a *reliable* memory
//! domain refreshed at nominal rate.
//!
//! * [`objects`] — the statically allocated object inventory (16 820
//!   objects across Linux-subsystem categories) whose criticality the
//!   fault-injection study of §6.C / Figure 4 measures;
//! * [`vm`] — virtual machines with LDBC-style footprint dynamics
//!   (Figure 3's drivers);
//! * [`memdomain`] — reliable vs relaxed placement and page retirement;
//! * [`protect`] — selective checksum/shadow protection of critical
//!   structures ("educated checking and selective checkpointing");
//! * [`hypervisor`] — the hypervisor proper: VM lifecycle, error
//!   masking, isolation, the V-F-R governor and availability accounting.
//!
//! # Examples
//!
//! ```
//! use uniserver_hypervisor::hypervisor::Hypervisor;
//! use uniserver_hypervisor::vm::VmConfig;
//! use uniserver_platform::{PartSpec, ServerNode};
//! use uniserver_units::Seconds;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let node = ServerNode::new(PartSpec::arm_microserver(), 42);
//! let mut hv = Hypervisor::new(node);
//! let vm = hv.launch_vm(VmConfig::ldbc_benchmark())?;
//! hv.tick(Seconds::new(1.0));
//! assert!(hv.vm(vm).expect("vm exists").is_running());
//! # Ok(())
//! # }
//! ```

pub mod hypervisor;
pub mod memdomain;
pub mod objects;
pub mod protect;
pub mod vm;

pub use hypervisor::{Hypervisor, TickOutcome};
pub use objects::{HvObject, ObjectCategory, ObjectInventory};
pub use vm::{Vm, VmConfig, VmId, VmState};
