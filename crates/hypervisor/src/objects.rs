//! The hypervisor's statically allocated object inventory.
//!
//! §6.C: "for each statically allocated object of the Hypervisor (total
//! 16820 objects), we introduced, in independent executions (total 5
//! executions), Silent Data Corruptions" — and Figure 4 groups the
//! resulting fatal failures by the object's subsystem (block, drivers,
//! fs, init, kernel, mm, net, pci, power, security, vdso).
//!
//! Each object carries a *criticality* (probability that corrupting it
//! while it is being exercised takes the hypervisor down) and an
//! *exercise rate* under loaded/unloaded conditions. The calibration
//! reproduces the paper's two headline observations: (1) roughly an
//! order of magnitude more crashes under VM load, and (2) fs/kernel/net
//! structures are the most sensitive, in the same ranking with and
//! without load.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use uniserver_units::Bytes;

/// Linux-subsystem categories of hypervisor objects (Figure 4's x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ObjectCategory {
    /// Block-layer structures (request queues, elevators).
    Block,
    /// Device-driver state.
    Drivers,
    /// Filesystem structures (dentries, superblocks).
    Fs,
    /// Boot/init remnants.
    Init,
    /// Core kernel (scheduler, locking, time).
    Kernel,
    /// Memory management (page tables, slab caches).
    Mm,
    /// Networking stack.
    Net,
    /// PCI enumeration state.
    Pci,
    /// Power management.
    Power,
    /// LSM/security hooks.
    Security,
    /// The vDSO image.
    Vdso,
}

impl ObjectCategory {
    /// All categories in x-axis order.
    pub const ALL: [ObjectCategory; 11] = [
        ObjectCategory::Block,
        ObjectCategory::Drivers,
        ObjectCategory::Fs,
        ObjectCategory::Init,
        ObjectCategory::Kernel,
        ObjectCategory::Mm,
        ObjectCategory::Net,
        ObjectCategory::Pci,
        ObjectCategory::Power,
        ObjectCategory::Security,
        ObjectCategory::Vdso,
    ];

    /// Display label (matches the paper's figure).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ObjectCategory::Block => "block",
            ObjectCategory::Drivers => "drivers",
            ObjectCategory::Fs => "fs",
            ObjectCategory::Init => "init",
            ObjectCategory::Kernel => "kernel",
            ObjectCategory::Mm => "mm",
            ObjectCategory::Net => "net",
            ObjectCategory::Pci => "pci",
            ObjectCategory::Power => "power",
            ObjectCategory::Security => "security",
            ObjectCategory::Vdso => "vdso",
        }
    }

    /// Number of statically allocated objects in the category (sums to
    /// the paper's 16 820).
    #[must_use]
    pub fn object_count(self) -> usize {
        match self {
            ObjectCategory::Drivers => 4_200,
            ObjectCategory::Fs => 2_800,
            ObjectCategory::Kernel => 2_600,
            ObjectCategory::Net => 1_900,
            ObjectCategory::Mm => 1_600,
            ObjectCategory::Block => 1_200,
            ObjectCategory::Pci => 900,
            ObjectCategory::Power => 600,
            ObjectCategory::Security => 500,
            ObjectCategory::Init => 300,
            ObjectCategory::Vdso => 220,
        }
    }

    /// Probability that an SDC in an *exercised* object of this category
    /// is fatal. Calibrated so the Figure 4 ranking (fs/kernel/net most
    /// sensitive) and magnitudes (≤ ~3 500 with load over 5 executions)
    /// come out of the campaign.
    #[must_use]
    pub fn criticality(self) -> f64 {
        match self {
            ObjectCategory::Fs => 0.25,
            ObjectCategory::Kernel => 0.25,
            ObjectCategory::Net => 0.22,
            ObjectCategory::Mm => 0.18,
            ObjectCategory::Block => 0.12,
            ObjectCategory::Drivers => 0.08,
            ObjectCategory::Pci => 0.05,
            ObjectCategory::Security => 0.05,
            ObjectCategory::Power => 0.04,
            ObjectCategory::Init => 0.03,
            ObjectCategory::Vdso => 0.02,
        }
    }

    /// Fraction of executions in which an object of this category is
    /// actually exercised while VMs are running on top.
    #[must_use]
    pub fn exercise_rate_loaded(self) -> f64 {
        1.0
    }

    /// Exercise rate on an unloaded (no VM) hypervisor: an order of
    /// magnitude lower activity, uniformly — which is why Figure 4 shows
    /// "the same fault injection rate lead[ing] to an order of magnitude
    /// more Hypervisor crashes in the presence of active VMs" while the
    /// sensitivity *ranking* is load-invariant.
    #[must_use]
    pub fn exercise_rate_unloaded(self) -> f64 {
        0.07
    }
}

impl std::fmt::Display for ObjectCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One statically allocated hypervisor object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HvObject {
    /// Stable object identifier (index into the inventory).
    pub id: u32,
    /// Subsystem the object belongs to.
    pub category: ObjectCategory,
    /// Object size.
    pub size: Bytes,
    /// The object's (modeled) current 64-bit state word — the thing the
    /// fault injector actually flips bits in.
    pub value: u64,
    /// Pristine value for corruption detection.
    pub pristine: u64,
}

impl HvObject {
    /// Whether the object is currently corrupted.
    #[must_use]
    pub fn is_corrupted(&self) -> bool {
        self.value != self.pristine
    }

    /// Restores the pristine value.
    pub fn repair(&mut self) {
        self.value = self.pristine;
    }
}

/// The full inventory: the paper's 16 820 objects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectInventory {
    objects: Vec<HvObject>,
    /// Times mutable access was handed out. A scrubber that remembers
    /// the count it last saw can prove the inventory untouched since and
    /// skip its scan (see [`crate::protect::Protector::scrub_shared`]).
    mutations: u64,
}

impl ObjectInventory {
    /// Total number of statically allocated objects (the paper's count).
    pub const TOTAL_OBJECTS: usize = 16_820;

    /// Seed of the standard (hypervisor-default) inventory.
    pub const STANDARD_SEED: u64 = 0xB00F;

    /// The standard inventory every hypervisor boots with, shared
    /// copy-on-write. Built once per process: fleet simulations stand up
    /// thousands of hypervisors, and re-sampling (or even deep-copying)
    /// the same 16 820 deterministic objects each time dominated
    /// construction cost. Mutating accessors go through
    /// [`std::sync::Arc::make_mut`], so a hypervisor that actually takes
    /// corruption pays for its own copy then.
    #[must_use]
    pub fn standard_shared() -> std::sync::Arc<Self> {
        static PROTOTYPE: std::sync::OnceLock<std::sync::Arc<ObjectInventory>> =
            std::sync::OnceLock::new();
        std::sync::Arc::clone(
            PROTOTYPE.get_or_init(|| std::sync::Arc::new(ObjectInventory::build(Self::STANDARD_SEED))),
        )
    }

    /// Builds the inventory deterministically from a seed (sizes and
    /// state words are sampled; counts and criticalities are fixed per
    /// category).
    #[must_use]
    pub fn build(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut objects = Vec::with_capacity(Self::TOTAL_OBJECTS);
        let mut id = 0u32;
        for cat in ObjectCategory::ALL {
            for _ in 0..cat.object_count() {
                let value: u64 = rng.gen();
                objects.push(HvObject {
                    id,
                    category: cat,
                    // Object sizes: a few words up to a few KiB, log-ish.
                    size: Bytes::new(8u64 << rng.gen_range(0..8u32)),
                    value,
                    pristine: value,
                });
                id += 1;
            }
        }
        ObjectInventory { objects, mutations: 0 }
    }

    /// Times mutable access was handed out (monotone; a conservative
    /// "possibly dirty" signal, since callers may not have written).
    #[must_use]
    pub fn mutation_count(&self) -> u64 {
        self.mutations
    }

    /// Number of objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the inventory is empty (never, after `build`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Immutable object access.
    #[must_use]
    pub fn get(&self, id: u32) -> Option<&HvObject> {
        self.objects.get(id as usize)
    }

    /// Mutable object access (for injection and repair).
    pub fn get_mut(&mut self, id: u32) -> Option<&mut HvObject> {
        self.mutations += 1;
        self.objects.get_mut(id as usize)
    }

    /// Iterates over all objects.
    pub fn iter(&self) -> impl Iterator<Item = &HvObject> {
        self.objects.iter()
    }

    /// Total static footprint of the inventory.
    #[must_use]
    pub fn total_size(&self) -> Bytes {
        self.objects.iter().map(|o| o.size).sum()
    }

    /// Objects in one category.
    pub fn in_category(&self, cat: ObjectCategory) -> impl Iterator<Item = &HvObject> {
        self.objects.iter().filter(move |o| o.category == cat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_matches_paper_total() {
        let total: usize = ObjectCategory::ALL.iter().map(|c| c.object_count()).sum();
        assert_eq!(total, ObjectInventory::TOTAL_OBJECTS);
        let inv = ObjectInventory::build(1);
        assert_eq!(inv.len(), 16_820);
        assert!(!inv.is_empty());
    }

    #[test]
    fn fs_kernel_net_are_most_critical() {
        let mut by_crit: Vec<ObjectCategory> = ObjectCategory::ALL.to_vec();
        by_crit.sort_by(|a, b| b.criticality().partial_cmp(&a.criticality()).unwrap());
        let top3: Vec<&str> = by_crit[..3].iter().map(|c| c.label()).collect();
        assert!(top3.contains(&"fs"));
        assert!(top3.contains(&"kernel"));
        assert!(top3.contains(&"net"));
    }

    #[test]
    fn expected_fatalities_match_figure4_axes() {
        // With load, 5 executions: the worst category approaches 3 500
        // fatal failures; without load everything fits under ~250.
        for cat in ObjectCategory::ALL {
            let loaded = cat.object_count() as f64
                * 5.0
                * cat.criticality()
                * cat.exercise_rate_loaded();
            let unloaded = cat.object_count() as f64
                * 5.0
                * cat.criticality()
                * cat.exercise_rate_unloaded();
            assert!(loaded <= 3_500.0 + 1.0, "{cat}: loaded expectation {loaded}");
            assert!(unloaded <= 250.0 + 1.0, "{cat}: unloaded expectation {unloaded}");
        }
        let fs_loaded = ObjectCategory::Fs.object_count() as f64 * 5.0 * 0.25;
        assert!((fs_loaded - 3_500.0).abs() < 1.0, "fs anchors the left axis");
    }

    #[test]
    fn load_gap_is_an_order_of_magnitude() {
        for cat in ObjectCategory::ALL {
            let ratio = cat.exercise_rate_loaded() / cat.exercise_rate_unloaded();
            assert!((10.0..20.0).contains(&ratio), "{cat}: load ratio {ratio}");
        }
    }

    #[test]
    fn objects_start_pristine_and_repair_works() {
        let mut inv = ObjectInventory::build(2);
        assert!(inv.iter().all(|o| !o.is_corrupted()));
        let obj = inv.get_mut(7).expect("object 7 exists");
        obj.value ^= 1;
        assert!(obj.is_corrupted());
        obj.repair();
        assert!(!obj.is_corrupted());
    }

    #[test]
    fn build_is_deterministic() {
        assert_eq!(ObjectInventory::build(9), ObjectInventory::build(9));
    }

    #[test]
    fn category_filter_counts() {
        let inv = ObjectInventory::build(3);
        assert_eq!(inv.in_category(ObjectCategory::Vdso).count(), 220);
        assert_eq!(inv.in_category(ObjectCategory::Drivers).count(), 4_200);
    }
}
