//! Selective protection of critical hypervisor structures.
//!
//! §4.A: "The UniServer Hypervisor seeks resilience through a careful
//! characterization of the criticality and sensitivity of Hypervisor
//! data structures and code, and educated checking and selective
//! checkpointing mechanisms, driven by this analysis." The fault
//! injection of §6.C supplies the analysis (fs/kernel/net are the
//! sensitive clusters); this module implements the mechanism: shadow
//! copies plus periodic scrubbing for the categories worth the cost.

use std::collections::BTreeSet;
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use uniserver_units::Bytes;

use crate::objects::{ObjectCategory, ObjectInventory};

/// Which categories to protect.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ProtectionPolicy {
    /// The protected categories.
    pub categories: BTreeSet<ObjectCategory>,
}

impl ProtectionPolicy {
    /// Protect nothing (baseline).
    #[must_use]
    pub fn none() -> Self {
        ProtectionPolicy::default()
    }

    /// Protect the `k` most critical categories — the "educated" policy
    /// the fault-injection study justifies.
    #[must_use]
    pub fn top_categories(k: usize) -> Self {
        let mut cats: Vec<ObjectCategory> = ObjectCategory::ALL.to_vec();
        cats.sort_by(|a, b| {
            b.criticality()
                .partial_cmp(&a.criticality())
                .expect("criticalities are finite")
                .then(a.cmp(b))
        });
        ProtectionPolicy { categories: cats.into_iter().take(k).collect() }
    }

    /// Whether a category is protected.
    #[must_use]
    pub fn covers(&self, cat: ObjectCategory) -> bool {
        self.categories.contains(&cat)
    }
}

/// The runtime protector: shadow copies + scrub statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Protector {
    policy: ProtectionPolicy,
    /// Shadow copies as an id-sorted vector: the scrub walks it linearly
    /// every tick, so contiguity (and a deterministic order) beats a
    /// hash map here.
    shadows: Vec<(u32, u64)>,
    /// Inventory mutation count as of the last scrub (or construction):
    /// when unchanged, a shared scrub proves cleanliness without
    /// scanning.
    clean_mutations: u64,
    /// Corruptions repaired over the protector's lifetime.
    pub recoveries: u64,
    /// Scrub passes performed.
    pub scrubs: u64,
}

impl Protector {
    /// Creates a protector and snapshots shadow copies of every object
    /// in a protected category.
    #[must_use]
    pub fn new(policy: ProtectionPolicy, inventory: &ObjectInventory) -> Self {
        // Inventory iteration is already id-ascending, so the collected
        // shadow list is sorted by construction.
        let shadows = inventory
            .iter()
            .filter(|o| policy.covers(o.category))
            .map(|o| (o.id, o.pristine))
            .collect();
        Protector {
            policy,
            shadows,
            clean_mutations: inventory.mutation_count(),
            recoveries: 0,
            scrubs: 0,
        }
    }

    /// The active policy.
    #[must_use]
    pub fn policy(&self) -> &ProtectionPolicy {
        &self.policy
    }

    /// Number of protected objects.
    #[must_use]
    pub fn protected_objects(&self) -> usize {
        self.shadows.len()
    }

    /// Memory overhead of the shadow copies (8 bytes per protected
    /// object — the state words the model tracks).
    #[must_use]
    pub fn overhead(&self) -> Bytes {
        Bytes::new(self.shadows.len() as u64 * 8)
    }

    /// One scrub pass: compares protected objects against their shadow
    /// copies and repairs mismatches. Returns the number of repairs.
    pub fn scrub(&mut self, inventory: &mut ObjectInventory) -> u64 {
        self.scrubs += 1;
        let mut repaired = 0;
        for &(id, shadow) in &self.shadows {
            if let Some(obj) = inventory.get_mut(id) {
                if obj.value != shadow {
                    obj.value = shadow;
                    repaired += 1;
                }
            }
        }
        self.recoveries += repaired;
        self.clean_mutations = inventory.mutation_count();
        repaired
    }

    /// Scrubs a copy-on-write inventory. When the inventory's mutation
    /// count is unchanged since the last scrub, the pass is recorded
    /// without touching (or copying) the shared data — the serving
    /// tick's common case. A possibly-dirty inventory is un-shared via
    /// [`Arc::make_mut`] and scrubbed in full.
    pub fn scrub_shared(&mut self, inventory: &mut Arc<ObjectInventory>) -> u64 {
        if inventory.mutation_count() == self.clean_mutations {
            self.scrubs += 1;
            return 0;
        }
        self.scrub(Arc::make_mut(inventory))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_silicon::BitFlip;

    #[test]
    fn top_categories_pick_the_figure4_clusters() {
        let p = ProtectionPolicy::top_categories(3);
        assert!(p.covers(ObjectCategory::Fs));
        assert!(p.covers(ObjectCategory::Kernel));
        assert!(p.covers(ObjectCategory::Net));
        assert!(!p.covers(ObjectCategory::Vdso));
    }

    #[test]
    fn scrub_repairs_protected_corruption() {
        let mut inv = ObjectInventory::build(4);
        let mut protector = Protector::new(ProtectionPolicy::top_categories(3), &inv);
        // Corrupt one fs object (protected) and one vdso object (not).
        let fs_id = inv.in_category(ObjectCategory::Fs).next().unwrap().id;
        let vdso_id = inv.in_category(ObjectCategory::Vdso).next().unwrap().id;
        for id in [fs_id, vdso_id] {
            let obj = inv.get_mut(id).unwrap();
            obj.value = BitFlip::new(5).apply(obj.value);
        }
        let repaired = protector.scrub(&mut inv);
        assert_eq!(repaired, 1, "only the protected object is repaired");
        assert!(!inv.get(fs_id).unwrap().is_corrupted());
        assert!(inv.get(vdso_id).unwrap().is_corrupted());
        assert_eq!(protector.recoveries, 1);
    }

    #[test]
    fn overhead_scales_with_coverage() {
        let inv = ObjectInventory::build(4);
        let none = Protector::new(ProtectionPolicy::none(), &inv);
        let some = Protector::new(ProtectionPolicy::top_categories(3), &inv);
        let all = Protector::new(ProtectionPolicy::top_categories(11), &inv);
        assert_eq!(none.overhead(), Bytes::ZERO);
        assert!(some.overhead() > Bytes::ZERO);
        assert_eq!(all.protected_objects(), inv.len());
        assert!(some.overhead() < all.overhead());
        // Selective protection is cheap: 3 categories cover fs+kernel+net
        // = 7 300 objects = ~57 KiB of shadows.
        assert!(some.overhead() < Bytes::kib(64));
    }

    #[test]
    fn clean_scrub_repairs_nothing() {
        let mut inv = ObjectInventory::build(4);
        let mut protector = Protector::new(ProtectionPolicy::top_categories(11), &inv);
        assert_eq!(protector.scrub(&mut inv), 0);
        assert_eq!(protector.scrubs, 1);
    }
}
