//! CLI contract of the `fleet_sim` binary: flag validation exits
//! non-zero with a usage message, and the cluster mode's stdout is
//! byte-stable across thread counts.

use std::process::{Command, Output};

fn fleet_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fleet_sim"))
        .args(args)
        .output()
        .expect("fleet_sim runs")
}

#[test]
fn unknown_flags_exit_nonzero_with_usage() {
    let out = fleet_sim(&["--frobnicate"]);
    assert!(!out.status.success(), "unknown flags must not be silently ignored");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag '--frobnicate'"), "stderr: {stderr}");
    assert!(stderr.contains("usage: fleet_sim"), "stderr must show usage: {stderr}");
}

#[test]
fn flag_value_and_mode_mismatches_exit_nonzero() {
    for args in [
        &["--nodes"][..],
        &["--nodes", "zero"][..],
        &["--nodes", "0"][..],
        &["--secs", "-3"][..],
        &["--nominal"][..],
        &["--tick", "2"][..],
        &["--no-per-tick"][..],
        &["--cluster", "--mixed"][..],
        &["--cluster", "--baseline"][..],
        &["--cluster", "--no-per-node"][..],
    ] {
        let out = fleet_sim(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{args:?} stderr: {stderr}");
    }
}

#[test]
fn help_exits_zero() {
    let out = fleet_sim(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: fleet_sim"));
}

#[test]
fn cluster_mode_is_byte_stable_across_thread_counts() {
    let base = &["--cluster", "--nodes", "8", "--secs", "60", "--seed", "7"];
    let one = fleet_sim(&[base, &["--threads", "1"][..]].concat());
    let four = fleet_sim(&[base, &["--threads", "4"][..]].concat());
    assert!(one.status.success(), "stderr: {}", String::from_utf8_lossy(&one.stderr));
    assert!(four.status.success());
    assert_eq!(one.stdout, four.stdout, "cluster summaries must be byte-identical");
    let json = String::from_utf8_lossy(&one.stdout);
    assert!(json.contains("\"margins\":\"extended\""));
    assert!(json.contains("\"per_tick\":["));
}
