//! CLI contract of the `fleet_sim` binary: flag validation exits
//! non-zero with a usage message, and the cluster mode's stdout is
//! byte-stable across thread counts.

use std::process::{Command, Output};

fn fleet_sim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fleet_sim"))
        .args(args)
        .output()
        .expect("fleet_sim runs")
}

#[test]
fn unknown_flags_exit_nonzero_with_usage() {
    let out = fleet_sim(&["--frobnicate"]);
    assert!(!out.status.success(), "unknown flags must not be silently ignored");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag '--frobnicate'"), "stderr: {stderr}");
    assert!(stderr.contains("usage: fleet_sim"), "stderr must show usage: {stderr}");
}

#[test]
fn flag_value_and_mode_mismatches_exit_nonzero() {
    for args in [
        &["--nodes"][..],
        &["--nodes", "zero"][..],
        &["--nodes", "0"][..],
        &["--secs", "-3"][..],
        &["--nominal"][..],
        &["--tick", "2"][..],
        &["--no-per-tick"][..],
        &["--cluster", "--mixed"][..],
        &["--cluster", "--baseline"][..],
        &["--cluster", "--no-per-node"][..],
        &["--place", "linear"][..],
        &["--place", "indexed"][..],
        &["--cluster", "--place"][..],
        &["--cluster", "--place", "bogus"][..],
        &["--profile", "flash"][..],
        &["--profile", "flat"][..],
        &["--profile", "chaos"][..],
        &["--profile", "gray"][..],
        &["--cluster", "--profile"][..],
        &["--cluster", "--profile", "bogus"][..],
        &["--policy", "consolidate"][..],
        &["--policy", "energy-sla"][..],
        &["--cluster", "--policy"][..],
        &["--cluster", "--policy", "bogus"][..],
        &["--trace-out", "/tmp/x.ndjson"][..],
        &["--metrics-out", "/tmp/x.json"][..],
        &["--per-tick-every", "2"][..],
        &["--cluster", "--trace-out"][..],
        &["--cluster", "--metrics-out"][..],
        &["--cluster", "--per-tick-every"][..],
        &["--cluster", "--per-tick-every", "0"][..],
        &["--cluster", "--per-tick-every", "nope"][..],
    ] {
        let out = fleet_sim(args);
        assert!(!out.status.success(), "{args:?} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error:"), "{args:?} stderr: {stderr}");
    }
}

#[test]
fn unknown_profile_and_policy_errors_list_the_valid_names() {
    // An operator who typos a name should not have to open the source
    // to learn the valid set: the error must enumerate it.
    let out = fleet_sim(&["--cluster", "--profile", "bogus"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--profile must be flat, flash, chaos or gray, got 'bogus'"),
        "profile error must list the valid names: {stderr}"
    );
    let out = fleet_sim(&["--cluster", "--policy", "bogus"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--policy must be energy-sla, consolidate or reliability-blind, got 'bogus'"),
        "policy error must list the valid names: {stderr}"
    );
}

#[test]
fn help_exits_zero() {
    let out = fleet_sim(&["--help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage: fleet_sim"));
}

#[test]
fn cluster_mode_is_byte_stable_across_thread_counts() {
    // --threads drives the sharded serving loop as well as deploy, so
    // this locks serve determinism too. Requested counts resolve
    // against the machine (clamped to its cores), so on a single-core
    // box every variant runs one worker and this test only locks the
    // resolution path; genuinely multi-worker determinism is locked by
    // the direct-pool tests (tests/cluster_shard.rs,
    // tests/placement_index.rs, cloudmgr's pool/cluster unit tests),
    // which construct ShardPools of 2-6 workers regardless of cores.
    let base = &["--cluster", "--nodes", "8", "--secs", "60", "--seed", "7"];
    let one = fleet_sim(&[base, &["--threads", "1"][..]].concat());
    assert!(one.status.success(), "stderr: {}", String::from_utf8_lossy(&one.stderr));
    for threads in ["3", "4", "64"] {
        let n = fleet_sim(&[base, &["--threads", threads][..]].concat());
        assert!(n.status.success());
        assert_eq!(
            one.stdout,
            n.stdout,
            "cluster summaries must be byte-identical at {threads} threads"
        );
    }
    let json = String::from_utf8_lossy(&one.stdout);
    assert!(json.contains("\"margins\":\"extended\""));
    assert!(json.contains("\"per_tick\":["));
}

#[test]
fn flash_profile_is_byte_stable_and_reports_admission_counters() {
    let base = &["--cluster", "--profile", "flash", "--nodes", "8", "--secs", "120", "--seed", "7"];
    let one = fleet_sim(&[base, &["--threads", "1"][..]].concat());
    assert!(one.status.success(), "stderr: {}", String::from_utf8_lossy(&one.stderr));
    let four = fleet_sim(&[base, &["--threads", "4"][..]].concat());
    assert!(four.status.success());
    assert_eq!(one.stdout, four.stdout, "flash-crowd summaries must be byte-identical");
    let json = String::from_utf8_lossy(&one.stdout);
    assert!(json.contains("\"retried\":"), "flash summaries report admission counters: {json}");
    assert!(json.contains("\"abandoned\":"));
}

#[test]
fn chaos_profile_is_byte_stable_and_reports_the_outcome() {
    let base =
        &["--cluster", "--profile", "chaos", "--nodes", "8", "--secs", "300", "--seed", "7"];
    let one = fleet_sim(&[base, &["--threads", "1"][..]].concat());
    assert!(one.status.success(), "stderr: {}", String::from_utf8_lossy(&one.stderr));
    let four = fleet_sim(&[base, &["--threads", "4"][..]].concat());
    assert!(four.status.success());
    assert_eq!(one.stdout, four.stdout, "chaos summaries must be byte-identical");
    let json = String::from_utf8_lossy(&one.stdout);
    assert!(json.contains("\"chaos\":{\"injected_crashes\":"), "chaos outcome missing: {json}");
    for key in ["\"nodes_offlined\":", "\"downtime_secs\":", "\"availability\":", "\"shed\":"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn gray_profile_is_byte_stable_and_reports_the_outcome() {
    let base = &["--cluster", "--profile", "gray", "--nodes", "8", "--secs", "300", "--seed", "7"];
    let one = fleet_sim(&[base, &["--threads", "1"][..]].concat());
    assert!(one.status.success(), "stderr: {}", String::from_utf8_lossy(&one.stderr));
    let four = fleet_sim(&[base, &["--threads", "4"][..]].concat());
    assert!(four.status.success());
    assert_eq!(one.stdout, four.stdout, "gray summaries must be byte-identical");
    let json = String::from_utf8_lossy(&one.stdout);
    assert!(json.contains("\"gray\":{\"gray_onsets\":"), "gray outcome missing: {json}");
    for key in [
        "\"probe_failures\":",
        "\"quarantines\":",
        "\"readmissions\":",
        "\"degraded_node_secs\":",
        "\"peak_degraded\":",
        "\"powercap_deficit_watt_secs\":",
        "\"powercap_sheds\":",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
}

#[test]
fn flat_profile_flag_is_the_default_stream() {
    // `--profile flat` must be a no-op spelling of the default, so the
    // legacy rows keep reproducing when the flag is passed explicitly.
    let base = &["--cluster", "--nodes", "6", "--secs", "60", "--seed", "11"];
    let implicit = fleet_sim(base);
    assert!(implicit.status.success());
    let explicit = fleet_sim(&[base, &["--profile", "flat"][..]].concat());
    assert!(explicit.status.success());
    assert_eq!(implicit.stdout, explicit.stdout);
}

#[test]
fn indexed_and_linear_placement_are_byte_identical() {
    // The incremental placement index is a pure optimization: routing
    // every decision through the reference linear scan must reproduce
    // the run byte for byte.
    let base = &["--cluster", "--nodes", "8", "--secs", "60", "--seed", "7"];
    let indexed = fleet_sim(&[base, &["--place", "indexed"][..]].concat());
    assert!(indexed.status.success());
    let linear = fleet_sim(&[base, &["--place", "linear"][..]].concat());
    assert!(linear.status.success());
    assert_eq!(indexed.stdout, linear.stdout, "index diverged from the linear scan");
}

#[test]
fn energy_sla_policy_flag_is_the_default_byte_for_byte() {
    // Explicitly selecting the reference policy must be a no-op
    // spelling of the default — no label, no power object, same bytes.
    let base = &["--cluster", "--nodes", "6", "--secs", "60", "--seed", "11"];
    let implicit = fleet_sim(base);
    assert!(implicit.status.success());
    let explicit = fleet_sim(&[base, &["--policy", "energy-sla"][..]].concat());
    assert!(explicit.status.success());
    assert_eq!(implicit.stdout, explicit.stdout);
    let json = String::from_utf8_lossy(&implicit.stdout);
    assert!(!json.contains("\"policy\":"), "the reference run must stay unlabeled");
    assert!(!json.contains("\"power\":"));
}

#[test]
fn consolidate_policy_is_byte_stable_and_reports_power_accounting() {
    let base = &[
        "--cluster", "--policy", "consolidate", "--nodes", "16", "--secs", "300", "--seed", "7",
    ];
    let one = fleet_sim(&[base, &["--threads", "1"][..]].concat());
    assert!(one.status.success(), "stderr: {}", String::from_utf8_lossy(&one.stderr));
    let four = fleet_sim(&[base, &["--threads", "4"][..]].concat());
    assert!(four.status.success());
    assert_eq!(one.stdout, four.stdout, "consolidation summaries must be byte-identical");
    let json = String::from_utf8_lossy(&one.stdout);
    assert!(json.contains("\"policy\":\"consolidate\""), "the run must be labeled: {json}");
    assert!(json.contains("\"power\":{\"parks\":"), "power accounting missing: {json}");
    for key in ["\"wakes\":", "\"consolidation_migrations\":", "\"asleep_node_secs\":", "\"peak_asleep\":"]
    {
        assert!(json.contains(key), "missing {key} in {json}");
    }

    // The ablation is labeled but grows no power object.
    let blind = fleet_sim(&[
        "--cluster", "--policy", "reliability-blind", "--nodes", "6", "--secs", "60", "--seed", "7",
    ]);
    assert!(blind.status.success());
    let json = String::from_utf8_lossy(&blind.stdout);
    assert!(json.contains("\"policy\":\"reliability-blind\""));
    assert!(!json.contains("\"power\":"));
}

#[test]
fn unwritable_telemetry_paths_exit_nonzero_before_the_run() {
    for flag in ["--trace-out", "--metrics-out"] {
        let out = fleet_sim(&[
            "--cluster", "--nodes", "2", "--secs", "30",
            flag, "/nonexistent_dir_hopefully/out.ndjson",
        ]);
        assert!(!out.status.success(), "{flag} to an unwritable path must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error: cannot create"), "{flag} stderr: {stderr}");
    }
}

#[test]
fn telemetry_outputs_are_byte_stable_and_leave_stdout_untouched() {
    let dir = std::env::temp_dir().join(format!("fleet_sim_tel_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let base =
        &["--cluster", "--profile", "chaos", "--nodes", "8", "--secs", "300", "--seed", "7"];
    // The default run, no telemetry: the stdout baseline.
    let plain = fleet_sim(base);
    assert!(plain.status.success());
    let mut outputs = Vec::new();
    for threads in ["1", "4"] {
        let trace = dir.join(format!("trace_{threads}.ndjson"));
        let metrics = dir.join(format!("metrics_{threads}.json"));
        let out = fleet_sim(
            &[
                base,
                &["--threads", threads][..],
                &["--trace-out", trace.to_str().unwrap()][..],
                &["--metrics-out", metrics.to_str().unwrap()][..],
            ]
            .concat(),
        );
        assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(
            out.stdout, plain.stdout,
            "enabling telemetry must not perturb the deterministic stdout"
        );
        outputs.push((
            std::fs::read(&trace).expect("trace written"),
            std::fs::read(&metrics).expect("metrics written"),
        ));
    }
    assert_eq!(outputs[0].0, outputs[1].0, "traces must be byte-identical across threads");
    assert_eq!(outputs[0].1, outputs[1].1, "metrics must be byte-identical across threads");
    let trace = String::from_utf8_lossy(&outputs[0].0);
    assert!(trace.lines().count() > 0, "a chaos run must trace events");
    assert!(trace.starts_with("{\"tick\":"), "lines carry the tick stamp first");
    assert!(trace.contains("\"ev\":\"arrival\""));
    assert!(trace.contains("\"ev\":\"offline\""), "chaos must offline nodes");
    let metrics = String::from_utf8_lossy(&outputs[0].1);
    for key in [
        "\"counters\":{",
        "\"arrivals\":",
        "\"node_ticks\":",
        "\"gauges\":{",
        "\"offline_nodes\":",
        "\"histograms\":{",
        "\"queue_wait_ticks\":",
        "\"vm_lifetime_ticks\":",
        "\"mttr_ticks\":",
    ] {
        assert!(metrics.contains(key), "missing {key} in {metrics}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_tick_decimation_keeps_every_nth_row_and_default_is_identity() {
    let base = &["--cluster", "--nodes", "6", "--secs", "120", "--seed", "11"];
    let full = fleet_sim(base);
    assert!(full.status.success());
    let one = fleet_sim(&[base, &["--per-tick-every", "1"][..]].concat());
    assert!(one.status.success());
    assert_eq!(full.stdout, one.stdout, "--per-tick-every 1 must be the legacy shape");
    let five = fleet_sim(&[base, &["--per-tick-every", "5"][..]].concat());
    assert!(five.status.success());
    let full_json = String::from_utf8_lossy(&full.stdout);
    let five_json = String::from_utf8_lossy(&five.stdout);
    assert!(five_json.len() < full_json.len(), "decimation must shrink the series");
    assert!(five_json.contains("{\"tick\":0,"), "tick 0 survives decimation");
    assert!(five_json.contains("{\"tick\":5,"));
    assert!(!five_json.contains("{\"tick\":1,"), "off-stride rows are dropped");
    // Decimation only trims the series — the headline fields upstream
    // of `per_tick` are untouched.
    let head = full_json.split("\"per_tick\"").next().unwrap();
    assert_eq!(head, five_json.split("\"per_tick\"").next().unwrap());
}

#[test]
fn cluster_bench_record_reports_serve_rate_and_headline() {
    let dir = std::env::temp_dir().join(format!("fleet_sim_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let bench = dir.join("bench.json");
    let bench_path = bench.to_str().expect("utf-8 path");
    let out = fleet_sim(&[
        "--cluster", "--nodes", "4", "--secs", "30", "--threads", "2", "--no-per-tick",
        "--bench", bench_path, "--label", "smoke",
    ]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let record = std::fs::read_to_string(&bench).expect("bench file written");
    // `threads` records the *resolved* worker count (clamped to the
    // machine's cores), so its value is machine-dependent; `cores`
    // records the machine so wall-clocks can be read in context.
    for key in [
        "\"label\":\"smoke\"",
        "\"margins\":\"extended\"",
        "\"threads\":",
        "\"cores\":",
        "\"stages\":{\"placement_ms\":",
        "\"tick_wall_ms\":",
        "\"energy_j\":",
        "\"serve_ms_per_node\":",
    ] {
        assert!(record.contains(key), "missing {key} in {record}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
