//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each group sweeps one knob and reports the throughput of the
//! corresponding pipeline at each setting; the *results* of the sweeps
//! (fatality counts, refresh-rate ratios, energy at each slack) are
//! printed once per run so `cargo bench` doubles as the ablation
//! experiment log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use uniserver_faultinject::SdcCampaign;
use uniserver_hypervisor::protect::ProtectionPolicy;
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_platform::raidr::BinnedModule;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::comparisons::{uniserver_vs_razor, RazorCore};
use uniserver_silicon::retention::RetentionModel;
use uniserver_stresslog::{StressLog, StressTargetParams};
use uniserver_units::{Bytes, Celsius, Seconds};

/// Ablation 1 — selective protection coverage: how many categories to
/// shadow-protect (0, 3, 11) vs surviving fatalities.
fn ablation_protection(c: &mut Criterion) {
    let campaign = SdcCampaign { executions_per_object: 1, ..SdcCampaign::paper_campaign() };
    let mut g = c.benchmark_group("ablation_protection_coverage");
    g.sample_size(10);
    for k in [0usize, 3, 11] {
        let policy = ProtectionPolicy::top_categories(k);
        let fatalities = campaign.run(&policy).total_with_load();
        println!("[ablation] protection top-{k}: {fatalities} loaded fatalities");
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(campaign.run(&policy).total_with_load()));
        });
    }
    g.finish();
}

/// Ablation 2 — RAIDR retention-aware binning vs the paper's flat
/// relaxation: refresh operations relative to the 64 ms baseline.
fn ablation_raidr(c: &mut Criterion) {
    let retention = RetentionModel::ddr3_server();
    let candidates = [0.064, 1.0, 2.0, 4.0, 8.0].map(Seconds::new);
    let mut rng = StdRng::seed_from_u64(5);
    let module = BinnedModule::profile(
        &retention,
        Bytes::gib(8),
        &candidates,
        Celsius::new(45.0),
        &mut rng,
    );
    let flat = module.flat_equivalent_interval();
    println!(
        "[ablation] refresh ops vs 64 ms: flat@{flat} = {:.4}, RAIDR-binned = {:.4}",
        flat.ratio_to(Seconds::from_millis(64.0)).recip(),
        module.refresh_rate_vs(Seconds::from_millis(64.0))
    );
    let mut g = c.benchmark_group("ablation_raidr_profile");
    g.sample_size(10);
    g.bench_function("profile_8gb_module", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            black_box(BinnedModule::profile(
                &retention,
                Bytes::gib(8),
                &candidates,
                Celsius::new(45.0),
                &mut rng,
            ))
        });
    });
    g.finish();
}

/// Ablation 3 — StressLog voltage slack: safety margin kept in reserve
/// vs the undervolt actually certified.
fn ablation_slack(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_voltage_slack");
    g.sample_size(10);
    for slack in [5.0f64, 15.0, 30.0] {
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 41);
        let mut daemon = StressLog::new(StressTargetParams {
            voltage_slack_mv: slack,
            ..StressTargetParams::quick()
        });
        let margins = daemon.characterize(&mut node, None);
        println!(
            "[ablation] slack {slack} mV -> node-safe offset {:.0} mV",
            margins.node_safe_offset_mv()
        );
        g.bench_with_input(BenchmarkId::from_parameter(slack as u64), &slack, |b, &s| {
            b.iter(|| {
                let mut node = ServerNode::new(PartSpec::arm_microserver(), 41);
                let mut daemon = StressLog::new(StressTargetParams {
                    voltage_slack_mv: s,
                    ..StressTargetParams::quick()
                });
                black_box(daemon.characterize(&mut node, None))
            });
        });
    }
    g.finish();
}

/// Ablation 4 — UniServer vs the Razor baseline at equal margin
/// knowledge (§5.A): relative energy per instruction.
fn ablation_razor(c: &mut Criterion) {
    let razor = RazorCore::razor_ii();
    for margin in [10.0f64, 15.0, 20.0] {
        let (us, rz) = uniserver_vs_razor(margin, &razor);
        println!(
            "[ablation] margin {margin}%: uniserver energy {us:.3}, razor energy {rz:.3} (rel. to conservative)"
        );
    }
    c.bench_function("ablation_razor_comparison", |b| {
        b.iter(|| black_box(uniserver_vs_razor(black_box(15.0), &razor)));
    });
}

/// Ablation 5 — workload suite size for characterization: SPEC-only vs
/// SPEC+viruses changes the certified margin (viruses bound it).
fn ablation_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_stress_suite");
    g.sample_size(10);
    let spec_only = WorkloadProfile::spec2006_subset();
    let with_virus = {
        let mut v = spec_only.clone();
        v.extend(uniserver_stress::kernels::suite());
        v
    };
    for (label, suite) in [("spec_only", &spec_only), ("spec_plus_viruses", &with_virus)] {
        let mut node = ServerNode::new(PartSpec::arm_microserver(), 43);
        let mut daemon = StressLog::new(StressTargetParams {
            workloads: suite.clone(),
            shmoo: uniserver_stress::campaign::ShmooCampaign {
                dwell: Seconds::from_millis(200.0),
                runs: 1,
                ..uniserver_stress::campaign::ShmooCampaign::paper_methodology()
            },
            ..StressTargetParams::quick()
        });
        let margins = daemon.characterize(&mut node, None);
        println!(
            "[ablation] suite {label}: node-safe offset {:.0} mV",
            margins.node_safe_offset_mv()
        );
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut node = ServerNode::new(PartSpec::arm_microserver(), 43);
                let mut daemon = StressLog::new(StressTargetParams {
                    workloads: suite.clone(),
                    shmoo: uniserver_stress::campaign::ShmooCampaign {
                        dwell: Seconds::from_millis(200.0),
                        runs: 1,
                        ..uniserver_stress::campaign::ShmooCampaign::paper_methodology()
                    },
                    ..StressTargetParams::quick()
                });
                black_box(daemon.characterize(&mut node, None))
            });
        });
    }
    g.finish();
}

criterion_group!(
    ablation_benches,
    ablation_protection,
    ablation_raidr,
    ablation_slack,
    ablation_razor,
    ablation_suite,
);
criterion_main!(ablation_benches);
