//! One Criterion benchmark per paper artefact.
//!
//! Each benchmark regenerates (a reduced-size version of) the
//! corresponding table or figure, so `cargo bench` both times the
//! pipelines and proves they still run end to end. Reduced sizes keep
//! the suite's wall-clock reasonable; the `repro` binary runs the
//! full-size versions.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use uniserver_bench::experiments;
use uniserver_faultinject::SdcCampaign;
use uniserver_hypervisor::protect::ProtectionPolicy;
use uniserver_platform::dram::MemorySystem;
use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_stress::campaign::{RefreshSweep, ShmooCampaign, Table2Summary};
use uniserver_units::Seconds;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_guardband_measurement", |b| {
        b.iter(|| black_box(experiments::table1(black_box(1))));
    });
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_undervolt_shmoo");
    g.sample_size(10);
    // Reduced: one benchmark, one run, the 2-core part.
    let campaign = ShmooCampaign {
        dwell: Seconds::from_millis(200.0),
        runs: 1,
        ..ShmooCampaign::paper_methodology()
    };
    let suite = vec![WorkloadProfile::spec_bzip2(), WorkloadProfile::spec_zeusmp()];
    g.bench_function("i5_reduced", |b| {
        b.iter(|| {
            let shmoo = campaign.run(&PartSpec::i5_4200u(), black_box(7), &suite);
            black_box(Table2Summary::from_shmoo(&shmoo))
        });
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3_tco_stack", |b| {
        b.iter(|| black_box(experiments::table3()));
    });
}

fn bench_fig1(c: &mut Criterion) {
    c.bench_function("fig1_binning_2k_chips", |b| {
        b.iter(|| black_box(experiments::fig1_report(black_box(3), 2_000)));
    });
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_ecosystem_lifecycle");
    g.sample_size(10);
    g.bench_function("deploy_and_serve", |b| {
        b.iter(|| black_box(experiments::fig2(black_box(5))));
    });
    g.finish();
}

fn bench_fig3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_hypervisor_footprint");
    g.sample_size(10);
    g.bench_function("series_24_samples", |b| {
        b.iter(|| black_box(experiments::fig3_series(black_box(5), 24, Seconds::new(10.0))));
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_fault_injection");
    g.sample_size(10);
    let reduced = SdcCampaign { executions_per_object: 1, ..SdcCampaign::paper_campaign() };
    g.bench_function("one_execution_per_object", |b| {
        b.iter(|| black_box(reduced.run(&ProtectionPolicy::none())));
    });
    g.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut g = c.benchmark_group("dram_refresh_sweep");
    g.sample_size(10);
    let sweep = RefreshSweep { passes: 1, ..RefreshSweep::paper_sweep() };
    g.bench_function("nine_point_sweep", |b| {
        b.iter(|| {
            let mut memory = MemorySystem::commodity_server(false);
            black_box(sweep.run(&mut memory, 3, black_box(11)))
        });
    });
    g.finish();
}

fn bench_edge(c: &mut Criterion) {
    c.bench_function("edge_latency_analysis", |b| {
        b.iter(|| black_box(experiments::edge()));
    });
}

fn bench_cloud(c: &mut Criterion) {
    let mut g = c.benchmark_group("cloud_proactive_migration");
    g.sample_size(10);
    g.bench_function("four_node_scenario", |b| {
        b.iter(|| black_box(experiments::cloud(black_box(9))));
    });
    g.finish();
}

criterion_group!(
    experiments_benches,
    bench_table1,
    bench_table2,
    bench_table3,
    bench_fig1,
    bench_fig2,
    bench_fig3,
    bench_fig4,
    bench_dram,
    bench_edge,
    bench_cloud,
);
criterion_main!(experiments_benches);
