//! Micro-benchmarks of the placement hot path: the reference
//! `Scheduler::place_linear` full-rack scan against the incremental
//! `PlacementIndex`, at the headline rack sizes (256 and 10⁴ nodes).
//!
//! The linear scan re-weighs every node per request (~10⁸ filter/weigh
//! evaluations per simulated hour at 10⁴ nodes); the index walks a
//! sorted candidate set and re-scores only dirty nodes. The third
//! variant measures the steady-state serving pattern: a handful of
//! nodes dirtied per request (what launches/departures actually touch),
//! flushed and placed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use uniserver_cloudmgr::index::PlacementIndex;
use uniserver_cloudmgr::node::{ManagedNode, NodeId};
use uniserver_cloudmgr::{Scheduler, SlaClass};
use uniserver_hypervisor::vm::VmConfig;
use uniserver_platform::part::PartSpec;

const RACK_SIZES: [usize; 2] = [256, 10_000];

fn rack(n: usize) -> Vec<ManagedNode> {
    (0..n)
        .map(|i| {
            #[allow(clippy::cast_possible_truncation)]
            let id = NodeId(i as u32);
            ManagedNode::provision(id, PartSpec::arm_microserver(), i as u64)
        })
        .collect()
}

fn bench_placement(c: &mut Criterion) {
    let scheduler = Scheduler::default();
    let cfg = VmConfig::ldbc_benchmark();
    for nodes in RACK_SIZES {
        let ns = rack(nodes);

        let mut g = c.benchmark_group("scheduler_place");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::new("linear", nodes), &ns, |b, ns| {
            b.iter(|| black_box(scheduler.place_linear(ns.iter(), &cfg, SlaClass::Silver)));
        });

        let mut index = PlacementIndex::new(nodes);
        index.flush(&scheduler, &ns);
        g.bench_with_input(BenchmarkId::new("indexed", nodes), &ns, |b, ns| {
            b.iter(|| black_box(index.place(&scheduler, ns, &cfg, SlaClass::Silver, None)));
        });

        // The serving steady state: each request dirties a few nodes
        // (a launch here, a departure there) before the next placement.
        g.bench_with_input(BenchmarkId::new("indexed_dirty4", nodes), &ns, |b, ns| {
            b.iter(|| {
                for i in 0..4u32 {
                    index.mark(NodeId(i * 7 % ns.len() as u32));
                }
                index.flush(&scheduler, ns);
                black_box(index.place(&scheduler, ns, &cfg, SlaClass::Silver, None))
            });
        });
        g.finish();
    }
}

criterion_group!(placement_benches, bench_placement);
criterion_main!(placement_benches);
