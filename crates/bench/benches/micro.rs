//! Micro-benchmarks of the hot building blocks.
//!
//! These quantify the design-choice costs DESIGN.md calls out: the real
//! SECDED codec on the DRAM path, per-interval node simulation, GA
//! virus evolution, predictor training/inference, scheduler placement
//! and the migration cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use uniserver_cloudmgr::node::{ManagedNode, NodeId};
use uniserver_cloudmgr::{Scheduler, SlaClass};
use uniserver_hypervisor::vm::{Vm, VmConfig, VmId};
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_predictor::harness::TrainingHarness;
use uniserver_predictor::{FeatureVector, LogisticModel};
use uniserver_silicon::droop::DroopModel;
use uniserver_silicon::retention::RetentionModel;
use uniserver_silicon::Secded72;
use uniserver_stress::genetic::{evolve, GaConfig};
use uniserver_units::{Celsius, Seconds};

fn bench_secded(c: &mut Criterion) {
    let word = Secded72::encode(0xDEAD_BEEF_CAFE_F00D);
    c.bench_function("secded72_encode", |b| {
        b.iter(|| black_box(Secded72::encode(black_box(0xDEAD_BEEF_CAFE_F00D))));
    });
    c.bench_function("secded72_decode_clean", |b| {
        b.iter(|| black_box(Secded72::decode(black_box(word))));
    });
    let upset = Secded72::flip_bit(word, 17);
    c.bench_function("secded72_decode_correcting", |b| {
        b.iter(|| black_box(Secded72::decode(black_box(upset))));
    });
}

fn bench_node_tick(c: &mut Criterion) {
    let mut node = ServerNode::new(PartSpec::arm_microserver(), 7);
    let w = WorkloadProfile::spec_mcf();
    c.bench_function("server_node_interval", |b| {
        b.iter(|| black_box(node.run_interval(&w, Seconds::from_millis(100.0))));
    });
}

fn bench_ga(c: &mut Criterion) {
    let mut g = c.benchmark_group("genetic_virus");
    g.sample_size(10);
    let pdn = DroopModel::typical_server_pdn();
    g.bench_function("evolve_quick", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(evolve(&GaConfig::quick(), &pdn, &mut rng))
        });
    });
    g.finish();
}

fn bench_predictor(c: &mut Criterion) {
    let data = TrainingHarness::quick().generate(1);
    let mut g = c.benchmark_group("predictor");
    g.sample_size(10);
    g.bench_function("logistic_fit_100_epochs", |b| {
        b.iter(|| black_box(LogisticModel::fit(&data, 100, 0.5)));
    });
    g.finish();
    let model = LogisticModel::fit(&data, 100, 0.5);
    let f = FeatureVector::from_observables(0.1, 0.5, Celsius::new(26.0), 0.0);
    c.bench_function("logistic_predict", |b| {
        b.iter(|| black_box(model.predict_proba(black_box(&f))));
    });
}

fn bench_scheduler(c: &mut Criterion) {
    let nodes: Vec<ManagedNode> = (0..32)
        .map(|i| ManagedNode::provision(NodeId(i), PartSpec::arm_microserver(), u64::from(i)))
        .collect();
    let scheduler = Scheduler::default();
    let cfg = VmConfig::ldbc_benchmark();
    c.bench_function("scheduler_place_32_nodes", |b| {
        b.iter(|| black_box(scheduler.place_linear(nodes.iter(), &cfg, SlaClass::Silver)));
    });
}

fn bench_retention_math(c: &mut Criterion) {
    let m = RetentionModel::ddr3_server();
    c.bench_function("retention_fail_probability", |b| {
        b.iter(|| black_box(m.fail_probability(black_box(Seconds::new(5.0)), Celsius::new(45.0))));
    });
    c.bench_function("retention_max_safe_refresh", |b| {
        b.iter(|| black_box(m.max_safe_refresh(Celsius::new(45.0), 1 << 36, 0.1)));
    });
}

fn bench_migration_cost(c: &mut Criterion) {
    let model = uniserver_cloudmgr::migrate::MigrationModel::ten_gbe();
    let mut vm = Vm::launch(VmId(0), VmConfig::ldbc_benchmark());
    vm.advance(Seconds::new(60.0));
    c.bench_function("migration_cost_model", |b| {
        b.iter(|| black_box(model.cost(black_box(&vm))));
    });
}

criterion_group!(
    micro_benches,
    bench_secded,
    bench_node_tick,
    bench_ga,
    bench_predictor,
    bench_scheduler,
    bench_retention_math,
    bench_migration_cost,
);
criterion_main!(micro_benches);
