//! One entry point per paper artefact.
//!
//! Every function is deterministic given its seed and returns the
//! rendered report; the structured results come from the underlying
//! crates and are also exposed where tests need them.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uniserver_units::{Megahertz, Seconds};

use uniserver_cloudmgr::{Cluster, ClusterConfig};
use uniserver_core::ecosystem::{DeploymentConfig, Ecosystem};
use uniserver_edge::latency::{LatencyBudget, NetworkPath, PlacementAnalysis};
use uniserver_edge::DvfsPoint;
use uniserver_faultinject::{Figure4, SdcCampaign};
use uniserver_hypervisor::hypervisor::Hypervisor;
use uniserver_hypervisor::protect::ProtectionPolicy;
use uniserver_hypervisor::vm::VmConfig;
use uniserver_platform::dram::MemorySystem;
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_silicon::binning::{bin_population, BinningReport};
use uniserver_silicon::droop::DroopModel;
use uniserver_silicon::guardband::{self, GuardbandBreakdown};
use uniserver_silicon::power::DramPowerModel;
use uniserver_silicon::variation::VariationParams;
use uniserver_silicon::vmin::VminModel;
use uniserver_stress::campaign::{RefreshSweep, ShmooCampaign, Table2Summary};
use uniserver_stresslog::{StressLog, StressTargetParams};
use uniserver_tco::factors::{EeFactors, PAPER_TCO_IMPROVEMENT};
use uniserver_tco::model::{tco_improvement_energy_only, TcoParams};
use uniserver_tco::yield_model::compare_yields;

use crate::render::{bar, Table};

/// Table 1 — sources of variations and voltage guard-bands: the quoted
/// industry numbers next to what our models measure.
#[must_use]
pub fn table1(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let industry = GuardbandBreakdown::industry_practice();
    let vmin = VminModel { base_crash_offset: 0.15, ..VminModel::default() };
    let measured = guardband::measure(
        &DroopModel::typical_server_pdn(),
        &vmin,
        &VariationParams::server_28nm(),
        400,
        8,
        &mut rng,
    );

    let mut t = Table::new(vec!["Reasons for guard-bands", "Paper (Table 1)", "Measured (models)"]);
    let rows = industry.rows();
    let m = measured.rows();
    for i in 0..rows.len() {
        t.row(vec![
            rows[i].0.to_string(),
            format!("~{:.0} %", rows[i].1.as_percent()),
            format!("{:.1} %", m[i].1.as_percent()),
        ]);
    }
    t.row(vec![
        "Total up-scaling".to_string(),
        format!("~{:.0} %", industry.total().as_percent()),
        format!("{:.1} %", measured.total().as_percent()),
    ]);
    format!("Table 1: sources of variations and voltage guard-bands\n{}", t.render())
}

/// The two shmoo summaries behind Table 2.
#[must_use]
pub fn table2_summaries(seed: u64, dwell: Seconds) -> (Table2Summary, Table2Summary) {
    let campaign = ShmooCampaign { dwell, ..ShmooCampaign::paper_methodology() };
    let suite = WorkloadProfile::spec2006_subset();
    let i5 = Table2Summary::from_shmoo(&campaign.run(&PartSpec::i5_4200u(), seed, &suite));
    let i7 = Table2Summary::from_shmoo(&campaign.run(&PartSpec::i7_3970x(), seed, &suite));
    (i5, i7)
}

/// Table 2 — undervolting characterization of the two Intel parts.
#[must_use]
pub fn table2(seed: u64) -> String {
    let (i5, i7) = table2_summaries(seed, Seconds::from_millis(300.0));
    let fmt_ce = |v: Option<u64>| v.map_or("-".to_string(), |x| x.to_string());
    let mut t = Table::new(vec!["", "i5-4200U min", "i5-4200U max", "i7-3970X min", "i7-3970X max"]);
    t.row(vec![
        "crash points below nominal VID".to_string(),
        format!("-{:.1} %", i5.crash_min_pct),
        format!("-{:.1} %", i5.crash_max_pct),
        format!("-{:.1} %", i7.crash_min_pct),
        format!("-{:.1} %", i7.crash_max_pct),
    ]);
    t.row(vec![
        "core-to-core variation".to_string(),
        format!("{:.1} %", i5.core_var_min_pct),
        format!("{:.1} %", i5.core_var_max_pct),
        format!("{:.1} %", i7.core_var_min_pct),
        format!("{:.1} %", i7.core_var_max_pct),
    ]);
    t.row(vec![
        "number of cache ECC errors".to_string(),
        fmt_ce(i5.cache_ce_min),
        fmt_ce(i5.cache_ce_max),
        fmt_ce(i7.cache_ce_min),
        fmt_ce(i7.cache_ce_max),
    ]);
    let window = i5
        .mean_ce_window_mv
        .map_or("n/a".to_string(), |w| format!("{w:.1} mV (paper: ~15 mV)"));
    format!(
        "Table 2: initial results for two modeled Intel microprocessors\n\
         (paper: i5 crash -10/-11.2 %, c2c 0/2.7 %, CEs 1..17; i7 crash -8.4/-15.4 %, c2c 3.7/8 %)\n{}\n\
         mean CE onset window above crash: {}",
        t.render(),
        window
    )
}

/// Table 3 — energy-efficiency factors and TCO.
#[must_use]
pub fn table3() -> String {
    let f = EeFactors::table3();
    let mut t = Table::new(vec!["Scaling", "Sw maturity", "Fog", "Margins", "Overall", "TCO"]);
    let tco = tco_improvement_energy_only(&TcoParams::cloud_microserver_rack(), f.overall());
    t.row(vec![
        format!("{:.2}", f.scaling),
        format!("{:.2}", f.sw_maturity),
        format!("{:.2}", f.fog),
        format!("{:.2}", f.margins),
        format!("{:.0}", f.overall()),
        format!("{tco:.2}x (paper: {PAPER_TCO_IMPROVEMENT}x)"),
    ]);
    let yields = compare_yields(4_000, Megahertz::from_ghz(2.4), Megahertz::from_ghz(2.4), 0.9, 7);
    format!(
        "Table 3: energy-efficiency and TCO improvement estimations\n{}\n\
         yield effect (not in the 1.15x): binned {:.2} -> uniserver {:.2} => chip cost x{:.2} cheaper",
        t.render(),
        yields.binned_yield,
        yields.uniserver_yield,
        yields.chip_cost_ratio
    )
}

/// The binning report behind Figure 1.
#[must_use]
pub fn fig1_report(seed: u64, population: usize) -> BinningReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let chips = VariationParams::server_28nm().sample_population(population, 8, 8, &mut rng);
    bin_population(&chips, Megahertz::from_ghz(2.4), Megahertz::new(100.0), Megahertz::from_ghz(2.0))
}

/// Figure 1 — every chip is intrinsically different: the speed-bin
/// histogram of a manufactured population.
#[must_use]
pub fn fig1(seed: u64) -> String {
    let report = fig1_report(seed, 10_000);
    let max = report.bins.iter().map(|b| b.count).max().unwrap_or(1) as f64;
    let mut t = Table::new(vec!["bin (sold at)", "chips", "histogram"]);
    t.row(vec![
        "< lowest bin (discarded)".to_string(),
        report.discarded.to_string(),
        bar(report.discarded as f64, max, 40),
    ]);
    for b in &report.bins {
        t.row(vec![format!("{}", b.floor), b.count.to_string(), bar(b.count as f64, max, 40)]);
    }
    format!(
        "Figure 1: each manufactured chip is intrinsically different\n{}\n\
         yield {:.1} %, mean sold frequency {}",
        t.render(),
        report.yield_fraction() * 100.0,
        report.mean_sold_frequency()
    )
}

/// Figure 2 — the cross-layer ecosystem, demonstrated as a lifecycle
/// trace of a quick deployment.
#[must_use]
pub fn fig2(seed: u64) -> String {
    let mut eco = Ecosystem::deploy(&DeploymentConfig::quick(), seed);
    let mut lines = vec![
        "Figure 2: UniServer cross-layer ecosystem (lifecycle trace)".to_string(),
        format!("[firmware ] part characterized; EOP: {}", eco.operating_point().provenance),
        format!(
            "[hypervisor] guests launched; reliable domain pinned at 64 ms, relaxed at {}",
            eco.operating_point().relaxed_refresh
        ),
    ];
    for _ in 0..60 {
        eco.run(Seconds::new(1.0));
    }
    let report = eco.savings_report();
    lines.push(format!(
        "[daemons   ] 60 s served; availability {:.4}, crashes {}",
        report.availability, report.crashes
    ));
    eco.recharacterize();
    lines.push(format!(
        "[stresslog ] re-characterization #{} complete; new EOP: {}",
        eco.savings_report().recharacterizations,
        eco.operating_point().provenance
    ));
    lines.push(format!(
        "[openstack ] node power {} at EOP vs {} nominal => {:.1} % energy saved",
        report.eop_power,
        report.nominal_power,
        report.energy_saving_fraction * 100.0
    ));
    lines.join("\n")
}

/// The footprint series behind Figure 3.
#[must_use]
pub fn fig3_series(seed: u64, samples: usize, step: Seconds) -> Vec<(f64, f64, f64, f64)> {
    let mut hv = Hypervisor::new(ServerNode::new(PartSpec::arm_microserver(), seed));
    for _ in 0..4 {
        hv.launch_vm(VmConfig::ldbc_benchmark()).expect("four LDBC guests fit");
    }
    let mut out = Vec::with_capacity(samples);
    for _ in 0..samples {
        hv.tick(step);
        let s = hv.footprint_sample();
        out.push((
            s.at.as_secs(),
            s.hypervisor.as_gib(),
            s.vms.as_gib(),
            s.application.as_gib(),
        ));
    }
    out
}

/// Figure 3 — memory footprint of hypervisor, VMs and application over
/// repeated LDBC executions on four VMs.
#[must_use]
pub fn fig3(seed: u64) -> String {
    let series = fig3_series(seed, 48, Seconds::new(10.0));
    let mut t = Table::new(vec!["t (s)", "hypervisor (GiB)", "VMs (GiB)", "application (GiB)", "hv share"]);
    let mut max_share: f64 = 0.0;
    for (at, hv, vms, app) in &series {
        let share = hv / (hv + vms + app);
        max_share = max_share.max(share);
        t.row(vec![
            format!("{at:.0}"),
            format!("{hv:.2}"),
            format!("{vms:.2}"),
            format!("{app:.2}"),
            format!("{:.1} %", share * 100.0),
        ]);
    }
    format!(
        "Figure 3: memory footprint of hypervisor, VMs and application (4x LDBC VMs)\n{}\n\
         hypervisor share peak: {:.1} % (paper: always < 7 %)",
        t.render(),
        max_share * 100.0
    )
}

/// The campaign results behind Figure 4 (unprotected + protected).
#[must_use]
pub fn fig4_results(seed: u64) -> (Figure4, Figure4) {
    let campaign = SdcCampaign { seed, ..SdcCampaign::paper_campaign() };
    (campaign.run(&ProtectionPolicy::none()), campaign.run(&ProtectionPolicy::top_categories(3)))
}

/// Figure 4 — hypervisor fatal failures per object category, with and
/// without VM load, plus the selective-protection ablation.
#[must_use]
pub fn fig4(seed: u64) -> String {
    let (unprotected, protected) = fig4_results(seed);
    let max = unprotected.rows.iter().map(|r| r.fatal_with_load).max().unwrap_or(1) as f64;
    let mut t = Table::new(vec![
        "category",
        "fatal (with VMs)",
        "fatal (no VMs)",
        "with-VMs bar",
        "fatal w/ top-3 protection",
    ]);
    for row in &unprotected.rows {
        let prot = protected.row(row.category).fatal_with_load;
        t.row(vec![
            row.category.label().to_string(),
            row.fatal_with_load.to_string(),
            row.fatal_without_load.to_string(),
            bar(row.fatal_with_load as f64, max, 35),
            prot.to_string(),
        ]);
    }
    format!(
        "Figure 4: hypervisor fatal failures per object category (16 820 objects x 5 SDC executions)\n{}\n\
         totals: {} with VMs vs {} without ({}x gap; paper: one order of magnitude)",
        t.render(),
        unprotected.total_with_load(),
        unprotected.total_without_load(),
        unprotected.total_with_load() / unprotected.total_without_load().max(1)
    )
}

/// §6.B — the DRAM refresh-relaxation study.
#[must_use]
pub fn dram(seed: u64) -> String {
    let mut memory = MemorySystem::commodity_server(false); // paper: ECC disabled
    let sweep = RefreshSweep::paper_sweep();
    let points = sweep.run(&mut memory, 3, seed);

    let mut t = Table::new(vec![
        "refresh interval",
        "raw bit errors",
        "cumulative BER",
        "refresh power",
        "module saving",
    ]);
    let power = DramPowerModel::ddr3_8gb();
    for p in &points {
        t.row(vec![
            format!("{}", p.interval),
            p.raw_bit_errors.to_string(),
            format!("{}", p.ber),
            format!("{}", p.refresh_power),
            format!("{:.1} %", power.refresh_saving(p.interval) * 100.0),
        ]);
    }
    let safe = RefreshSweep::max_safe_interval(&points)
        .map_or("none".to_string(), |s| format!("{s}"));
    format!(
        "DRAM characterization (6.B): 8 GB DDR3 DIMM, random patterns, ECC off\n{}\n\
         longest error-free interval: {safe} (paper: 1.5 s error-free; 5 s => BER ~1e-9)\n\
         refresh share of module power: {:.0} % at 2 Gb chips, {:.0} % projected at 32 Gb (paper: 9 % / 34 %)",
        t.render(),
        DramPowerModel::ddr3_8gb().refresh_share_nominal() * 100.0,
        DramPowerModel::future_32gbit().refresh_share_nominal() * 100.0,
    )
}

/// §6.D — the Edge latency/energy analysis.
#[must_use]
pub fn edge() -> String {
    let budget = LatencyBudget::paper_iot_service();
    let analysis = PlacementAnalysis::analyze(Seconds::from_millis(95.0), budget);
    let paper_point = DvfsPoint::paper_edge_point();

    let mut t = Table::new(vec!["placement", "network RTT", "compute budget", "feasible DVFS", "rel. power"]);
    for (path, point) in [
        (NetworkPath::cloud_wan(), analysis.cloud_point),
        (NetworkPath::edge_lan(), analysis.edge_point),
    ] {
        t.row(vec![
            path.label.to_string(),
            format!("{}", path.rtt),
            format!("{}", budget.compute_budget(path)),
            point.map_or("infeasible".to_string(), |p| {
                format!("f x{:.2}, V x{:.2}", p.freq_scale, p.voltage_scale)
            }),
            point.map_or("-".to_string(), |p| format!("{:.2}", p.power_scale())),
        ]);
    }
    format!(
        "Edge analysis (6.D): 200 ms end-to-end IoT service, 95 ms peak compute\n{}\n\
         edge vs cloud: {:.0} % energy / {:.0} % power saved\n\
         paper's worked point (f x0.5, V x0.7): {:.0} % less energy, {:.0} % less power",
        t.render(),
        analysis.edge_energy_saving().unwrap_or(0.0) * 100.0,
        analysis.edge_power_saving().unwrap_or(0.0) * 100.0,
        (1.0 - paper_point.energy_scale_fixed_work()) * 100.0,
        (1.0 - paper_point.power_scale()) * 100.0,
    )
}

/// Extension — reliability-aware cloud management in action: a fleet
/// with one degrading node, proactive migration on.
#[must_use]
pub fn cloud(seed: u64) -> String {
    let mut cluster = Cluster::build(&ClusterConfig::small_edge_site(4), seed);
    for i in 0..6 {
        let class = if i % 3 == 0 {
            uniserver_cloudmgr::SlaClass::Gold
        } else {
            uniserver_cloudmgr::SlaClass::Bronze
        };
        cluster.submit(VmConfig::ldbc_benchmark(), class);
    }
    // Degrade node 0's relaxed DRAM domain.
    cluster.nodes_mut()[0]
        .hypervisor
        .node_mut()
        .msr
        .set_refresh_interval(uniserver_platform::msr::DomainId(1), Seconds::new(10.0))
        .expect("within controller range");
    for _ in 0..90 {
        cluster.tick(Seconds::new(2.0));
    }
    let m = cluster.fleet_metrics();
    let mut t = Table::new(vec!["node", "availability", "utilization", "reliability"]);
    for node in cluster.nodes() {
        let nm = node.metrics();
        t.row(vec![
            format!("{}", node.id),
            format!("{:.4}", nm.availability),
            format!("{:.2}", nm.utilization),
            format!("{:.3}", nm.reliability),
        ]);
    }
    format!(
        "Cloud management (4.B): reliability-aware scheduling + proactive migration\n{}\n\
         proactive migrations: {}, cumulative blackout {:.2} ms, rejected {}",
        t.render(),
        m.migrations,
        m.migration_downtime.as_millis(),
        m.rejected
    )
}

/// Extension — the §5.A baseline comparison: UniServer vs Razor-style
/// timing-error detection, plus the DRAM tolerance ladder (bare →
/// SECDED → ArchShield) and RAIDR-style refresh binning.
#[must_use]
pub fn compare(seed: u64) -> String {
    use uniserver_platform::raidr::BinnedModule;
    use uniserver_silicon::comparisons::{uniserver_vs_razor, ArchShield, RazorCore};
    use uniserver_silicon::retention::RetentionModel;
    use uniserver_units::{BitErrorRate, Bytes, Celsius, Ratio};

    // --- CPU side: energy per instruction vs a Razor core.
    let razor = RazorCore::razor_ii();
    let mut t = Table::new(vec!["exploitable margin", "UniServer energy", "Razor energy", "winner"]);
    for margin in [10.0, 15.0, 20.0] {
        let (us, rz) = uniserver_vs_razor(margin, &razor);
        t.row(vec![
            format!("{margin:.0} %"),
            format!("{us:.3}"),
            format!("{rz:.3}"),
            if us <= rz { "UniServer".to_string() } else { "Razor".to_string() },
        ]);
    }

    // --- DRAM side: how far each tolerance scheme lets refresh go.
    let retention = RetentionModel::ddr3_server();
    let temp = Celsius::new(45.0);
    let bare = retention.max_safe_refresh(temp, Bytes::gib(8).bits(), 0.1);
    let secded = ArchShield { tolerable_ber: BitErrorRate::SECDED_LIMIT, capacity_tax: Ratio::ZERO }
        .max_refresh(&retention, temp);
    let shield = ArchShield::published().max_refresh(&retention, temp);

    // --- RAIDR binning vs flat relaxation.
    let mut rng = StdRng::seed_from_u64(seed);
    let module = BinnedModule::profile(
        &retention,
        Bytes::gib(8),
        &[0.064, 1.0, 2.0, 4.0, 8.0].map(Seconds::new),
        temp,
        &mut rng,
    );
    let raidr_ratio = module.refresh_rate_vs(module.flat_equivalent_interval());

    format!(
        "Baseline comparison (5.A related work, implemented)
{}
         DRAM refresh envelopes at 45 °C (8 GB module):
           error-free (paper's policy)          : {bare}
           SECDED-tolerated (BER <= 1e-6)       : {secded}
           ArchShield-tolerated (BER <= 1e-4)   : {shield} (4 % capacity tax)
         RAIDR binning: {:.0} % of the flat policy's refresh operations",
        t.render(),
        raidr_ratio * 100.0
    )
}

/// Extension — the StressLog margin safety story quantified: crash-free
/// operation at margins and power saved versus nominal.
#[must_use]
pub fn margins(seed: u64) -> String {
    let mut node = ServerNode::new(PartSpec::arm_microserver(), seed);
    let mut daemon = StressLog::new(StressTargetParams::quick());
    let margins = daemon.characterize(&mut node, None);
    let mut t = Table::new(vec!["core", "safe undervolt (mV)", "(% of nominal)"]);
    let nominal_mv = node.part().nominal_voltage.as_millivolts();
    for (core, &mv) in margins.per_core_safe_offset_mv.iter().enumerate() {
        t.row(vec![
            core.to_string(),
            format!("{mv:.0}"),
            format!("{:.1} %", mv / nominal_mv * 100.0),
        ]);
    }
    format!(
        "StressLog margin vector for '{}'\n{}\nsafe relaxed-domain refresh: {}",
        margins.part_name,
        t.render(),
        margins.safe_refresh
    )
}

/// Extension — the reproduction scoreboard: re-derives every headline
/// claim at reduced size and prints PASS/FAIL per artefact. Exits
/// non-zero from the binary when any check fails.
#[must_use]
pub fn validate(seed: u64) -> (String, bool) {
    let mut rows: Vec<(&'static str, bool, String)> = Vec::new();

    // Table 1: droop is the largest source, core-to-core the smallest.
    {
        let mut rng = StdRng::seed_from_u64(seed);
        let vmin = VminModel { base_crash_offset: 0.15, ..VminModel::default() };
        let g = guardband::measure(
            &DroopModel::typical_server_pdn(),
            &vmin,
            &VariationParams::server_28nm(),
            200,
            8,
            &mut rng,
        );
        rows.push((
            "table1: droop > vmin > core-to-core ordering",
            g.voltage_droops.value() > g.core_to_core.value()
                && g.vmin.value() > g.core_to_core.value(),
            format!(
                "droop {:.1} %, vmin {:.1} %, c2c {:.1} %",
                g.voltage_droops.as_percent(),
                g.vmin.as_percent(),
                g.core_to_core.as_percent()
            ),
        ));
    }

    // Table 2: both parts hide >=8 % margin; i7 wider band; only i5 CEs.
    {
        let (i5, i7) = table2_summaries(seed, Seconds::from_millis(200.0));
        rows.push((
            "table2: >=8 % hidden margin on both parts",
            i5.crash_min_pct >= 8.0 && i7.crash_min_pct >= 6.0,
            format!("i5 min {:.1} %, i7 min {:.1} %", i5.crash_min_pct, i7.crash_min_pct),
        ));
        rows.push((
            "table2: i7 spans wider band, i5 exposes CEs",
            (i7.crash_max_pct - i7.crash_min_pct) > (i5.crash_max_pct - i5.crash_min_pct)
                && i5.cache_ce_max.is_some()
                && i7.cache_ce_max.is_none(),
            format!(
                "bands i5 {:.1}, i7 {:.1}; CEs i5 {:?}, i7 {:?}",
                i5.crash_max_pct - i5.crash_min_pct,
                i7.crash_max_pct - i7.crash_min_pct,
                i5.cache_ce_max,
                i7.cache_ce_max
            ),
        ));
    }

    // Table 3: 36x EE, ~1.15x TCO.
    {
        let f = EeFactors::table3();
        let tco = tco_improvement_energy_only(&TcoParams::cloud_microserver_rack(), f.overall());
        rows.push((
            "table3: 36x EE stack, ~1.15x TCO",
            (f.overall() - 36.0).abs() < 1e-9 && (tco - 1.15).abs() < 0.03,
            format!("overall {}x, tco {tco:.3}x", f.overall()),
        ));
    }

    // Figure 3: hypervisor share always < 7 %.
    {
        let series = fig3_series(seed, 24, Seconds::new(10.0));
        let max = series
            .iter()
            .map(|(_, hv, vms, app)| hv / (hv + vms + app))
            .fold(f64::MIN, f64::max);
        rows.push((
            "fig3: hypervisor share < 7 %",
            max < 0.07,
            format!("peak {:.1} %", max * 100.0),
        ));
    }

    // Figure 4: ~order-of-magnitude load gap, fs/kernel/net on top.
    {
        let campaign = SdcCampaign { executions_per_object: 1, seed, ..SdcCampaign::paper_campaign() };
        let fig4 = campaign.run(&ProtectionPolicy::none());
        let ratio = fig4.total_with_load() as f64 / fig4.total_without_load().max(1) as f64;
        let top3: Vec<&str> =
            fig4.sensitivity_ranking()[..3].iter().map(|c| c.label()).collect();
        rows.push((
            "fig4: ~10x load gap, fs/kernel/net most critical",
            (6.0..30.0).contains(&ratio)
                && ["fs", "kernel", "net"].iter().all(|c| top3.contains(c)),
            format!("gap {ratio:.1}x, top3 {top3:?}"),
        ));
    }

    // DRAM: clean at 1.5 s, BER ~1e-9 at 5 s.
    {
        let mut memory = MemorySystem::commodity_server(false);
        let sweep = RefreshSweep { passes: 2, ..RefreshSweep::paper_sweep() };
        let points = sweep.run(&mut memory, 3, seed);
        let clean_1_5 = points
            .iter()
            .filter(|p| p.interval <= Seconds::new(1.5))
            .all(|p| p.raw_bit_errors <= 1);
        let p5 = points.last().expect("sweep has points");
        rows.push((
            "dram: clean to 1.5 s, BER ~1e-9 at 5 s",
            clean_1_5 && p5.ber.value() > 1e-10 && p5.ber.value() < 1e-8,
            format!("5 s BER {}", p5.ber),
        ));
    }

    // Edge: the paper's DVFS arithmetic.
    {
        let p = DvfsPoint::paper_edge_point();
        rows.push((
            "edge: f x0.5 / V x0.7 => ~-50 % energy, ~-75 % power",
            (1.0 - p.energy_scale_fixed_work() - 0.51).abs() < 0.02
                && (1.0 - p.power_scale() - 0.755).abs() < 0.02,
            format!(
                "-{:.0} % energy, -{:.0} % power",
                (1.0 - p.energy_scale_fixed_work()) * 100.0,
                (1.0 - p.power_scale()) * 100.0
            ),
        ));
    }

    // Ecosystem: EOP saves energy without crashing.
    {
        let mut eco = Ecosystem::deploy(&DeploymentConfig::quick(), seed);
        for _ in 0..60 {
            eco.run(Seconds::new(1.0));
        }
        let r = eco.savings_report();
        rows.push((
            "ecosystem: EOP saves energy, zero crashes",
            r.crashes == 0 && r.energy_saving_fraction > 0.03,
            format!("saving {:.1} %, crashes {}", r.energy_saving_fraction * 100.0, r.crashes),
        ));
    }

    let all_ok = rows.iter().all(|(_, ok, _)| *ok);
    let mut t = Table::new(vec!["check", "status", "measured"]);
    for (name, ok, detail) in rows {
        t.row(vec![name.to_string(), if ok { "PASS".into() } else { "FAIL".into() }, detail]);
    }
    let verdict = if all_ok { "ALL CHECKS PASSED" } else { "CHECKS FAILED" };
    (format!("Reproduction scoreboard (seed {seed})
{}
{verdict}", t.render()), all_ok)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_report_renders_nonempty() {
        // Smoke-test the cheap reports end to end (the expensive ones
        // have dedicated integration tests).
        for report in [table3(), edge(), compare(5)] {
            assert!(report.lines().count() > 3, "report too short:\n{report}");
        }
    }

    #[test]
    fn table1_mentions_all_sources() {
        let r = table1(1);
        for needle in ["Voltage droops", "Vmin", "Core-to-core", "Total"] {
            assert!(r.contains(needle), "missing {needle} in\n{r}");
        }
    }

    #[test]
    fn fig1_histogram_has_bins_and_yield() {
        let r = fig1(1);
        assert!(r.contains("yield"));
        assert!(r.contains("discarded"));
        assert!(r.matches('#').count() > 20, "histogram should draw bars");
    }

    #[test]
    fn fig3_series_respects_the_7_percent_bound() {
        let series = fig3_series(5, 24, Seconds::new(10.0));
        for (at, hv, vms, app) in series {
            let share = hv / (hv + vms + app);
            assert!(share < 0.07, "hv share {share} at t={at}");
        }
    }
}
