//! Reproduction harness: everything needed to regenerate the paper's
//! tables and figures from the workspace's models.
//!
//! The [`experiments`] module contains one entry point per artefact
//! (Table 1–3, Figure 1–4, the §6.B DRAM study and the §6.D Edge
//! analysis), each returning a printable report whose rows mirror the
//! paper's. The `repro` binary dispatches to them; the Criterion
//! benches exercise the same code paths at reduced sizes.

pub mod cluster;
pub mod experiments;
pub mod fleet;
pub mod render;
