//! `repro` — regenerate every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [table1|table2|table3|fig1|fig2|fig3|fig4|dram|edge|cloud|margins|compare|validate|all] [--seed N]
//! ```

use std::process::ExitCode;

use uniserver_bench::experiments;

const ARTEFACTS: [&str; 12] = [
    "table1", "table2", "table3", "fig1", "fig2", "fig3", "fig4", "dram", "edge", "cloud",
    "margins", "compare",
];

/// Runs the validation scoreboard; returns success.
fn run_validate(seed: u64) -> bool {
    let (report, ok) = experiments::validate(seed);
    println!("{report}");
    ok
}

fn run_one(name: &str, seed: u64) -> Option<String> {
    let report = match name {
        "table1" => experiments::table1(seed),
        "table2" => experiments::table2(seed),
        "table3" => experiments::table3(),
        "fig1" => experiments::fig1(seed),
        "fig2" => experiments::fig2(seed),
        "fig3" => experiments::fig3(seed),
        "fig4" => experiments::fig4(seed),
        "dram" => experiments::dram(seed),
        "edge" => experiments::edge(),
        "cloud" => experiments::cloud(seed),
        "margins" => experiments::margins(seed),
        "compare" => experiments::compare(seed),
        _ => return None,
    };
    Some(report)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 2018u64; // the paper's venue year, for determinism
    let mut targets: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => match iter.next().map(|s| s.parse::<u64>()) {
                Some(Ok(s)) => seed = s,
                _ => {
                    eprintln!("--seed requires an integer argument");
                    return ExitCode::FAILURE;
                }
            },
            "all" => targets.extend(ARTEFACTS.iter().map(|s| s.to_string())),
            other => targets.push(other.to_string()),
        }
    }
    if targets.is_empty() {
        eprintln!("usage: repro [{}|all] [--seed N]", ARTEFACTS.join("|"));
        return ExitCode::FAILURE;
    }
    if targets.iter().any(|t| t == "validate") {
        return if run_validate(seed) { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }
    for (i, name) in targets.iter().enumerate() {
        match run_one(name, seed) {
            Some(report) => {
                if i > 0 {
                    println!();
                }
                println!("{report}");
            }
            None => {
                eprintln!("unknown artefact '{name}'; expected one of {ARTEFACTS:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
