//! `fleet_sim` — parallel fleet-scale UniServer simulation.
//!
//! Deploys N independently manufactured ecosystems (per-node seeds
//! derived from the fleet seed), serves each for the configured horizon,
//! and prints a deterministic JSON fleet summary to stdout.
//!
//! ```text
//! fleet_sim [--nodes N] [--seed S] [--secs T] [--threads K]
//!           [--mixed] [--baseline] [--bench PATH] [--label NAME]
//!           [--no-per-node]
//! ```
//!
//! * `--mixed` deploys the heterogeneous reference fleet (ARM + i5 + i7
//!   at 6:1:1, per-node guest mixes, ±6 °C ambient spread) instead of a
//!   homogeneous ARM fleet.
//! * `--baseline` reproduces the PR 1 deploy semantics — single-pass
//!   shmoo ladders and per-node predictor training — for before/after
//!   benchmarking of the deploy fast path.
//! * `--bench PATH` appends one JSON timing line (the `BENCH_fleet.json`
//!   entry shape: label, nodes, threads, wall/deploy/serve ms and
//!   deploy ms per node) to PATH. Timings are machine-local wall-clock
//!   and are deliberately *not* part of the summary on stdout.
//!
//! The same `(nodes, seed, secs, --mixed)` tuple produces byte-identical
//! stdout for any thread count — the determinism the paper's methodology
//! demands of every experiment in this workspace.

use std::io::Write as _;
use std::process::ExitCode;

use uniserver_bench::fleet::{simulate_timed, FleetConfig};
use uniserver_stress::campaign::ShmooCampaign;
use uniserver_units::Seconds;

struct Args {
    nodes: usize,
    seed: u64,
    secs: f64,
    threads: usize,
    per_node: bool,
    mixed: bool,
    baseline: bool,
    bench: Option<String>,
    label: Option<String>,
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let mut args = Args {
        nodes: 64,
        seed: 2018,
        secs: 120.0,
        threads: 0,
        per_node: true,
        mixed: false,
        baseline: false,
        bench: None,
        label: None,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--secs" => args.secs = value("--secs")?.parse().map_err(|e| format!("--secs: {e}"))?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--no-per-node" => args.per_node = false,
            "--mixed" => args.mixed = true,
            "--baseline" => args.baseline = true,
            "--bench" => args.bench = Some(value("--bench")?),
            "--label" => args.label = Some(value("--label")?),
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    if args.secs <= 0.0 || !args.secs.is_finite() {
        return Err("--secs must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: fleet_sim [--nodes N] [--seed S] [--secs T] [--threads K] \
                 [--mixed] [--baseline] [--bench PATH] [--label NAME] [--no-per-node]"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    let base = if args.mixed {
        FleetConfig::mixed(args.nodes, args.seed)
    } else {
        FleetConfig::quick(args.nodes, args.seed)
    };
    let mut config = FleetConfig {
        horizon: Seconds::new(args.secs),
        threads: args.threads,
        ..base
    };
    if args.baseline {
        // PR 1 deploy semantics: single-pass shmoo, train per node.
        config.deployment.stress_params.shmoo =
            ShmooCampaign { coarse_factor: 1, ..config.deployment.stress_params.shmoo };
        config.share_training = false;
    }

    let (mut summary, timing) = simulate_timed(&config);
    if !args.per_node {
        summary.per_node.clear();
    }
    println!("{}", summary.to_json());

    if let Some(path) = args.bench {
        let label = args.label.unwrap_or_else(|| {
            let mode = if args.baseline { "baseline" } else { "fast" };
            let mix = if args.mixed { "mixed" } else { "arm" };
            format!("{mix}-{mode}")
        });
        let line = timing.to_json(&label);
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| writeln!(f, "{line}"));
        if let Err(e) = appended {
            eprintln!("error: cannot append bench record to {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
