//! `fleet_sim` — parallel fleet-scale UniServer simulation.
//!
//! Two modes share one binary:
//!
//! **Fleet mode** (default) deploys N *independent* ecosystems (per-node
//! seeds derived from the fleet seed), serves each for the configured
//! horizon, and prints a deterministic JSON fleet summary to stdout.
//!
//! **Cluster mode** (`--cluster`) is the cluster-in-the-loop
//! orchestrator: the same N nodes become one rack behind an energy/
//! SLA-aware scheduler, a seeded arrival process offers VM requests
//! every tick, and node crashes trigger failure-driven eviction and
//! migration. Defaults to the headline scenario — 256 mixed ARM+i5+i7
//! nodes, a simulated hour, ≥10⁴ VM arrivals.
//!
//! ```text
//! fleet_sim [--nodes N] [--seed S] [--secs T] [--threads K]
//!           [--mixed] [--baseline] [--bench PATH] [--label NAME]
//!           [--no-per-node]
//! fleet_sim --cluster [--nodes N] [--seed S] [--secs T] [--tick DT]
//!           [--threads K] [--nominal] [--profile flat|flash|chaos|gray]
//!           [--policy energy-sla|consolidate|reliability-blind]
//!           [--place linear|indexed] [--bench PATH] [--label NAME]
//!           [--no-per-tick] [--per-tick-every N]
//!           [--trace-out PATH] [--metrics-out PATH]
//! ```
//!
//! * `--mixed` (fleet mode) deploys the heterogeneous reference fleet
//!   (ARM + i5 + i7 at 6:1:1, per-node guest mixes, ±6 °C ambient
//!   spread) instead of a homogeneous ARM fleet.
//! * `--baseline` (fleet mode) reproduces the PR 1 deploy semantics —
//!   single-pass shmoo ladders and per-node predictor training.
//! * `--nominal` (cluster mode) runs the rack at conservative
//!   guard-bands instead of Extended Operating Points — the ablation
//!   baseline for energy/SLA comparisons.
//! * `--profile flash` (cluster mode) swaps the default flat arrival
//!   stream for the traffic engine's flash-crowd scenario:
//!   capacity-scaled arrivals, diurnal modulation, seeded burst epochs,
//!   bounded-Pareto lifetimes, and gold-priority re-admission of
//!   rejected arrivals. `--profile chaos` layers the failure lifecycle
//!   and the seeded rack-and-flash fault campaigns on top of the flash
//!   profile: crashed nodes go offline for seeded MTTR windows, rejoin
//!   through re-characterization, and the summary reports downtime,
//!   lost capacity and availability. `--profile gray` runs the
//!   gray-failure scenario: a seeded trickle of silent degradations
//!   (capacity capped, CE rate elevated, no crash), the orchestrator's
//!   probe watchdog quarantining, draining and readmitting suspects on
//!   K-of-N hysteresis, and a fleet-wide power cap over the back half
//!   of the run (the summary grows a `gray` object). `--profile flat`
//!   is the default and reproduces the legacy stream byte-for-byte.
//! * `--policy` (cluster mode) selects the placement policy the rack
//!   routes every decision through. `energy-sla` is the reference
//!   energy/SLA scorer and reproduces the default stdout byte-for-byte;
//!   `consolidate` packs VMs onto the fewest nodes and parks drained
//!   nodes in a near-zero-power sleep state (the summary grows a
//!   `power` object); `reliability-blind` is the ablation that ignores
//!   the failure predictor entirely. Unknown names exit non-zero before
//!   anything runs.
//! * `--place linear` (cluster mode) routes placement through the
//!   reference `Scheduler::place_linear` scan instead of the default
//!   incremental index — the two are equivalent by construction, and CI
//!   byte-diffs their stdout to prove it.
//! * `--bench PATH` appends one JSON timing line (label, nodes, threads,
//!   wall/deploy/serve ms, deploy + serve ms per node — cluster mode
//!   adds the arrival count, margins, fleet energy and crash count) to
//!   PATH: `BENCH_fleet.json` / `BENCH_cluster.json`. Timings are
//!   machine-local wall-clock and deliberately *not* part of the
//!   summary on stdout.
//! * `--metrics-out PATH` (cluster mode) writes the deterministic
//!   tick-domain metrics registry — counters, min/max gauges and
//!   fixed-log2-bucket histograms (queue-wait, VM lifetime, retry
//!   depth, MTTR, per-class time-to-abandon) — as one JSON object.
//!   `--trace-out PATH` streams the sim-time-stamped NDJSON event
//!   trace (arrival/place/reject/reoffer/shed/crash/offline/rejoin/
//!   migration). Both are byte-identical for any `--threads` value;
//!   both paths are validated upfront (unwritable exits non-zero).
//! * `--per-tick-every N` (cluster mode) keeps only every Nth row of
//!   the per-tick series (tick 0 always included); `1` — the default —
//!   reproduces the legacy stdout byte-for-byte.
//! * `--threads K` drives the deploy workers in both modes **and** the
//!   cluster mode's sharded serving loop (`Cluster::tick_pooled`, one
//!   persistent pool per run): per-node advancement runs on K workers
//!   (0 = one per core; clamped to the core count), every reduce stays
//!   sequential in node-index order.
//!
//! Both modes print byte-identical stdout for any `--threads` value —
//! the determinism the paper's methodology demands of every experiment
//! in this workspace. Unknown flags exit non-zero with a usage message.

use std::io::Write as _;
use std::process::ExitCode;

use uniserver_bench::cluster::{bench_record, summary_to_json};
use uniserver_bench::fleet::{simulate_timed, FleetConfig};
use uniserver_orchestrator::{run_with_telemetry, MarginPolicy, OrchestratorConfig, PolicyKind};
use uniserver_telemetry::{MetricsRegistry, Telemetry, TraceSink};
use uniserver_stress::campaign::ShmooCampaign;
use uniserver_units::Seconds;

/// The cluster-mode scenario profile behind `--profile`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Profile {
    /// The legacy flat arrival stream (the default).
    Flat,
    /// The traffic engine's flash-crowd scenario.
    Flash,
    /// Flash crowd plus the failure lifecycle and fault campaigns.
    Chaos,
    /// Flash crowd plus gray failures, the health watchdog and a
    /// brownout power cap.
    Gray,
}

struct Args {
    cluster: bool,
    nodes: Option<usize>,
    seed: u64,
    secs: Option<f64>,
    tick: Option<f64>,
    threads: usize,
    per_node: bool,
    per_tick: bool,
    mixed: bool,
    baseline: bool,
    nominal: bool,
    /// `None` = flag absent (so fleet mode can reject *any*
    /// `--profile`).
    profile: Option<Profile>,
    /// `None` = flag absent (so fleet mode can reject *any* `--policy`,
    /// including the default-equivalent `energy-sla`).
    policy: Option<PolicyKind>,
    /// `Some(true)` = linear, `Some(false)` = indexed; `None` = flag
    /// absent (so fleet mode can reject *any* `--place`, not just
    /// `--place linear`).
    linear_place: Option<bool>,
    bench: Option<String>,
    label: Option<String>,
    /// NDJSON event-trace output path (cluster mode).
    trace_out: Option<String>,
    /// Metrics-registry JSON output path (cluster mode).
    metrics_out: Option<String>,
    /// Keep only every Nth per-tick row (1 = all, the legacy shape).
    per_tick_every: u64,
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let mut args = Args {
        cluster: false,
        nodes: None,
        seed: 2018,
        secs: None,
        tick: None,
        threads: 0,
        per_node: true,
        per_tick: true,
        mixed: false,
        baseline: false,
        nominal: false,
        profile: None,
        policy: None,
        linear_place: None,
        bench: None,
        label: None,
        trace_out: None,
        metrics_out: None,
        per_tick_every: 1,
    };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--cluster" => args.cluster = true,
            "--nodes" => {
                args.nodes = Some(value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?);
            }
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--secs" => {
                args.secs = Some(value("--secs")?.parse().map_err(|e| format!("--secs: {e}"))?);
            }
            "--tick" => {
                args.tick = Some(value("--tick")?.parse().map_err(|e| format!("--tick: {e}"))?);
            }
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--no-per-node" => args.per_node = false,
            "--no-per-tick" => args.per_tick = false,
            "--mixed" => args.mixed = true,
            "--baseline" => args.baseline = true,
            "--nominal" => args.nominal = true,
            "--profile" => {
                args.profile = Some(match value("--profile")?.as_str() {
                    "flash" => Profile::Flash,
                    "flat" => Profile::Flat,
                    "chaos" => Profile::Chaos,
                    "gray" => Profile::Gray,
                    other => {
                        return Err(format!(
                            "--profile must be flat, flash, chaos or gray, got '{other}'"
                        ))
                    }
                });
            }
            "--policy" => {
                let name = value("--policy")?;
                args.policy = Some(PolicyKind::parse(&name).ok_or_else(|| {
                    format!(
                        "--policy must be energy-sla, consolidate or reliability-blind, \
                         got '{name}'"
                    )
                })?);
            }
            "--place" => {
                args.linear_place = Some(match value("--place")?.as_str() {
                    "linear" => true,
                    "indexed" => false,
                    other => return Err(format!("--place must be linear or indexed, got '{other}'")),
                });
            }
            "--bench" => args.bench = Some(value("--bench")?),
            "--label" => args.label = Some(value("--label")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--per-tick-every" => {
                args.per_tick_every = value("--per-tick-every")?
                    .parse()
                    .map_err(|e| format!("--per-tick-every: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.nodes == Some(0) {
        return Err("--nodes must be at least 1".into());
    }
    if args.secs.is_some_and(|s| s <= 0.0 || !s.is_finite()) {
        return Err("--secs must be positive".into());
    }
    if args.tick.is_some_and(|t| t <= 0.0 || !t.is_finite()) {
        return Err("--tick must be positive".into());
    }
    if args.per_tick_every == 0 {
        return Err("--per-tick-every must be at least 1".into());
    }
    if args.cluster {
        if args.mixed {
            return Err("--mixed is implied by --cluster (the rack is always mixed)".into());
        }
        if args.baseline {
            return Err("--baseline is a fleet-mode flag; use --nominal with --cluster".into());
        }
        if !args.per_node {
            return Err("--no-per-node is a fleet-mode flag; use --no-per-tick with --cluster".into());
        }
    } else {
        if args.nominal {
            return Err("--nominal requires --cluster".into());
        }
        if args.linear_place.is_some() {
            return Err("--place requires --cluster (fleet mode has no scheduler)".into());
        }
        if args.profile.is_some() {
            return Err("--profile requires --cluster (fleet mode has no arrival stream)".into());
        }
        if args.policy.is_some() {
            return Err("--policy requires --cluster (fleet mode has no scheduler)".into());
        }
        if args.tick.is_some() {
            return Err("--tick requires --cluster (fleet mode uses a fixed 1 s tick)".into());
        }
        if !args.per_tick {
            return Err("--no-per-tick requires --cluster; use --no-per-node in fleet mode".into());
        }
        if args.trace_out.is_some() {
            return Err("--trace-out requires --cluster (fleet mode has no event trace)".into());
        }
        if args.metrics_out.is_some() {
            return Err("--metrics-out requires --cluster (fleet mode has no metrics registry)".into());
        }
        if args.per_tick_every != 1 {
            return Err("--per-tick-every requires --cluster (fleet mode has no tick series)".into());
        }
    }
    Ok(args)
}

fn usage() {
    eprintln!(
        "usage: fleet_sim [--nodes N] [--seed S] [--secs T] [--threads K] \
         [--mixed] [--baseline] [--bench PATH] [--label NAME] [--no-per-node]\n\
         \x20      fleet_sim --cluster [--nodes N] [--seed S] [--secs T] [--tick DT] \
         [--threads K] [--nominal] [--profile flat|flash|chaos|gray] \
         [--policy energy-sla|consolidate|reliability-blind] [--place linear|indexed] \
         [--bench PATH] [--label NAME] [--no-per-tick] [--per-tick-every N] \
         [--trace-out PATH] [--metrics-out PATH]"
    );
}

fn append_bench(path: &str, line: &str) -> ExitCode {
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| writeln!(f, "{line}"));
    if let Err(e) = appended {
        eprintln!("error: cannot append bench record to {path}: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn run_cluster(args: Args) -> ExitCode {
    let nodes = args.nodes.unwrap_or(256);
    let profile = args.profile.unwrap_or(Profile::Flat);
    let mut config = match profile {
        Profile::Flat => OrchestratorConfig::datacenter(nodes, args.seed),
        Profile::Flash => OrchestratorConfig::flash_crowd(nodes, args.seed),
        Profile::Chaos => OrchestratorConfig::chaos_profile(nodes, args.seed),
        Profile::Gray => OrchestratorConfig::gray_profile(nodes, args.seed),
    };
    if let Some(secs) = args.secs {
        config.horizon = Seconds::new(secs);
    }
    if let Some(tick) = args.tick {
        config.tick = Seconds::new(tick);
    }
    if args.secs.is_some() || args.tick.is_some() {
        // The fault campaigns anchor to tick fractions of the horizon:
        // re-derive the plan so the rack, cooling and brownout windows
        // land inside whatever span was actually requested.
        match profile {
            Profile::Chaos => {
                config.chaos =
                    Some(uniserver_orchestrator::ChaosPlan::rack_and_flash(config.ticks()));
            }
            Profile::Gray => {
                #[allow(clippy::cast_possible_truncation)]
                let fleet_width = nodes as u32;
                config.chaos = Some(uniserver_orchestrator::ChaosPlan::gray_brownout(
                    config.ticks(),
                    fleet_width,
                ));
            }
            Profile::Flat | Profile::Flash => {}
        }
    }
    config.threads = args.threads;
    config.linear_placement = args.linear_place.unwrap_or(false);
    if let Some(policy) = args.policy {
        config.policy = policy;
    }
    if args.nominal {
        config.margins = MarginPolicy::Nominal;
    }

    // Telemetry sinks open before the run so an unwritable path fails
    // fast instead of discarding an hour of simulation.
    let mut tel = Telemetry::disabled();
    if let Some(path) = &args.trace_out {
        match TraceSink::create(path) {
            Ok(sink) => tel.trace = Some(sink),
            Err(e) => {
                eprintln!("error: cannot create trace file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let metrics_file = if let Some(path) = &args.metrics_out {
        match std::fs::File::create(path) {
            Ok(f) => {
                tel.metrics = Some(MetricsRegistry::new());
                Some(f)
            }
            Err(e) => {
                eprintln!("error: cannot create metrics file {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let (mut summary, timing) = run_with_telemetry(&config, &mut tel);
    if args.per_tick_every > 1 {
        let every = args.per_tick_every;
        summary.per_tick.retain(|t| t.tick % every == 0);
    }
    println!("{}", summary_to_json(&summary, args.per_tick));

    if let Some(mut f) = metrics_file {
        let json = tel.metrics.take().expect("metrics registry was enabled").to_json();
        if let Err(e) = writeln!(f, "{json}") {
            eprintln!(
                "error: cannot write metrics to {}: {e}",
                args.metrics_out.as_deref().unwrap_or_default()
            );
            return ExitCode::FAILURE;
        }
    }
    if let Some(sink) = tel.trace.take() {
        if let Err(e) = sink.finish() {
            eprintln!(
                "error: cannot write trace to {}: {e}",
                args.trace_out.as_deref().unwrap_or_default()
            );
            return ExitCode::FAILURE;
        }
    }

    if let Some(path) = args.bench {
        let label = args.label.unwrap_or_else(|| {
            let tag = match profile {
                Profile::Flat => "",
                Profile::Flash => "-flash",
                Profile::Chaos => "-chaos",
                Profile::Gray => "-gray",
            };
            // The reference policy keeps the legacy label; deviations
            // tag themselves so a BENCH_policy.json matrix reads as one.
            let policy = match config.policy {
                PolicyKind::EnergySla => String::new(),
                other => format!("-{}", other.label()),
            };
            format!("cluster{tag}{policy}-{}", summary.margins)
        });
        return append_bench(&path, &bench_record(&summary, &timing, &label));
    }
    ExitCode::SUCCESS
}

fn run_fleet(args: Args) -> ExitCode {
    let nodes = args.nodes.unwrap_or(64);
    let base = if args.mixed {
        FleetConfig::mixed(nodes, args.seed)
    } else {
        FleetConfig::quick(nodes, args.seed)
    };
    let mut config = FleetConfig {
        horizon: Seconds::new(args.secs.unwrap_or(120.0)),
        threads: args.threads,
        ..base
    };
    if args.baseline {
        // PR 1 deploy semantics: single-pass shmoo, train per node.
        config.deployment.stress_params.shmoo =
            ShmooCampaign { coarse_factor: 1, ..config.deployment.stress_params.shmoo };
        config.share_training = false;
    }

    let (mut summary, timing) = simulate_timed(&config);
    if !args.per_node {
        summary.per_node.clear();
    }
    println!("{}", summary.to_json());

    if let Some(path) = args.bench {
        let label = args.label.unwrap_or_else(|| {
            let mode = if args.baseline { "baseline" } else { "fast" };
            let mix = if args.mixed { "mixed" } else { "arm" };
            format!("{mix}-{mode}")
        });
        return append_bench(&path, &timing.to_json(&label));
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            usage();
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };
    if args.cluster {
        run_cluster(args)
    } else {
        run_fleet(args)
    }
}
