//! `fleet_sim` — parallel fleet-scale UniServer simulation.
//!
//! Deploys N independently manufactured ecosystems (per-node seeds
//! derived from the fleet seed), serves each for the configured horizon,
//! and prints a deterministic JSON fleet summary to stdout.
//!
//! ```text
//! fleet_sim [--nodes N] [--seed S] [--secs T] [--threads K] [--no-per-node]
//! ```
//!
//! The same `(nodes, seed, secs)` triple produces byte-identical output
//! for any thread count — the determinism the paper's methodology
//! demands of every experiment in this workspace.

use std::process::ExitCode;

use uniserver_bench::fleet::{simulate, FleetConfig};
use uniserver_units::Seconds;

struct Args {
    nodes: usize,
    seed: u64,
    secs: f64,
    threads: usize,
    per_node: bool,
}

fn parse(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let mut args =
        Args { nodes: 64, seed: 2018, secs: 120.0, threads: 0, per_node: true };
    while let Some(flag) = argv.next() {
        let mut value = |name: &str| {
            argv.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--nodes" => args.nodes = value("--nodes")?.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--secs" => args.secs = value("--secs")?.parse().map_err(|e| format!("--secs: {e}"))?,
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?;
            }
            "--no-per-node" => args.per_node = false,
            "--help" | "-h" => {
                return Err(String::new());
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if args.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    if args.secs <= 0.0 || !args.secs.is_finite() {
        return Err("--secs must be positive".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse(std::env::args()) {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!(
                "usage: fleet_sim [--nodes N] [--seed S] [--secs T] [--threads K] [--no-per-node]"
            );
            return if msg.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
        }
    };

    let config = FleetConfig {
        horizon: Seconds::new(args.secs),
        threads: args.threads,
        ..FleetConfig::quick(args.nodes, args.seed)
    };
    let mut summary = simulate(&config);
    if !args.per_node {
        summary.per_node.clear();
    }
    println!("{}", summary.to_json());
    ExitCode::SUCCESS
}
