//! Minimal fixed-width table rendering for terminal reports.

/// A simple text table builder.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for i in 0..cols {
                s.push_str(&format!(" {:<w$} |", cells[i], w = widths[i]));
            }
            s
        };
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out.push_str(&sep);
        out
    }
}

/// A horizontal ASCII bar scaled to `max`.
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if max <= 0.0 {
        return String::new();
    }
    let n = ((value / max) * width as f64).round().max(0.0) as usize;
    "#".repeat(n.min(width))
}

/// Stable-field-order JSON emission — the writer now lives in
/// `uniserver-telemetry` (metrics and traces render through the same
/// byte-stable rules), re-exported here so bench call sites keep their
/// `render::json::JsonWriter` path.
pub use uniserver_telemetry::json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        assert!(s.contains("| alpha | 1     |"));
        assert!(s.contains("| b     | 12345 |"));
        assert!(s.starts_with('+'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn bars_scale() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########", "clamped at width");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
