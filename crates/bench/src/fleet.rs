//! Fleet-scale simulation: N independent UniServer ecosystems driven in
//! parallel, with per-node RNG seeds and an aggregated savings summary.
//!
//! This is the first scale-out scenario of the workspace: every node is
//! manufactured from its own deterministic seed (distinct silicon, so
//! distinct Extended Operating Points), deployed through the full
//! characterize → train → optimize pipeline of
//! [`uniserver_core::ecosystem::Ecosystem`], served for a configurable
//! span, and its [`SavingsReport`] folded into a fleet-wide
//! [`FleetSummary`] that mirrors the energy/availability accounting the
//! paper reports per node.
//!
//! Parallelism uses `std::thread::scope` with one chunk of nodes per
//! worker (the registry-less build has no rayon; the driver is an
//! embarrassingly parallel map, so scoped threads lose nothing).
//! Determinism is by construction, not by scheduling: node seeds are a
//! pure function of `(fleet seed, node index)` and results are re-sorted
//! by node index after the join, so any thread count — including 1 —
//! produces byte-identical summaries.

use std::num::NonZeroUsize;
use std::thread;

use uniserver_core::ecosystem::{DeploymentConfig, Ecosystem, SavingsReport};
use uniserver_silicon::rng::splitmix64;
use uniserver_units::Seconds;

use crate::render::json::JsonWriter;

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of nodes (ecosystems) in the fleet.
    pub nodes: usize,
    /// Fleet-level seed; per-node seeds derive from it.
    pub seed: u64,
    /// Served time to simulate per node.
    pub horizon: Seconds,
    /// Simulation tick.
    pub tick: Seconds,
    /// Worker threads; 0 means "one per available core".
    pub threads: usize,
    /// Per-node deployment configuration.
    pub deployment: DeploymentConfig,
}

impl FleetConfig {
    /// A quick fleet: `nodes` ARM micro-servers, 120 simulated seconds
    /// each, auto-threaded.
    #[must_use]
    pub fn quick(nodes: usize, seed: u64) -> Self {
        FleetConfig {
            nodes,
            seed,
            horizon: Seconds::new(120.0),
            tick: Seconds::new(1.0),
            threads: 0,
            deployment: DeploymentConfig::quick(),
        }
    }
}

/// Outcome of one node's deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutcome {
    /// Node index within the fleet.
    pub node: usize,
    /// The seed the node's silicon was manufactured from.
    pub seed: u64,
    /// Shallowest per-core undervolt of the chosen EOP, in millivolts.
    pub min_offset_mv: f64,
    /// The node's savings report at the end of the horizon.
    pub report: SavingsReport,
}

/// Fleet-wide aggregation of [`SavingsReport`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Echo of the driving parameters.
    pub nodes: usize,
    pub seed: u64,
    pub horizon_secs: f64,
    /// Energy-weighted fleet saving: 1 − ΣEOP / Σbaseline.
    pub energy_saving_fraction: f64,
    /// Total energy consumed at EOP across the fleet, in joules.
    pub eop_energy_j: f64,
    /// Total energy the conservative twins consumed, in joules.
    pub baseline_energy_j: f64,
    /// Mean and minimum node availability.
    pub mean_availability: f64,
    pub min_availability: f64,
    /// Crash and re-characterization totals.
    pub crashes: u64,
    pub recharacterizations: u64,
    /// Spread of the chosen EOP depths across the manufactured fleet.
    pub min_offset_mv_min: f64,
    pub min_offset_mv_mean: f64,
    pub min_offset_mv_max: f64,
    /// Per-node outcomes, ordered by node index.
    pub per_node: Vec<NodeOutcome>,
}

/// Derives the silicon seed for one node — a pure function of the fleet
/// seed and the node index (SplitMix64 finalizer), so shard boundaries
/// and thread schedules can never shift it.
#[must_use]
pub fn node_seed(fleet_seed: u64, node: usize) -> u64 {
    splitmix64(fleet_seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

fn simulate_node(config: &FleetConfig, node: usize) -> NodeOutcome {
    let seed = node_seed(config.seed, node);
    let mut eco = Ecosystem::deploy(&config.deployment, seed);
    let min_offset_mv = eco.operating_point().min_offset_mv();
    let mut served = Seconds::ZERO;
    while served < config.horizon {
        eco.run(config.tick);
        served = served + config.tick;
    }
    NodeOutcome { node, seed, min_offset_mv, report: eco.savings_report() }
}

/// Runs the fleet simulation. Deterministic for a given `config`
/// regardless of `threads`.
///
/// # Panics
///
/// Panics if `config.nodes` is zero or the tick/horizon are degenerate.
#[must_use]
pub fn simulate(config: &FleetConfig) -> FleetSummary {
    assert!(config.nodes > 0, "a fleet needs at least one node");
    assert!(config.tick.as_secs() > 0.0, "tick must be positive");
    assert!(config.horizon.as_secs() > 0.0, "horizon must be positive");

    let workers = if config.threads == 0 {
        thread::available_parallelism().map_or(1, NonZeroUsize::get)
    } else {
        config.threads
    }
    .min(config.nodes);

    // One contiguous chunk of node indices per worker: an embarrassingly
    // parallel map whose only cross-thread step is the final collect.
    let chunk = config.nodes.div_ceil(workers);
    let mut outcomes: Vec<NodeOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = w * chunk;
                let hi = ((w + 1) * chunk).min(config.nodes);
                scope.spawn(move || (lo..hi).map(|n| simulate_node(config, n)).collect::<Vec<_>>())
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("fleet worker panicked")).collect()
    });
    // Chunks join in spawn order, but make the invariant explicit.
    outcomes.sort_by_key(|o| o.node);

    let n = outcomes.len() as f64;
    let mut eop = 0.0;
    let mut baseline = 0.0;
    let mut avail_sum = 0.0;
    let mut avail_min = f64::MAX;
    let mut crashes = 0;
    let mut rechar = 0;
    let mut off_min = f64::MAX;
    let mut off_max = f64::MIN;
    let mut off_sum = 0.0;
    for o in &outcomes {
        let e = o.report.eop_energy.as_joules();
        eop += e;
        // The report exposes the saving fraction; invert it to recover
        // the conservative twin's energy for an energy-weighted total.
        let saving = o.report.energy_saving_fraction;
        baseline += if saving < 1.0 { e / (1.0 - saving) } else { e };
        avail_sum += o.report.availability;
        avail_min = avail_min.min(o.report.availability);
        crashes += o.report.crashes;
        rechar += o.report.recharacterizations;
        off_min = off_min.min(o.min_offset_mv);
        off_max = off_max.max(o.min_offset_mv);
        off_sum += o.min_offset_mv;
    }

    FleetSummary {
        nodes: config.nodes,
        seed: config.seed,
        horizon_secs: config.horizon.as_secs(),
        energy_saving_fraction: if baseline > 0.0 { 1.0 - eop / baseline } else { 0.0 },
        eop_energy_j: eop,
        baseline_energy_j: baseline,
        mean_availability: avail_sum / n,
        min_availability: avail_min,
        crashes,
        recharacterizations: rechar,
        min_offset_mv_min: off_min,
        min_offset_mv_mean: off_sum / n,
        min_offset_mv_max: off_max,
        per_node: outcomes,
    }
}

impl FleetSummary {
    /// Renders the summary as a JSON document with a stable key order —
    /// the fleet driver's machine-readable artefact. Identical summaries
    /// render to byte-identical strings.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_u64("nodes", self.nodes as u64);
        w.field_u64("seed", self.seed);
        w.field_f64("horizon_secs", self.horizon_secs);
        w.field_f64("energy_saving_fraction", self.energy_saving_fraction);
        w.field_f64("eop_energy_j", self.eop_energy_j);
        w.field_f64("baseline_energy_j", self.baseline_energy_j);
        w.field_f64("mean_availability", self.mean_availability);
        w.field_f64("min_availability", self.min_availability);
        w.field_u64("crashes", self.crashes);
        w.field_u64("recharacterizations", self.recharacterizations);
        w.field_f64("min_offset_mv_min", self.min_offset_mv_min);
        w.field_f64("min_offset_mv_mean", self.min_offset_mv_mean);
        w.field_f64("min_offset_mv_max", self.min_offset_mv_max);
        w.field_array("per_node", self.per_node.iter(), |node, out| {
            let mut nw = JsonWriter::object();
            nw.field_u64("node", node.node as u64);
            nw.field_u64("seed", node.seed);
            nw.field_f64("min_offset_mv", node.min_offset_mv);
            nw.field_f64("energy_saving_fraction", node.report.energy_saving_fraction);
            nw.field_f64("availability", node.report.availability);
            nw.field_f64("eop_energy_j", node.report.eop_energy.as_joules());
            nw.field_f64("eop_power_w", node.report.eop_power.as_watts());
            nw.field_f64("nominal_power_w", node.report.nominal_power.as_watts());
            nw.field_u64("crashes", node.report.crashes);
            nw.field_u64("recharacterizations", node.report.recharacterizations);
            out.push_str(&nw.finish());
        });
        w.finish()
    }
}
