//! Fleet-scale simulation: N independent UniServer ecosystems driven in
//! parallel, with per-node RNG seeds and an aggregated savings summary.
//!
//! This is the scale-out scenario of the workspace: every node is
//! manufactured from its own deterministic seed (distinct silicon, so
//! distinct Extended Operating Points), deployed through the full
//! characterize → train → optimize pipeline of
//! [`uniserver_core::ecosystem::Ecosystem`], served for a configurable
//! span, and its [`SavingsReport`] folded into a fleet-wide
//! [`FleetSummary`] that mirrors the energy/availability accounting the
//! paper reports per node.
//!
//! # Heterogeneity
//!
//! Real fleets are not racks of identical machines. [`FleetConfig`]
//! mixes parts ([`PartShare`] weights over ARM + i5 + i7), guest-set
//! variants ([`FleetConfig::workload_mixes`]) and an ambient-temperature
//! spread across nodes. Every per-node choice is a pure function of
//! [`node_seed`], never of thread schedule, so summaries stay
//! byte-stable for any worker count.
//!
//! # Deploy fast path
//!
//! Deployment cost is dominated by characterization and predictor
//! training. Two optimizations push fleets past 10⁴ nodes:
//!
//! * the shmoo ladder descends coarse→fine by default (see
//!   [`uniserver_stress::campaign::ShmooCampaign`]), cutting dwell
//!   intervals per ladder by roughly the coarse factor;
//! * predictor training runs **once per part** through
//!   [`uniserver_core::training::AdvisorCache`] and is shared across
//!   worker threads via `Arc` — per-node silicon is still characterized
//!   individually. Set [`FleetConfig::share_training`] to `false` to
//!   reproduce the legacy train-per-node deploy for baselines.
//!
//! Parallelism uses `std::thread::scope` with one chunk of nodes per
//! worker (the registry-less build has no rayon; the driver is an
//! embarrassingly parallel map, so scoped threads lose nothing).
//! Determinism is by construction, not by scheduling: node seeds are a
//! pure function of `(fleet seed, node index)` and results are re-sorted
//! by node index after the join, so any thread count — including 1 —
//! produces byte-identical summaries. Wall-clock timings
//! ([`FleetTiming`]) are reported separately and are *not* part of the
//! deterministic summary.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use uniserver_cloudmgr::pool::{cores, resolve_workers};

use uniserver_core::ecosystem::{DeploymentConfig, Ecosystem, SavingsReport};
use uniserver_core::training::AdvisorCache;
use uniserver_hypervisor::vm::VmConfig;
use uniserver_platform::part::PartSpec;
use uniserver_silicon::rng::{ambient_offset, salt, splitmix64, weighted_pick};
use uniserver_units::{Celsius, Seconds};

use crate::render::json::JsonWriter;

/// One entry of the fleet's part mix.
#[derive(Debug, Clone)]
pub struct PartShare {
    /// The part this share deploys.
    pub spec: PartSpec,
    /// Relative weight of the share (need not sum to 1).
    pub weight: f64,
}

/// Fleet simulation parameters.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of nodes (ecosystems) in the fleet.
    pub nodes: usize,
    /// Fleet-level seed; per-node seeds derive from it.
    pub seed: u64,
    /// Served time to simulate per node.
    pub horizon: Seconds,
    /// Simulation tick.
    pub tick: Seconds,
    /// Worker threads; 0 means "one per available core".
    pub threads: usize,
    /// Base per-node deployment configuration. Heterogeneous fleets
    /// override `spec`, `guests` and `ambient` per node from the knobs
    /// below.
    pub deployment: DeploymentConfig,
    /// Weighted part mix. Empty = homogeneous fleet of
    /// `deployment.spec`.
    pub part_mix: Vec<PartShare>,
    /// Candidate guest sets; each node picks one uniformly by seed.
    /// Empty = every node runs `deployment.guests`.
    pub workload_mixes: Vec<Vec<VmConfig>>,
    /// Half-width (°C) of the uniform per-node ambient spread around
    /// `deployment.ambient`. Zero = uniform ambient.
    pub ambient_spread: f64,
    /// Train the predictor once per part and share it across nodes
    /// (the fleet fast path). `false` retrains per node — the legacy
    /// deploy, kept for baseline measurements.
    pub share_training: bool,
}

impl FleetConfig {
    /// A quick homogeneous fleet: `nodes` ARM micro-servers, 120
    /// simulated seconds each, auto-threaded.
    #[must_use]
    pub fn quick(nodes: usize, seed: u64) -> Self {
        FleetConfig {
            nodes,
            seed,
            horizon: Seconds::new(120.0),
            tick: Seconds::new(1.0),
            threads: 0,
            deployment: DeploymentConfig::quick(),
            part_mix: Vec::new(),
            workload_mixes: Vec::new(),
            ambient_spread: 0.0,
            share_training: true,
        }
    }

    /// The heterogeneous reference fleet: ARM-dominant with i5/i7
    /// shares (6:1:1), three guest-set variants and a ±6 °C ambient
    /// spread — the ROADMAP's "mixed parts, per-node workload mixes and
    /// ambient spreads" scenario.
    #[must_use]
    pub fn mixed(nodes: usize, seed: u64) -> Self {
        FleetConfig {
            part_mix: vec![
                PartShare { spec: PartSpec::arm_microserver(), weight: 6.0 },
                PartShare { spec: PartSpec::i5_4200u(), weight: 1.0 },
                PartShare { spec: PartSpec::i7_3970x(), weight: 1.0 },
            ],
            workload_mixes: vec![
                vec![VmConfig::ldbc_benchmark()],
                vec![VmConfig::ldbc_benchmark(), VmConfig::idle_guest()],
                vec![VmConfig::ldbc_benchmark(); 2],
            ],
            ambient_spread: 6.0,
            ..FleetConfig::quick(nodes, seed)
        }
    }

    /// The per-node deployment configuration: the base `deployment`
    /// with part, guest set and ambient resolved from the node's seed.
    /// A pure function of `(self, node)` — thread schedules cannot
    /// perturb it.
    #[must_use]
    pub fn node_deployment(&self, node: usize) -> DeploymentConfig {
        let seed = node_seed(self.seed, node);
        let mut dep = self.deployment.clone();
        if !self.part_mix.is_empty() {
            let weights: Vec<f64> = self.part_mix.iter().map(|s| s.weight).collect();
            let chosen = weighted_pick(splitmix64(seed ^ salt::PART), &weights);
            dep.spec = self.part_mix[chosen].spec.clone();
        }
        if !self.workload_mixes.is_empty() {
            let idx = (splitmix64(seed ^ salt::MIX) % self.workload_mixes.len() as u64) as usize;
            dep.guests.clone_from(&self.workload_mixes[idx]);
        }
        if self.ambient_spread > 0.0 {
            dep.ambient = dep.ambient + Celsius::new(ambient_offset(seed, self.ambient_spread));
        }
        dep
    }

    /// The distinct part specs this fleet can deploy, in mix order
    /// (the summary's per-part aggregation order).
    #[must_use]
    pub fn parts(&self) -> Vec<PartSpec> {
        if self.part_mix.is_empty() {
            vec![self.deployment.spec.clone()]
        } else {
            self.part_mix.iter().map(|s| s.spec.clone()).collect()
        }
    }
}

/// Outcome of one node's deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutcome {
    /// Node index within the fleet.
    pub node: usize,
    /// The seed the node's silicon was manufactured from.
    pub seed: u64,
    /// Name of the part the node deployed.
    pub part: Arc<str>,
    /// Ambient temperature the node ran at.
    pub ambient: Celsius,
    /// Shallowest per-core undervolt of the chosen EOP, in millivolts.
    pub min_offset_mv: f64,
    /// The node's savings report at the end of the horizon.
    pub report: SavingsReport,
}

/// Per-part aggregation within a [`FleetSummary`].
#[derive(Debug, Clone, PartialEq)]
pub struct PartAggregate {
    /// Part name.
    pub part: Arc<str>,
    /// Nodes of this part in the fleet.
    pub nodes: usize,
    /// Energy-weighted saving across the part's nodes.
    pub energy_saving_fraction: f64,
    /// Mean EOP depth (weakest-core offset) across the part's nodes.
    pub min_offset_mv_mean: f64,
}

/// Fleet-wide aggregation of [`SavingsReport`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSummary {
    /// Echo of the driving parameters.
    pub nodes: usize,
    pub seed: u64,
    pub horizon_secs: f64,
    /// Energy-weighted fleet saving: 1 − ΣEOP / Σbaseline.
    pub energy_saving_fraction: f64,
    /// Total energy consumed at EOP across the fleet, in joules.
    pub eop_energy_j: f64,
    /// Total energy the conservative twins consumed, in joules.
    pub baseline_energy_j: f64,
    /// Mean and minimum node availability.
    pub mean_availability: f64,
    pub min_availability: f64,
    /// Crash and re-characterization totals.
    pub crashes: u64,
    pub recharacterizations: u64,
    /// Spread of the chosen EOP depths across the manufactured fleet.
    pub min_offset_mv_min: f64,
    pub min_offset_mv_mean: f64,
    pub min_offset_mv_max: f64,
    /// Per-part aggregates, in part-mix order.
    pub per_part: Vec<PartAggregate>,
    /// Per-node outcomes, ordered by node index.
    pub per_node: Vec<NodeOutcome>,
}

/// Wall-clock accounting of one [`simulate_timed`] run. Timings are
/// measurements of *this* run on *this* machine — deliberately kept out
/// of [`FleetSummary`] so the deterministic summary stays byte-stable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetTiming {
    /// End-to-end wall-clock of the simulation, in milliseconds.
    pub wall_ms: f64,
    /// Summed per-node deploy (characterize + train + optimize) time.
    pub deploy_ms: f64,
    /// Summed per-node serving time.
    pub serve_ms: f64,
    /// Nodes simulated (denominator for the per-node rates).
    pub nodes: usize,
    /// Worker threads actually used (the resolved count, not the
    /// configured one — `threads: 0` resolves to the core count and
    /// explicit requests clamp to it).
    pub workers: usize,
    /// CPU cores available on the benching machine — recorded so a
    /// wall-clock from a single-core container is never mistaken for a
    /// multi-worker regression.
    pub cores: usize,
}

impl FleetTiming {
    /// Mean deploy wall-clock per node, in milliseconds.
    #[must_use]
    pub fn deploy_ms_per_node(&self) -> f64 {
        self.deploy_ms / self.nodes.max(1) as f64
    }

    /// Renders the timing record (the `BENCH_fleet.json` entry shape).
    #[must_use]
    pub fn to_json(&self, label: &str) -> String {
        let mut w = JsonWriter::object();
        w.field_str("label", label);
        w.field_u64("nodes", self.nodes as u64);
        w.field_u64("threads", self.workers as u64);
        w.field_u64("cores", self.cores as u64);
        w.field_f64("wall_ms", self.wall_ms);
        w.field_f64("deploy_ms", self.deploy_ms);
        w.field_f64("serve_ms", self.serve_ms);
        w.field_f64("deploy_ms_per_node", self.deploy_ms_per_node());
        w.finish()
    }
}

/// Derives the silicon seed for one node — a pure function of the fleet
/// seed and the node index (SplitMix64 finalizer), so shard boundaries
/// and thread schedules can never shift it. Delegates to the workspace's
/// single copy in [`uniserver_silicon::rng::indexed_seed`].
#[must_use]
pub fn node_seed(fleet_seed: u64, node: usize) -> u64 {
    uniserver_silicon::rng::indexed_seed(fleet_seed, node)
}

/// One node through deploy + serve; returns its outcome plus the
/// wall-clock seconds spent in each phase.
fn simulate_node(config: &FleetConfig, cache: &AdvisorCache, node: usize) -> (NodeOutcome, f64, f64) {
    let seed = node_seed(config.seed, node);
    let dep = config.node_deployment(node);
    let deploy_start = Instant::now();
    let mut eco = if config.share_training {
        let advisor = cache.get_or_train(&dep).advisor;
        Ecosystem::deploy_with_advisor(&dep, seed, advisor)
    } else {
        Ecosystem::deploy(&dep, seed)
    };
    let deploy_secs = deploy_start.elapsed().as_secs_f64();
    let min_offset_mv = eco.operating_point().min_offset_mv();
    let serve_start = Instant::now();
    let mut served = Seconds::ZERO;
    while served < config.horizon {
        eco.run(config.tick);
        served = served + config.tick;
    }
    let serve_secs = serve_start.elapsed().as_secs_f64();
    (
        NodeOutcome {
            node,
            seed,
            part: Arc::from(dep.spec.name.as_str()),
            ambient: dep.ambient,
            min_offset_mv,
            report: eco.savings_report(),
        },
        deploy_secs,
        serve_secs,
    )
}

/// Runs the fleet simulation. Deterministic for a given `config`
/// regardless of `threads`.
///
/// # Panics
///
/// Panics if `config.nodes` is zero or the tick/horizon are degenerate.
#[must_use]
pub fn simulate(config: &FleetConfig) -> FleetSummary {
    simulate_timed(config).0
}

/// Runs the fleet simulation and also reports wall-clock timings.
///
/// # Panics
///
/// Panics if `config.nodes` is zero or the tick/horizon are degenerate.
#[must_use]
pub fn simulate_timed(config: &FleetConfig) -> (FleetSummary, FleetTiming) {
    assert!(config.nodes > 0, "a fleet needs at least one node");
    assert!(config.tick.as_secs() > 0.0, "tick must be positive");
    assert!(config.horizon.as_secs() > 0.0, "horizon must be positive");

    let wall_start = Instant::now();
    // Clamped to available cores: oversubscribing the CPU-bound deploy
    // only adds scheduling overhead (and inflates the summed per-worker
    // wall-clocks a bench record reports).
    let workers = resolve_workers(config.threads, config.nodes);

    // Train every part the mix can produce up front: workers then only
    // ever hit the cache, sharing one Arc'd model per part instead of
    // racing to train duplicates.
    let cache = AdvisorCache::new();
    if config.share_training {
        for spec in config.parts() {
            let dep = DeploymentConfig { spec, ..config.deployment.clone() };
            let _ = cache.get_or_train(&dep);
        }
    }

    // One contiguous chunk of node indices per worker: an embarrassingly
    // parallel map whose only cross-thread step is the final collect.
    let chunk = config.nodes.div_ceil(workers);
    let (mut outcomes, deploy_secs, serve_secs): (Vec<NodeOutcome>, f64, f64) =
        thread::scope(|scope| {
            let cache = &cache;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = (w * chunk).min(config.nodes);
                    let hi = ((w + 1) * chunk).min(config.nodes);
                    scope.spawn(move || {
                        let mut chunk_outcomes = Vec::with_capacity(hi - lo);
                        let mut chunk_deploy = 0.0f64;
                        let mut chunk_serve = 0.0f64;
                        for n in lo..hi {
                            let (outcome, deploy, serve) = simulate_node(config, cache, n);
                            chunk_outcomes.push(outcome);
                            chunk_deploy += deploy;
                            chunk_serve += serve;
                        }
                        (chunk_outcomes, chunk_deploy, chunk_serve)
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(config.nodes);
            let mut deploy = 0.0f64;
            let mut serve = 0.0f64;
            for h in handles {
                let (chunk_outcomes, chunk_deploy, chunk_serve) =
                    h.join().expect("fleet worker panicked");
                all.extend(chunk_outcomes);
                deploy += chunk_deploy;
                serve += chunk_serve;
            }
            (all, deploy, serve)
        });
    // Chunks join in spawn order, but make the invariant explicit.
    outcomes.sort_by_key(|o| o.node);

    let n = outcomes.len() as f64;
    let mut eop = 0.0;
    let mut baseline = 0.0;
    let mut avail_sum = 0.0;
    let mut avail_min = f64::MAX;
    let mut crashes = 0;
    let mut rechar = 0;
    let mut off_min = f64::MAX;
    let mut off_max = f64::MIN;
    let mut off_sum = 0.0;
    // Per-part accumulators, in the deterministic parts() order.
    let part_names: Vec<Arc<str>> =
        config.parts().iter().map(|s| Arc::from(s.name.as_str())).collect();
    let mut part_nodes = vec![0usize; part_names.len()];
    let mut part_eop = vec![0.0f64; part_names.len()];
    let mut part_base = vec![0.0f64; part_names.len()];
    let mut part_off = vec![0.0f64; part_names.len()];
    for o in &outcomes {
        let e = o.report.eop_energy.as_joules();
        eop += e;
        // The report exposes the saving fraction; invert it to recover
        // the conservative twin's energy for an energy-weighted total.
        let saving = o.report.energy_saving_fraction;
        let twin = if saving < 1.0 { e / (1.0 - saving) } else { e };
        baseline += twin;
        avail_sum += o.report.availability;
        avail_min = avail_min.min(o.report.availability);
        crashes += o.report.crashes;
        rechar += o.report.recharacterizations;
        off_min = off_min.min(o.min_offset_mv);
        off_max = off_max.max(o.min_offset_mv);
        off_sum += o.min_offset_mv;
        let p = part_names.iter().position(|name| name == &o.part).expect("part from the mix");
        part_nodes[p] += 1;
        part_eop[p] += e;
        part_base[p] += twin;
        part_off[p] += o.min_offset_mv;
    }
    let per_part: Vec<PartAggregate> = part_names
        .iter()
        .enumerate()
        .filter(|&(p, _)| part_nodes[p] > 0)
        .map(|(p, name)| PartAggregate {
            part: name.clone(),
            nodes: part_nodes[p],
            energy_saving_fraction: if part_base[p] > 0.0 {
                1.0 - part_eop[p] / part_base[p]
            } else {
                0.0
            },
            min_offset_mv_mean: part_off[p] / part_nodes[p] as f64,
        })
        .collect();

    let horizon_secs = config.horizon.as_secs();
    let summary = FleetSummary {
        nodes: config.nodes,
        seed: config.seed,
        horizon_secs,
        energy_saving_fraction: if baseline > 0.0 { 1.0 - eop / baseline } else { 0.0 },
        eop_energy_j: eop,
        baseline_energy_j: baseline,
        mean_availability: avail_sum / n,
        min_availability: avail_min,
        crashes,
        recharacterizations: rechar,
        min_offset_mv_min: off_min,
        min_offset_mv_mean: off_sum / n,
        min_offset_mv_max: off_max,
        per_part,
        per_node: outcomes,
    };
    let timing = FleetTiming {
        wall_ms: wall_start.elapsed().as_secs_f64() * 1e3,
        deploy_ms: deploy_secs * 1e3,
        serve_ms: serve_secs * 1e3,
        nodes: config.nodes,
        workers,
        cores: cores(),
    };
    (summary, timing)
}

impl FleetSummary {
    /// Renders the summary as a JSON document with a stable key order —
    /// the fleet driver's machine-readable artefact. Identical summaries
    /// render to byte-identical strings.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_u64("nodes", self.nodes as u64);
        w.field_u64("seed", self.seed);
        w.field_f64("horizon_secs", self.horizon_secs);
        w.field_f64("energy_saving_fraction", self.energy_saving_fraction);
        w.field_f64("eop_energy_j", self.eop_energy_j);
        w.field_f64("baseline_energy_j", self.baseline_energy_j);
        w.field_f64("mean_availability", self.mean_availability);
        w.field_f64("min_availability", self.min_availability);
        w.field_u64("crashes", self.crashes);
        w.field_u64("recharacterizations", self.recharacterizations);
        w.field_f64("min_offset_mv_min", self.min_offset_mv_min);
        w.field_f64("min_offset_mv_mean", self.min_offset_mv_mean);
        w.field_f64("min_offset_mv_max", self.min_offset_mv_max);
        w.field_array("per_part", self.per_part.iter(), |part, out| {
            let mut pw = JsonWriter::object();
            pw.field_str("part", &part.part);
            pw.field_u64("nodes", part.nodes as u64);
            pw.field_f64("energy_saving_fraction", part.energy_saving_fraction);
            pw.field_f64("min_offset_mv_mean", part.min_offset_mv_mean);
            out.push_str(&pw.finish());
        });
        w.field_array("per_node", self.per_node.iter(), |node, out| {
            let mut nw = JsonWriter::object();
            nw.field_u64("node", node.node as u64);
            nw.field_u64("seed", node.seed);
            nw.field_str("part", &node.part);
            nw.field_f64("ambient_c", node.ambient.as_celsius());
            nw.field_f64("min_offset_mv", node.min_offset_mv);
            nw.field_f64("energy_saving_fraction", node.report.energy_saving_fraction);
            nw.field_f64("availability", node.report.availability);
            nw.field_f64("eop_energy_j", node.report.eop_energy.as_joules());
            nw.field_f64("eop_power_w", node.report.eop_power.as_watts());
            nw.field_f64("nominal_power_w", node.report.nominal_power.as_watts());
            nw.field_u64("crashes", node.report.crashes);
            nw.field_u64("recharacterizations", node.report.recharacterizations);
            out.push_str(&nw.finish());
        });
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_fleet_draws_every_part_and_spreads_ambient() {
        let config = FleetConfig::mixed(64, 7);
        let mut part_counts = [0usize; 3];
        let mut ambients = Vec::new();
        for node in 0..config.nodes {
            let dep = config.node_deployment(node);
            let p = config
                .part_mix
                .iter()
                .position(|s| s.spec.name == dep.spec.name)
                .expect("drawn part comes from the mix");
            part_counts[p] += 1;
            ambients.push(dep.ambient.as_celsius());
        }
        assert!(part_counts.iter().all(|&c| c > 0), "64 draws must hit every part: {part_counts:?}");
        assert!(part_counts[0] > part_counts[1] + part_counts[2], "ARM dominates 6:1:1");
        let lo = ambients.iter().cloned().fold(f64::MAX, f64::min);
        let hi = ambients.iter().cloned().fold(f64::MIN, f64::max);
        assert!(hi - lo > 6.0, "±6 °C spread must show up across 64 nodes ({lo}..{hi})");
        assert!(lo >= 20.0 && hi <= 32.0, "spread stays within ±6 °C of 26 °C");
    }

    #[test]
    fn node_deployment_is_schedule_independent() {
        let config = FleetConfig::mixed(16, 11);
        for node in [0, 5, 15] {
            let a = config.node_deployment(node);
            let b = config.node_deployment(node);
            assert_eq!(a.spec.name, b.spec.name);
            assert_eq!(a.ambient, b.ambient);
            assert_eq!(a.guests.len(), b.guests.len());
        }
    }

    #[test]
    fn shared_training_matches_per_node_training() {
        // The fast path must be a pure optimization: training is a pure
        // function of the part, so sharing the model cannot change any
        // node's outcome.
        let mut shared = FleetConfig::quick(3, 2018);
        shared.horizon = Seconds::new(10.0);
        let mut legacy = shared.clone();
        legacy.share_training = false;
        assert_eq!(simulate(&shared).to_json(), simulate(&legacy).to_json());
    }

    #[test]
    fn per_part_aggregates_cover_the_fleet() {
        let mut config = FleetConfig::mixed(12, 3);
        config.horizon = Seconds::new(10.0);
        let summary = simulate(&config);
        let covered: usize = summary.per_part.iter().map(|p| p.nodes).sum();
        assert_eq!(covered, summary.nodes);
        for part in &summary.per_part {
            assert!(part.energy_saving_fraction > 0.0, "{} must save energy", part.part);
        }
    }

    #[test]
    fn timing_accounts_deploy_and_serve() {
        let mut config = FleetConfig::quick(2, 5);
        config.horizon = Seconds::new(5.0);
        config.threads = 1;
        let (_, timing) = simulate_timed(&config);
        assert_eq!(timing.nodes, 2);
        assert_eq!(timing.workers, 1);
        assert!(timing.wall_ms > 0.0);
        assert!(timing.deploy_ms > 0.0);
        assert!(timing.serve_ms > 0.0);
        assert!(
            timing.deploy_ms + timing.serve_ms <= timing.wall_ms * 1.05,
            "phase sums cannot exceed single-threaded wall clock"
        );
        assert!(timing.deploy_ms_per_node() <= timing.deploy_ms);
        let json = timing.to_json("smoke");
        assert!(json.contains("\"label\":\"smoke\""));
        assert!(json.contains("\"threads\":1"));
        assert!(json.contains("\"cores\":"));
        assert!(json.contains("\"deploy_ms_per_node\":"));
    }
}
