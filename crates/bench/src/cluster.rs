//! Machine-readable rendering of orchestrated cluster runs.
//!
//! The orchestrator crate produces structured, `PartialEq`-comparable
//! summaries; this module renders them to the same stable-key-order JSON
//! the fleet driver emits, so `fleet_sim --cluster` output is
//! byte-diffable across thread counts and CI runs. Wall-clock timings
//! render separately (the `BENCH_cluster.json` record shape) and are
//! deliberately *not* part of the deterministic summary.

use uniserver_orchestrator::summary::{ClusterSummary, OrchestratorTiming};

use crate::render::json::JsonWriter;

/// Renders a cluster summary as JSON with a stable key order. Identical
/// summaries render to byte-identical strings. `per_tick` controls
/// whether the (long) time series is included.
#[must_use]
pub fn summary_to_json(s: &ClusterSummary, per_tick: bool) -> String {
    let mut w = JsonWriter::object();
    w.field_u64("nodes", s.nodes as u64);
    w.field_u64("seed", s.seed);
    w.field_str("margins", &s.margins);
    // Present only when the run deviates from the reference policy, so
    // legacy summaries stay byte-identical.
    if let Some(policy) = &s.policy {
        w.field_str("policy", policy);
    }
    w.field_f64("horizon_secs", s.horizon_secs);
    w.field_f64("tick_secs", s.tick_secs);
    w.field_u64("ticks", s.ticks);
    w.field_u64("offered", s.offered);
    w.field_u64("placed", s.placed);
    w.field_u64("rejected", s.rejected);
    w.field_u64("retried", s.retried);
    w.field_u64("abandoned", s.abandoned);
    w.field_u64("expired_at_horizon", s.expired_at_horizon);
    w.field_u64("completed", s.completed);
    w.field_u64("evicted", s.evicted);
    w.field_u64("live_at_end", s.live_at_end);
    w.field_u64("crashes", s.crashes);
    w.field_u64("crash_migrations", s.crash_migrations);
    w.field_u64("migrations_settled", s.migrations_settled);
    w.field_u64("proactive_migrations", s.proactive_migrations);
    w.field_u64("sla_violations", s.sla_violations);
    w.field_f64("migration_downtime_secs", s.migration_downtime_secs);
    w.field_f64("energy_j", s.energy_j);
    w.field_f64("mean_availability", s.mean_availability);
    w.field_f64("min_availability", s.min_availability);
    w.field_f64("mean_utilization", s.mean_utilization);
    w.field_f64("min_offset_mv_mean", s.min_offset_mv_mean);
    let class_names = ["gold", "silver", "bronze"];
    w.field_array("per_class", s.per_class.iter().enumerate(), |(i, c), out| {
        let mut cw = JsonWriter::object();
        cw.field_str("class", class_names[i]);
        cw.field_u64("offered", c.offered);
        cw.field_u64("placed", c.placed);
        cw.field_u64("rejected", c.rejected);
        cw.field_u64("retried", c.retried);
        cw.field_u64("abandoned", c.abandoned);
        cw.field_u64("expired_at_horizon", c.expired_at_horizon);
        cw.field_u64("shed", c.shed);
        cw.field_u64("violations", c.violations);
        out.push_str(&cw.finish());
    });
    if let Some(chaos) = &s.chaos {
        w.field_object("chaos", |o| {
            o.field_u64("injected_crashes", chaos.injected_crashes);
            o.field_u64("nodes_offlined", chaos.nodes_offlined);
            o.field_u64("rejoins", chaos.rejoins);
            o.field_u64("peak_offline", chaos.peak_offline);
            o.field_f64("downtime_secs", chaos.downtime_secs);
            o.field_f64("lost_capacity_node_hours", chaos.lost_capacity_node_hours);
            o.field_f64("availability", chaos.availability);
            o.field_u64("shed", chaos.shed);
        });
    }
    if let Some(power) = &s.power {
        w.field_object("power", |o| {
            o.field_u64("parks", power.parks);
            o.field_u64("wakes", power.wakes);
            o.field_u64("consolidation_migrations", power.consolidation_migrations);
            o.field_f64("asleep_node_secs", power.asleep_node_secs);
            o.field_u64("peak_asleep", power.peak_asleep);
        });
    }
    if let Some(gray) = &s.gray {
        w.field_object("gray", |o| {
            o.field_u64("gray_onsets", gray.gray_onsets);
            o.field_u64("probe_failures", gray.probe_failures);
            o.field_u64("quarantines", gray.quarantines);
            o.field_u64("readmissions", gray.readmissions);
            o.field_f64("degraded_node_secs", gray.degraded_node_secs);
            o.field_f64("degraded_node_hours", gray.degraded_node_hours);
            o.field_u64("peak_degraded", gray.peak_degraded);
            o.field_f64("powercap_deficit_watt_secs", gray.powercap_deficit_watt_secs);
            o.field_u64("powercap_sheds", gray.powercap_sheds);
        });
    }
    w.field_array("per_part", s.per_part.iter(), |part, out| {
        let mut pw = JsonWriter::object();
        pw.field_str("part", &part.part);
        pw.field_u64("nodes", part.nodes as u64);
        pw.field_u64("crashes", part.crashes);
        pw.field_f64("min_offset_mv_mean", part.min_offset_mv_mean);
        out.push_str(&pw.finish());
    });
    if per_tick {
        w.field_array("per_tick", s.per_tick.iter(), |t, out| {
            let mut tw = JsonWriter::object();
            tw.field_u64("tick", t.tick);
            tw.field_u64("offered", t.offered);
            tw.field_u64("placed", t.placed);
            tw.field_u64("completed", t.completed);
            tw.field_u64("live", t.live);
            tw.field_u64("crashes", t.crashes);
            tw.field_u64("migrations", t.migrations);
            tw.field_f64("energy_j", t.energy_j);
            out.push_str(&tw.finish());
        });
    }
    w.finish()
}

/// Physical core count of the host, from `/proc/cpuinfo` — may exceed
/// the process-available [`uniserver_cloudmgr::pool::cores`] in a
/// cgroup-limited container, and is recorded alongside it so the bench
/// records' wall-clocks are interpretable (a "slow" row from a 2-of-64
/// core container is not a regression). Falls back to the available
/// parallelism when the probe fails (non-Linux hosts).
#[must_use]
pub fn host_cores() -> usize {
    std::fs::read_to_string("/proc/cpuinfo")
        .map(|info| info.lines().filter(|l| l.starts_with("processor")).count())
        .ok()
        .filter(|&n| n > 0)
        .unwrap_or_else(uniserver_cloudmgr::pool::cores)
}

/// The full `BENCH_cluster.json` record: the run's headline outcome
/// (margins, fleet energy, crash count, admission accounting — total
/// and per class, so a flash-crowd row shows who got retried and who
/// got abandoned) plus the timing columns —
/// `threads` is the worker count used for deploy *and* the sharded
/// serving loop, `cores` the machine's available parallelism (so a
/// single-core container's wall-clocks read as what they are), and
/// `serve_ms_per_node` the serve wall-clock amortized over the rack. An
/// extended-vs-nominal pair of records carries the savings story
/// without re-parsing the stdout summary.
#[must_use]
pub fn bench_record(s: &ClusterSummary, t: &OrchestratorTiming, label: &str) -> String {
    let mut w = JsonWriter::object();
    w.field_str("label", label);
    w.field_str("margins", &s.margins);
    if let Some(policy) = &s.policy {
        w.field_str("policy", policy);
    }
    w.field_f64("energy_j", s.energy_j);
    w.field_u64("crashes", s.crashes);
    // Carried so a BENCH_policy.json matrix shows who hauls VMs around
    // and who pays for it without re-parsing the stdout summary.
    w.field_u64("proactive_migrations", s.proactive_migrations);
    w.field_u64("sla_violations", s.sla_violations);
    w.field_u64("offered", s.offered);
    w.field_u64("placed", s.placed);
    w.field_u64("retried", s.retried);
    w.field_u64("abandoned", s.abandoned);
    let class_names = ["gold", "silver", "bronze"];
    w.field_array("per_class", s.per_class.iter().enumerate(), |(i, c), out| {
        let mut cw = JsonWriter::object();
        cw.field_str("class", class_names[i]);
        cw.field_u64("offered", c.offered);
        cw.field_u64("placed", c.placed);
        cw.field_u64("retried", c.retried);
        cw.field_u64("abandoned", c.abandoned);
        out.push_str(&cw.finish());
    });
    // Chaos accounting rides along only when the run had the lifecycle
    // or a fault plan active, so legacy rows stay byte-identical.
    if let Some(chaos) = &s.chaos {
        w.field_object("chaos", |o| {
            o.field_u64("injected_crashes", chaos.injected_crashes);
            o.field_u64("nodes_offlined", chaos.nodes_offlined);
            o.field_u64("rejoins", chaos.rejoins);
            o.field_u64("peak_offline", chaos.peak_offline);
            o.field_f64("downtime_secs", chaos.downtime_secs);
            o.field_f64("lost_capacity_node_hours", chaos.lost_capacity_node_hours);
            o.field_f64("availability", chaos.availability);
            o.field_u64("shed", chaos.shed);
        });
    }
    // Power accounting rides along only when the run's policy manages
    // node power (consolidation), same gating as the chaos object.
    if let Some(power) = &s.power {
        w.field_object("power", |o| {
            o.field_u64("parks", power.parks);
            o.field_u64("wakes", power.wakes);
            o.field_u64("consolidation_migrations", power.consolidation_migrations);
            o.field_f64("asleep_node_secs", power.asleep_node_secs);
            o.field_u64("peak_asleep", power.peak_asleep);
        });
    }
    // Gray-failure accounting rides along only when the plan carried a
    // gray or power-cap campaign — same gating as the summary object.
    if let Some(gray) = &s.gray {
        w.field_object("gray", |o| {
            o.field_u64("gray_onsets", gray.gray_onsets);
            o.field_u64("probe_failures", gray.probe_failures);
            o.field_u64("quarantines", gray.quarantines);
            o.field_u64("readmissions", gray.readmissions);
            o.field_f64("degraded_node_secs", gray.degraded_node_secs);
            o.field_f64("degraded_node_hours", gray.degraded_node_hours);
            o.field_u64("peak_degraded", gray.peak_degraded);
            o.field_f64("powercap_deficit_watt_secs", gray.powercap_deficit_watt_secs);
            o.field_u64("powercap_sheds", gray.powercap_sheds);
        });
    }
    w.field_u64("nodes", t.nodes as u64);
    w.field_u64("arrivals", t.arrivals);
    w.field_u64("threads", t.workers as u64);
    w.field_u64("cores", t.cores as u64);
    w.field_u64("host_cores", host_cores() as u64);
    // Per-phase serve attribution from the stage profiler — wall-clock,
    // machine-local, next to the other timing columns by design.
    w.field_object("stages", |o| {
        o.field_f64("placement_ms", t.stages.placement_ms);
        o.field_f64("predictor_ms", t.stages.predictor_ms);
        o.field_f64("hypervisor_tick_ms", t.stages.hypervisor_tick_ms);
        o.field_f64("retry_ms", t.stages.retry_ms);
        o.field_f64("recovery_ms", t.stages.recovery_ms);
        o.field_f64("events_ms", t.stages.events_ms);
        o.field_f64("rejoin_ms", t.stages.rejoin_ms);
        o.field_f64("tick_wall_ms", t.stages.tick_wall_ms);
    });
    w.field_f64("wall_ms", t.wall_ms);
    w.field_f64("deploy_ms", t.deploy_ms);
    w.field_f64("serve_ms", t.serve_ms);
    w.field_f64("deploy_ms_per_node", t.deploy_ms / t.nodes.max(1) as f64);
    w.field_f64("serve_ms_per_node", t.serve_ms / t.nodes.max(1) as f64);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_orchestrator::{run_timed, OrchestratorConfig};

    #[test]
    fn summary_json_is_byte_stable_across_worker_counts() {
        let mut config = OrchestratorConfig::smoke(4, 77);
        config.threads = 1;
        let (a, _) = run_timed(&config);
        config.threads = 4;
        let (b, _) = run_timed(&config);
        assert_eq!(summary_to_json(&a, true), summary_to_json(&b, true));
        assert_eq!(summary_to_json(&a, false), summary_to_json(&b, false));
        assert!(summary_to_json(&a, true).contains("\"per_tick\":["));
        assert!(!summary_to_json(&a, false).contains("per_tick"));
    }

    #[test]
    fn bench_record_carries_the_headline_and_timing_shape() {
        let config = OrchestratorConfig::smoke(2, 5);
        let (summary, timing) = run_timed(&config);
        let json = bench_record(&summary, &timing, "smoke");
        for key in [
            "\"label\":\"smoke\"",
            "\"margins\":\"extended\"",
            "\"energy_j\":",
            "\"crashes\":",
            "\"proactive_migrations\":",
            "\"sla_violations\":",
            "\"offered\":",
            "\"retried\":",
            "\"abandoned\":",
            "\"per_class\":[{\"class\":\"gold\"",
            "\"nodes\":2",
            "\"arrivals\":",
            "\"cores\":",
            "\"host_cores\":",
            "\"stages\":{\"placement_ms\":",
            "\"hypervisor_tick_ms\":",
            "\"tick_wall_ms\":",
            "\"wall_ms\":",
            "\"deploy_ms_per_node\":",
            "\"serve_ms_per_node\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(!json.contains("\"chaos\":"), "legacy rows must not grow a chaos object");
        assert!(!json.contains("\"policy\":"), "the reference policy rides unlabeled");
        assert!(!json.contains("\"power\":"), "non-managing rows must not grow a power object");
        assert!(!json.contains("\"gray\":"), "gray-free rows must not grow a gray object");
    }

    #[test]
    fn power_outcomes_render_only_for_managing_policies() {
        use uniserver_orchestrator::PolicyKind;

        let mut config = OrchestratorConfig::smoke(4, 77);
        config.policy = PolicyKind::Consolidate;
        let (summary, timing) = run_timed(&config);
        assert_eq!(summary.policy.as_deref(), Some("consolidate"));
        assert!(summary.power.is_some());
        let record = bench_record(&summary, &timing, "consolidate");
        let json = summary_to_json(&summary, false);
        for key in [
            "\"policy\":\"consolidate\"",
            "\"power\":{\"parks\":",
            "\"wakes\":",
            "\"consolidation_migrations\":",
            "\"asleep_node_secs\":",
            "\"peak_asleep\":",
        ] {
            assert!(record.contains(key), "missing {key} in {record}");
            assert!(json.contains(key), "missing {key} in {json}");
        }

        // The ablation is labeled but manages no power.
        config.policy = PolicyKind::ReliabilityBlind;
        let (summary, _) = run_timed(&config);
        assert_eq!(summary.policy.as_deref(), Some("reliability-blind"));
        assert!(summary.power.is_none());
        let json = summary_to_json(&summary, false);
        assert!(json.contains("\"policy\":\"reliability-blind\""));
        assert!(!json.contains("\"power\":"));

        // Explicitly selecting the reference is indistinguishable from
        // the default: no label, no power object.
        config.policy = PolicyKind::EnergySla;
        let (summary, _) = run_timed(&config);
        assert!(summary.policy.is_none());
        assert!(summary.power.is_none());
    }

    #[test]
    fn chaos_outcomes_render_only_when_present() {
        use uniserver_orchestrator::ChaosPlan;

        let mut config = OrchestratorConfig::chaos_profile(4, 5);
        config.horizon = uniserver_units::Seconds::new(600.0);
        config.chaos = Some(ChaosPlan::rack_and_flash(config.ticks()));
        let (summary, timing) = run_timed(&config);
        assert!(summary.chaos.is_some());
        let record = bench_record(&summary, &timing, "chaos");
        let json = summary_to_json(&summary, false);
        for key in [
            "\"chaos\":{\"injected_crashes\":",
            "\"nodes_offlined\":",
            "\"rejoins\":",
            "\"peak_offline\":",
            "\"downtime_secs\":",
            "\"lost_capacity_node_hours\":",
            "\"availability\":",
            "\"shed\":",
        ] {
            assert!(record.contains(key), "missing {key} in {record}");
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.contains("\"expired_at_horizon\":"));
        assert!(
            !json.contains("\"gray\":"),
            "a crash-only plan must not grow a gray object"
        );
    }

    #[test]
    fn gray_outcomes_render_only_under_a_gray_plan() {
        use uniserver_orchestrator::ChaosPlan;

        let mut config = OrchestratorConfig::gray_profile(4, 5);
        config.horizon = uniserver_units::Seconds::new(600.0);
        config.chaos = Some(ChaosPlan::gray_brownout(config.ticks(), 4));
        let (summary, timing) = run_timed(&config);
        assert!(summary.gray.is_some());
        let record = bench_record(&summary, &timing, "gray");
        let json = summary_to_json(&summary, false);
        for key in [
            "\"gray\":{\"gray_onsets\":",
            "\"probe_failures\":",
            "\"quarantines\":",
            "\"readmissions\":",
            "\"degraded_node_secs\":",
            "\"degraded_node_hours\":",
            "\"peak_degraded\":",
            "\"powercap_deficit_watt_secs\":",
            "\"powercap_sheds\":",
        ] {
            assert!(record.contains(key), "missing {key} in {record}");
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // The gray profile also runs the lifecycle, so the chaos object
        // rides alongside — gray after power after chaos, fixed order.
        assert!(json.contains("\"chaos\":{"));
    }
}
