//! The EOP optimizer: fuses StressLog margins with Predictor advice
//! under an SLA risk budget (§2: "the system software is responsible
//! for optimizing the system operation in terms of energy or
//! performance, while guaranteeing non-disruptive operation under
//! EOP").

use serde::{Deserialize, Serialize};
use uniserver_units::Celsius;

use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_predictor::ModeAdvisor;
use uniserver_stresslog::MarginVector;

use crate::eop::OperatingPoint;

/// The optimizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EopOptimizer {
    /// How much of the measured margin to actually use, before the
    /// predictor gets a veto (1.0 = all of it).
    pub aggressiveness: f64,
}

impl EopOptimizer {
    /// Uses the full measured margin subject to predictor veto.
    #[must_use]
    pub fn assertive() -> Self {
        EopOptimizer { aggressiveness: 1.0 }
    }

    /// Keeps a quarter of the measured margin in reserve.
    #[must_use]
    pub fn cautious() -> Self {
        EopOptimizer { aggressiveness: 0.75 }
    }

    /// Chooses the operating point: start from the StressLog margins,
    /// then cap each core's offset by the depth the Predictor considers
    /// safe for the expected workload.
    #[must_use]
    pub fn choose(
        &self,
        spec: &PartSpec,
        margins: &MarginVector,
        advisor: &ModeAdvisor,
        expected_workload: &WorkloadProfile,
        temp: Celsius,
    ) -> OperatingPoint {
        let mut point = OperatingPoint::from_margins(margins, self.aggressiveness);
        let advice = advisor.advise(expected_workload, &spec.pdn, temp, 0.0);
        let advice_cap_mv = advice.offset_fraction * spec.nominal_voltage.as_millivolts();
        for offset in &mut point.core_offsets_mv {
            *offset = offset.min(advice_cap_mv);
        }
        point.provenance = format!(
            "{} ∧ predictor cap {:.0} mV (risk {:.3})",
            point.provenance, advice_cap_mv, advice.predicted_risk
        );
        point
    }
}

impl Default for EopOptimizer {
    fn default() -> Self {
        EopOptimizer::cautious()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_predictor::harness::TrainingHarness;
    use uniserver_predictor::LogisticModel;
    use uniserver_stresslog::{StressLog, StressTargetParams};

    fn setup() -> (PartSpec, MarginVector, ModeAdvisor) {
        let spec = PartSpec::arm_microserver();
        let mut node = uniserver_platform::node::ServerNode::new(spec.clone(), 31);
        let margins = StressLog::new(StressTargetParams::quick()).characterize(&mut node, None);
        let data = TrainingHarness::quick().generate(2);
        let advisor = ModeAdvisor::new(LogisticModel::fit(&data, 200, 0.7), 0.05);
        (spec, margins, advisor)
    }

    #[test]
    fn chosen_point_respects_both_sources() {
        let (spec, margins, advisor) = setup();
        let point = EopOptimizer::assertive().choose(
            &spec,
            &margins,
            &advisor,
            &WorkloadProfile::spec_bzip2(),
            Celsius::new(26.0),
        );
        for (core, &mv) in point.core_offsets_mv.iter().enumerate() {
            assert!(
                mv <= margins.per_core_safe_offset_mv[core] + 1e-9,
                "core {core} exceeds its margin"
            );
        }
        assert!(point.min_offset_mv() > 0.0, "the optimizer must reclaim something");
        assert!(point.provenance.contains("predictor cap"));
    }

    #[test]
    fn cautious_is_shallower_than_assertive() {
        let (spec, margins, advisor) = setup();
        let w = WorkloadProfile::spec_bzip2();
        let a = EopOptimizer::assertive().choose(&spec, &margins, &advisor, &w, Celsius::new(26.0));
        let c = EopOptimizer::cautious().choose(&spec, &margins, &advisor, &w, Celsius::new(26.0));
        assert!(c.min_offset_mv() <= a.min_offset_mv());
        assert!(c.relaxed_refresh <= a.relaxed_refresh);
    }

    #[test]
    fn stressful_workloads_get_capped_harder() {
        let (spec, margins, advisor) = setup();
        let quiet = EopOptimizer::assertive().choose(
            &spec,
            &margins,
            &advisor,
            &WorkloadProfile::spec_namd(),
            Celsius::new(26.0),
        );
        let loud = EopOptimizer::assertive().choose(
            &spec,
            &margins,
            &advisor,
            &WorkloadProfile::spec_zeusmp(),
            Celsius::new(26.0),
        );
        assert!(loud.min_offset_mv() <= quiet.min_offset_mv() + 1e-9);
    }
}
