//! The deployed ecosystem: the full UniServer lifecycle on one node.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use uniserver_units::{Celsius, Joules, Seconds, Watts};

use uniserver_hypervisor::hypervisor::Hypervisor;
use uniserver_hypervisor::vm::VmConfig;
use uniserver_platform::node::ServerNode;
use uniserver_platform::part::PartSpec;
use uniserver_platform::workload::WorkloadProfile;
use uniserver_predictor::ModeAdvisor;
use uniserver_stresslog::{Schedule, StressLog, StressTargetParams};

use crate::eop::{EopPhase, OperatingPoint};
use crate::optimizer::EopOptimizer;

/// Everything needed to stand up an ecosystem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeploymentConfig {
    /// The part to deploy.
    pub spec: PartSpec,
    /// Stress-test parameters for (re-)characterization.
    pub stress_params: StressTargetParams,
    /// Predictor training scope: number of sibling chips to learn from.
    pub training_chips: usize,
    /// Risk tolerance handed to the mode advisor.
    pub risk_tolerance: f64,
    /// The optimizer policy.
    pub optimizer: EopOptimizer,
    /// Guests to launch at deployment.
    pub guests: Vec<VmConfig>,
    /// Re-characterization cadence.
    pub recharacterization_period: Seconds,
    /// Minimum spacing between anomaly-triggered re-characterizations
    /// (threshold trips can persist for many intervals; taking the node
    /// offline every tick would defeat the purpose).
    pub anomaly_cooldown: Seconds,
    /// Ambient (inlet) temperature of the node's deployment site: feeds
    /// both the sensors' thermal model and the advisor's risk queries.
    pub ambient: Celsius,
}

impl DeploymentConfig {
    /// A production-flavoured deployment: ARM micro-server, four LDBC
    /// guests, cautious optimizer.
    #[must_use]
    pub fn standard() -> Self {
        DeploymentConfig {
            spec: PartSpec::arm_microserver(),
            stress_params: StressTargetParams::standard(),
            training_chips: 3,
            risk_tolerance: 0.02,
            optimizer: EopOptimizer::cautious(),
            guests: vec![VmConfig::ldbc_benchmark(); 4],
            recharacterization_period: Seconds::new(2.5 * 30.0 * 24.0 * 3600.0),
            anomaly_cooldown: Seconds::new(3_600.0),
            ambient: Celsius::new(26.0),
        }
    }

    /// A reduced configuration for tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        DeploymentConfig {
            stress_params: StressTargetParams::quick(),
            training_chips: 2,
            guests: vec![VmConfig::ldbc_benchmark()],
            ..DeploymentConfig::standard()
        }
    }
}

/// The savings summary the ecosystem reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SavingsReport {
    /// Mean node power at the chosen EOP.
    pub eop_power: Watts,
    /// Mean node power a conservative twin consumes for the same work.
    pub nominal_power: Watts,
    /// Fractional energy saving of EOP operation.
    pub energy_saving_fraction: f64,
    /// Availability including any crash recoveries.
    pub availability: f64,
    /// Total energy consumed at EOP so far.
    pub eop_energy: Joules,
    /// Crashes survived (should be zero or near-zero at a sound EOP).
    pub crashes: u64,
    /// Re-characterizations performed since deployment.
    pub recharacterizations: u64,
}

/// Provisions one bare node at its Extended Operating Point — the
/// deploy-into-cluster plumbing. The node is manufactured from `seed`,
/// characterized by the StressLog (per-node silicon, exactly as
/// [`Ecosystem::deploy_with_advisor`] does it), the optimizer chooses an
/// EOP against the shared part-level `advisor`, and the point is
/// programmed into the node's MSRs. Unlike a full [`Ecosystem`], no
/// guests are launched and no baseline twin is kept: the caller (a
/// cluster manager) owns VM placement and baseline accounting.
///
/// `expected_workload` is the load the optimizer assumes when weighing
/// crash risk; cluster deployments pass their dominant guest profile.
#[must_use]
pub fn provision_node(
    config: &DeploymentConfig,
    seed: u64,
    advisor: &ModeAdvisor,
) -> (ServerNode, OperatingPoint) {
    let mut node = ServerNode::new(config.spec.clone(), seed);
    node.set_ambient(config.ambient);
    let mut stresslog = StressLog::new(config.stress_params.clone());
    let margins = stresslog.characterize(&mut node, None);
    let expected_workload = config
        .guests
        .first()
        .map(|g| g.workload.clone())
        .unwrap_or_else(WorkloadProfile::idle);
    let point =
        config.optimizer.choose(&config.spec, &margins, advisor, &expected_workload, config.ambient);
    point.apply_to(&mut node);
    (node, point)
}

/// Re-characterizes an already-deployed node in place — the rejoin path
/// after a repair window. The StressLog re-shmoos the node *as it is
/// now* (aged silicon, current ambient), so the chosen point reflects
/// the margins the hardware actually has today instead of a geometric
/// backoff guess from its pre-deployment characterization. The shmoo's
/// own deliberate crashes are drained by the StressLog; only the chosen
/// point is programmed into the MSRs.
///
/// The advisor query uses the node's *live* ambient (not the config's
/// deploy-time value): a node rejoining mid cooling-failure must choose
/// its point for the hot aisle it is actually in.
#[must_use]
pub fn recharacterize_node(
    config: &DeploymentConfig,
    node: &mut ServerNode,
    advisor: &ModeAdvisor,
) -> OperatingPoint {
    let ambient = node.ambient();
    let mut stresslog = StressLog::new(config.stress_params.clone());
    let margins = stresslog.characterize(node, None);
    let expected_workload = config
        .guests
        .first()
        .map(|g| g.workload.clone())
        .unwrap_or_else(WorkloadProfile::idle);
    let point =
        config.optimizer.choose(&config.spec, &margins, advisor, &expected_workload, ambient);
    point.apply_to(node);
    point
}

/// The deployed UniServer ecosystem.
#[derive(Debug, Clone)]
pub struct Ecosystem {
    hypervisor: Hypervisor,
    /// A conservative twin of the same chip, used as the savings
    /// baseline (same seed → same silicon, nominal settings).
    baseline: Hypervisor,
    stresslog: StressLog,
    /// Part-level risk model; `Arc` because fleets share one trained
    /// model across every node of a part (see [`crate::training`]).
    advisor: Arc<ModeAdvisor>,
    optimizer: EopOptimizer,
    schedule: Schedule,
    phase: EopPhase,
    current_point: OperatingPoint,
    expected_workload: WorkloadProfile,
    spec: PartSpec,
    ambient: Celsius,
    anomaly_cooldown: Seconds,
    recharacterizations: u64,
    eop_energy: Joules,
    baseline_energy: Joules,
    served: Seconds,
}

impl Ecosystem {
    /// Stands up the full stack: manufactures the node, runs the
    /// pre-deployment characterization, trains the predictor, launches
    /// the guests and moves to the chosen EOP.
    ///
    /// Training here is per-deployment; fleets deploying many nodes of
    /// the same part should train once via [`crate::training`] and use
    /// [`Ecosystem::deploy_with_advisor`].
    ///
    /// # Panics
    ///
    /// Panics if the configured guests do not fit the node's memory.
    #[must_use]
    pub fn deploy(config: &DeploymentConfig, seed: u64) -> Self {
        Self::deploy_with_advisor(config, seed, Arc::new(crate::training::train_advisor(config)))
    }

    /// Deploys with an already-trained part-level advisor — the fleet
    /// fast path. The node's *silicon* is still characterized
    /// individually (the StressLog shmoo runs per node); only the
    /// part-level risk model is shared. Passing the advisor that
    /// [`crate::training::train_advisor`] produces for `config` makes
    /// this bit-identical to [`Ecosystem::deploy`].
    ///
    /// # Panics
    ///
    /// Panics if the configured guests do not fit the node's memory.
    #[must_use]
    pub fn deploy_with_advisor(
        config: &DeploymentConfig,
        seed: u64,
        advisor: Arc<ModeAdvisor>,
    ) -> Self {
        // --- Phase 1: pre-deployment characterization.
        let mut node = ServerNode::new(config.spec.clone(), seed);
        node.set_ambient(config.ambient);
        let mut stresslog = StressLog::new(config.stress_params.clone());
        let margins = stresslog.characterize(&mut node, None);

        // --- Choose the EOP.
        let expected_workload = config
            .guests
            .first()
            .map(|g| g.workload.clone())
            .unwrap_or_else(WorkloadProfile::idle);
        let point = config.optimizer.choose(
            &config.spec,
            &margins,
            &advisor,
            &expected_workload,
            config.ambient,
        );

        // --- Phase 2: deployment.
        let mut hypervisor = Hypervisor::new(node);
        let mut baseline_node = ServerNode::new(config.spec.clone(), seed);
        baseline_node.set_ambient(config.ambient);
        let mut baseline = Hypervisor::new(baseline_node);
        for guest in &config.guests {
            hypervisor.launch_vm(guest.clone()).expect("guest fits the node");
            baseline.launch_vm(guest.clone()).expect("guest fits the baseline");
        }
        let mut eco = Ecosystem {
            hypervisor,
            baseline,
            stresslog,
            advisor,
            optimizer: config.optimizer,
            schedule: Schedule::every(config.recharacterization_period),
            anomaly_cooldown: config.anomaly_cooldown,
            phase: EopPhase::Deployed,
            current_point: OperatingPoint::nominal(config.spec.cores),
            expected_workload,
            spec: config.spec.clone(),
            ambient: config.ambient,
            recharacterizations: 0,
            eop_energy: Joules::ZERO,
            baseline_energy: Joules::ZERO,
            served: Seconds::ZERO,
        };
        eco.apply_point(point);
        eco
    }

    fn apply_point(&mut self, point: OperatingPoint) {
        point.apply_to(self.hypervisor.node_mut());
        self.current_point = point;
    }

    /// The active operating point.
    #[must_use]
    pub fn operating_point(&self) -> &OperatingPoint {
        &self.current_point
    }

    /// The lifecycle phase.
    #[must_use]
    pub fn phase(&self) -> EopPhase {
        self.phase
    }

    /// The production hypervisor (read-only).
    #[must_use]
    pub fn hypervisor(&self) -> &Hypervisor {
        &self.hypervisor
    }

    /// Runs one serving interval, handling the monitored-operation
    /// loop: health-triggered or scheduled re-characterization.
    pub fn run(&mut self, duration: Seconds) {
        let outcome = self.hypervisor.tick(duration);
        let base = self.baseline.tick(duration);
        self.eop_energy = self.eop_energy + outcome.energy;
        self.baseline_energy = self.baseline_energy + base.energy;
        self.served = self.served + duration;

        let now = self.hypervisor.node().now();
        match self.schedule.last_run {
            // The deployment-time characterization counts as run zero.
            None => self.schedule.mark_ran(now),
            Some(last) => {
                let periodic_due = self.schedule.due(now, false);
                let anomaly_due = outcome.recharacterization_requested
                    && now.saturating_sub(last) >= self.anomaly_cooldown;
                if periodic_due || anomaly_due {
                    self.recharacterize();
                }
            }
        }
    }

    /// Takes the node offline, re-runs the StressLog, re-chooses the
    /// EOP and returns to service (§3: margins adapt to workload drift
    /// and aging).
    pub fn recharacterize(&mut self) {
        self.phase = EopPhase::Recharacterizing;
        let margins = self.stresslog.characterize(self.hypervisor.node_mut(), None);
        let point = self.optimizer.choose(
            &self.spec,
            &margins,
            &self.advisor,
            &self.expected_workload,
            self.ambient,
        );
        self.apply_point(point);
        self.schedule.mark_ran(self.hypervisor.node().now());
        self.recharacterizations += 1;
        self.phase = EopPhase::Deployed;
    }

    /// The savings summary so far.
    ///
    /// # Panics
    ///
    /// Panics if called before any serving interval.
    #[must_use]
    pub fn savings_report(&self) -> SavingsReport {
        assert!(self.served.as_secs() > 0.0, "run the ecosystem before reporting");
        let eop_power = self.eop_energy / self.served;
        let nominal_power = self.baseline_energy / self.served;
        SavingsReport {
            eop_power,
            nominal_power,
            energy_saving_fraction: 1.0
                - self.eop_energy.as_joules() / self.baseline_energy.as_joules(),
            availability: self.hypervisor.availability(),
            eop_energy: self.eop_energy,
            crashes: self.hypervisor.crashes(),
            recharacterizations: self.recharacterizations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_ecosystem() -> Ecosystem {
        Ecosystem::deploy(&DeploymentConfig::quick(), 77)
    }

    #[test]
    fn deployment_reaches_a_real_eop() {
        let eco = quick_ecosystem();
        assert_eq!(eco.phase(), EopPhase::Deployed);
        let point = eco.operating_point();
        assert!(point.min_offset_mv() > 20.0, "EOP must reclaim margin: {point:?}");
        assert!(
            point.relaxed_refresh.as_secs() > 0.5,
            "EOP must relax refresh: {}",
            point.relaxed_refresh
        );
    }

    #[test]
    fn eop_operation_saves_energy_without_crashing() {
        let mut eco = quick_ecosystem();
        for _ in 0..120 {
            eco.run(Seconds::new(1.0));
        }
        let report = eco.savings_report();
        assert_eq!(report.crashes, 0, "a sound EOP must not crash");
        assert_eq!(report.availability, 1.0);
        assert!(
            report.energy_saving_fraction > 0.05,
            "EOP should save >5 % energy, got {:.3}",
            report.energy_saving_fraction
        );
        assert!(report.eop_power < report.nominal_power);
    }

    #[test]
    fn recharacterization_keeps_serving() {
        let mut eco = quick_ecosystem();
        for _ in 0..10 {
            eco.run(Seconds::new(1.0));
        }
        eco.recharacterize();
        assert_eq!(eco.phase(), EopPhase::Deployed);
        let report = {
            for _ in 0..10 {
                eco.run(Seconds::new(1.0));
            }
            eco.savings_report()
        };
        assert_eq!(report.recharacterizations, 1);
        assert_eq!(report.crashes, 0);
    }

    #[test]
    fn provision_node_matches_full_deploy() {
        // The cluster plumbing must choose the exact point a full
        // per-node ecosystem deploy would have chosen.
        let config = DeploymentConfig::quick();
        let advisor = crate::training::train_advisor(&config);
        let (node, point) = provision_node(&config, 77, &advisor);
        let eco = Ecosystem::deploy(&config, 77);
        assert_eq!(&point, eco.operating_point());
        assert_eq!(node.chip().speed_factor, eco.hypervisor().node().chip().speed_factor);
        // And the point is actually programmed into the MSRs.
        assert!(node.msr.voltage_offset_mv(0) > 0.0);
    }

    #[test]
    fn recharacterize_node_measures_aged_margins_and_leaves_no_crash_feed() {
        let config = DeploymentConfig::quick();
        let advisor = crate::training::train_advisor(&config);
        let (mut node, fresh_point) = provision_node(&config, 77, &advisor);
        node.age_by_months(18.0);
        let rejoined_point = recharacterize_node(&config, &mut node, &advisor);
        assert!(
            rejoined_point.min_offset_mv() <= fresh_point.min_offset_mv() + 1e-9,
            "aged silicon cannot have more margin than its fresh self: {} vs {}",
            rejoined_point.min_offset_mv(),
            fresh_point.min_offset_mv()
        );
        assert!(rejoined_point.min_offset_mv() > 0.0, "re-shmoo still finds real margin");
        // The shmoo crashed the node on purpose; none of that may leak
        // into the cluster's service crash feed.
        assert!(node.take_crash_events().is_empty(), "shmoo crashes must be drained");
        assert!(!node.is_crashed());
        // Pure in the node state: same node, same answer.
        let again = recharacterize_node(&config, &mut node, &advisor);
        assert_eq!(again.core_offsets_mv.len(), rejoined_point.core_offsets_mv.len());
    }

    #[test]
    fn backed_off_point_is_shallower() {
        let config = DeploymentConfig::quick();
        let advisor = crate::training::train_advisor(&config);
        let (_, point) = provision_node(&config, 77, &advisor);
        let safe = point.backed_off(0.5);
        assert!(safe.min_offset_mv() < point.min_offset_mv());
        assert!(safe.relaxed_refresh < point.relaxed_refresh);
        let nominal = point.backed_off(1.0);
        assert!(nominal.core_offsets_mv.iter().all(|&mv| mv == 0.0));
    }

    #[test]
    fn deployment_is_deterministic() {
        let a = quick_ecosystem();
        let b = quick_ecosystem();
        assert_eq!(a.operating_point(), b.operating_point());
    }

    #[test]
    #[should_panic(expected = "run the ecosystem")]
    fn premature_report_panics() {
        let eco = quick_ecosystem();
        let _ = eco.savings_report();
    }
}
