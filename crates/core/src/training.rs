//! Shared predictor training: train once per part, deploy everywhere.
//!
//! The Predictor learns the crash surface of a *part* from sibling
//! chips, not of one individual die ([`TrainingHarness`] seeds its
//! sample generation from fixed harness parameters, so training is a
//! pure function of the deployment configuration). Re-running that
//! training inside every [`Ecosystem::deploy`] therefore re-derives the
//! identical model — at fleet scale that redundancy dominates deploy
//! wall-clock. This module factors it out:
//!
//! * [`TrainedAdvisor`] — one part's trained [`ModeAdvisor`], wrapped in
//!   an `Arc` so worker threads share a single model;
//! * [`AdvisorCache`] — a thread-safe map from part name to
//!   [`TrainedAdvisor`], training on first request.
//!
//! Per-node *silicon* is still characterized individually by the
//! StressLog; only the part-level risk model is shared.
//!
//! # Examples
//!
//! ```no_run
//! use uniserver_core::ecosystem::{DeploymentConfig, Ecosystem};
//! use uniserver_core::training::AdvisorCache;
//!
//! let cache = AdvisorCache::new();
//! let config = DeploymentConfig::quick();
//! let a = cache.get_or_train(&config); // trains
//! let b = cache.get_or_train(&config); // cache hit: the same model
//! assert!(std::sync::Arc::ptr_eq(&a.advisor, &b.advisor));
//! let eco = Ecosystem::deploy_with_advisor(&config, 7, a.advisor);
//! assert!(eco.operating_point().min_offset_mv() >= 0.0);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use uniserver_predictor::harness::TrainingHarness;
use uniserver_predictor::{LogisticModel, ModeAdvisor};

use crate::ecosystem::DeploymentConfig;

/// A part-level trained advisor, shareable across every node of the
/// part (and across worker threads) via `Arc`.
#[derive(Debug, Clone)]
pub struct TrainedAdvisor {
    /// Name of the part the model was trained for.
    pub part_name: Arc<str>,
    /// The trained mode advisor.
    pub advisor: Arc<ModeAdvisor>,
}

impl TrainedAdvisor {
    /// Trains an advisor for the part named in `config` — the exact
    /// training [`Ecosystem::deploy`] performs, factored out so it can
    /// run once per part instead of once per node.
    #[must_use]
    pub fn train(config: &DeploymentConfig) -> Self {
        TrainedAdvisor {
            part_name: Arc::from(config.spec.name.as_str()),
            advisor: Arc::new(train_advisor(config)),
        }
    }
}

/// A thread-safe part-name → [`TrainedAdvisor`] cache.
///
/// Training is deterministic per part, so a cache hit returns a model
/// bit-identical to what per-node training would have produced; results
/// cannot depend on which thread populated the entry. The cache assumes
/// one training configuration per part name within a fleet — deploying
/// the same part under different `training_chips`/`risk_tolerance` in
/// one cache must use separate caches (or train directly).
#[derive(Debug, Default)]
pub struct AdvisorCache {
    trained: Mutex<HashMap<String, TrainedAdvisor>>,
}

impl AdvisorCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        AdvisorCache::default()
    }

    /// Returns the part's trained advisor, training it on a miss.
    ///
    /// Training runs outside the lock (it is the expensive step); if two
    /// threads race on the same part, the first insert wins and the
    /// loser's identical model is dropped.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking trainer.
    #[must_use]
    pub fn get_or_train(&self, config: &DeploymentConfig) -> TrainedAdvisor {
        if let Some(hit) = self.trained.lock().unwrap().get(&config.spec.name) {
            return hit.clone();
        }
        let fresh = TrainedAdvisor::train(config);
        let mut map = self.trained.lock().unwrap();
        map.entry(config.spec.name.clone()).or_insert(fresh).clone()
    }

    /// Number of parts trained so far.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking trainer.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trained.lock().unwrap().len()
    }

    /// Whether no part has been trained yet.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned by a panicking trainer.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trained.lock().unwrap().is_empty()
    }
}

/// Free-function form of the training step (what [`TrainedAdvisor::train`]
/// wraps): exposed for callers that want an unshared advisor.
#[must_use]
pub fn train_advisor(config: &DeploymentConfig) -> ModeAdvisor {
    let harness = TrainingHarness { spec: config.spec.clone(), ..TrainingHarness::quick() };
    let data = harness.generate(config.training_chips);
    let model = LogisticModel::fit(&data, 200, 0.7);
    ModeAdvisor::new(model, config.risk_tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecosystem::Ecosystem;
    use uniserver_platform::part::PartSpec;

    #[test]
    fn cache_trains_once_per_part() {
        let cache = AdvisorCache::new();
        let arm = DeploymentConfig::quick();
        let i5 = DeploymentConfig { spec: PartSpec::i5_4200u(), ..DeploymentConfig::quick() };
        let a = cache.get_or_train(&arm);
        let b = cache.get_or_train(&arm);
        assert!(Arc::ptr_eq(&a.advisor, &b.advisor), "second lookup must share the model");
        let c = cache.get_or_train(&i5);
        assert!(!Arc::ptr_eq(&a.advisor, &c.advisor), "distinct parts train distinct models");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cached_advisor_matches_fresh_training() {
        let config = DeploymentConfig::quick();
        let cached = AdvisorCache::new().get_or_train(&config);
        let fresh = train_advisor(&config);
        assert_eq!(*cached.advisor, fresh, "training must be a pure function of the config");
    }

    #[test]
    fn deploy_with_cached_advisor_matches_plain_deploy() {
        let config = DeploymentConfig::quick();
        let cached = AdvisorCache::new().get_or_train(&config);
        let via_cache = Ecosystem::deploy_with_advisor(&config, 77, cached.advisor);
        let plain = Ecosystem::deploy(&config, 77);
        assert_eq!(via_cache.operating_point(), plain.operating_point());
    }
}
