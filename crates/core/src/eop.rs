//! Extended Operating Points: the V-F-R tuples UniServer reveals.

use serde::{Deserialize, Serialize};
use uniserver_units::Seconds;

use uniserver_platform::node::ServerNode;
use uniserver_stresslog::MarginVector;

/// Where the ecosystem is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EopPhase {
    /// Initial stress testing; the machine is not serving yet.
    PreDeployment,
    /// Serving at an EOP.
    Deployed,
    /// Temporarily offline for re-characterization.
    Recharacterizing,
}

/// Nominal DRAM refresh interval in seconds (the JEDEC 64 ms baseline)
/// — the conservative point every scaled-back refresh converges to.
const NOMINAL_REFRESH_SECS: f64 = 0.064;

/// One concrete V-F-R operating point for a node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Per-core undervolt offsets in millivolts below nominal.
    pub core_offsets_mv: Vec<f64>,
    /// Refresh interval for the relaxed memory domain.
    pub relaxed_refresh: Seconds,
    /// Free-text provenance (which margins/advice produced it).
    pub provenance: String,
}

impl OperatingPoint {
    /// The conservative point: no undervolt, nominal refresh.
    #[must_use]
    pub fn nominal(cores: usize) -> Self {
        OperatingPoint {
            core_offsets_mv: vec![0.0; cores],
            relaxed_refresh: Seconds::new(NOMINAL_REFRESH_SECS),
            provenance: "nominal (conservative guard-bands)".into(),
        }
    }

    /// Derives an EOP from a StressLog margin vector, optionally scaled
    /// back towards nominal (`aggressiveness` 1.0 = the full measured
    /// margin, 0.0 = nominal).
    ///
    /// # Panics
    ///
    /// Panics if `aggressiveness` is outside `[0, 1]`.
    #[must_use]
    pub fn from_margins(margins: &MarginVector, aggressiveness: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&aggressiveness),
            "aggressiveness must be in [0, 1], got {aggressiveness}"
        );
        let refresh = NOMINAL_REFRESH_SECS
            + (margins.safe_refresh.as_secs() - NOMINAL_REFRESH_SECS).max(0.0) * aggressiveness;
        OperatingPoint {
            core_offsets_mv: margins
                .per_core_safe_offset_mv
                .iter()
                .map(|mv| mv * aggressiveness)
                .collect(),
            relaxed_refresh: Seconds::new(refresh),
            provenance: format!(
                "stresslog margins @ t={:.0}s, aggressiveness {:.2}",
                margins.produced_at.as_secs(),
                aggressiveness
            ),
        }
    }

    /// The weakest-core offset of the point.
    ///
    /// # Panics
    ///
    /// Panics if the point covers no cores.
    #[must_use]
    pub fn min_offset_mv(&self) -> f64 {
        assert!(!self.core_offsets_mv.is_empty(), "empty operating point");
        self.core_offsets_mv.iter().cloned().fold(f64::MAX, f64::min)
    }

    /// Programs the point into a node's MSRs: per-core undervolt offsets
    /// (clamped to the MSR limit) and the relaxed-domain refresh. This is
    /// the single write path for operating points — the per-node
    /// [`crate::ecosystem::Ecosystem`] and the cluster orchestrator's
    /// deploy-into-cluster plumbing both go through it.
    ///
    /// # Panics
    ///
    /// Panics if the point's core count does not match the node.
    pub fn apply_to(&self, node: &mut ServerNode) {
        assert_eq!(
            self.core_offsets_mv.len(),
            node.core_count(),
            "operating point does not match node topology"
        );
        for (core, &mv) in self.core_offsets_mv.iter().enumerate() {
            node.msr
                .set_voltage_offset(core, mv.min(250.0))
                .expect("optimizer offsets are within MSR limits");
        }
        node.msr
            .set_refresh_interval(uniserver_platform::msr::DomainId(1), self.relaxed_refresh)
            .expect("safe refresh within controller range");
    }

    /// The point scaled back towards nominal by `fraction` (0.0 = this
    /// point, 1.0 = nominal): the post-crash backoff a cluster manager
    /// applies when a node's extended margins proved too aggressive.
    ///
    /// Both axes clamp at nominal, so repeated backoffs converge to the
    /// conservative point and can never overshoot past it — a negative
    /// offset would *overdrive* the core above nominal voltage, turning
    /// a safety retreat into extra stress.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn backed_off(&self, fraction: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction), "backoff fraction must be in [0, 1]");
        let keep = 1.0 - fraction;
        OperatingPoint {
            core_offsets_mv: self.core_offsets_mv.iter().map(|mv| (mv * keep).max(0.0)).collect(),
            relaxed_refresh: Seconds::new(
                NOMINAL_REFRESH_SECS
                    + (self.relaxed_refresh.as_secs() - NOMINAL_REFRESH_SECS).max(0.0) * keep,
            ),
            provenance: format!("{} (backed off {:.0} %)", self.provenance, fraction * 100.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uniserver_stress::campaign::Table2Summary;

    fn margins() -> MarginVector {
        MarginVector {
            produced_at: Seconds::new(100.0),
            part_name: "test part".into(),
            per_core_safe_offset_mv: vec![80.0, 95.0, 70.0],
            safe_refresh: Seconds::new(1.2),
            summary: Table2Summary {
                part_name: "test part".into(),
                crash_min_pct: 10.0,
                crash_max_pct: 11.0,
                core_var_min_pct: 0.5,
                core_var_max_pct: 2.0,
                cache_ce_min: None,
                cache_ce_max: None,
                mean_ce_window_mv: None,
            },
        }
    }

    #[test]
    fn nominal_point_is_conservative() {
        let p = OperatingPoint::nominal(4);
        assert_eq!(p.core_offsets_mv, vec![0.0; 4]);
        assert_eq!(p.relaxed_refresh, Seconds::from_millis(64.0));
    }

    #[test]
    fn full_aggressiveness_uses_the_margins() {
        let p = OperatingPoint::from_margins(&margins(), 1.0);
        assert_eq!(p.core_offsets_mv, vec![80.0, 95.0, 70.0]);
        assert_eq!(p.relaxed_refresh, Seconds::new(1.2));
        assert_eq!(p.min_offset_mv(), 70.0);
    }

    #[test]
    fn zero_aggressiveness_is_nominal() {
        let p = OperatingPoint::from_margins(&margins(), 0.0);
        assert!(p.core_offsets_mv.iter().all(|&mv| mv == 0.0));
        assert!((p.relaxed_refresh.as_millis() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn half_aggressiveness_interpolates() {
        let p = OperatingPoint::from_margins(&margins(), 0.5);
        assert_eq!(p.core_offsets_mv[0], 40.0);
        assert!((p.relaxed_refresh.as_secs() - (0.064 + 0.568)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "aggressiveness")]
    fn invalid_aggressiveness_panics() {
        let _ = OperatingPoint::from_margins(&margins(), 1.5);
    }

    #[test]
    fn backed_off_converges_to_nominal_and_never_past_it() {
        let mut p = OperatingPoint::from_margins(&margins(), 1.0);
        // A pathological point with an offset already past nominal (e.g.
        // hand-tuned overdrive) must clamp, not amplify.
        p.core_offsets_mv[2] = -5.0;
        for _ in 0..20 {
            p = p.backed_off(0.25);
            assert!(
                p.core_offsets_mv.iter().all(|&mv| mv >= 0.0),
                "backoff must never overdrive past nominal: {:?}",
                p.core_offsets_mv
            );
            assert!(p.relaxed_refresh.as_secs() >= NOMINAL_REFRESH_SECS - 1e-12);
        }
        // Twenty 25 % retreats of an 80 mV margin are sub-milli-volt.
        assert!(p.core_offsets_mv[0] < 0.5);
        assert!((p.backed_off(1.0).relaxed_refresh.as_secs() - NOMINAL_REFRESH_SECS).abs() < 1e-12);
        assert!(p.backed_off(1.0).core_offsets_mv.iter().all(|&mv| mv == 0.0));
    }
}
