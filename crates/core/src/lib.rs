//! The UniServer ecosystem: the paper's cross-layer stack, assembled
//! (Figure 2).
//!
//! A deployed [`Ecosystem`] owns one node wrapped in the error-resilient
//! hypervisor, the HealthLog/StressLog daemons, and the trained
//! Predictor, and walks the paper's lifecycle:
//!
//! 1. **Pre-deployment** — stress-test the hardware, reveal per-core /
//!    per-domain Extended Operating Points (EOP), train the predictor;
//! 2. **Deployment** — operate at the EOP chosen for the SLA's risk
//!    budget, with the hypervisor masking/containing what slips through;
//! 3. **Monitored operation** — HealthLog watches error rates; threshold
//!    trips or the periodic schedule trigger **re-characterization**,
//!    closing the loop.
//!
//! # Examples
//!
//! ```no_run
//! use uniserver_core::ecosystem::{DeploymentConfig, Ecosystem};
//! use uniserver_units::Seconds;
//!
//! let mut eco = Ecosystem::deploy(&DeploymentConfig::quick(), 42);
//! for _ in 0..60 {
//!     eco.run(Seconds::new(1.0));
//! }
//! let report = eco.savings_report();
//! assert!(report.energy_saving_fraction > 0.0);
//! ```

pub mod ecosystem;
pub mod eop;
pub mod optimizer;
pub mod security;
pub mod training;

pub use ecosystem::{provision_node, DeploymentConfig, Ecosystem, SavingsReport};
pub use eop::{EopPhase, OperatingPoint};
pub use optimizer::EopOptimizer;
pub use training::{AdvisorCache, TrainedAdvisor};
