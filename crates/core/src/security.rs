//! Security threat analysis for EOP operation (§2.viii).
//!
//! "The exposure of new EOP, which if not used carefully may result in
//! system failure, entail new security risks. UniServer plans to
//! identify potential security threats (i.e., side channel attacks) that
//! might be caused to micro-servers and develop low cost
//! countermeasures." The paper does not evaluate this; the reproduction
//! ships the threat model as structured data plus the countermeasure
//! mapping, so the ecosystem can report its security posture.

use serde::{Deserialize, Serialize};

/// Threats introduced or amplified by operating at EOP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreatVector {
    /// A co-located tenant runs a voltage-noise virus to push a reduced-
    /// margin core over its crash point (denial of service).
    DroopInjectionDos,
    /// Error-rate side channel: observing CE rates leaks co-tenant
    /// activity patterns.
    ErrorRateSideChannel,
    /// Rowhammer-style disturbance is easier at relaxed refresh.
    RefreshDisturbance,
    /// A compromised daemon feeds false margins to the governor.
    MarginSpoofing,
}

impl ThreatVector {
    /// All modeled threats.
    pub const ALL: [ThreatVector; 4] = [
        ThreatVector::DroopInjectionDos,
        ThreatVector::ErrorRateSideChannel,
        ThreatVector::RefreshDisturbance,
        ThreatVector::MarginSpoofing,
    ];

    /// Qualitative likelihood at EOP, in `[0, 1]`.
    #[must_use]
    pub fn likelihood(self) -> f64 {
        match self {
            ThreatVector::DroopInjectionDos => 0.5,
            ThreatVector::ErrorRateSideChannel => 0.3,
            ThreatVector::RefreshDisturbance => 0.4,
            ThreatVector::MarginSpoofing => 0.15,
        }
    }

    /// Qualitative impact, in `[0, 1]`.
    #[must_use]
    pub fn impact(self) -> f64 {
        match self {
            ThreatVector::DroopInjectionDos => 0.6,
            ThreatVector::ErrorRateSideChannel => 0.4,
            ThreatVector::RefreshDisturbance => 0.8,
            ThreatVector::MarginSpoofing => 0.9,
        }
    }

    /// Risk = likelihood × impact.
    #[must_use]
    pub fn risk(self) -> f64 {
        self.likelihood() * self.impact()
    }

    /// The low-cost countermeasure the stack already contains (or that
    /// the project proposes).
    #[must_use]
    pub fn countermeasure(self) -> &'static str {
        match self {
            ThreatVector::DroopInjectionDos => {
                "predictor stress-awareness: suspicious high-droop tenants pull the \
                 governor back towards nominal (ModeAdvisor stress feature)"
            }
            ThreatVector::ErrorRateSideChannel => {
                "HealthLog rate-limits and coarsens CE telemetry exposed to guests"
            }
            ThreatVector::RefreshDisturbance => {
                "reliable-domain placement for integrity-critical pages; ECC scrubbing; \
                 per-domain refresh floors"
            }
            ThreatVector::MarginSpoofing => {
                "margin vectors are signed by the StressLog and sanity-checked against \
                 the MSR hardware limits before the governor applies them"
            }
        }
    }
}

/// The posture report: residual risks sorted high to low.
#[must_use]
pub fn risk_register() -> Vec<(ThreatVector, f64)> {
    let mut v: Vec<(ThreatVector, f64)> =
        ThreatVector::ALL.iter().map(|&t| (t, t.risk())).collect();
    v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("risks are finite"));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_sorted_and_complete() {
        let reg = risk_register();
        assert_eq!(reg.len(), ThreatVector::ALL.len());
        for w in reg.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn every_threat_has_a_countermeasure() {
        for t in ThreatVector::ALL {
            assert!(!t.countermeasure().is_empty());
            assert!((0.0..=1.0).contains(&t.risk()));
        }
    }

    #[test]
    fn refresh_disturbance_outranks_side_channels() {
        assert!(ThreatVector::RefreshDisturbance.risk() > ThreatVector::ErrorRateSideChannel.risk());
    }
}
