//! The opt-in structured event trace: one NDJSON line per sim event.
//!
//! Every line is a single JSON object with `tick` and `at` (sim-time
//! seconds) first, then `ev` naming the event, then the event's own
//! fields in a fixed order — so two runs of the same scenario produce
//! byte-identical traces whatever the worker count, and a chaos
//! campaign's audit trail diffs cleanly across machines.

use std::fs::File;
use std::io::{self, BufWriter, Write};

use crate::json::JsonWriter;

/// One sim-domain event. All payload fields are deterministic: ids,
/// tick counts and class labels — never wall-clock.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent<'a> {
    /// A first-time VM arrival was offered to the scheduler.
    Arrival {
        /// SLA class label (`"gold"` / `"silver"` / `"bronze"`).
        class: &'static str,
    },
    /// An offer (first-time or re-offer) was placed.
    Place {
        /// SLA class label.
        class: &'static str,
        /// Hosting node index.
        node: u64,
        /// Stable placement id.
        placement: u64,
        /// Ticks the arrival waited in the retry queue (0 first-try).
        wait_ticks: u64,
    },
    /// An offer found no feasible node.
    Reject {
        /// SLA class label.
        class: &'static str,
    },
    /// A queued rejection was re-offered.
    Reoffer {
        /// SLA class label.
        class: &'static str,
        /// Re-offer attempts remaining after this one.
        retries_left: u64,
    },
    /// A placement was shed (stopped early) to free degraded capacity.
    Shed {
        /// SLA class label of the victim.
        class: &'static str,
        /// Node the victim ran on.
        node: u64,
        /// The victim's placement id.
        placement: u64,
    },
    /// The platform surfaced a crash event on a node.
    Crash {
        /// Crashed node index.
        node: u64,
        /// Workload the crashing core ran (`"chaos"` for injected
        /// events).
        workload: &'a str,
    },
    /// A crashed node was taken offline for repair.
    Offline {
        /// Node index.
        node: u64,
        /// Seeded repair window, in ticks.
        mttr_ticks: u64,
    },
    /// A repaired node rejoined the fleet.
    Rejoin {
        /// Node index.
        node: u64,
    },
    /// A placement moved nodes (crash-driven recovery).
    Migration {
        /// SLA class label.
        class: &'static str,
        /// The placement id (stable across the move).
        placement: u64,
        /// Source node index.
        from: u64,
        /// Destination node index.
        to: u64,
    },
    /// A node silently went gray: capacity capped, CE rate elevated,
    /// still serving.
    GrayOnset {
        /// Node index.
        node: u64,
        /// Seeded fault duration, in ticks.
        duration_ticks: u64,
    },
    /// The health watchdog quarantined a degraded node.
    Quarantine {
        /// Node index.
        node: u64,
    },
    /// A quarantined node survived probation and was readmitted.
    Readmit {
        /// Node index.
        node: u64,
    },
}

impl TraceEvent<'_> {
    /// The `ev` field value naming this event.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Arrival { .. } => "arrival",
            TraceEvent::Place { .. } => "place",
            TraceEvent::Reject { .. } => "reject",
            TraceEvent::Reoffer { .. } => "reoffer",
            TraceEvent::Shed { .. } => "shed",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::Offline { .. } => "offline",
            TraceEvent::Rejoin { .. } => "rejoin",
            TraceEvent::Migration { .. } => "migration",
            TraceEvent::GrayOnset { .. } => "gray_onset",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::Readmit { .. } => "readmit",
        }
    }

    fn render(&self, w: &mut JsonWriter) {
        w.field_str("ev", self.name());
        match self {
            TraceEvent::Arrival { class } | TraceEvent::Reject { class } => {
                w.field_str("class", class);
            }
            TraceEvent::Place { class, node, placement, wait_ticks } => {
                w.field_str("class", class);
                w.field_u64("node", *node);
                w.field_u64("placement", *placement);
                w.field_u64("wait_ticks", *wait_ticks);
            }
            TraceEvent::Reoffer { class, retries_left } => {
                w.field_str("class", class);
                w.field_u64("retries_left", *retries_left);
            }
            TraceEvent::Shed { class, node, placement } => {
                w.field_str("class", class);
                w.field_u64("node", *node);
                w.field_u64("placement", *placement);
            }
            TraceEvent::Crash { node, workload } => {
                w.field_u64("node", *node);
                w.field_str("workload", workload);
            }
            TraceEvent::Offline { node, mttr_ticks } => {
                w.field_u64("node", *node);
                w.field_u64("mttr_ticks", *mttr_ticks);
            }
            TraceEvent::Rejoin { node }
            | TraceEvent::Quarantine { node }
            | TraceEvent::Readmit { node } => {
                w.field_u64("node", *node);
            }
            TraceEvent::GrayOnset { node, duration_ticks } => {
                w.field_u64("node", *node);
                w.field_u64("duration_ticks", *duration_ticks);
            }
            TraceEvent::Migration { class, placement, from, to } => {
                w.field_str("class", class);
                w.field_u64("placement", *placement);
                w.field_u64("from", *from);
                w.field_u64("to", *to);
            }
        }
    }
}

#[derive(Debug)]
enum Out {
    File(BufWriter<File>),
    Buffer(Vec<u8>),
}

/// Sink for the NDJSON event stream. IO errors are stored on first
/// occurrence and surfaced by [`TraceSink::finish`], so the hot loop
/// never branches on a `Result`.
#[derive(Debug)]
pub struct TraceSink {
    out: Out,
    lines: u64,
    err: Option<io::Error>,
}

impl TraceSink {
    /// Creates (truncating) the trace file at `path` — the upfront
    /// writability check the CLI contract wants.
    ///
    /// # Errors
    ///
    /// Returns the underlying error when the file cannot be created.
    pub fn create(path: &str) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(TraceSink { out: Out::File(BufWriter::new(file)), lines: 0, err: None })
    }

    /// An in-memory sink, for tests.
    #[must_use]
    pub fn buffered() -> Self {
        TraceSink { out: Out::Buffer(Vec::new()), lines: 0, err: None }
    }

    /// Emits one event line stamped `tick` / `at` (sim seconds).
    pub fn emit(&mut self, tick: u64, at_secs: f64, event: &TraceEvent<'_>) {
        let mut w = JsonWriter::object();
        w.field_u64("tick", tick);
        w.field_f64("at", at_secs);
        event.render(&mut w);
        let line = w.finish();
        let result = match &mut self.out {
            Out::File(f) => writeln!(f, "{line}"),
            Out::Buffer(b) => writeln!(b, "{line}"),
        };
        match result {
            Ok(()) => self.lines += 1,
            Err(e) => {
                if self.err.is_none() {
                    self.err = Some(e);
                }
            }
        }
    }

    /// Lines successfully written so far.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and closes the sink, surfacing the first write error if
    /// any occurred. Returns the line count on success.
    ///
    /// # Errors
    ///
    /// Returns the first stored write error, or the flush error.
    pub fn finish(self) -> io::Result<u64> {
        if let Some(err) = self.err {
            return Err(err);
        }
        if let Out::File(mut f) = self.out {
            f.flush()?;
        }
        Ok(self.lines)
    }

    /// The buffered NDJSON text (tests only).
    ///
    /// # Panics
    ///
    /// Panics when the sink is file-backed or buffered invalid UTF-8.
    #[must_use]
    pub fn into_string(self) -> String {
        match self.out {
            Out::Buffer(b) => String::from_utf8(b).expect("trace lines are UTF-8"),
            Out::File(_) => panic!("into_string is for buffered sinks"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_have_stable_field_order() {
        let mut sink = TraceSink::buffered();
        sink.emit(3, 15.0, &TraceEvent::Arrival { class: "gold" });
        sink.emit(
            3,
            15.0,
            &TraceEvent::Place { class: "gold", node: 7, placement: 41, wait_ticks: 2 },
        );
        sink.emit(9, 45.5, &TraceEvent::Crash { node: 7, workload: "chaos" });
        assert_eq!(sink.lines(), 3);
        assert_eq!(
            sink.into_string(),
            "{\"tick\":3,\"at\":15.0,\"ev\":\"arrival\",\"class\":\"gold\"}\n\
             {\"tick\":3,\"at\":15.0,\"ev\":\"place\",\"class\":\"gold\",\"node\":7,\
             \"placement\":41,\"wait_ticks\":2}\n\
             {\"tick\":9,\"at\":45.5,\"ev\":\"crash\",\"node\":7,\"workload\":\"chaos\"}\n"
        );
    }

    #[test]
    fn every_event_renders_its_name() {
        let events = [
            TraceEvent::Arrival { class: "gold" },
            TraceEvent::Place { class: "gold", node: 0, placement: 0, wait_ticks: 0 },
            TraceEvent::Reject { class: "silver" },
            TraceEvent::Reoffer { class: "silver", retries_left: 1 },
            TraceEvent::Shed { class: "bronze", node: 1, placement: 2 },
            TraceEvent::Crash { node: 3, workload: "ldbc" },
            TraceEvent::Offline { node: 3, mttr_ticks: 12 },
            TraceEvent::Rejoin { node: 3 },
            TraceEvent::Migration { class: "gold", placement: 5, from: 3, to: 4 },
            TraceEvent::GrayOnset { node: 6, duration_ticks: 40 },
            TraceEvent::Quarantine { node: 6 },
            TraceEvent::Readmit { node: 6 },
        ];
        let mut sink = TraceSink::buffered();
        for ev in &events {
            sink.emit(0, 0.0, ev);
        }
        let text = sink.into_string();
        for ev in &events {
            assert!(
                text.contains(&format!("\"ev\":\"{}\"", ev.name())),
                "missing {} in {text}",
                ev.name()
            );
        }
    }

    #[test]
    fn unwritable_path_errors_upfront() {
        assert!(TraceSink::create("/nonexistent_dir_hopefully/x.ndjson").is_err());
    }
}
