//! The hierarchical stage profiler: wall-clock scoped spans in the
//! style of `tracing::instrument`, attributing serve time to the
//! phases of the orchestrator loop.
//!
//! Timings are **machine-local wall-clock** and deliberately live
//! outside every deterministic artefact — they land next to `cores` in
//! the non-deterministic timing block of `BENCH_*.json`. The
//! accumulators are relaxed atomics so the sharded per-node phase can
//! add its nanoseconds from worker threads without ordering traffic;
//! addition commutes, so the totals are scheduling-independent (their
//! *values* are wall-clock and vary run to run regardless).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One phase of an orchestrated run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Parallel EOP deploy of the rack (before the serve loop).
    Deploy,
    /// Repair-clock ticking and rejoin re-characterization.
    Rejoin,
    /// Draining due departures/settlements from the event queue.
    Events,
    /// Re-offering queued rejections (the retry queue).
    RetryQueue,
    /// First-time arrival admission (placement decisions).
    Placement,
    /// The whole sharded node-advance phase (wall-clock of the tick
    /// fan-out; parent of `NodeTick` and `Predictor`).
    Tick,
    /// Per-node hypervisor ticking, summed across workers (child of
    /// `Tick`).
    NodeTick,
    /// Per-node predictor log scans, summed across workers (child of
    /// `Tick`).
    Predictor,
    /// Failure-driven recovery (crash migration/eviction).
    Recovery,
}

/// All stages, in display order.
pub const STAGES: [Stage; 9] = [
    Stage::Deploy,
    Stage::Rejoin,
    Stage::Events,
    Stage::RetryQueue,
    Stage::Placement,
    Stage::Tick,
    Stage::NodeTick,
    Stage::Predictor,
    Stage::Recovery,
];

impl Stage {
    fn idx(self) -> usize {
        match self {
            Stage::Deploy => 0,
            Stage::Rejoin => 1,
            Stage::Events => 2,
            Stage::RetryQueue => 3,
            Stage::Placement => 4,
            Stage::Tick => 5,
            Stage::NodeTick => 6,
            Stage::Predictor => 7,
            Stage::Recovery => 8,
        }
    }

    /// Human label, e.g. for rendered breakdowns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Deploy => "deploy",
            Stage::Rejoin => "rejoin",
            Stage::Events => "events",
            Stage::RetryQueue => "retry_queue",
            Stage::Placement => "placement",
            Stage::Tick => "tick",
            Stage::NodeTick => "node_tick",
            Stage::Predictor => "predictor",
            Stage::Recovery => "recovery",
        }
    }

    /// The enclosing stage, for the two spans nested inside the tick
    /// fan-out.
    #[must_use]
    pub fn parent(self) -> Option<Stage> {
        match self {
            Stage::NodeTick | Stage::Predictor => Some(Stage::Tick),
            _ => None,
        }
    }
}

/// Wall-clock accumulator per stage. Shared across threads via `Arc`;
/// spans add their elapsed nanoseconds on drop.
#[derive(Debug, Default)]
pub struct StageProfiler {
    nanos: [AtomicU64; 9],
}

impl StageProfiler {
    /// A zeroed profiler.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a scoped span: the elapsed wall-clock between this call
    /// and the guard's drop is added to `stage`.
    #[must_use]
    pub fn scoped(&self, stage: Stage) -> StageSpan<'_> {
        StageSpan { profiler: self, stage, start: Instant::now() }
    }

    /// Adds pre-measured nanoseconds to a stage (the sharded paths
    /// accumulate locally and flush once per chunk).
    pub fn add_nanos(&self, stage: Stage, nanos: u64) {
        self.nanos[stage.idx()].fetch_add(nanos, Ordering::Relaxed);
    }

    /// Nanoseconds accumulated on a stage.
    #[must_use]
    pub fn nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.idx()].load(Ordering::Relaxed)
    }

    /// Milliseconds accumulated on a stage.
    #[must_use]
    pub fn ms(&self, stage: Stage) -> f64 {
        self.nanos(stage) as f64 / 1e6
    }
}

/// RAII span guard returned by [`StageProfiler::scoped`].
#[derive(Debug)]
pub struct StageSpan<'a> {
    profiler: &'a StageProfiler,
    stage: Stage,
    start: Instant,
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        #[allow(clippy::cast_possible_truncation)]
        let nanos = self.start.elapsed().as_nanos() as u64;
        self.profiler.add_nanos(self.stage, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_and_add_nanos_composes() {
        let p = StageProfiler::new();
        {
            let _span = p.scoped(Stage::Placement);
            std::hint::black_box(0u64);
        }
        p.add_nanos(Stage::Placement, 1_000_000);
        assert!(p.nanos(Stage::Placement) >= 1_000_000);
        assert!(p.ms(Stage::Placement) >= 1.0);
        assert_eq!(p.nanos(Stage::Recovery), 0);
    }

    #[test]
    fn hierarchy_names_the_tick_children() {
        assert_eq!(Stage::NodeTick.parent(), Some(Stage::Tick));
        assert_eq!(Stage::Predictor.parent(), Some(Stage::Tick));
        assert_eq!(Stage::Placement.parent(), None);
        for stage in STAGES {
            assert!(!stage.label().is_empty());
        }
    }

    #[test]
    fn profiler_is_shareable_across_threads() {
        let p = std::sync::Arc::new(StageProfiler::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = std::sync::Arc::clone(&p);
                std::thread::spawn(move || p.add_nanos(Stage::NodeTick, 10))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.nanos(Stage::NodeTick), 40);
    }
}
