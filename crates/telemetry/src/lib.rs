//! Deterministic telemetry core for the UniServer workspace.
//!
//! Three instruments, with a hard line between the domains they live
//! in:
//!
//! * [`MetricsRegistry`] — **sim-domain**, deterministic. Counters,
//!   min/max gauges and fixed-log2-bucket histograms over integer
//!   tick-domain values, accumulated per shard and merged in
//!   node-index order. Byte-identical across worker counts and event
//!   permutations within a tick.
//! * [`TraceSink`] — **sim-domain**, deterministic. An opt-in NDJSON
//!   stream of sim-time-stamped events with stable field ordering: the
//!   replayable audit trail of a run.
//! * [`StageProfiler`] — **machine-local wall-clock**. Scoped spans
//!   attributing serve time to the orchestrator loop's phases; lands
//!   in the non-deterministic timing block of `BENCH_*.json`, never in
//!   a deterministic artefact.
//!
//! [`Telemetry`] bundles the two deterministic instruments behind
//! no-op-when-disabled calls, so the serving hot path stays free of
//! `Option` plumbing and the default build pays one branch per site.

pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use metrics::{Gauge, Histogram, MetricsRegistry};
pub use profile::{Stage, StageProfiler, StageSpan, STAGES};
pub use trace::{TraceEvent, TraceSink};

/// The per-run telemetry bundle threaded through the serving loop.
///
/// Both instruments are optional and independent; with both `None`
/// every call is a cheap early-out, which is how the default
/// `fleet_sim` run keeps its stdout (and its hot path) untouched.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// The deterministic metrics registry, when enabled.
    pub metrics: Option<MetricsRegistry>,
    /// The event trace sink, when enabled.
    pub trace: Option<TraceSink>,
    tick: u64,
    now_secs: f64,
    dt_secs: f64,
}

impl Telemetry {
    /// A bundle with both instruments off — the default path.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether either instrument is live.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.metrics.is_some() || self.trace.is_some()
    }

    /// Announces the run's tick length, for duration→tick conversion.
    pub fn begin_run(&mut self, dt_secs: f64) {
        self.dt_secs = dt_secs;
    }

    /// Stamps the current tick; subsequent traces carry it.
    pub fn begin_tick(&mut self, tick: u64, now_secs: f64) {
        self.tick = tick;
        self.now_secs = now_secs;
    }

    /// The current tick index.
    #[must_use]
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// A sim duration in whole ticks (rounded up; minimum 1 for any
    /// positive duration), for lifetime-style histograms.
    #[must_use]
    pub fn lifetime_ticks(&self, secs: f64) -> u64 {
        if self.dt_secs <= 0.0 || secs <= 0.0 {
            return 0;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let ticks = (secs / self.dt_secs).ceil() as u64;
        ticks.max(1)
    }

    /// Increments a counter (no-op when metrics are off).
    pub fn inc(&mut self, name: &'static str) {
        if let Some(m) = &mut self.metrics {
            m.inc(name);
        }
    }

    /// Adds to a counter (no-op when metrics are off).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        if let Some(m) = &mut self.metrics {
            m.add(name, delta);
        }
    }

    /// Records a histogram value (no-op when metrics are off).
    pub fn record(&mut self, name: &'static str, value: u64) {
        if let Some(m) = &mut self.metrics {
            m.record(name, value);
        }
    }

    /// Folds a gauge sample (no-op when metrics are off).
    pub fn observe(&mut self, name: &'static str, value: u64) {
        if let Some(m) = &mut self.metrics {
            m.observe(name, value);
        }
    }

    /// Emits a trace event at the current tick stamp (no-op when the
    /// trace is off).
    pub fn emit(&mut self, event: &TraceEvent<'_>) {
        if let Some(sink) = &mut self.trace {
            sink.emit(self.tick, self.now_secs, event);
        }
    }

    /// Emits a trace event at an explicit sim time within the current
    /// tick (crash events carry their own sub-tick timestamps).
    pub fn emit_at(&mut self, at_secs: f64, event: &TraceEvent<'_>) {
        if let Some(sink) = &mut self.trace {
            sink.emit(self.tick, at_secs, event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_noops_everywhere() {
        let mut tel = Telemetry::disabled();
        assert!(!tel.enabled());
        tel.begin_run(5.0);
        tel.begin_tick(3, 15.0);
        tel.inc("x");
        tel.add("x", 2);
        tel.record("h", 9);
        tel.observe("g", 1);
        tel.emit(&TraceEvent::Arrival { class: "gold" });
        assert!(tel.metrics.is_none());
        assert!(tel.trace.is_none());
    }

    #[test]
    fn enabled_bundle_stamps_ticks_and_records() {
        let mut tel =
            Telemetry { metrics: Some(MetricsRegistry::new()), trace: Some(TraceSink::buffered()), ..Telemetry::disabled() };
        assert!(tel.enabled());
        tel.begin_run(5.0);
        tel.begin_tick(2, 10.0);
        tel.inc("arrivals");
        tel.record("wait", 0);
        tel.emit(&TraceEvent::Arrival { class: "gold" });
        tel.emit_at(12.5, &TraceEvent::Crash { node: 1, workload: "ldbc" });
        let m = tel.metrics.take().unwrap();
        assert_eq!(m.counter("arrivals"), 1);
        let text = tel.trace.take().unwrap().into_string();
        assert!(text.starts_with("{\"tick\":2,\"at\":10.0,\"ev\":\"arrival\""));
        assert!(text.contains("{\"tick\":2,\"at\":12.5,\"ev\":\"crash\""));
    }

    #[test]
    fn lifetime_ticks_rounds_up_with_a_floor_of_one() {
        let mut tel = Telemetry::disabled();
        tel.begin_run(5.0);
        assert_eq!(tel.lifetime_ticks(0.0), 0);
        assert_eq!(tel.lifetime_ticks(0.1), 1);
        assert_eq!(tel.lifetime_ticks(5.0), 1);
        assert_eq!(tel.lifetime_ticks(5.1), 2);
        assert_eq!(tel.lifetime_ticks(60.0), 12);
    }
}
