//! The deterministic tick-domain metrics registry.
//!
//! Everything in here is **sim-domain and integer-valued**: counters
//! add, gauges fold min/max, and histograms bucket by the position of
//! the value's highest set bit. All three operations are commutative
//! and associative over merges, so per-shard registries merged in
//! node-index order render byte-identically whatever the worker count
//! — and, stronger, whatever the *order* events were recorded in
//! within one tick (the proptest in `tests/telemetry_registry.rs`
//! locks exactly that permutation invariance).
//!
//! Keys are `&'static str` and stored in `BTreeMap`s, so rendering
//! iterates in lexicographic key order with no hashing nondeterminism.

use std::collections::BTreeMap;

use crate::json::JsonWriter;

/// A min/max fold over observed values.
///
/// A classic "last write wins" gauge would leak recording order across
/// shard boundaries; folding min/max (plus a sample count) keeps the
/// merge commutative, which is what the determinism contract needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    /// Samples observed.
    pub count: u64,
    /// Smallest observed value (0 when `count == 0`).
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge { count: 0, min: u64::MAX, max: 0 }
    }
}

impl Gauge {
    fn observe(&mut self, value: u64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn merge(&mut self, other: &Gauge) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn render(&self, w: &mut JsonWriter) {
        w.field_u64("count", self.count);
        w.field_u64("min", if self.count == 0 { 0 } else { self.min });
        w.field_u64("max", self.max);
    }
}

/// Number of fixed log2 buckets: bucket 0 holds exactly-zero values,
/// bucket `i >= 1` holds values in `[2^(i-1), 2^i)`, up to bucket 64
/// for the top half of the `u64` range.
pub const BUCKETS: usize = 65;

/// A fixed-log2-bucket histogram over `u64` values.
///
/// Integer-only on purpose: `count`, `sum`, `min`, `max` and every
/// bucket are exact under any merge order, so histograms accumulated
/// per shard and merged in node-index order are byte-identical to a
/// single sequential accumulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when `count == 0`).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Log2 bucket occupancy; see [`Histogram::bucket_index`].
    pub buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, min: u64::MAX, max: 0, buckets: [0; BUCKETS] }
    }
}

impl Histogram {
    /// The bucket a value lands in: 0 for zero, otherwise the position
    /// of the highest set bit plus one (`1 → 1`, `2..=3 → 2`,
    /// `4..=7 → 3`, …).
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_index(value)] += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    fn render(&self, w: &mut JsonWriter) {
        w.field_u64("count", self.count);
        w.field_u64("sum", self.sum);
        w.field_u64("min", if self.count == 0 { 0 } else { self.min });
        w.field_u64("max", self.max);
        // Trailing zero buckets are trimmed so quiet histograms stay
        // short; the bucket *index* is implicit in the position.
        let occupied = self.buckets.iter().rposition(|&b| b != 0).map_or(0, |i| i + 1);
        w.field_array("buckets", self.buckets[..occupied].iter(), |b, out| {
            out.push_str(&b.to_string());
        });
    }
}

/// The registry: named counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds to a counter (saturating, like the histogram sum — a
    /// counter that pegs at `u64::MAX` still merges deterministically).
    pub fn add(&mut self, name: &'static str, delta: u64) {
        let c = self.counters.entry(name).or_insert(0);
        *c = c.saturating_add(delta);
    }

    /// Records one value into a histogram.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Folds one sample into a min/max gauge.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.gauges.entry(name).or_default().observe(value);
    }

    /// Merges another registry into this one. Merging is commutative
    /// and associative, so any shard partition reduces to the same
    /// registry.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            let c = self.counters.entry(name).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name).or_default().merge(g);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// A counter's value (0 when never touched).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A histogram, if any value was recorded under `name`.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Renders the registry as one stable-key-order JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...}}` with each
    /// section's keys in lexicographic order. Identical registries
    /// render to identical bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::object();
        w.field_object("counters", |o| {
            for (name, v) in &self.counters {
                o.field_u64(name, *v);
            }
        });
        w.field_object("gauges", |o| {
            for (name, g) in &self.gauges {
                o.field_object(name, |gw| g.render(gw));
            }
        });
        w.field_object("histograms", |o| {
            for (name, h) in &self.histograms {
                o.field_object(name, |hw| h.render(hw));
            }
        });
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_scheme_is_log2_with_a_zero_bucket() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(7), 3);
        assert_eq!(Histogram::bucket_index(8), 4);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn merge_equals_sequential_accumulation() {
        let mut seq = MetricsRegistry::new();
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        for (i, v) in [0u64, 1, 3, 8, 8, 200].iter().enumerate() {
            seq.record("h", *v);
            seq.inc("n");
            seq.observe("g", *v);
            let shard = if i % 2 == 0 { &mut a } else { &mut b };
            shard.record("h", *v);
            shard.inc("n");
            shard.observe("g", *v);
        }
        let mut merged = MetricsRegistry::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged, seq);
        assert_eq!(merged.to_json(), seq.to_json());
        // Merge order must not matter either.
        let mut swapped = MetricsRegistry::new();
        swapped.merge(&b);
        swapped.merge(&a);
        assert_eq!(swapped.to_json(), seq.to_json());
    }

    #[test]
    fn json_shape_is_stable_and_trimmed() {
        let mut r = MetricsRegistry::new();
        r.add("arrivals", 3);
        r.record("wait", 0);
        r.record("wait", 5);
        r.observe("depth", 7);
        assert_eq!(
            r.to_json(),
            "{\"counters\":{\"arrivals\":3},\
             \"gauges\":{\"depth\":{\"count\":1,\"min\":7,\"max\":7}},\
             \"histograms\":{\"wait\":{\"count\":2,\"sum\":5,\"min\":0,\"max\":5,\
             \"buckets\":[1,0,0,1]}}}"
        );
        // An untouched registry renders empty sections, not junk.
        assert_eq!(
            MetricsRegistry::new().to_json(),
            "{\"counters\":{},\"gauges\":{},\"histograms\":{}}"
        );
    }

    #[test]
    fn empty_histogram_renders_zero_min() {
        let h = Histogram::default();
        let mut w = JsonWriter::object();
        w.field_object("h", |o| h.render(o));
        assert_eq!(w.finish(), "{\"h\":{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]}}");
    }
}
