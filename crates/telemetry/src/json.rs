//! Minimal JSON emission with a stable field order — enough for the
//! workspace's machine-readable summaries without a serde_json
//! dependency. Numbers render through Rust's shortest-roundtrip float
//! formatting, so identical values always produce identical bytes.

/// Builder for one JSON object.
#[derive(Debug, Default)]
pub struct JsonWriter {
    buf: String,
    any: bool,
}

impl JsonWriter {
    /// Starts an object.
    #[must_use]
    pub fn object() -> Self {
        JsonWriter { buf: String::from("{"), any: false }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        self.buf.push('"');
        self.buf.push_str(name);
        self.buf.push_str("\":");
    }

    /// Writes an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, value: u64) -> &mut Self {
        self.key(name);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Writes a float field. Non-finite values become `null` (JSON
    /// has no NaN/Inf).
    pub fn field_f64(&mut self, name: &str, value: f64) -> &mut Self {
        self.key(name);
        if value.is_finite() {
            let mut s = format!("{value}");
            if !s.contains(['.', 'e', 'E']) {
                s.push_str(".0");
            }
            self.buf.push_str(&s);
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Writes a string field (escaping quotes/backslashes/control
    /// characters).
    pub fn field_str(&mut self, name: &str, value: &str) -> &mut Self {
        self.key(name);
        self.buf.push('"');
        for c in value.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    self.buf.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
        self
    }

    /// Writes an array field; `render` appends each element's JSON to
    /// the output buffer.
    pub fn field_array<T, I, F>(&mut self, name: &str, items: I, mut render: F) -> &mut Self
    where
        I: Iterator<Item = T>,
        F: FnMut(T, &mut String),
    {
        self.key(name);
        self.buf.push('[');
        for (i, item) in items.enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            render(item, &mut self.buf);
        }
        self.buf.push(']');
        self
    }

    /// Writes a nested-object field, built by `build` on a fresh
    /// writer.
    pub fn field_object<F>(&mut self, name: &str, build: F) -> &mut Self
    where
        F: FnOnce(&mut JsonWriter),
    {
        self.key(name);
        let mut inner = JsonWriter::object();
        build(&mut inner);
        self.buf.push_str(&inner.finish());
        self
    }

    /// Closes the object and returns the JSON text.
    #[must_use]
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::JsonWriter;

    #[test]
    fn stable_field_order_and_escaping() {
        let mut w = JsonWriter::object();
        w.field_u64("a", 1);
        w.field_f64("b", 2.5);
        w.field_f64("c", 3.0);
        w.field_f64("nan", f64::NAN);
        w.field_str("s", "x\"y\\z\n");
        assert_eq!(
            w.finish(),
            "{\"a\":1,\"b\":2.5,\"c\":3.0,\"nan\":null,\"s\":\"x\\\"y\\\\z\\u000a\"}"
        );
    }

    #[test]
    fn arrays_render_in_order() {
        let mut w = JsonWriter::object();
        w.field_array("xs", [1u64, 2, 3].into_iter(), |x, out| out.push_str(&x.to_string()));
        assert_eq!(w.finish(), r#"{"xs":[1,2,3]}"#);
    }

    #[test]
    fn nested_objects_render_in_place() {
        let mut w = JsonWriter::object();
        w.field_u64("a", 1);
        w.field_object("inner", |o| {
            o.field_u64("x", 2);
            o.field_f64("y", 0.5);
        });
        w.field_u64("b", 3);
        assert_eq!(w.finish(), r#"{"a":1,"inner":{"x":2,"y":0.5},"b":3}"#);
    }
}
