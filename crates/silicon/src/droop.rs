//! Workload-induced voltage droop (Table 1's largest guard-band source).
//!
//! Supply droop has a static IR component proportional to switching
//! activity and a dynamic `L·di/dt` component that peaks when current
//! transients align with the power-delivery network's resonance (tens of
//! MHz). Stress viruses (paper §3.B) are programs evolved to maximize the
//! combination; normal workloads sit far below them, which is precisely
//! why the worst-case droop guard-band is pessimistic.

use serde::{Deserialize, Serialize};

/// First-order droop model mapping workload excitation to the fraction of
/// nominal voltage lost at the worst on-die point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DroopModel {
    /// Droop present even at idle (clock grid, background activity).
    pub idle_fraction: f64,
    /// IR-drop gain with switching activity (fraction at activity = 1).
    pub activity_gain: f64,
    /// `L·di/dt` gain with current-transient intensity.
    pub didt_gain: f64,
    /// Extra gain when transients align with the PDN resonance.
    pub resonance_gain: f64,
}

impl DroopModel {
    /// Calibrated so a perfect virus (all excitations at 1.0) produces a
    /// droop just under the ~20 % guard-band of Table 1, and typical SPEC
    /// workloads produce a few percent.
    #[must_use]
    pub fn typical_server_pdn() -> Self {
        DroopModel {
            idle_fraction: 0.010,
            activity_gain: 0.050,
            didt_gain: 0.060,
            resonance_gain: 0.070,
        }
    }

    /// Worst-case droop as a fraction of nominal voltage.
    ///
    /// All three excitation inputs are in `[0, 1]`:
    /// * `activity` — average switching activity,
    /// * `didt` — current-transient intensity,
    /// * `resonance` — how well the transients align with the PDN
    ///   resonance frequency.
    ///
    /// # Panics
    ///
    /// Panics if any excitation lies outside `[0, 1]`.
    #[must_use]
    pub fn droop_fraction(&self, activity: f64, didt: f64, resonance: f64) -> f64 {
        for (name, v) in [("activity", activity), ("didt", didt), ("resonance", resonance)] {
            assert!((0.0..=1.0).contains(&v), "{name} excitation must be in [0, 1], got {v}");
        }
        self.idle_fraction
            + self.activity_gain * activity
            + self.didt_gain * didt
            // Resonance multiplies the transient term: no transients, no
            // resonant amplification.
            + self.resonance_gain * didt * resonance
    }

    /// The droop of the theoretical worst virus (all excitations 1.0).
    #[must_use]
    pub fn virus_ceiling(&self) -> f64 {
        self.droop_fraction(1.0, 1.0, 1.0)
    }

    /// Normalizes a droop to a `[0, 1]` stress scalar relative to the
    /// virus ceiling. Used by the Vmin model to couple workload stress
    /// into crash points.
    #[must_use]
    pub fn stress_scalar(&self, droop: f64) -> f64 {
        let ceiling = self.virus_ceiling();
        ((droop - self.idle_fraction) / (ceiling - self.idle_fraction)).clamp(0.0, 1.0)
    }
}

impl Default for DroopModel {
    fn default() -> Self {
        DroopModel::typical_server_pdn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virus_ceiling_matches_table1_magnitude() {
        let m = DroopModel::typical_server_pdn();
        let ceiling = m.virus_ceiling();
        // Table 1 lists ~20 % guard-band against droops; the virus should
        // land close to (but within) it.
        assert!(ceiling > 0.15 && ceiling <= 0.20, "ceiling {ceiling}");
    }

    #[test]
    fn idle_workload_droops_least() {
        let m = DroopModel::typical_server_pdn();
        assert_eq!(m.droop_fraction(0.0, 0.0, 0.0), m.idle_fraction);
    }

    #[test]
    fn droop_is_monotonic_in_each_excitation() {
        let m = DroopModel::typical_server_pdn();
        let base = m.droop_fraction(0.4, 0.4, 0.4);
        assert!(m.droop_fraction(0.6, 0.4, 0.4) > base);
        assert!(m.droop_fraction(0.4, 0.6, 0.4) > base);
        assert!(m.droop_fraction(0.4, 0.4, 0.6) > base);
    }

    #[test]
    fn resonance_alone_adds_nothing() {
        let m = DroopModel::typical_server_pdn();
        assert_eq!(m.droop_fraction(0.0, 0.0, 1.0), m.idle_fraction);
    }

    #[test]
    fn stress_scalar_normalizes() {
        let m = DroopModel::typical_server_pdn();
        assert_eq!(m.stress_scalar(m.idle_fraction), 0.0);
        assert_eq!(m.stress_scalar(m.virus_ceiling()), 1.0);
        let mid = m.droop_fraction(0.5, 0.5, 0.5);
        let s = m.stress_scalar(mid);
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_excitation_panics() {
        let _ = DroopModel::typical_server_pdn().droop_fraction(1.5, 0.0, 0.0);
    }
}
