//! Speed binning of manufactured chip populations (paper Figure 1).
//!
//! Manufacturers sort chips into discrete frequency bins; everything that
//! misses the lowest bin is discarded. UniServer's pitch is that binning
//! is coarse — within any bin, each chip (and each core) still has unused
//! capability. This module reproduces the binning view of a population and
//! the yield numbers the TCO model consumes.

use serde::{Deserialize, Serialize};
use uniserver_units::Megahertz;

use crate::variation::ChipProfile;

/// A discrete speed bin: chips whose maximum frequency is at least
/// `floor_mhz` (but below the next bin's floor) are sold at `floor_mhz`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedBin {
    /// Frequency the bin is sold at.
    pub floor: Megahertz,
    /// Number of chips landing in the bin.
    pub count: usize,
}

/// Result of binning a population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinningReport {
    /// Bins in ascending frequency order; all non-empty edges kept.
    pub bins: Vec<SpeedBin>,
    /// Chips too slow for the lowest bin — discarded (lost yield).
    pub discarded: usize,
    /// Total population size.
    pub population: usize,
}

impl BinningReport {
    /// Sellable fraction of the population.
    ///
    /// # Panics
    ///
    /// Panics if the report covers an empty population.
    #[must_use]
    pub fn yield_fraction(&self) -> f64 {
        assert!(self.population > 0, "yield undefined for an empty population");
        1.0 - self.discarded as f64 / self.population as f64
    }

    /// Average frequency *sold* per sellable chip — the revenue-weighted
    /// view a vendor cares about.
    #[must_use]
    pub fn mean_sold_frequency(&self) -> Megahertz {
        let sold: usize = self.bins.iter().map(|b| b.count).sum();
        if sold == 0 {
            return Megahertz::new(0.0);
        }
        let total: f64 = self.bins.iter().map(|b| b.floor.as_mhz() * b.count as f64).sum();
        Megahertz::new(total / sold as f64)
    }

    /// Average *capability* thrown away per sold chip: the gap between
    /// each chip's true Fmax and the bin floor it is sold at, in MHz.
    /// This is the headroom UniServer reclaims.
    #[must_use]
    pub fn mean_wasted_headroom(
        &self,
        population: &[ChipProfile],
        nominal: Megahertz,
        bin_step: Megahertz,
        lowest_bin: Megahertz,
    ) -> Megahertz {
        let mut wasted = 0.0;
        let mut sold = 0usize;
        for chip in population {
            let fmax = chip_fmax(chip, nominal);
            if let Some(bin) = bin_for(fmax, bin_step, lowest_bin) {
                wasted += fmax.as_mhz() - bin.as_mhz();
                sold += 1;
            }
        }
        if sold == 0 {
            Megahertz::new(0.0)
        } else {
            Megahertz::new(wasted / sold as f64)
        }
    }
}

/// Maximum stable chip frequency: limited by its *slowest* core, which is
/// exactly the worst-case coupling the paper criticizes.
#[must_use]
pub fn chip_fmax(chip: &ChipProfile, nominal: Megahertz) -> Megahertz {
    let worst = (0..chip.cores.len())
        .map(|c| chip.core_fmax_factor(c))
        .fold(f64::MAX, f64::min);
    nominal.scaled(worst.max(0.0))
}

/// The bin floor for a chip of the given Fmax, or `None` if it is below
/// the lowest sellable bin.
#[must_use]
pub fn bin_for(fmax: Megahertz, bin_step: Megahertz, lowest_bin: Megahertz) -> Option<Megahertz> {
    if fmax < lowest_bin {
        return None;
    }
    let steps = ((fmax.as_mhz() - lowest_bin.as_mhz()) / bin_step.as_mhz()).floor();
    Some(Megahertz::new(lowest_bin.as_mhz() + steps * bin_step.as_mhz()))
}

/// Bins a population (Figure 1's histogram).
///
/// # Panics
///
/// Panics if `bin_step` is zero.
#[must_use]
pub fn bin_population(
    population: &[ChipProfile],
    nominal: Megahertz,
    bin_step: Megahertz,
    lowest_bin: Megahertz,
) -> BinningReport {
    assert!(bin_step.as_mhz() > 0.0, "bin step must be positive");
    let mut counts: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut discarded = 0usize;
    for chip in population {
        match bin_for(chip_fmax(chip, nominal), bin_step, lowest_bin) {
            Some(floor) => *counts.entry(floor.as_mhz().round() as u64).or_insert(0) += 1,
            None => discarded += 1,
        }
    }
    let bins = counts
        .into_iter()
        .map(|(mhz, count)| SpeedBin { floor: Megahertz::new(mhz as f64), count })
        .collect();
    BinningReport { bins, discarded, population: population.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variation::VariationParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize) -> Vec<ChipProfile> {
        let mut rng = StdRng::seed_from_u64(11);
        VariationParams::server_28nm().sample_population(n, 4, 8, &mut rng)
    }

    #[test]
    fn bins_cover_population() {
        let pop = population(2_000);
        let report =
            bin_population(&pop, Megahertz::from_ghz(2.6), Megahertz::new(100.0), Megahertz::from_ghz(2.2));
        let binned: usize = report.bins.iter().map(|b| b.count).sum();
        assert_eq!(binned + report.discarded, 2_000);
        assert!(report.bins.len() > 3, "expect a spread of bins, got {}", report.bins.len());
    }

    #[test]
    fn yield_fraction_is_sane() {
        let pop = population(2_000);
        let report =
            bin_population(&pop, Megahertz::from_ghz(2.6), Megahertz::new(100.0), Megahertz::from_ghz(2.2));
        let y = report.yield_fraction();
        assert!(y > 0.5 && y <= 1.0, "yield {y}");
    }

    #[test]
    fn raising_lowest_bin_lowers_yield() {
        let pop = population(2_000);
        let nominal = Megahertz::from_ghz(2.6);
        let step = Megahertz::new(100.0);
        let lenient = bin_population(&pop, nominal, step, Megahertz::from_ghz(2.0));
        let strict = bin_population(&pop, nominal, step, Megahertz::from_ghz(2.6));
        assert!(strict.yield_fraction() < lenient.yield_fraction());
    }

    #[test]
    fn bin_floor_quantizes_downwards() {
        let step = Megahertz::new(100.0);
        let lowest = Megahertz::from_ghz(2.0);
        assert_eq!(bin_for(Megahertz::new(2_351.0), step, lowest), Some(Megahertz::new(2_300.0)));
        assert_eq!(bin_for(Megahertz::new(2_000.0), step, lowest), Some(Megahertz::new(2_000.0)));
        assert_eq!(bin_for(Megahertz::new(1_999.0), step, lowest), None);
    }

    #[test]
    fn wasted_headroom_is_positive_and_below_step() {
        let pop = population(2_000);
        let nominal = Megahertz::from_ghz(2.6);
        let step = Megahertz::new(100.0);
        let lowest = Megahertz::from_ghz(2.0);
        let report = bin_population(&pop, nominal, step, lowest);
        let waste = report.mean_wasted_headroom(&pop, nominal, step, lowest);
        assert!(waste.as_mhz() > 0.0);
        assert!(waste.as_mhz() < step.as_mhz());
    }

    #[test]
    fn chip_fmax_uses_slowest_core() {
        use crate::variation::{BankProfile, CoreProfile};
        let chip = ChipProfile {
            chip_id: 0,
            speed_factor: 0.0,
            leakage_factor: 1.0,
            vmin_shift: 0.0,
            cores: vec![
                CoreProfile { index: 0, speed_offset: 0.10, vmin_offset: 0.0 },
                CoreProfile { index: 1, speed_offset: -0.10, vmin_offset: 0.0 },
            ],
            banks: vec![BankProfile { index: 0, vmin_offset: 0.0 }],
        };
        let fmax = chip_fmax(&chip, Megahertz::new(1_000.0));
        assert!((fmax.as_mhz() - 900.0).abs() < 1e-9);
    }
}
