//! Process variation: every manufactured chip, core and memory bank is
//! intrinsically different (paper Figure 1).
//!
//! The model follows the usual decomposition of within-die and die-to-die
//! variation: a chip-level (systematic) component shared by all resources
//! on the die plus an independent per-core / per-bank (random) component.
//! Speed, leakage and Vmin are sampled jointly — fast chips tend to leak
//! more, a correlation the TCO yield model relies on.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::rng::{normal, truncated_normal};

/// Parameters of the process-variation model for one technology node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VariationParams {
    /// Die-to-die sigma of the speed factor (fraction of nominal Fmax).
    pub chip_speed_sigma: f64,
    /// Within-die, per-core sigma of the speed factor.
    pub core_speed_sigma: f64,
    /// Die-to-die sigma of the Vmin offset (fraction of nominal voltage).
    pub chip_vmin_sigma: f64,
    /// Within-die, per-core sigma of the Vmin offset.
    pub core_vmin_sigma: f64,
    /// Within-die, per-cache-bank sigma of the Vmin offset.
    pub bank_vmin_sigma: f64,
    /// Die-to-die sigma of the (lognormal) leakage factor.
    pub leakage_sigma_ln: f64,
    /// Correlation between speed and leakage (fast chips leak more).
    pub speed_leakage_correlation: f64,
}

impl VariationParams {
    /// Variation magnitudes representative of a 28 nm planar server part
    /// (the paper cites >30 % combined timing/voltage margins measured on
    /// 28 nm ARM silicon [Whatmough, ISSCC'15]).
    #[must_use]
    pub fn server_28nm() -> Self {
        VariationParams {
            chip_speed_sigma: 0.05,
            core_speed_sigma: 0.015,
            chip_vmin_sigma: 0.025,
            core_vmin_sigma: 0.012,
            bank_vmin_sigma: 0.010,
            leakage_sigma_ln: 0.25,
            speed_leakage_correlation: 0.6,
        }
    }

    /// Tighter distribution for a mature 14 nm FinFET node: FinFETs cut
    /// random variation and leakage spread (the paper's Table 3 banks on
    /// FinFET adoption for part of its efficiency gains).
    #[must_use]
    pub fn server_14nm_finfet() -> Self {
        VariationParams {
            chip_speed_sigma: 0.035,
            core_speed_sigma: 0.010,
            chip_vmin_sigma: 0.018,
            core_vmin_sigma: 0.008,
            bank_vmin_sigma: 0.007,
            leakage_sigma_ln: 0.15,
            speed_leakage_correlation: 0.5,
        }
    }

    /// Samples one manufactured chip with `cores` CPU cores and `banks`
    /// cache banks.
    ///
    /// # Panics
    ///
    /// Panics if `cores` or `banks` is zero.
    pub fn sample_chip<R: Rng + ?Sized>(
        &self,
        chip_id: u64,
        cores: usize,
        banks: usize,
        rng: &mut R,
    ) -> ChipProfile {
        assert!(cores > 0, "a chip must have at least one core");
        assert!(banks > 0, "a chip must have at least one cache bank");

        // Joint speed/leakage sample with the configured correlation.
        let z_speed = normal(rng, 0.0, 1.0);
        let z_indep = normal(rng, 0.0, 1.0);
        let rho = self.speed_leakage_correlation;
        let z_leak = rho * z_speed + (1.0 - rho * rho).sqrt() * z_indep;

        let speed_factor = z_speed * self.chip_speed_sigma;
        let leakage_factor = (z_leak * self.leakage_sigma_ln).exp();
        // Faster chips sit lower on the Vmin distribution (better devices),
        // hence the negative coupling; truncate so Vmin offsets stay sane.
        let vmin_shift = truncated_normal(rng, -0.3 * speed_factor, self.chip_vmin_sigma, -0.10, 0.10);

        let cores = (0..cores)
            .map(|index| CoreProfile {
                index,
                speed_offset: normal(rng, 0.0, self.core_speed_sigma),
                vmin_offset: truncated_normal(rng, 0.0, self.core_vmin_sigma, -0.06, 0.06),
            })
            .collect();
        let banks = (0..banks)
            .map(|index| BankProfile {
                index,
                vmin_offset: truncated_normal(rng, 0.0, self.bank_vmin_sigma, -0.05, 0.05),
            })
            .collect();

        ChipProfile { chip_id, speed_factor, leakage_factor, vmin_shift, cores, banks }
    }

    /// Samples a manufactured population of `n` chips — the input to
    /// binning (Figure 1) and to the TCO yield model.
    pub fn sample_population<R: Rng + ?Sized>(
        &self,
        n: usize,
        cores: usize,
        banks: usize,
        rng: &mut R,
    ) -> Vec<ChipProfile> {
        (0..n).map(|id| self.sample_chip(id as u64, cores, banks, rng)).collect()
    }
}

impl Default for VariationParams {
    fn default() -> Self {
        VariationParams::server_28nm()
    }
}

/// The manufactured identity of one chip: its systematic offsets plus the
/// per-core and per-bank random components.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipProfile {
    /// Identifier within its population.
    pub chip_id: u64,
    /// Fractional speed offset of the die (+0.05 = 5 % faster than typical).
    pub speed_factor: f64,
    /// Multiplicative leakage factor of the die (1.0 = typical).
    pub leakage_factor: f64,
    /// Fractional Vmin offset of the die (negative = can run lower).
    pub vmin_shift: f64,
    /// Per-core random components.
    pub cores: Vec<CoreProfile>,
    /// Per-cache-bank random components.
    pub banks: Vec<BankProfile>,
}

impl ChipProfile {
    /// Maximum stable frequency of a core, as a fraction of the nominal
    /// part frequency (chip systematic × core random).
    #[must_use]
    pub fn core_fmax_factor(&self, core: usize) -> f64 {
        let c = &self.cores[core];
        (1.0 + self.speed_factor) * (1.0 + c.speed_offset)
    }

    /// Combined fractional Vmin offset of a core (chip + core components).
    #[must_use]
    pub fn core_vmin_offset(&self, core: usize) -> f64 {
        self.vmin_shift + self.cores[core].vmin_offset
    }

    /// Combined fractional Vmin offset of a cache bank.
    #[must_use]
    pub fn bank_vmin_offset(&self, bank: usize) -> f64 {
        self.vmin_shift + self.banks[bank].vmin_offset
    }

    /// The weakest core's combined Vmin offset — what manufacturing
    /// screening checks against the part's shippable margin.
    ///
    /// # Panics
    ///
    /// Panics if the chip has no cores.
    #[must_use]
    pub fn worst_core_vmin_offset(&self) -> f64 {
        assert!(!self.cores.is_empty(), "a chip profile needs cores");
        (0..self.cores.len())
            .map(|c| self.core_vmin_offset(c))
            .fold(f64::MIN, f64::max)
    }

    /// Spread between the strongest and weakest core's Vmin offset — the
    /// paper's "core-to-core variation" axis of Table 2.
    #[must_use]
    pub fn core_to_core_spread(&self) -> f64 {
        let offsets: Vec<f64> = (0..self.cores.len()).map(|c| self.core_vmin_offset(c)).collect();
        let max = offsets.iter().cloned().fold(f64::MIN, f64::max);
        let min = offsets.iter().cloned().fold(f64::MAX, f64::min);
        max - min
    }
}

/// Per-core manufactured random variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoreProfile {
    /// Index of the core on its die.
    pub index: usize,
    /// Fractional speed offset relative to the die.
    pub speed_offset: f64,
    /// Fractional Vmin offset relative to the die.
    pub vmin_offset: f64,
}

/// Per-cache-bank manufactured random variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankProfile {
    /// Index of the bank on its die.
    pub index: usize,
    /// Fractional Vmin offset relative to the die.
    pub vmin_offset: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn chip_has_requested_resources() {
        let chip = VariationParams::server_28nm().sample_chip(3, 6, 12, &mut rng());
        assert_eq!(chip.chip_id, 3);
        assert_eq!(chip.cores.len(), 6);
        assert_eq!(chip.banks.len(), 12);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = VariationParams::server_28nm().sample_chip(0, 0, 1, &mut rng());
    }

    #[test]
    fn population_speed_spread_matches_sigma() {
        let params = VariationParams::server_28nm();
        let pop = params.sample_population(4_000, 4, 8, &mut rng());
        let mean = pop.iter().map(|c| c.speed_factor).sum::<f64>() / pop.len() as f64;
        let var = pop.iter().map(|c| (c.speed_factor - mean).powi(2)).sum::<f64>() / pop.len() as f64;
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - params.chip_speed_sigma).abs() < 0.005, "sigma {}", var.sqrt());
    }

    #[test]
    fn speed_and_leakage_are_positively_correlated() {
        let pop = VariationParams::server_28nm().sample_population(4_000, 2, 4, &mut rng());
        let n = pop.len() as f64;
        let ms = pop.iter().map(|c| c.speed_factor).sum::<f64>() / n;
        let ml = pop.iter().map(|c| c.leakage_factor.ln()).sum::<f64>() / n;
        let cov = pop
            .iter()
            .map(|c| (c.speed_factor - ms) * (c.leakage_factor.ln() - ml))
            .sum::<f64>()
            / n;
        assert!(cov > 0.0, "covariance {cov} should be positive");
    }

    #[test]
    fn finfet_node_is_tighter() {
        let planar = VariationParams::server_28nm();
        let finfet = VariationParams::server_14nm_finfet();
        assert!(finfet.chip_speed_sigma < planar.chip_speed_sigma);
        assert!(finfet.core_vmin_sigma < planar.core_vmin_sigma);
        assert!(finfet.leakage_sigma_ln < planar.leakage_sigma_ln);
    }

    #[test]
    fn core_to_core_spread_is_non_negative_and_grows_with_cores() {
        let params = VariationParams::server_28nm();
        let mut r = rng();
        let avg_spread = |cores: usize, r: &mut StdRng| {
            (0..300)
                .map(|i| params.sample_chip(i, cores, 4, r).core_to_core_spread())
                .sum::<f64>()
                / 300.0
        };
        let two = avg_spread(2, &mut r);
        let eight = avg_spread(8, &mut r);
        assert!(two >= 0.0);
        // Order statistics: the expected range widens with the sample count.
        assert!(eight > two, "8-core spread {eight} vs 2-core {two}");
    }

    #[test]
    fn fmax_factor_combines_chip_and_core() {
        let chip = ChipProfile {
            chip_id: 0,
            speed_factor: 0.10,
            leakage_factor: 1.0,
            vmin_shift: -0.02,
            cores: vec![CoreProfile { index: 0, speed_offset: 0.05, vmin_offset: 0.01 }],
            banks: vec![BankProfile { index: 0, vmin_offset: 0.0 }],
        };
        assert!((chip.core_fmax_factor(0) - 1.155).abs() < 1e-12);
        assert!((chip.core_vmin_offset(0) + 0.01).abs() < 1e-12);
    }
}
