//! Special functions used by the statistical models.
//!
//! Implemented locally (rather than pulling a numerics dependency) because
//! only four functions are needed: `erf`, the standard normal CDF and
//! quantile, and a numerically safe `log2`.

/// Error function, via the Abramowitz & Stegun 7.1.26 rational
/// approximation (max absolute error ≈ 1.5e-7, ample for model work).
///
/// # Examples
///
/// ```
/// use uniserver_silicon::math::erf;
/// assert!((erf(0.0)).abs() < 1e-6);
/// assert!((erf(1.0) - 0.8427).abs() < 1e-3);
/// assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    // A&S 7.1.26 with symmetry erf(-x) = -erf(x).
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736 + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal cumulative distribution function Φ(z).
///
/// For very negative arguments (deep tail, |z| > 6) the A&S `erf`
/// approximation underflows to 0; the asymptotic expansion
/// `φ(z)/|z| · (1 − 1/z²)` is used instead so tail probabilities like
/// Φ(−6) ≈ 1e-9 — exactly the regime of the paper's DRAM BER — stay
/// accurate.
///
/// # Examples
///
/// ```
/// use uniserver_silicon::math::normal_cdf;
/// assert!((normal_cdf(0.0) - 0.5).abs() < 1e-9);
/// assert!(normal_cdf(-6.0) > 0.0 && normal_cdf(-6.0) < 1e-8);
/// ```
#[must_use]
pub fn normal_cdf(z: f64) -> f64 {
    if z < -6.0 {
        // Asymptotic tail: Φ(z) ≈ φ(z)/|z| · (1 − 1/z² + 3/z⁴).
        let pdf = (-0.5 * z * z).exp() / (2.0 * std::f64::consts::PI).sqrt();
        let z2 = z * z;
        (pdf / -z) * (1.0 - 1.0 / z2 + 3.0 / (z2 * z2))
    } else if z > 6.0 {
        1.0 - normal_cdf(-z)
    } else {
        0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
    }
}

/// Standard normal quantile Φ⁻¹(p) via Acklam's rational approximation
/// (relative error below 1.15e-9 over (0, 1)).
///
/// # Panics
///
/// Panics if `p` is not strictly inside `(0, 1)`.
///
/// # Examples
///
/// ```
/// use uniserver_silicon::math::normal_quantile;
/// assert!(normal_quantile(0.5).abs() < 1e-8);
/// assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
/// ```
#[must_use]
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile argument must be in (0, 1), got {p}");

    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Logistic sigmoid `1 / (1 + e^(-x))`, used by the predictor-facing
/// failure-probability curves.
///
/// # Examples
///
/// ```
/// use uniserver_silicon::math::sigmoid;
/// assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
/// assert!(sigmoid(10.0) > 0.9999);
/// ```
#[must_use]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_points() {
        // Reference values from tables of erf.
        for (x, want) in [(0.5, 0.5204999), (1.0, 0.8427008), (2.0, 0.9953223), (3.0, 0.9999779)] {
            assert!((erf(x) - want).abs() < 2e-6, "erf({x})");
            assert!((erf(-x) + want).abs() < 2e-6, "erf(-{x})");
        }
    }

    #[test]
    fn cdf_symmetry() {
        for z in [0.1, 0.7, 1.3, 2.5, 4.0] {
            let s = normal_cdf(z) + normal_cdf(-z);
            assert!((s - 1.0).abs() < 1e-6, "symmetry at {z}");
        }
    }

    #[test]
    fn cdf_deep_tail_matches_known_values() {
        // Φ(-6) ≈ 9.866e-10 — the BER regime of the paper's 5 s refresh.
        let p6 = normal_cdf(-6.0);
        assert!((p6 - 9.866e-10).abs() / 9.866e-10 < 0.05, "got {p6}");
        // Φ(-7) ≈ 1.28e-12.
        let p7 = normal_cdf(-7.0);
        assert!((p7 - 1.28e-12).abs() / 1.28e-12 < 0.05, "got {p7}");
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [1e-9, 1e-6, 0.01, 0.3, 0.5, 0.9, 0.999] {
            let z = normal_quantile(p);
            let back = normal_cdf(z);
            let tol = if p < 1e-6 { 0.1 * p } else { 1e-5 };
            assert!((back - p).abs() < tol.max(1e-12), "p={p} z={z} back={back}");
        }
    }

    #[test]
    #[should_panic(expected = "in (0, 1)")]
    fn quantile_rejects_bounds() {
        let _ = normal_quantile(0.0);
    }

    #[test]
    fn sigmoid_is_monotonic_and_bounded() {
        let mut prev = -1.0;
        for i in -50..=50 {
            let y = sigmoid(i as f64 / 5.0);
            assert!(y > prev);
            assert!((0.0..=1.0).contains(&y));
            prev = y;
        }
    }
}
