//! DRAM cell retention statistics (paper §6.B).
//!
//! Cell retention times follow a lognormal distribution with a deep weak
//! tail; refresh intervals shorter than the weakest cell's retention are
//! error-free. The model is calibrated to the paper's measurements on an
//! 8 GB DDR3 module in an air-conditioned server room:
//!
//! * refresh relaxed from 64 ms up to **1.5 s** → *no* errors;
//! * at **5 s** (78× nominal) → cumulative BER ≈ **1e-9**, within
//!   commercial DRAM targets and far below SECDED's ~1e-6 capability.
//!
//! Retention is strongly temperature-dependent (roughly halving every
//! ~10 °C), which the model exposes so reliability domains can be managed
//! across thermal conditions. A small population of variable-retention-
//! time (VRT) cells — cells that intermittently drop to a fraction of
//! their nominal retention — adds the stochastic component observed in
//! retention studies (Liu et al. [32]).

use rand::Rng;
use serde::{Deserialize, Serialize};
use uniserver_units::{BitErrorRate, Celsius, Seconds};

use crate::math::normal_cdf;
use crate::rng::poisson;

/// Lognormal retention-time model for one DRAM generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetentionModel {
    /// Mean of ln(retention seconds) at the reference temperature.
    pub mu_ln: f64,
    /// Sigma of ln(retention seconds).
    pub sigma_ln: f64,
    /// Temperature at which `mu_ln` is specified.
    pub reference_temp: Celsius,
    /// Retention halves every this many °C above reference.
    pub halving_celsius: f64,
    /// Fraction of cells subject to variable retention time.
    pub vrt_fraction: f64,
    /// Retention multiplier while a VRT cell sits in its weak state
    /// (spends roughly half its time there).
    pub vrt_penalty: f64,
}

impl RetentionModel {
    /// Calibrated for the paper's 8 GB DDR3 DIMMs at a typical 45 °C
    /// operating DIMM temperature in an air-conditioned room: zero
    /// expected failures at 1.5 s, per-bit fail probability 1e-9 at 5 s.
    #[must_use]
    pub fn ddr3_server() -> Self {
        // Solve (ln t - mu)/sigma for the two calibration points:
        //   P(r < 5 s)   = 1e-9   -> z = -5.998
        //   P(r < 1.5 s) = 1e-13  -> z = -7.3
        RetentionModel {
            mu_ln: 7.158,
            sigma_ln: 0.925,
            reference_temp: Celsius::new(45.0),
            halving_celsius: 10.0,
            vrt_fraction: 2e-6,
            vrt_penalty: 0.3,
        }
    }

    /// Per-bit probability that a cell's retention is shorter than the
    /// refresh interval at the given temperature (i.e. the cell leaks its
    /// value before being refreshed).
    ///
    /// # Panics
    ///
    /// Panics if `refresh` is zero.
    #[must_use]
    pub fn fail_probability(&self, refresh: Seconds, temp: Celsius) -> f64 {
        assert!(refresh.as_secs() > 0.0, "refresh interval must be positive");
        // Retention shrinks by 2^(dT/halving); equivalently the effective
        // refresh interval grows by the same factor.
        let dt = temp.delta_above(self.reference_temp);
        let accel = (dt / self.halving_celsius) * std::f64::consts::LN_2;
        let z = |t: f64| (t.ln() + accel - self.mu_ln) / self.sigma_ln;

        let p_nominal = normal_cdf(z(refresh.as_secs()));
        // A VRT cell in its weak state behaves as if the interval were
        // stretched by 1/penalty; it spends about half its time weak.
        let p_vrt_weak = normal_cdf(z(refresh.as_secs() / self.vrt_penalty));
        (1.0 - self.vrt_fraction) * p_nominal
            + self.vrt_fraction * (0.5 * p_nominal + 0.5 * p_vrt_weak)
    }

    /// Expected number of failing bits among `bits` cells.
    #[must_use]
    pub fn expected_failures(&self, refresh: Seconds, temp: Celsius, bits: u64) -> f64 {
        self.fail_probability(refresh, temp) * bits as f64
    }

    /// Samples an observed failing-bit count (Poisson around the
    /// expectation, as independent rare events).
    pub fn sample_failures<R: Rng + ?Sized>(
        &self,
        refresh: Seconds,
        temp: Celsius,
        bits: u64,
        rng: &mut R,
    ) -> u64 {
        poisson(rng, self.expected_failures(refresh, temp, bits))
    }

    /// The cumulative bit-error rate at the given operating point.
    #[must_use]
    pub fn ber(&self, refresh: Seconds, temp: Celsius) -> BitErrorRate {
        BitErrorRate::new(self.fail_probability(refresh, temp).clamp(0.0, 1.0))
    }

    /// Longest refresh interval whose expected failure count over `bits`
    /// cells stays at or below `target_expected` (binary search between
    /// 1 ms and 10 min).
    ///
    /// # Panics
    ///
    /// Panics if `target_expected` is negative.
    #[must_use]
    pub fn max_safe_refresh(&self, temp: Celsius, bits: u64, target_expected: f64) -> Seconds {
        assert!(target_expected >= 0.0, "target must be non-negative");
        let (mut lo, mut hi) = (1e-3, 600.0);
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.expected_failures(Seconds::new(mid), temp, bits) <= target_expected {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Seconds::new(lo)
    }
}

impl Default for RetentionModel {
    fn default() -> Self {
        RetentionModel::ddr3_server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use uniserver_units::Bytes;

    const MODULE_BITS: u64 = Bytes::gib(8).bits();

    fn model() -> RetentionModel {
        RetentionModel::ddr3_server()
    }

    fn op_temp() -> Celsius {
        Celsius::new(45.0)
    }

    #[test]
    fn nominal_refresh_is_error_free() {
        let e = model().expected_failures(Seconds::from_millis(64.0), op_temp(), MODULE_BITS);
        assert!(e < 1e-6, "expected failures at 64 ms: {e}");
    }

    #[test]
    fn paper_point_1500ms_no_errors() {
        let e = model().expected_failures(Seconds::new(1.5), op_temp(), MODULE_BITS);
        assert!(e < 0.2, "expected failures at 1.5 s: {e}");
    }

    #[test]
    fn paper_point_5s_ber_1e9() {
        let ber = model().ber(Seconds::new(5.0), op_temp());
        // "in the order of 1e-9".
        assert!(ber.value() > 2e-10 && ber.value() < 5e-9, "BER {ber}");
        assert!(ber.is_correctable_by_secded());
    }

    #[test]
    fn fail_probability_is_monotonic_in_interval() {
        let m = model();
        let mut prev = 0.0;
        for t in [0.064, 0.5, 1.0, 1.5, 3.0, 5.0, 10.0, 60.0] {
            let p = m.fail_probability(Seconds::new(t), op_temp());
            assert!(p >= prev, "p({t}) = {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn heat_makes_retention_worse() {
        let m = model();
        let cool = m.fail_probability(Seconds::new(5.0), Celsius::new(35.0));
        let ref_t = m.fail_probability(Seconds::new(5.0), op_temp());
        let hot = m.fail_probability(Seconds::new(5.0), Celsius::new(65.0));
        assert!(cool < ref_t && ref_t < hot);
        // Two halvings (+20 °C) behave like a ~4x longer interval.
        let four_x = m.fail_probability(Seconds::new(20.0), op_temp());
        assert!((hot.ln() - four_x.ln()).abs() < 0.2, "hot {hot} vs 4x {four_x}");
    }

    #[test]
    fn max_safe_refresh_brackets_the_paper_window() {
        let m = model();
        // Allowing ~0.1 expected errors on the module keeps us near the
        // empirically safe 1.5 s point.
        let safe = m.max_safe_refresh(op_temp(), MODULE_BITS, 0.1);
        assert!(
            safe.as_secs() > 1.0 && safe.as_secs() < 3.0,
            "safe refresh {safe} should sit around the paper's 1.5 s"
        );
        // And it is consistent with its own definition.
        let e = m.expected_failures(safe, op_temp(), MODULE_BITS);
        assert!(e <= 0.1 + 1e-6);
    }

    #[test]
    fn sampled_failures_match_expectation() {
        let m = model();
        let mut rng = StdRng::seed_from_u64(77);
        let t = Seconds::new(5.0);
        let runs = 300;
        let total: u64 =
            (0..runs).map(|_| m.sample_failures(t, op_temp(), MODULE_BITS, &mut rng)).sum();
        let mean = total as f64 / runs as f64;
        let expected = m.expected_failures(t, op_temp(), MODULE_BITS);
        assert!((mean - expected).abs() < 0.15 * expected + 1.0, "mean {mean} vs {expected}");
    }

    #[test]
    fn vrt_population_raises_the_floor() {
        let base = model();
        let no_vrt = RetentionModel { vrt_fraction: 0.0, ..base.clone() };
        let heavy_vrt = RetentionModel { vrt_fraction: 1e-3, ..base };
        let t = Seconds::new(2.5);
        assert!(
            heavy_vrt.fail_probability(t, op_temp()) > no_vrt.fail_probability(t, op_temp()),
            "VRT cells must add failures"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_refresh_panics() {
        let _ = model().fail_probability(Seconds::ZERO, op_temp());
    }
}
