//! Device-level behavioural models for the UniServer reproduction.
//!
//! The UniServer paper characterizes *real* silicon: per-core crash
//! voltages of two Intel parts, cache ECC-error onset, DRAM retention under
//! relaxed refresh, and the voltage guard-bands vendors adopt against
//! droops, Vmin and core-to-core variation. None of that hardware is
//! available here, so this crate provides the behavioural substrate that
//! the rest of the stack (platform, daemons, hypervisor, cloud manager)
//! characterizes instead — calibrated so the paper's measured ranges come
//! out of the same experiments (see `DESIGN.md` §2 and §5).
//!
//! Layout:
//!
//! * [`variation`] — process variation and chip populations (Figure 1).
//! * [`binning`] — speed binning of chip populations (Figure 1).
//! * [`vmin`] — per-core/per-bank minimum-voltage (crash point) models.
//! * [`droop`] — workload-induced voltage droop (Table 1).
//! * [`guardband`] — guard-band decomposition and measurement (Table 1).
//! * [`retention`] — DRAM cell retention statistics (§6.B).
//! * [`ecc`] — a real SECDED(72,64) extended-Hamming codec.
//! * [`power`] — core and DRAM power models, refresh-power share (§6.B).
//! * [`aging`] — NBTI-style Vmin drift driving re-characterization.
//! * [`comparisons`] — Razor/ArchShield baselines (§5.A related work).
//! * [`faults`] — fault taxonomy and bit-flip primitives.
//! * [`math`] / [`rng`] — special functions and seeded samplers.
//!
//! # Examples
//!
//! ```
//! use rand::SeedableRng;
//! use uniserver_silicon::variation::VariationParams;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let chip = VariationParams::server_28nm().sample_chip(0, 8, 16, &mut rng);
//! assert_eq!(chip.cores.len(), 8);
//! // Every core is unique: that is the premise of the whole paper.
//! assert!(chip.cores[0].vmin_offset != chip.cores[1].vmin_offset);
//! ```

pub mod aging;
pub mod binning;
pub mod comparisons;
pub mod droop;
pub mod ecc;
pub mod faults;
pub mod guardband;
pub mod math;
pub mod power;
pub mod retention;
pub mod rng;
pub mod variation;
pub mod vmin;

pub use ecc::{DecodeOutcome, Secded72};
pub use faults::{BitFlip, ErrorSeverity, FaultKind};
pub use variation::{ChipProfile, CoreProfile, VariationParams};
pub use vmin::VminModel;
